/**
 * @file
 * DLRM-style recommendation training with the embedding table held
 * obliviously in LAORAM — the paper's headline scenario (§VII).
 *
 * The flow mirrors Fig. 5's architecture:
 *   - server storage: (simulated) CPU DRAM holding the encrypted
 *     embedding tree,
 *   - preprocessor: scans upcoming batches into superblock bins,
 *   - trainer: pulls bins through the oblivious path, runs SGD on a
 *     toy click-prediction model, and writes updated rows back.
 *
 * Labels are synthetic but separable by construction (rows in the hot
 * band lean positive), so the loss visibly decreases — demonstrating
 * that the oblivious storage is functionally transparent to training.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/laoram_client.hh"
#include "core/pipeline.hh"
#include "oram/path_oram.hh"
#include "serve/serve.hh"
#include "train/embedding_table.hh"
#include "train/toy_model.hh"
#include "util/cli.hh"
#include "util/rng.hh"
#include "workload/kaggle_synth.hh"

using namespace laoram;

namespace {

constexpr std::uint64_t kDim = 32; // 128-byte rows, like the paper

float
labelFor(oram::BlockId row, std::uint64_t hot_set)
{
    // Hot-band rows correlate with clicks; cold rows do not.
    return row < hot_set ? 1.0f : 0.0f;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("dlrm_kaggle",
                   "DLRM-like training over a LAORAM-protected "
                   "embedding table");
    auto rows = args.addUint("rows", "embedding rows", 8192);
    auto samples = args.addUint("samples", "training samples/epoch",
                                8192);
    auto epochs = args.addUint("epochs", "training epochs", 3);
    auto superblock = args.addUint("superblock", "LAORAM S", 4);
    auto lr = args.addDouble("lr", "learning rate", 0.2);
    args.parse(argc, argv);

    std::cout << "DLRM + Kaggle-like trace through LAORAM (fat tree, "
                 "S=" << *superblock << ")\n\n";

    // --- Build the protected embedding table. ---
    train::EmbeddingTable table(*rows, kDim, /*seed=*/1);
    core::LaoramConfig lcfg;
    lcfg.base.numBlocks = *rows;
    lcfg.base.blockBytes = 128;
    lcfg.base.payloadBytes = table.rowBytes();
    lcfg.base.profile = oram::BucketProfile::fat(4);
    lcfg.base.encrypt = true; // rows are encrypted at rest
    lcfg.base.seed = 2;
    lcfg.superblockSize = *superblock;
    core::Laoram oram(lcfg);

    std::cout << "loading " << *rows
              << " rows into the ORAM tree ("
              << oram.geometry().serverBytes() / (1 << 20)
              << " MiB logical server footprint)...\n";
    {
        std::vector<std::uint8_t> buf;
        for (std::uint64_t r = 0; r < *rows; ++r) {
            table.serializeRow(r, buf);
            oram.writeBlock(r, buf);
        }
    }

    // --- Training setup. ---
    train::ToyInteractionModel model(kDim, /*seed=*/3);
    workload::KaggleParams kp;
    kp.numBlocks = *rows;
    kp.accesses = *samples;
    kp.hotSetSize = std::max<std::uint64_t>(*rows / 32, 16);
    kp.hotProbability = 0.3;

    // The touch callback is the "trainer GPU": it sees each fetched
    // row exactly once per bin, runs one SGD step, and leaves the
    // updated row in the (stash-resident) payload.
    double epoch_loss = 0.0;
    std::uint64_t epoch_samples = 0;
    oram.setTouchCallback([&](oram::BlockId id,
                              std::vector<std::uint8_t> &payload) {
        std::vector<float> row(kDim);
        std::memcpy(row.data(), payload.data(), payload.size());

        const auto res = model.step({row}, labelFor(id, kp.hotSetSize));
        epoch_loss += res.loss;
        ++epoch_samples;

        for (std::uint64_t i = 0; i < kDim; ++i)
            row[i] -= static_cast<float>(*lr) * res.rowGrads[0][i];
        model.applyTopGradient(static_cast<float>(*lr));
        std::memcpy(payload.data(), row.data(), payload.size());
    });

    // --- Train through the concurrent two-stage pipeline: the
    // preprocessor thread bins the next window of samples while the
    // serving thread trains the current one, epoch by epoch. ---
    const core::PipelineConfig pipecfg =
        core::PipelineConfig{}.withWindowAccesses(
            std::max<std::uint64_t>(*samples / 4, 1));

    const auto t0 = oram.meter().clock().nanoseconds();
    double hidden_min = 1.0;
    for (std::uint64_t e = 0; e < *epochs; ++e) {
        kp.seed = 10 + e; // reshuffled epoch
        const auto trace = workload::makeKaggleTrace(kp).accesses;
        epoch_loss = 0.0;
        epoch_samples = 0;
        const auto rep = serve::serve(oram, trace, pipecfg);
        hidden_min =
            std::min(hidden_min, rep.measuredPrepHiddenFraction);
        std::cout << "epoch " << e << ": mean loss "
                  << epoch_loss / static_cast<double>(epoch_samples)
                  << "  (" << epoch_samples
                  << " distinct row touches)\n";
    }
    oram.setTouchCallback(nullptr);
    if (*epochs > 0) {
        std::cout << "measured preprocessing overlap: >= "
                  << hidden_min * 100.0 << "% hidden per epoch\n";
    }

    // --- Report the oblivious-access cost. ---
    const auto &c = oram.meter().counters();
    std::cout << "\nORAM traffic: pathReads/access="
              << c.pathReadsPerAccess()
              << " dummyReads/access=" << c.dummyReadsPerAccess()
              << " stashPeak=" << c.stashPeak << "\n"
              << "simulated oblivious-access time: "
              << (oram.meter().clock().nanoseconds() - t0) / 1e6
              << " ms\n";

    // Baseline comparison on the final epoch's trace.
    kp.seed = 10 + *epochs - 1;
    const auto trace = workload::makeKaggleTrace(kp).accesses;
    oram::EngineConfig pcfg = lcfg.base;
    pcfg.payloadBytes = 0;
    pcfg.encrypt = false;
    pcfg.profile = oram::BucketProfile::uniform(4);
    oram::PathOram baseline(pcfg);
    baseline.runTrace(trace);

    core::LaoramConfig l2 = lcfg;
    l2.base.payloadBytes = 0;
    l2.base.encrypt = false;
    core::Laoram warm(l2);
    auto two_epochs = trace;
    two_epochs.insert(two_epochs.end(), trace.begin(), trace.end());
    warm.runTrace(two_epochs);

    const double per_access_base =
        baseline.meter().clock().nanoseconds()
        / static_cast<double>(trace.size());
    const double per_access_laoram =
        warm.meter().clock().nanoseconds()
        / static_cast<double>(two_epochs.size());
    std::cout << "speedup vs PathORAM (per access, warm): "
              << per_access_base / per_access_laoram << "x\n";
    return 0;
}
