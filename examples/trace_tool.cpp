/**
 * @file
 * Trace utility: generate, save, load, and analyse address traces.
 *
 * Lets experiments run on externally produced traces (e.g. embedding
 * indices extracted from a real Criteo preprocessing run, which this
 * repository cannot redistribute): generate a synthetic stand-in,
 * inspect its structure, or replay a file through an engine.
 *
 *   trace_tool --gen kaggle --entries 1000000 --accesses 50000 \
 *              --out /tmp/kaggle.trace
 *   trace_tool --in /tmp/kaggle.trace --analyze
 *   trace_tool --in /tmp/kaggle.trace --replay laoram
 */

#include <fstream>
#include <iostream>

#include "core/laoram_client.hh"
#include "oram/path_oram.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/generator.hh"

using namespace laoram;

namespace {

void
analyze(const workload::Trace &trace)
{
    TextTable t({"metric", "value"});
    t.addRow({"name", trace.name});
    t.addRow({"table entries", TextTable::cell(trace.numBlocks)});
    t.addRow({"accesses", TextTable::cell(trace.size())});
    t.addRow({"unique ids", TextTable::cell(trace.uniqueCount())});
    t.addRow({"unique fraction",
              TextTable::cell(trace.size()
                                  ? static_cast<double>(
                                        trace.uniqueCount())
                                      / static_cast<double>(
                                            trace.size())
                                  : 0.0,
                              3)});
    t.addRow({"hot mass (top 64)",
              TextTable::cell(trace.hotMass(64), 3)});
    t.addRow({"hot mass (top 1024)",
              TextTable::cell(trace.hotMass(1024), 3)});
    t.print(std::cout);
}

void
replay(const workload::Trace &trace, const std::string &engine_name)
{
    std::unique_ptr<oram::OramEngine> engine;
    if (engine_name == "laoram") {
        core::LaoramConfig cfg;
        cfg.base.numBlocks = trace.numBlocks;
        cfg.base.blockBytes = 128;
        cfg.base.profile = oram::BucketProfile::fat(4);
        cfg.superblockSize = 4;
        engine = std::make_unique<core::Laoram>(cfg);
    } else if (engine_name == "pathoram") {
        oram::EngineConfig cfg;
        cfg.numBlocks = trace.numBlocks;
        cfg.blockBytes = 128;
        engine = std::make_unique<oram::PathOram>(cfg);
    } else {
        LAORAM_FATAL("unknown engine '", engine_name,
                     "' (laoram|pathoram)");
    }
    engine->runTrace(trace.accesses);
    engine->meter().printSummary(std::cout, engine->name().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("trace_tool",
                   "generate / inspect / replay address traces");
    auto gen = args.addString(
        "gen", "generate: permutation|gaussian|kaggle|xnli", "");
    auto entries = args.addUint("entries", "table entries", 1 << 16);
    auto accesses = args.addUint("accesses", "trace length", 10000);
    auto seed = args.addUint("seed", "generator seed", 1);
    auto out = args.addString("out", "write trace to this file", "");
    auto in = args.addString("in", "read trace from this file", "");
    auto do_analyze = args.addFlag("analyze", "print structure stats");
    auto replay_engine = args.addString(
        "replay", "replay through engine: laoram|pathoram", "");
    args.parse(argc, argv);

    workload::Trace trace;
    if (!gen->empty()) {
        trace = workload::makeTrace(workload::datasetFromName(*gen),
                                    *entries, *accesses, *seed);
        std::cout << "generated " << trace.size() << " accesses ("
                  << *gen << ")\n";
    } else if (!in->empty()) {
        std::ifstream f(*in);
        if (!f)
            LAORAM_FATAL("cannot open ", *in);
        trace = workload::Trace::load(f);
        std::cout << "loaded " << trace.size() << " accesses from "
                  << *in << "\n";
    } else {
        std::cout << args.usage();
        return 0;
    }

    if (!out->empty()) {
        std::ofstream f(*out);
        if (!f)
            LAORAM_FATAL("cannot open ", *out, " for writing");
        trace.save(f);
        std::cout << "saved to " << *out << "\n";
    }
    if (*do_analyze)
        analyze(trace);
    if (!replay_engine->empty())
        replay(trace, *replay_engine);
    return 0;
}
