/**
 * @file
 * Online oblivious serving: concurrent client sessions over a sharded
 * LAORAM through the serving frontend.
 *
 * Each client thread opens a session and runs a closed loop —
 * submit a batch of lookups/updates on Zipf-skewed keys, wait for the
 * result, repeat. The frontend coalesces all sessions' requests into
 * per-shard look-ahead windows (the online stand-in for the paper's
 * pre-scanned trace), a background ticker flushes partial windows so
 * quiet periods never strand a batch, and the run ends with per-request
 * latency percentiles from the engine's own report.
 */

#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "cache/cache_cli.hh"
#include "obs/obs_cli.hh"
#include "obs/run_report.hh"
#include "serve/frontend.hh"
#include "util/cli.hh"
#include "util/rng.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("serving_frontend",
                   "Concurrent client sessions over a sharded LAORAM");
    auto blocks = args.addUint("blocks", "key-space size", 1 << 12);
    auto shards = args.addUint("shards", "ORAM shards", 2);
    auto sessions = args.addUint("sessions", "client sessions", 4);
    auto batches = args.addUint("batches", "batches per session", 64);
    auto batchOps = args.addUint("batch-ops", "operations per batch",
                                 32);
    auto window = args.addUint("window",
                               "look-ahead window (operations)", 64);
    auto flushUs = args.addUint(
        "flush-us", "partial-window flush period (microseconds)", 200);
    const auto cacheArgs = cache::addCacheArgs(args);
    const auto obsArgs = obs::addObsArgs(args);
    args.parse(argc, argv);

    // Activated before the frontend starts; destroyed after the
    // engine (quiesced recorders), flushing metrics/trace outputs.
    const obs::ObsConfig obsCfg = obs::obsConfigFromArgs(obsArgs);
    obs::ObsSession obsSession(obsCfg);

    constexpr std::uint64_t kPayload = 64;

    core::ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = *blocks;
    cfg.engine.base.payloadBytes = kPayload;
    cfg.engine.base.seed = 11;
    cfg.engine.superblockSize = 4;
    cfg.numShards = static_cast<std::uint32_t>(*shards);
    cfg.pipeline.windowAccesses = *window;
    cfg.pipeline.mode = core::PipelineMode::Concurrent;
    // Optional trusted-client hot-row cache: hot keys complete at
    // admission time while their scheduled accesses still hit the
    // ORAM as dummies (server trace unchanged).
    cfg.engine.cache = cache::cacheConfigFromArgs(cacheArgs);
    core::ShardedLaoram engine(cfg);

    std::cout << "online serving: " << *sessions << " sessions x "
              << *batches << " batches x " << *batchOps
              << " ops over " << *shards << " shards ("
              << *blocks << " keys, window " << *window << ")\n\n";

    serve::ServeFrontend frontend(engine);
    frontend.start();

    // Flush ticker: cut partial windows on a fixed period so a lull
    // in traffic (every client waiting on its own batch) never leaves
    // operations stuck in a half-filled window.
    std::atomic<bool> running{true};
    std::thread flusher([&] {
        while (running.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(*flushUs));
            frontend.flush();
        }
    });

    std::vector<std::thread> clients;
    std::atomic<std::uint64_t> lookups{0}, updates{0};
    for (std::uint64_t c = 0; c < *sessions; ++c) {
        clients.emplace_back([&, c] {
            serve::Session session = frontend.session();
            Rng rng(1000 + c);
            for (std::uint64_t b = 0; b < *batches; ++b) {
                serve::Batch batch;
                for (std::uint64_t i = 0; i < *batchOps; ++i) {
                    // Zipf-ish skew: half the traffic on a hot 1/16th
                    // of the key space, like embedding-table rows.
                    const core::BlockId id =
                        rng.nextBool(0.5)
                            ? rng.nextBounded(*blocks / 16 + 1)
                            : rng.nextBounded(*blocks);
                    if (rng.nextBool(0.25)) {
                        batch.ops.push_back(serve::Op::update(
                            id, std::vector<std::uint8_t>(
                                    kPayload,
                                    static_cast<std::uint8_t>(c))));
                        ++updates;
                    } else {
                        batch.ops.push_back(serve::Op::lookup(id));
                        ++lookups;
                    }
                }
                // Closed loop: wait for this batch before the next.
                session.submit(std::move(batch)).get();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    running.store(false, std::memory_order_relaxed);
    flusher.join();

    const core::ShardedPipelineReport rep = frontend.stop();
    if (!obsCfg.reportJson.empty())
        obs::writeRunReportJson(obsCfg.reportJson, rep);
    const LatencyReport &lat = rep.aggregate.latency;

    std::cout << "served " << lat.requests << " operations ("
              << lookups.load() << " lookups, " << updates.load()
              << " updates) in " << rep.aggregate.wallTotalNs / 1e6
              << " ms wall\n"
              << "windows coalesced: " << rep.aggregate.windows
              << "\n\n"
              << "request latency:  p50 " << lat.p50Ns / 1e3
              << " us   p99 " << lat.p99Ns / 1e3 << " us   p99.9 "
              << lat.p999Ns / 1e3 << " us   max " << lat.maxNs / 1e3
              << " us\n\n";
    if (cfg.engine.cache.enabled()) {
        const cache::CacheStats &cs = rep.aggregate.cache;
        std::cout << "hot cache: " << cs.hits << " hits / "
                  << cs.misses << " misses (hit rate "
                  << cs.hitRate() * 100.0 << "%), "
                  << cs.admissionHits
                  << " ops completed at admission, "
                  << cs.writebackCoalesced
                  << " write-backs coalesced\n\n";
    }
    std::cout
              << "the server saw only per-shard uniform path traffic; "
                 "which session asked\nfor which key — and whether "
                 "two sessions hit the same key — stays hidden\n"
                 "inside the coalesced windows.\n";
    return 0;
}
