/**
 * @file
 * XLM-R-style NLP embedding training over an XNLI-like token stream
 * (paper §VII: 262,144-entry vocabulary, 4 KiB rows).
 *
 * Sentences are synthesized as Zipf-distributed token sequences; each
 * "sentence" trains the embedding rows of its tokens through the
 * oblivious LAORAM path, using the two-stage pipeline so the
 * preprocessing of the next window overlaps the current one — and the
 * report shows it vanishing from the critical path (§VIII-A).
 */

#include <cstring>
#include <iostream>
#include <vector>

#include "core/laoram_client.hh"
#include "core/pipeline.hh"
#include "serve/serve.hh"
#include "util/cli.hh"
#include "workload/xnli_synth.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("xlmr_xnli",
                   "XLM-R-like embedding training over LAORAM");
    auto vocab = args.addUint("vocab", "vocabulary size", 1 << 15);
    auto tokens = args.addUint("tokens", "training tokens", 65536);
    auto superblock = args.addUint("superblock", "LAORAM S", 8);
    auto window = args.addUint("window", "pipeline window (tokens)",
                               4096);
    args.parse(argc, argv);

    std::cout << "XLM-R/XNLI-like training through LAORAM (fat tree, "
                 "S=" << *superblock << ")\n"
              << "vocab " << *vocab << ", " << *tokens
              << " training tokens\n\n";

    // Token stream: Zipf over the vocabulary, like natural language.
    workload::XnliParams xp;
    xp.vocabSize = *vocab;
    xp.accesses = *tokens;
    xp.seed = 5;
    const auto trace = workload::makeXnliTrace(xp);

    // Each vocabulary row is a small float vector stored obliviously.
    constexpr std::uint64_t kDim = 16;
    core::LaoramConfig lcfg;
    lcfg.base.numBlocks = *vocab;
    lcfg.base.blockBytes = 4096; // paper row size for accounting
    lcfg.base.payloadBytes = kDim * sizeof(float);
    lcfg.base.profile = oram::BucketProfile::fat(4);
    lcfg.base.seed = 6;
    lcfg.superblockSize = *superblock;
    core::Laoram oram(lcfg);

    // "Training": each touch nudges the token's row toward a running
    // context vector — a word2vec-flavoured update that exercises
    // read-modify-write on every fetched row.
    std::vector<float> context(kDim, 0.0f);
    std::uint64_t touches = 0;
    oram.setTouchCallback([&](oram::BlockId id,
                              std::vector<std::uint8_t> &payload) {
        float row[kDim];
        std::memcpy(row, payload.data(), sizeof(row));
        for (std::uint64_t i = 0; i < kDim; ++i) {
            const float target =
                context[i] + static_cast<float>(id % 7) * 0.01f;
            row[i] += 0.05f * (target - row[i]);
            context[i] = 0.99f * context[i] + 0.01f * row[i];
        }
        std::memcpy(payload.data(), row, sizeof(row));
        ++touches;
    });

    // Two-stage pipeline: preprocess window i+1 while serving i.
    const auto rep = serve::serve(
        oram, trace.accesses,
        core::PipelineConfig{}.withWindowAccesses(*window));

    const auto &c = oram.meter().counters();
    std::cout << "windows:               " << rep.windows << "\n"
              << "row touches:           " << touches << "\n"
              << "pathReads per token:   " << c.pathReadsPerAccess()
              << "  (Zipf reuse collapses far below 1.0)\n"
              << "dummyReads per token:  " << c.dummyReadsPerAccess()
              << "\n"
              << "stash peak:            " << c.stashPeak << "\n\n"
              << "pipeline (modeled):  serial " << rep.serialNs / 1e6
              << " ms vs pipelined " << rep.pipelinedNs / 1e6
              << " ms, " << rep.prepHiddenFraction * 100.0
              << "% of hideable preprocessing hidden\n"
              << "pipeline (measured): wall " << rep.wallTotalNs / 1e6
              << " ms, serve-thread stalls " << rep.wallStallNs / 1e6
              << " ms, " << rep.measuredPrepHiddenFraction * 100.0
              << "% hidden (paper: entirely off the critical path)\n";
    return 0;
}
