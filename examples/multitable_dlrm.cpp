/**
 * @file
 * Full-model DLRM: all 26 Criteo-like embedding tables protected by
 * LAORAM — either one tree, or hash/table-sharded across several.
 *
 * The paper evaluates its largest table; a deployment must hide *all*
 * table accesses — otherwise which-table-was-touched leaks which
 * categorical feature fired. Flattening every table into a single
 * block space (train::TableSet) makes cross-table patterns mutually
 * indistinguishable, and the look-ahead preprocessor coalesces the
 * per-sample 26-row gather into superblocks almost perfectly: a
 * sample's rows are consecutive in the future stream, which is
 * exactly what a bin is.
 *
 * With --shards N, TableSet::shardPlan routes whole tables onto N
 * independent LAORAM trees (big tables spread first), and a pool of
 * serving threads trains all shards concurrently — each shard with
 * its own two-stage pipeline.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "cache/cache_cli.hh"
#include "core/laoram_client.hh"
#include "core/sharded_laoram.hh"
#include "obs/obs_cli.hh"
#include "obs/run_report.hh"
#include "oram/path_oram.hh"
#include "storage/storage_cli.hh"
#include "train/table_set.hh"
#include "util/cli.hh"
#include "workload/dlrm_multi.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("multitable_dlrm",
                   "26-table DLRM behind sharded LAORAM trees");
    auto largest = args.addUint("largest", "rows of the biggest table",
                                1 << 15);
    auto samples = args.addUint("samples", "training samples", 4096);
    auto epochs = args.addUint("epochs", "training epochs", 3);
    auto shards = args.addUint("shards", "ORAM trees (tables routed "
                                         "by shardPlan)",
                               4);
    auto prepThreads = args.addUint(
        "prep-threads",
        "preprocessor threads per shard pipeline (determinism holds "
        "for any value)",
        1);
    auto prepBudget = args.addUint(
        "prep-budget",
        "total preprocessor-thread budget split over the serving "
        "pool (0 = use --prep-threads per shard)",
        0);
    const auto storageArgs =
        storage::addStorageArgs(args, "multitable_dlrm.tree");
    const auto cacheArgs = cache::addCacheArgs(args);
    const auto obsArgs = obs::addObsArgs(args);
    args.parse(argc, argv);

    // Activated before any ORAM traffic; destroyed after the engines
    // (quiesced recorders), flushing metrics/trace outputs.
    const obs::ObsConfig obsCfg = obs::obsConfigFromArgs(obsArgs);
    obs::ObsSession obsSession(obsCfg);

    const train::TableSet tables =
        train::TableSet::criteoLike(*largest);
    std::cout << "model: " << tables.numTables()
              << " embedding tables, " << tables.totalBlocks()
              << " total rows (largest " << tables.tableRows(0)
              << ")\n";

    // One trace = `epochs` passes over the training set; per sample
    // one lookup in every table.
    workload::DlrmMultiParams dp;
    dp.samples = *samples;
    std::vector<oram::BlockId> trace;
    for (std::uint64_t e = 0; e < *epochs; ++e) {
        dp.seed = 100 + e;
        const auto epoch = workload::makeDlrmMultiTrace(tables, dp);
        trace.insert(trace.end(), epoch.accesses.begin(),
                     epoch.accesses.end());
    }
    std::cout << "trace: " << trace.size() << " row accesses ("
              << *samples << " samples x " << tables.numTables()
              << " tables x " << *epochs << " epochs)\n\n";

    // LAORAM with S = 8, sharded: whole tables are routed to shards
    // (balanced by rows), every shard is its own tree + two-stage
    // pipeline, and the serving pool trains all shards concurrently.
    const auto numShards =
        static_cast<std::uint32_t>(std::max<std::uint64_t>(*shards, 1));
    core::ShardedLaoramConfig scfg;
    scfg.engine.base.numBlocks = tables.totalBlocks();
    scfg.engine.base.blockBytes = 128;
    scfg.engine.base.profile = oram::BucketProfile::fat(4);
    scfg.engine.base.seed = 7;
    // Each shard tree derives its own backing file from this path
    // (shardEngineConfig suffixes the shard seed); the checkpoint
    // sidecar follows the same rule, with the ShardedLaoram manifest
    // at the unsuffixed base path.
    scfg.engine.base.storage = storage::storageConfigFromArgs(
        storageArgs, &scfg.engine.base.checkpoint);
    scfg.engine.superblockSize = 8;
    scfg.engine.batchAccesses = tables.numTables() * 16; // 16 samples
    // Optional trusted-client hot-row cache. The cache accelerates
    // payload service, so enabling it switches this (otherwise
    // metadata-only) simulation to carrying real embedding rows.
    scfg.engine.cache = cache::cacheConfigFromArgs(cacheArgs);
    if (scfg.engine.cache.enabled())
        scfg.engine.base.payloadBytes = 64;
    scfg.numShards = numShards;
    // Window sized for the per-shard sub-trace (~1/numShards of the
    // stream): each shard pipeline needs several windows to overlap
    // preprocessing with serving.
    scfg.pipeline.windowAccesses = std::max<std::uint64_t>(
        tables.numTables() * *samples / (4 * numShards), 1);
    scfg.pipeline.prepThreads =
        std::max<std::uint64_t>(*prepThreads, 1);
    scfg.prepThreadBudget = static_cast<std::uint32_t>(*prepBudget);

    const auto plan = tables.shardPlan(numShards);
    core::ShardedLaoram laoram(
        scfg, core::ShardSplitter::fromAssignment(
                  tables.blockShardAssignment(plan), numShards));
    if (scfg.engine.base.checkpoint.restore) {
        std::cout << "restored " << numShards
                  << "-shard trusted state from "
                  << scfg.engine.base.checkpoint.path
                  << " (manifest + per-shard sidecars)\n";
    }

    const auto rep = laoram.runTrace(trace);
    if (!obsCfg.reportJson.empty())
        obs::writeRunReportJson(obsCfg.reportJson, rep);

    // Durable shutdown: manifest at the base path, one engine sidecar
    // per shard tree, so a --restore --storage-keep run resumes the
    // trained store.
    if (!scfg.engine.base.checkpoint.path.empty()) {
        laoram.checkpointToFile(scfg.engine.base.checkpoint.path);
        std::cout << "checkpointed sharded trusted state to "
                  << scfg.engine.base.checkpoint.path << "\n";
    }

    std::cout << "sharding: " << numShards
              << " trees; tables per shard:";
    for (std::uint32_t s = 0; s < numShards; ++s) {
        std::uint64_t count = 0;
        for (std::uint32_t p : plan)
            count += p == s ? 1 : 0;
        std::cout << " " << count;
    }
    std::cout << "\npipeline: " << rep.aggregate.windows
              << " windows over " << numShards << " shard pipelines ("
              << laoram.effectiveShardPipeline().prepThreads
              << " prep threads each, reorder stall "
              << rep.aggregate.wallReorderStallNs / 1e6
              << " ms), measured prep hidden "
              << rep.aggregate.measuredPrepHiddenFraction * 100.0
              << "% (modeled "
              << rep.aggregate.prepHiddenFraction * 100.0 << "%)\n";
    for (std::uint32_t s = 0; s < numShards; ++s) {
        std::cout << "  shard " << s << ": "
                  << laoram.splitter().shardBlocks(s) << " rows, "
                  << rep.shards[s].accesses << " accesses, sim "
                  << rep.shards[s].simNs / 1e6 << " ms\n";
    }
    if (scfg.engine.cache.enabled()) {
        std::cout << "hot cache: " << rep.aggregate.cache.hits
                  << " hits / " << rep.aggregate.cache.misses
                  << " misses (hit rate "
                  << rep.aggregate.cache.hitRate() * 100.0 << "%), "
                  << rep.aggregate.cache.evictions
                  << " evictions across " << numShards
                  << " shard caches — server traffic unchanged\n";
    }

    const auto hist = tables.accessHistogram(trace);
    const auto hottest =
        std::max_element(hist.begin(), hist.end()) - hist.begin();
    std::cout << "per-table traffic: table " << hottest << " peaks at "
              << hist[hottest] << " of " << trace.size()
              << " accesses — indistinguishable on the wire\n";

    oram::EngineConfig pcfg = scfg.engine.base;
    pcfg.profile = oram::BucketProfile::uniform(4);
    // The throwaway baseline is a DRAM comparison run, never a
    // durable store: no tree file at the (unsuffixed) base path to
    // collide with across --storage-keep runs, and no checkpoint —
    // the sidecar at the base path is the *sharded manifest*, not an
    // engine snapshot. Simulated-time numbers are backend-invariant.
    pcfg.storage = {};
    pcfg.checkpoint = {};
    oram::PathOram baseline(pcfg);
    baseline.runTrace(trace);

    const auto lc = laoram.totalCounters();
    std::cout << "LAORAM x" << numShards
              << ": pathReads/access=" << lc.pathReadsPerAccess()
              << " dummy/access=" << lc.dummyReadsPerAccess()
              << " simMs=" << laoram.simNs() / 1e6
              << " (concurrent shards)\n";
    const auto &pc = baseline.meter().counters();
    std::cout << "PathORAM : pathReads/access="
              << pc.pathReadsPerAccess()
              << " simMs=" << baseline.meter().clock().milliseconds()
              << "\n";
    std::cout << "\nspeedup protecting the FULL model: "
              << baseline.meter().clock().nanoseconds()
                     / laoram.simNs()
              << "x\n"
              << "\nNote how sample-aligned gathers make look-ahead "
                 "binning especially\neffective: the 26 rows of a "
                 "sample are adjacent in the future stream,\nso "
                 "whole samples collapse onto a handful of paths — "
                 "and table-sharding\nsplits that stream over "
                 "independent trees serving in parallel.\n";
    return 0;
}
