/**
 * @file
 * Full-model DLRM: all 26 Criteo-like embedding tables protected by
 * ONE LAORAM tree.
 *
 * The paper evaluates its largest table; a deployment must hide *all*
 * table accesses — otherwise which-table-was-touched leaks which
 * categorical feature fired. Flattening every table into a single
 * block space (train::TableSet) makes cross-table patterns mutually
 * indistinguishable, and the look-ahead preprocessor coalesces the
 * per-sample 26-row gather into superblocks almost perfectly: a
 * sample's rows are consecutive in the future stream, which is
 * exactly what a bin is.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/laoram_client.hh"
#include "core/pipeline.hh"
#include "oram/path_oram.hh"
#include "train/table_set.hh"
#include "util/cli.hh"
#include "workload/dlrm_multi.hh"

using namespace laoram;

int
main(int argc, char **argv)
{
    ArgParser args("multitable_dlrm",
                   "26-table DLRM behind a single LAORAM tree");
    auto largest = args.addUint("largest", "rows of the biggest table",
                                1 << 15);
    auto samples = args.addUint("samples", "training samples", 4096);
    auto epochs = args.addUint("epochs", "training epochs", 3);
    args.parse(argc, argv);

    const train::TableSet tables =
        train::TableSet::criteoLike(*largest);
    std::cout << "model: " << tables.numTables()
              << " embedding tables, " << tables.totalBlocks()
              << " total rows (largest " << tables.tableRows(0)
              << ")\n";

    // One trace = `epochs` passes over the training set; per sample
    // one lookup in every table.
    workload::DlrmMultiParams dp;
    dp.samples = *samples;
    std::vector<oram::BlockId> trace;
    for (std::uint64_t e = 0; e < *epochs; ++e) {
        dp.seed = 100 + e;
        const auto epoch = workload::makeDlrmMultiTrace(tables, dp);
        trace.insert(trace.end(), epoch.accesses.begin(),
                     epoch.accesses.end());
    }
    std::cout << "trace: " << trace.size() << " row accesses ("
              << *samples << " samples x " << tables.numTables()
              << " tables x " << *epochs << " epochs)\n\n";

    // LAORAM with S = 8: a 26-row sample spans ~3-4 bins. All 26
    // tables flow through ONE concurrent two-stage pipeline: the
    // preprocessor thread bins upcoming samples (across every table)
    // while the serving thread trains the current window.
    core::LaoramConfig lcfg;
    lcfg.base.numBlocks = tables.totalBlocks();
    lcfg.base.blockBytes = 128;
    lcfg.base.profile = oram::BucketProfile::fat(4);
    lcfg.base.seed = 7;
    lcfg.superblockSize = 8;
    lcfg.batchAccesses = tables.numTables() * 16; // 16-sample batches
    core::Laoram laoram(lcfg);

    core::PipelineConfig pcfg2;
    pcfg2.windowAccesses =
        std::max<std::uint64_t>(tables.numTables() * *samples / 4, 1);
    core::BatchPipeline pipe(laoram, pcfg2);
    const auto rep = pipe.run(trace);

    const auto hist = tables.accessHistogram(trace);
    const auto hottest =
        std::max_element(hist.begin(), hist.end()) - hist.begin();
    std::cout << "pipeline: " << rep.windows
              << " windows, measured prep hidden "
              << rep.measuredPrepHiddenFraction * 100.0
              << "% (modeled " << rep.prepHiddenFraction * 100.0
              << "%)\n"
              << "per-table traffic: table " << hottest << " peaks at "
              << hist[hottest] << " of " << trace.size()
              << " accesses — indistinguishable on the wire\n";

    oram::EngineConfig pcfg = lcfg.base;
    pcfg.profile = oram::BucketProfile::uniform(4);
    oram::PathOram baseline(pcfg);
    baseline.runTrace(trace);

    const auto &lc = laoram.meter().counters();
    std::cout << "LAORAM   : pathReads/access="
              << lc.pathReadsPerAccess()
              << " dummy/access=" << lc.dummyReadsPerAccess()
              << " simMs=" << laoram.meter().clock().milliseconds()
              << "\n";
    const auto &pc = baseline.meter().counters();
    std::cout << "PathORAM : pathReads/access="
              << pc.pathReadsPerAccess()
              << " simMs=" << baseline.meter().clock().milliseconds()
              << "\n";
    std::cout << "\nspeedup protecting the FULL model: "
              << baseline.meter().clock().nanoseconds()
                     / laoram.meter().clock().nanoseconds()
              << "x\n"
              << "\nNote how sample-aligned gathers make look-ahead "
                 "binning especially\neffective: the 26 rows of a "
                 "sample are adjacent in the future stream,\nso "
                 "whole samples collapse onto a handful of paths.\n";
    return 0;
}
