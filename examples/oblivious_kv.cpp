/**
 * @file
 * A generic oblivious key-value store built on the library's ORAM
 * engines — demonstrating that the substrate is reusable beyond
 * embedding training.
 *
 * Stores string values (up to one block) under integer keys with
 * ChaCha20 encryption at rest; an interactive-style scripted session
 * shows puts/gets while printing what the untrusted server actually
 * observes (uniform path traffic, nothing else).
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "cache/cache_cli.hh"
#include "core/pipeline.hh"
#include "obs/obs_cli.hh"
#include "obs/run_report.hh"
#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "serve/serve.hh"
#include "storage/storage_cli.hh"
#include "util/cli.hh"
#include "util/rng.hh"

using namespace laoram;

namespace {

/** Thin typed wrapper over an ORAM engine. */
class ObliviousKv
{
  public:
    ObliviousKv(oram::OramEngine &engine, std::uint64_t valueBytes)
        : engine(engine), valueBytes(valueBytes)
    {
    }

    void
    put(std::uint64_t key, const std::string &value)
    {
        std::vector<std::uint8_t> buf(valueBytes, 0);
        const std::size_t n =
            std::min<std::size_t>(value.size(), valueBytes - 1);
        std::copy_n(value.begin(), n, buf.begin());
        engine.writeBlock(key, buf);
    }

    std::string
    get(std::uint64_t key)
    {
        std::vector<std::uint8_t> buf;
        engine.readBlock(key, buf);
        return std::string(reinterpret_cast<const char *>(buf.data()));
    }

  private:
    oram::OramEngine &engine;
    std::uint64_t valueBytes;
};

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("oblivious_kv",
                   "Encrypted, access-pattern-hiding KV store demo");
    auto keys = args.addUint("keys", "key-space size", 1024);
    auto ring = args.addFlag("ring", "use RingORAM instead of "
                                     "PathORAM");
    auto bulk = args.addUint(
        "bulk",
        "after the session, obliviously scan this many random keys "
        "through a look-ahead LAORAM pipeline (0 = skip)",
        0);
    auto prepThreads = args.addUint(
        "prep-threads",
        "preprocessor threads for the --bulk pipeline (results are "
        "byte-identical for any value)",
        2);
    const auto storageArgs =
        storage::addStorageArgs(args, "oblivious_kv.tree");
    const auto cacheArgs = cache::addCacheArgs(args);
    const auto obsArgs = obs::addObsArgs(args);
    args.parse(argc, argv);

    // Activated before any ORAM traffic; the destructor (after every
    // engine below is gone, so recorders are quiesced) flushes the
    // metrics/trace outputs.
    const obs::ObsConfig obsCfg = obs::obsConfigFromArgs(obsArgs);
    obs::ObsSession obsSession(obsCfg);

    constexpr std::uint64_t kValueBytes = 48;

    oram::EngineConfig cfg;
    cfg.numBlocks = *keys;
    cfg.blockBytes = 64;
    cfg.payloadBytes = kValueBytes;
    cfg.encrypt = true;
    cfg.seed = 1337;
    cfg.storage =
        storage::storageConfigFromArgs(storageArgs, &cfg.checkpoint);

    std::unique_ptr<oram::OramEngine> engine;
    if (*ring) {
        oram::RingOramConfig rcfg;
        rcfg.base = cfg;
        engine = std::make_unique<oram::RingOram>(rcfg);
    } else {
        engine = std::make_unique<oram::PathOram>(cfg);
    }
    std::cout << "oblivious KV over " << engine->name() << ", " << *keys
              << " keys, ChaCha20 at rest, tree on "
              << storage::backendKindName(cfg.storage.kind) << "\n\n";

    ObliviousKv kv(*engine, kValueBytes);

    // A restored run proves durability before the session writes
    // anything: the value survives from the previous process's
    // checkpoint (tree file + trusted-state sidecar).
    if (cfg.checkpoint.restore) {
        std::cout << "restored trusted client state from "
                  << cfg.checkpoint.path << "\nget(7)  -> \""
                  << kv.get(7) << "\" (from the previous run)\n\n";
    }

    // A scripted session.
    kv.put(7, "the user watched: comedies");
    kv.put(42, "the user watched: politics");
    kv.put(7, "the user watched: comedies, superheroes");
    std::cout << "get(7)  -> \"" << kv.get(7) << "\"\n";
    std::cout << "get(42) -> \"" << kv.get(42) << "\"\n";
    std::cout << "get(99) -> \"" << kv.get(99)
              << "\" (never written: zeros)\n\n";

    // What did the adversary see? Only path-shaped traffic.
    engine->meter().printSummary(std::cout, "server view");
    std::cout << "\nSix logical operations became "
              << engine->meter().counters().blocksRead
              << " uniformly distributed block reads — the access "
                 "pattern reveals\nneither keys, nor values, nor "
                 "whether operations repeat (Section VI).\n";

    // Durable shutdown: snapshot the trusted client state next to the
    // persistent tree so a later --restore run resumes this store.
    if (!cfg.checkpoint.path.empty()) {
        engine->checkpointToFile(cfg.checkpoint.path);
        std::cout << "\ncheckpointed trusted client state to "
                  << cfg.checkpoint.path
                  << " (restore with --restore --storage-keep)\n";
    }

    // Optional bulk phase: a batch read-heavy workload (cache warmup,
    // export, audit scan) served through the look-ahead pipeline —
    // the same substrate that trains embedding tables. The
    // preprocessor pool plus the deterministic reorder stage keep the
    // served bytes identical for any --prep-threads value.
    if (*bulk > 0) {
        core::LaoramConfig lcfg;
        lcfg.base = cfg;
        // Separate store for the scan demo: the session engine above
        // owns the primary tree (and its backing file, if any). An
        // empty path (DRAM, or a DRAM-backed remote node) stays
        // empty — no stray ".bulk" file.
        if (!lcfg.base.storage.path.empty())
            lcfg.base.storage.path += ".bulk";
        lcfg.superblockSize = 4;
        lcfg.lookaheadWindow = std::max<std::uint64_t>(*bulk / 8, 1);
        // Optional trusted-client hot-row cache: repeated keys in the
        // scan are served from client DRAM while the scheduled dummy
        // accesses keep the server-visible trace unchanged.
        lcfg.cache = cache::cacheConfigFromArgs(cacheArgs);
        core::Laoram scanEngine(lcfg);

        Rng rng(4242);
        std::vector<oram::BlockId> scan;
        scan.reserve(*bulk);
        for (std::uint64_t i = 0; i < *bulk; ++i)
            scan.push_back(rng.nextBounded(*keys));

        const auto rep = serve::serve(
            scanEngine, scan,
            core::PipelineConfig{}
                .withWindowAccesses(lcfg.lookaheadWindow)
                .withPrepThreads(
                    std::max<std::uint64_t>(*prepThreads, 1)));

        std::cout << "\nbulk oblivious scan: " << *bulk
                  << " reads in " << rep.wallTotalNs / 1e6
                  << " ms wall (" << rep.prepThreads
                  << " prep threads, prep hidden "
                  << rep.measuredPrepHiddenFraction * 100.0
                  << "%, reorder stall "
                  << rep.wallReorderStallNs / 1e6 << " ms)\n";
        for (std::size_t t = 0; t < rep.prepThreadUtilization.size();
             ++t) {
            std::cout << "  prep thread " << t << ": "
                      << rep.prepThreadWindows[t] << " windows, "
                      << rep.prepThreadUtilization[t] * 100.0
                      << "% busy\n";
        }
        if (lcfg.cache.enabled()) {
            std::cout << "  hot cache: " << rep.cache.hits
                      << " hits / " << rep.cache.misses
                      << " misses (hit rate "
                      << rep.cache.hitRate() * 100.0 << "%), "
                      << rep.cache.evictions << " evictions — the "
                      << "server-visible trace is unchanged\n";
        }
        if (!obsCfg.reportJson.empty()) {
            const mem::TrafficCounters traffic =
                scanEngine.meter().counters();
            obs::writeRunReportJson(obsCfg.reportJson, rep, &traffic);
        }
    } else if (!obsCfg.reportJson.empty()) {
        // No pipeline ran; the report still carries the session
        // engine's traffic so the adversary-view numbers are scripted.
        const mem::TrafficCounters traffic =
            engine->meter().counters();
        obs::writeRunReportJson(obsCfg.reportJson,
                                core::PipelineReport{}, &traffic);
    }
    return 0;
}
