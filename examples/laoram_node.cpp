/**
 * @file
 * laoram_node — a standalone untrusted storage node.
 *
 * Serves one ORAM tree's slot records over the remote-KV wire
 * protocol on a TCP or UNIX-domain listener, so a trusted client
 * (any example/bench with --storage=remote --remote-endpoint, or a
 * ShardedLaoram with per-shard endpoints) runs against a real
 * out-of-process server — the paper's deployment split.
 *
 * The node is geometry-checked, not configured from the client: it
 * derives slots/recordBytes from the same --blocks/--block-bytes/
 * --payload knobs the client's engine uses (plus --encrypt for the
 * persisted-meta capacity), and the Hello handshake rejects a client
 * whose engine disagrees. It stores *ciphertext-opaque records and
 * never holds a key* — encryption stays client-side.
 *
 * Quickstart (loopback):
 *
 *   laoram_node --listen 127.0.0.1:7070 --blocks 4096 --payload 64 &
 *   oblivious_kv --keys 4096 --storage=remote \
 *                --remote-endpoint 127.0.0.1:7070
 *
 * SIGTERM/SIGINT drain cleanly: stop accepting, let in-flight
 * responses go out, flush the inner backend (so a persistent node's
 * acked writes are on media), exit 0.
 */

#include <csignal>
#include <iostream>
#include <string>

#include <unistd.h>

#include "crypto/encryptor.hh"
#include "net/node_server.hh"
#include "obs/obs_cli.hh"
#include "oram/tree_geometry.hh"
#include "storage/remote_backend.hh"
#include "storage/storage_cli.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace laoram;

namespace {

/** Written by the signal handler, drained by main's wait loop. */
int gStopPipe[2] = {-1, -1};

void
onStopSignal(int)
{
    const char byte = 1;
    // Best-effort from a signal handler; a full pipe means a stop is
    // already pending.
    (void)!::write(gStopPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("laoram_node",
                   "standalone remote-KV storage node serving one "
                   "ORAM tree over TCP or a UNIX-domain socket");
    auto listenTcp = args.addString(
        "listen", "bind a TCP listener at host:port (port 0 = "
                  "ephemeral, printed at startup)",
        "");
    auto listenUds = args.addString(
        "listen-uds", "bind a UNIX-domain stream listener at this "
                      "path (stale socket files are reclaimed)",
        "");
    auto blocks = args.addUint(
        "blocks", "logical blocks of the served tree (must match the "
                  "client engine's numBlocks)",
        1024);
    auto blockBytes = args.addUint(
        "block-bytes", "logical block size the tree geometry is "
                       "derived from",
        128);
    auto payload = args.addUint(
        "payload", "physically stored payload bytes per block (the "
                   "client engine's payloadBytes)",
        0);
    auto bucketZ = args.addUint(
        "bucket-z", "slots per tree bucket (the client engine's "
                    "uniform bucket profile)",
        4);
    auto encrypt = args.addFlag(
        "encrypt", "size the persisted-meta region for a client that "
                   "encrypts at rest (the node never sees a key)");
    auto path = args.addString(
        "storage-path", "backing file for a persistent (mmap) tree; "
                        "empty = serve from DRAM",
        "");
    auto durability = args.addString(
        "storage-durability",
        "mmap flush policy: buffered | async | sync", "buffered");
    auto keep = args.addFlag(
        "storage-keep", "reopen an existing compatible tree file "
                        "instead of re-initialising it");
    auto latencyUs = args.addUint(
        "latency-us", "shaped per-RPC service latency in "
                      "microseconds",
        0);
    auto mbps = args.addUint(
        "mbps", "shaped link bandwidth in MB/s (0 = unlimited)", 0);
    const auto obsArgs = obs::addObsArgs(args);
    args.parse(argc, argv);

    const obs::ObsConfig obsCfg = obs::obsConfigFromArgs(obsArgs);
    obs::ObsSession obsSession(obsCfg);

    if (listenTcp->empty() == listenUds->empty())
        LAORAM_FATAL("pass exactly one of --listen host:port or "
                     "--listen-uds path");
    net::Endpoint ep;
    std::string error;
    const std::string spec = listenUds->empty()
                                 ? *listenTcp
                                 : "unix:" + *listenUds;
    if (!net::parseEndpoint(spec, &ep, &error))
        LAORAM_FATAL(error);

    // The node stores exactly what a client engine with the same
    // geometry knobs would store: header + payload per record, one
    // slot per bucket position, plus the persisted-meta region an
    // encrypting client needs for its epoch table.
    constexpr std::uint64_t kRecordHeaderBytes = 16; // id + leaf
    const oram::TreeGeometry geom(
        *blocks, *blockBytes, oram::BucketProfile::uniform(*bucketZ));
    const std::uint64_t slots = geom.totalSlots();
    const std::uint64_t recordBytes = kRecordHeaderBytes + *payload;
    const std::uint64_t metaBytes =
        *encrypt ? slots * sizeof(std::uint32_t)
                       + crypto::kKeyCheckBytes
                 : 0;

    storage::StorageConfig scfg;
    scfg.kind = path->empty() ? storage::BackendKind::Dram
                              : storage::BackendKind::MmapFile;
    scfg.path = *path;
    scfg.keepExisting = *keep;
    if (*durability == "buffered")
        scfg.durability = storage::Durability::Buffered;
    else if (*durability == "async")
        scfg.durability = storage::Durability::Async;
    else if (*durability == "sync")
        scfg.durability = storage::Durability::Sync;
    else
        LAORAM_FATAL("unknown --storage-durability '", *durability,
                     "' (expected buffered, async or sync)");
    if (*keep && path->empty())
        LAORAM_FATAL("--storage-keep requires --storage-path (a DRAM "
                     "node has nothing to keep)");

    storage::RemoteKvConfig shaping;
    shaping.latencyNs = static_cast<std::int64_t>(*latencyUs) * 1000;
    shaping.bytesPerSec = *mbps * 1000 * 1000;

    storage::RemoteKvServer server(
        storage::makeBackend(scfg, slots, recordBytes, metaBytes),
        shaping);

    if (::pipe(gStopPipe) != 0)
        LAORAM_FATAL("cannot create the shutdown pipe");
    std::signal(SIGTERM, onStopSignal);
    std::signal(SIGINT, onStopSignal);

    try {
        net::NodeListener listener(server, ep);
        std::cout << "laoram_node serving " << slots << " slots x "
                  << recordBytes << " B ("
                  << (scfg.path.empty() ? "dram"
                                        : "mmap:" + scfg.path)
                  << (server.inner().openedExisting() ? ", reopened"
                                                      : "")
                  << ") on " << listener.endpoint().str()
                  << std::endl;

        // Park until SIGTERM/SIGINT; connections are served by the
        // listener's accept thread + per-connection service threads.
        char byte = 0;
        while (::read(gStopPipe[0], &byte, 1) < 0 && errno == EINTR) {
        }

        inform("laoram_node draining: no new connections, in-flight "
               "responses completing, backend flushing");
        listener.stop();
    } catch (const std::runtime_error &e) {
        LAORAM_FATAL(e.what());
    }
    server.drain();
    inform("laoram_node exited cleanly");
    return 0;
}
