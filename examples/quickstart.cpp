/**
 * @file
 * Quickstart: the LAORAM library in ~5 minutes.
 *
 *  1. store data obliviously in PathORAM (the baseline),
 *  2. run a training-style trace through LAORAM and watch the
 *     look-ahead collapse path reads,
 *  3. read the traffic meters.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>
#include <vector>

#include "core/laoram_client.hh"
#include "oram/path_oram.hh"
#include "workload/kaggle_synth.hh"

using namespace laoram;

int
main()
{
    std::cout << "== 1. PathORAM as an oblivious block store ==\n";

    // 4096 blocks of 64 payload bytes, ChaCha20-encrypted at rest.
    oram::EngineConfig cfg;
    cfg.numBlocks = 4096;
    cfg.blockBytes = 128;  // logical size used for traffic accounting
    cfg.payloadBytes = 64; // bytes physically stored per block
    cfg.encrypt = true;
    cfg.seed = 42;
    oram::PathOram store(cfg);

    // Writes and reads look like a plain KV store...
    std::vector<std::uint8_t> secret(64, 0xAB);
    store.writeBlock(/*id=*/1234, secret);
    std::vector<std::uint8_t> out;
    store.readBlock(1234, out);
    std::cout << "round trip ok: " << (out == secret ? "yes" : "NO")
              << "\n";

    // ...but the server only ever sees uniformly random tree paths.
    store.meter().printSummary(std::cout, "pathoram");

    std::cout << "\n== 2. LAORAM: look-ahead superblocks ==\n";

    // A Kaggle-like embedding trace, repeated for two epochs so the
    // look-ahead has a future to exploit.
    workload::KaggleParams kp;
    kp.numBlocks = 4096;
    kp.accesses = 16384;
    kp.hotSetSize = 256;
    kp.seed = 7;
    auto trace = workload::makeKaggleTrace(kp).accesses;
    auto epoch2 = trace;
    trace.insert(trace.end(), epoch2.begin(), epoch2.end());

    core::LaoramConfig lcfg;
    lcfg.base = cfg;
    lcfg.base.encrypt = false; // pattern-level demo
    lcfg.base.payloadBytes = 0;
    lcfg.base.profile = oram::BucketProfile::fat(4); // Section V tree
    lcfg.superblockSize = 4;
    core::Laoram laoram(lcfg);

    laoram.runTrace(trace);
    laoram.meter().printSummary(std::cout, "laoram  ");

    const auto &c = laoram.meter().counters();
    std::cout << "bins formed: " << laoram.binsFormed()
              << ", path reads per access: "
              << c.pathReadsPerAccess()
              << " (PathORAM would need exactly 1.0)\n";

    std::cout << "\n== 3. comparing simulated runtimes ==\n";
    oram::EngineConfig pcfg = lcfg.base;
    pcfg.profile = oram::BucketProfile::uniform(4);
    oram::PathOram baseline(pcfg);
    baseline.runTrace(trace);

    const double speedup = baseline.meter().clock().nanoseconds()
        / laoram.meter().clock().nanoseconds();
    std::cout << "LAORAM(fat, S=4) speedup over PathORAM on this "
                 "trace: "
              << speedup << "x\n"
              << "\nNext: see examples/dlrm_kaggle.cpp for a full "
                 "training loop and\nbench/ for every paper figure."
              << std::endl;
    return 0;
}
