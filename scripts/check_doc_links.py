#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Walks every tracked ``*.md`` file and verifies that relative links
resolve: the target file must exist, and when a link carries a
``#fragment`` pointing into a Markdown file, a matching heading must
exist (GitHub-style anchor derivation). External links (http/https/
mailto) are not fetched — CI must not depend on the network.

Exit status: 0 when every link resolves, 1 otherwise (each dead link
is reported as ``file:line: message``).
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others",
         "--exclude-standard", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return sorted(set(line for line in out.stdout.splitlines() if line))


def github_anchor(heading):
    """GitHub's anchor derivation: lowercase, drop punctuation,
    spaces to hyphens (inline code/emphasis markers stripped)."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    anchors = set()
    seen_count = {}
    with open(path, encoding="utf-8") as fh:
        in_code = False
        for line in fh:
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            m = HEADING_RE.match(line)
            if m:
                base = github_anchor(m.group(1))
                # GitHub suffixes repeated headings: #x, #x-1, #x-2...
                n = seen_count.get(base, 0)
                anchors.add(base if n == 0 else f"{base}-{n}")
                seen_count[base] = n + 1
    return anchors


def check(root):
    errors = []
    anchor_cache = {}
    for rel in tracked_markdown(root):
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            continue  # deleted but still listed in a dirty tree
        with open(path, encoding="utf-8") as fh:
            in_code = False
            for lineno, line in enumerate(fh, start=1):
                if line.lstrip().startswith("```"):
                    in_code = not in_code
                    continue
                if in_code:
                    continue
                for m in LINK_RE.finditer(line):
                    target = m.group(1)
                    if target.startswith(EXTERNAL):
                        continue
                    target, _, fragment = target.partition("#")
                    if target:
                        dest = os.path.normpath(os.path.join(
                            os.path.dirname(path), target))
                        if not os.path.exists(dest):
                            errors.append(
                                f"{rel}:{lineno}: dead link "
                                f"'{m.group(1)}' ({target} not found)")
                            continue
                    else:
                        dest = path  # intra-file #fragment
                    if fragment and dest.endswith(".md"):
                        if dest not in anchor_cache:
                            anchor_cache[dest] = anchors_of(dest)
                        if fragment not in anchor_cache[dest]:
                            errors.append(
                                f"{rel}:{lineno}: dead anchor "
                                f"'#{fragment}' in {os.path.relpath(dest, root)}")
    return errors


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    errors = check(root)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} dead link(s)", file=sys.stderr)
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
