/**
 * @file
 * Streaming latency histogram + the shared latency-report section.
 *
 * Per-request latency percentiles (p50/p99/p999) for the online
 * serving frontend need a sketch that is O(1) per sample, bounded in
 * memory regardless of request count, and mergeable across serving
 * lanes. StreamingHistogram is an HDR-style log-linear histogram:
 * values bucket into power-of-two tiers with kSubBuckets linear
 * sub-buckets each, so the relative quantile error is bounded by
 * 1/kSubBuckets (~3%) at any magnitude from 1 ns to ~2^63 ns.
 *
 * Not internally synchronized: each serving lane records into its own
 * instance and the lanes' histograms are merge()d after the run — the
 * same ownership discipline as the per-lane PipelineReport.
 */

#ifndef LAORAM_UTIL_LATENCY_HISTOGRAM_HH
#define LAORAM_UTIL_LATENCY_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace laoram {

/**
 * The shared latency section of the pipeline reports: request-level
 * wall-clock percentiles next to the existing throughput numbers.
 * All-zero when the run was trace-driven (no per-request timestamps
 * exist; only the session ingress populates it).
 */
struct LatencyReport
{
    std::uint64_t requests = 0; ///< completed requests measured

    double meanNs = 0.0; ///< arithmetic mean request latency
    double p50Ns = 0.0;  ///< median
    double p90Ns = 0.0;
    double p99Ns = 0.0;
    double p999Ns = 0.0; ///< tail the paper's SLO story cares about
    double maxNs = 0.0;  ///< exact observed maximum

    /**
     * Negative-duration samples dropped by record(). Always zero on a
     * healthy run; non-zero means some timing path produced a
     * negative delta (clock misuse, timestamp reordering) and the
     * percentiles above exclude those samples instead of silently
     * counting them as 0 ns.
     */
    std::uint64_t droppedNegative = 0;
};

/** Log-linear streaming histogram over non-negative nanoseconds. */
class StreamingHistogram
{
  public:
    /** Linear sub-buckets per power-of-two tier (2^kSubBucketBits). */
    static constexpr unsigned kSubBucketBits = 5;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;

    StreamingHistogram();

    /**
     * Record one sample. Negative durations are never legal
     * latencies; they are excluded from every statistic and counted
     * in droppedNegative() so the corruption is visible instead of
     * quietly deflating p50 via bucket 0.
     */
    void record(std::int64_t ns);

    /** Fold @p other into this histogram (bucket-wise sum). */
    void merge(const StreamingHistogram &other);

    void reset();

    std::uint64_t count() const { return n; }
    std::uint64_t droppedNegative() const { return nNegative; }
    double sum() const { return total; }
    double mean() const;

    /** Exact extremes (not bucket-quantized). */
    std::int64_t minimum() const { return n ? minNs : 0; }
    std::int64_t maximum() const { return n ? maxNs : 0; }

    /**
     * Approximate p-quantile (0 <= p <= 1), interpolated uniformly
     * inside the landing bucket and clamped to the exact observed
     * [min, max]. Zero when empty.
     */
    double quantile(double p) const;

    /** The standard report section (mean + p50/p90/p99/p999 + max). */
    LatencyReport report() const;

  private:
    static std::size_t bucketIndex(std::uint64_t v);
    static std::uint64_t bucketLow(std::size_t index);
    static std::uint64_t bucketWidth(std::size_t index);

    std::vector<std::uint64_t> counts;
    std::uint64_t n = 0;
    std::uint64_t nNegative = 0;
    double total = 0.0;
    std::int64_t minNs = 0;
    std::int64_t maxNs = 0;
};

} // namespace laoram

#endif // LAORAM_UTIL_LATENCY_HISTOGRAM_HH
