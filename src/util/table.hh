/**
 * @file
 * Console table and CSV emitters used by the benchmark harness to print
 * paper-style rows ("Fat/S4  speedup 1.78x ...") in aligned columns.
 */

#ifndef LAORAM_UTIL_TABLE_HH
#define LAORAM_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace laoram {

/**
 * A simple text table: set headers, append rows of strings (use the
 * cell() helpers for numeric formatting), then print with aligned
 * columns and a rule under the header.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    /** Also emit the same content as CSV (for plotting scripts). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }
    std::size_t columns() const { return header.size(); }

    /** Format a double with @p precision decimals. */
    static std::string cell(double v, int precision = 2);
    static std::string cell(std::uint64_t v);
    /** Format bytes with a human-readable suffix (KiB/MiB/GiB). */
    static std::string bytesCell(std::uint64_t bytes);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace laoram

#endif // LAORAM_UTIL_TABLE_HH
