/**
 * @file
 * Status-message and error-exit helpers, modelled after gem5's
 * panic()/fatal()/warn()/inform() convention.
 *
 * panic()  — an internal invariant was violated; this is a bug in the
 *            library itself. Aborts (may dump core).
 * fatal()  — the *user* asked for something impossible (bad config,
 *            invalid arguments). Exits with status 1.
 * warn()   — something is suspicious but the run can continue.
 * inform() — purely informational progress output.
 */

#ifndef LAORAM_UTIL_LOGGING_HH
#define LAORAM_UTIL_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace laoram {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel : std::uint8_t {
    Quiet = 0,   ///< only panic/fatal
    Warn = 1,    ///< + warnings
    Info = 2,    ///< + inform()
    Debug = 3,   ///< + debug trace output
};

/** Get/set the process-wide log verbosity (default: Info). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Parse a level name ("quiet", "warn", "info", "debug" — case
 * insensitive) or its numeric value ("0".."3") into @p out. Returns
 * false, leaving @p out untouched, on anything else.
 */
bool parseLogLevel(const std::string &text, LogLevel *out);

/** Stable lower-case name for a level ("quiet", "warn", ...). */
const char *logLevelName(LogLevel level);

namespace detail {

/** Emit a formatted message and abort; never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a formatted message and exit(1); never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal bug and abort. Usable from any context. */
#define LAORAM_PANIC(...) \
    ::laoram::detail::panicImpl(__FILE__, __LINE__, \
                                ::laoram::detail::concat(__VA_ARGS__))

/** Report a user error and exit(1). */
#define LAORAM_FATAL(...) \
    ::laoram::detail::fatalImpl(__FILE__, __LINE__, \
                                ::laoram::detail::concat(__VA_ARGS__))

/** Panic unless a library invariant holds. */
#define LAORAM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::laoram::detail::panicImpl(__FILE__, __LINE__, \
                ::laoram::detail::concat("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace laoram

#endif // LAORAM_UTIL_LOGGING_HH
