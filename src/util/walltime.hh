/**
 * @file
 * Shared wall-clock timing vocabulary.
 *
 * All measured (non-simulated) timing in the library uses
 * steady_clock time_points and integer-nanosecond durations until the
 * final report: folding time-since-epoch into a double loses integer
 * precision past 2^53 ns (~104 days of uptime), after which delta
 * quantization corrupts stall/fill accounting. Doubles appear only in
 * report structs.
 */

#ifndef LAORAM_UTIL_WALLTIME_HH
#define LAORAM_UTIL_WALLTIME_HH

#include <chrono>
#include <cstdint>

namespace laoram {

using WallClock = std::chrono::steady_clock;

inline std::int64_t
elapsedNs(WallClock::time_point from, WallClock::time_point to)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               to - from)
        .count();
}

inline std::int64_t
elapsedNs(WallClock::time_point from)
{
    return elapsedNs(from, WallClock::now());
}

} // namespace laoram

#endif // LAORAM_UTIL_WALLTIME_HH
