#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace laoram {

namespace {
constexpr double kPi = 3.14159265358979323846;
} // namespace

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) : _seed(seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[0] + state[3], 23) + state[0];
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    LAORAM_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t threshold = -bound % bound;
        while (l < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    LAORAM_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    std::uint64_t r = (span == 0) ? next() : nextBounded(span);
    return lo + static_cast<std::int64_t>(r);
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (haveSpareGaussian) {
        haveSpareGaussian = false;
        return spareGaussian;
    }
    // Box-Muller: two uniforms -> two independent standard normals.
    double u1 = nextDouble();
    while (u1 <= 0.0)
        u1 = nextDouble();
    const double u2 = nextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * kPi * u2;
    spareGaussian = radius * std::sin(theta);
    haveSpareGaussian = true;
    return radius * std::cos(theta);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0x9e3779b97f4a7c15ULL);
}

void
Rng::save(serde::Serializer &s) const
{
    for (std::uint64_t word : state)
        s.u64(word);
    s.u64(_seed);
    s.u8(haveSpareGaussian ? 1 : 0);
    s.f64(spareGaussian);
}

void
Rng::restore(serde::Deserializer &d)
{
    for (std::uint64_t &word : state)
        word = d.u64();
    _seed = d.u64();
    haveSpareGaussian = d.u8() != 0;
    spareGaussian = d.f64();
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n(n), s(s)
{
    LAORAM_ASSERT(n > 0, "ZipfSampler needs at least one item");
    LAORAM_ASSERT(s > 0.0, "Zipf skew must be positive");
    hImaxq = h(static_cast<double>(n) + 0.5);
    hX0 = h(0.5);
    // t bounds the acceptance test: mass of rank 0 not covered by h.
    t = 2.0 - hInverse(h(1.5) - std::pow(1.0, -s));
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-s: handles the s == 1 singularity with log.
    if (std::abs(s - 1.0) < 1e-12)
        return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double
ZipfSampler::hInverse(double x) const
{
    if (std::abs(s - 1.0) < 1e-12)
        return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
}

std::uint64_t
ZipfSampler::operator()(Rng &rng) const
{
    // Rejection-inversion over the continuous envelope of the Zipf pmf.
    while (true) {
        const double u = hImaxq + rng.nextDouble() * (hX0 - hImaxq);
        const double x = hInverse(u);
        auto k = static_cast<double>(
            static_cast<std::uint64_t>(x + 0.5));
        if (k < 1.0)
            k = 1.0;
        if (k > static_cast<double>(n))
            k = static_cast<double>(n);
        if (k - x <= t || u >= h(k + 0.5) - std::pow(k, -s))
            return static_cast<std::uint64_t>(k) - 1; // 0-based rank
    }
}

GaussianIndexSampler::GaussianIndexSampler(std::uint64_t n, double mean,
                                           double stddev)
    : n(n),
      mu(mean < 0.0 ? static_cast<double>(n) / 2.0 : mean),
      sigma(stddev < 0.0 ? static_cast<double>(n) / 8.0 : stddev)
{
    LAORAM_ASSERT(n > 0, "GaussianIndexSampler needs n > 0");
    LAORAM_ASSERT(sigma > 0.0, "stddev must be positive");
}

std::uint64_t
GaussianIndexSampler::operator()(Rng &rng) const
{
    while (true) {
        const double v = mu + sigma * rng.nextGaussian();
        if (v >= 0.0 && v < static_cast<double>(n))
            return static_cast<std::uint64_t>(v);
    }
}

} // namespace laoram
