/**
 * @file
 * Small bit-manipulation helpers shared across the tree-geometry and
 * RNG code.
 */

#ifndef LAORAM_UTIL_BITOPS_HH
#define LAORAM_UTIL_BITOPS_HH

#include <cstdint>

namespace laoram {

/** @return true iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); @p v must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return 63u - static_cast<unsigned>(__builtin_clzll(v));
#else
    unsigned log = 0;
    while (v >>= 1)
        ++log;
    return log;
#endif
}

/** Ceiling of log2(v); @p v must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return floorLog2(v) + (isPow2(v) ? 0u : 1u);
}

/** Smallest power of two >= v (v must be non-zero). */
constexpr std::uint64_t
ceilPow2(std::uint64_t v)
{
    return std::uint64_t{1} << ceilLog2(v);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace laoram

#endif // LAORAM_UTIL_BITOPS_HH
