/**
 * @file
 * Streaming JSON emission shared by every machine-readable output in
 * the tree: the bench BENCH_<name>.json files, the metrics sampler's
 * JSON-lines time series, the Chrome-trace span dump, and the
 * examples' --report-json run reports.
 *
 * One escaping/number-formatting implementation instead of one per
 * call site. The writer is a thin state machine over an ostream —
 * begin/end object/array, key(), value() — that inserts commas and
 * (optionally) indentation; misuse (a value where a key is required,
 * unbalanced end calls) is a library bug and panics.
 */

#ifndef LAORAM_UTIL_JSON_WRITER_HH
#define LAORAM_UTIL_JSON_WRITER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace laoram::util {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Render @p v as a JSON number token; non-finite doubles become
 * "null" (JSON has no inf/nan).
 */
std::string jsonNumber(double v);

/** Incremental JSON writer; see file comment. */
class JsonWriter
{
  public:
    /**
     * @param indent spaces per nesting level; 0 emits one compact
     *        line (the JSON-lines shape the sampler needs)
     */
    explicit JsonWriter(std::ostream &os, unsigned indent = 0);

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member name; must be followed by a value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key(k) + value(v) in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    /** True once the single top-level value is complete. */
    bool done() const;

  private:
    enum class Frame : std::uint8_t { Object, Array };

    /** Comma/newline/indent bookkeeping before a key or value. */
    void beforeValue(bool isKey);
    void newlineIndent();

    std::ostream &os;
    unsigned indent;
    std::vector<Frame> stack;
    std::vector<std::uint32_t> counts; ///< members emitted per frame
    bool keyPending = false; ///< key() emitted, value outstanding
    bool topEmitted = false;
};

} // namespace laoram::util

#endif // LAORAM_UTIL_JSON_WRITER_HH
