/**
 * @file
 * Deterministic random-number generation for the whole simulator.
 *
 * Every stochastic component (path assignment, workload synthesis,
 * background-eviction path choice, ...) draws from an explicitly seeded
 * Rng instance so that a given (seed, configuration) pair always
 * reproduces the same metrics, independent of platform or standard
 * library version. We therefore avoid std::*_distribution, whose output
 * is implementation-defined, and implement the samplers ourselves.
 *
 * The core generator is xoshiro256++ seeded through SplitMix64, which is
 * fast, passes BigCrush, and has a 2^256-1 period — far more than any
 * experiment here needs.
 */

#ifndef LAORAM_UTIL_RNG_HH
#define LAORAM_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

#include "util/serde.hh"

namespace laoram {

/** SplitMix64 step; used for seeding and as a cheap stateless mixer. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256++ pseudo-random generator with convenience samplers.
 *
 * Not thread-safe; give each component its own instance (use split()
 * to derive decorrelated child generators).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x1a02a3a4a5a6a7ULL);

    /** Next raw 64 random bits. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's unbiased method. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p = 0.5);

    /**
     * Standard normal deviate via Box-Muller (deterministic across
     * platforms, unlike std::normal_distribution).
     */
    double nextGaussian();

    /**
     * Derive an independent child generator. The child is seeded from
     * this generator's stream, so parent and child sequences are
     * decorrelated but still fully reproducible.
     */
    Rng split();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::uint64_t i = v.size(); i > 1; --i) {
            std::uint64_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** The seed this generator was constructed with. */
    std::uint64_t seed() const { return _seed; }

    /**
     * Checkpoint support: serialize / reload the exact generator
     * state (xoshiro words, seed, Box-Muller spare), so a restored
     * stream continues bit-identically from the snapshot point.
     */
    void save(serde::Serializer &s) const;
    void restore(serde::Deserializer &d);

  private:
    std::array<std::uint64_t, 4> state;
    std::uint64_t _seed;
    bool haveSpareGaussian = false;
    double spareGaussian = 0.0;
};

/**
 * Zipf(s, n) sampler over {0, ..., n-1} (rank 0 is most popular).
 *
 * Uses rejection-inversion (Hörmann & Derflinger 1996), which needs
 * O(1) memory and O(1) expected time per sample — important because the
 * XNLI-like vocabulary has 262,144 ranks and the Kaggle-like hot band
 * adds millions more.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of items (> 0)
     * @param s skew exponent (> 0, s != 1 handled as well as s == 1)
     */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one rank in [0, n). */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t items() const { return n; }
    double skew() const { return s; }

  private:
    double h(double x) const;
    double hInverse(double x) const;

    std::uint64_t n;
    double s;
    double hImaxq;   ///< h(n + 0.5)
    double hX0;      ///< h(0.5) precomputed
    double t;        ///< rejection threshold constant
};

/**
 * Gaussian sampler over integer addresses [0, n), used by the paper's
 * "Gaussian dataset". Values are drawn from N(mean, stddev), rounded,
 * and re-drawn while outside the range (truncated Gaussian).
 */
class GaussianIndexSampler
{
  public:
    /**
     * @param n       address-space size
     * @param mean    distribution centre (default: n/2)
     * @param stddev  spread (default: n/8)
     */
    explicit GaussianIndexSampler(std::uint64_t n, double mean = -1.0,
                                  double stddev = -1.0);

    std::uint64_t operator()(Rng &rng) const;

    double mean() const { return mu; }
    double stddev() const { return sigma; }

  private:
    std::uint64_t n;
    double mu;
    double sigma;
};

} // namespace laoram

#endif // LAORAM_UTIL_RNG_HH
