/**
 * @file
 * A bounded, blocking, multi-producer multi-consumer queue — the
 * hand-off between the pipeline's preprocessor thread(s) and the ORAM
 * serving thread(s) (paper §VIII-A; one queue per shard pipeline in
 * the sharded serving pool).
 *
 * The bound is the pipeline's backpressure: with capacity K the
 * preprocessor can run at most K windows ahead of the trainer, which
 * caps the client memory pinned by prepared-but-unserved superblock
 * schedules. close() lets producers signal end-of-stream; pop() then
 * drains the remaining items before reporting exhaustion.
 */

#ifndef LAORAM_UTIL_BOUNDED_QUEUE_HH
#define LAORAM_UTIL_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.hh"

namespace laoram {

/** Bounded blocking FIFO; safe for concurrent push/pop/close. */
template <typename T>
class BoundedQueue
{
  public:
    /**
     * RAII hand-off ticket returned by popDeferred(): releasing it (or
     * letting it go out of scope, including during stack unwinding)
     * wakes one producer blocked on the slot the pop vacated. Without
     * it, a consumer that throws between the pop and the wakeup would
     * strand every producer waiting on a full queue — harmless while
     * close() runs in the only consumer's catch block, a real deadlock
     * once sibling consumers in a serving pool keep the queue open.
     */
    class SlotToken
    {
      public:
        SlotToken() = default;
        ~SlotToken() { release(); }

        SlotToken(SlotToken &&other) noexcept
            : queue(std::exchange(other.queue, nullptr))
        {
        }

        SlotToken &
        operator=(SlotToken &&other) noexcept
        {
            if (this != &other) {
                release();
                queue = std::exchange(other.queue, nullptr);
            }
            return *this;
        }

        SlotToken(const SlotToken &) = delete;
        SlotToken &operator=(const SlotToken &) = delete;

        /** Wake a blocked producer now instead of at destruction. */
        void
        release()
        {
            if (queue != nullptr) {
                queue->notFull.notify_one();
                queue = nullptr;
            }
        }

        /** True while the token still owes a producer wakeup. */
        bool held() const { return queue != nullptr; }

      private:
        friend class BoundedQueue<T>;
        explicit SlotToken(BoundedQueue<T> *q) : queue(q) {}

        BoundedQueue<T> *queue = nullptr;
    };

    explicit BoundedQueue(std::size_t capacity) : cap(capacity)
    {
        LAORAM_ASSERT(capacity >= 1,
                      "queue capacity must be at least 1");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Block until there is room, then enqueue @p item.
     *
     * @return false iff the queue was closed (item dropped)
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu);
        notFull.wait(lock, [&] {
            return closed || items.size() < cap;
        });
        if (closed)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Non-blocking push for reject-style admission control: enqueue
     * @p item only if there is room right now.
     *
     * @return false iff the queue was full or closed (item dropped)
     */
    bool
    tryPush(T item)
    {
        std::unique_lock<std::mutex> lock(mu);
        if (closed || items.size() >= cap)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained.
     *
     * @return true with @p out filled, or false on exhaustion
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu);
        notEmpty.wait(lock, [&] { return closed || !items.empty(); });
        if (items.empty())
            return false; // closed and drained
        out = std::move(items.front());
        items.pop_front();
        lock.unlock();
        notFull.notify_one();
        return true;
    }

    /**
     * Like pop(), but defers the producer wakeup to @p token: the
     * notify fires when the token is released or destroyed. Splitting
     * the two lets a consumer timestamp the hand-off before the
     * wakeup: on a shared core, notify_one can immediately preempt the
     * consumer in favour of the producer, and an undeferred notify
     * would bill that producer work to the consumer's measured wait.
     * Because the token releases on unwind, a consumer that throws
     * mid-window cannot leak the wakeup.
     *
     * @return true with @p out and @p token filled, or false on
     *         exhaustion (token left empty)
     */
    bool
    popDeferred(T &out, SlotToken &token)
    {
        std::unique_lock<std::mutex> lock(mu);
        notEmpty.wait(lock, [&] { return closed || !items.empty(); });
        if (items.empty()) {
            token = SlotToken(); // exhaustion leaves the token empty
            return false;        // closed and drained
        }
        out = std::move(items.front());
        items.pop_front();
        lock.unlock();
        token = SlotToken(this);
        return true;
    }

    /** End-of-stream: wake all waiters; further push() calls fail. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            closed = true;
        }
        notFull.notify_all();
        notEmpty.notify_all();
    }

    std::size_t capacity() const { return cap; }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return items.size();
    }

  private:
    mutable std::mutex mu;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<T> items;
    std::size_t cap;
    bool closed = false;
};

} // namespace laoram

#endif // LAORAM_UTIL_BOUNDED_QUEUE_HH
