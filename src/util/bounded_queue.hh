/**
 * @file
 * A bounded, blocking, multi-producer single-consumer queue — the
 * hand-off between the pipeline's preprocessor thread(s) and the ORAM
 * serving thread (paper §VIII-A).
 *
 * The bound is the pipeline's backpressure: with capacity K the
 * preprocessor can run at most K windows ahead of the trainer, which
 * caps the client memory pinned by prepared-but-unserved superblock
 * schedules. close() lets producers signal end-of-stream; pop() then
 * drains the remaining items before reporting exhaustion.
 */

#ifndef LAORAM_UTIL_BOUNDED_QUEUE_HH
#define LAORAM_UTIL_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "util/logging.hh"

namespace laoram {

/** Bounded blocking FIFO; safe for concurrent push/pop/close. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t capacity) : cap(capacity)
    {
        LAORAM_ASSERT(capacity >= 1,
                      "queue capacity must be at least 1");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Block until there is room, then enqueue @p item.
     *
     * @return false iff the queue was closed (item dropped)
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mu);
        notFull.wait(lock, [&] {
            return closed || items.size() < cap;
        });
        if (closed)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained.
     *
     * @return true with @p out filled, or false on exhaustion
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu);
        notEmpty.wait(lock, [&] { return closed || !items.empty(); });
        if (items.empty())
            return false; // closed and drained
        out = std::move(items.front());
        items.pop_front();
        lock.unlock();
        notFull.notify_one();
        return true;
    }

    /**
     * Like pop(), but does NOT wake blocked producers; the caller
     * must follow up with notifySlotFree(). Splitting the two lets a
     * consumer timestamp the hand-off before the wakeup: on a shared
     * core, notify_one can immediately preempt the consumer in favour
     * of the producer, and an undeferred notify would bill that
     * producer work to the consumer's measured wait.
     */
    bool
    popDeferred(T &out)
    {
        std::unique_lock<std::mutex> lock(mu);
        notEmpty.wait(lock, [&] { return closed || !items.empty(); });
        if (items.empty())
            return false; // closed and drained
        out = std::move(items.front());
        items.pop_front();
        return true;
    }

    /** Release the slot taken by a popDeferred() to blocked pushers. */
    void notifySlotFree() { notFull.notify_one(); }

    /** End-of-stream: wake all waiters; further push() calls fail. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            closed = true;
        }
        notFull.notify_all();
        notEmpty.notify_all();
    }

    std::size_t capacity() const { return cap; }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return items.size();
    }

  private:
    mutable std::mutex mu;
    std::condition_variable notFull;
    std::condition_variable notEmpty;
    std::deque<T> items;
    std::size_t cap;
    bool closed = false;
};

} // namespace laoram

#endif // LAORAM_UTIL_BOUNDED_QUEUE_HH
