#include "util/serde.hh"

#include <cerrno>
#include <cstdio>
#include <sys/stat.h>

namespace laoram::serde {

std::uint64_t
fnv1a64(const std::uint8_t *p, std::size_t len)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::vector<std::uint8_t>
seal(SnapshotKind kind, const std::vector<std::uint8_t> &payload)
{
    Serializer s;
    s.u64(kSnapshotMagic);
    s.u32(kSnapshotVersion);
    s.u32(static_cast<std::uint32_t>(kind));
    s.u64(payload.size());
    s.bytes(payload.data(), payload.size());
    const std::uint64_t sum = fnv1a64(s.data().data(), s.data().size());
    s.u64(sum);
    return s.take();
}

std::vector<std::uint8_t>
unseal(SnapshotKind kind, const std::vector<std::uint8_t> &frame)
{
    // Header (24 B) + checksum (8 B) is the smallest valid frame.
    constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
    if (frame.size() < kHeaderBytes + 8)
        throw SnapshotError("snapshot truncated: " +
                            std::to_string(frame.size()) +
                            " bytes is smaller than the frame header");

    // Verify the checksum before trusting any header field, so a bit
    // flip anywhere (including inside the length) is caught first.
    const std::size_t sumOff = frame.size() - 8;
    const std::uint64_t want = fnv1a64(frame.data(), sumOff);
    Deserializer tail(frame.data() + sumOff, 8);
    const std::uint64_t got = tail.u64();
    if (want != got)
        throw SnapshotError("snapshot checksum mismatch: stored " +
                            std::to_string(got) + ", computed " +
                            std::to_string(want) +
                            " (corrupt or truncated snapshot)");

    Deserializer d(frame.data(), sumOff);
    const std::uint64_t magic = d.u64();
    if (magic != kSnapshotMagic)
        throw SnapshotError("snapshot magic mismatch: not a LAORAM "
                            "client-state snapshot");
    const std::uint32_t version = d.u32();
    if (version != kSnapshotVersion)
        throw SnapshotError(
            "snapshot format version " + std::to_string(version) +
            " is not the supported version " +
            std::to_string(kSnapshotVersion));
    const std::uint32_t gotKind = d.u32();
    if (gotKind != static_cast<std::uint32_t>(kind))
        throw SnapshotError(
            "snapshot section kind " + std::to_string(gotKind) +
            " does not match the expected kind " +
            std::to_string(static_cast<std::uint32_t>(kind)));
    const std::uint64_t len = d.u64();
    if (len != d.remaining())
        throw SnapshotError(
            "snapshot payload length " + std::to_string(len) +
            " disagrees with the frame size (" +
            std::to_string(d.remaining()) + " payload bytes present)");
    std::vector<std::uint8_t> payload(len);
    if (len > 0)
        d.bytes(payload.data(), len);
    return payload;
}

void
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &data)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        throw SnapshotError("cannot create snapshot file " + tmp +
                            ": " + std::strerror(errno));
    if (!data.empty()
        && std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
        std::fclose(f);
        std::remove(tmp.c_str());
        throw SnapshotError("short write to snapshot file " + tmp);
    }
    if (std::fflush(f) != 0 || std::fclose(f) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot flush snapshot file " + tmp + ": " +
                            std::strerror(errno));
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot move snapshot into place at " +
                            path + ": " + std::strerror(errno));
    }
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SnapshotError("cannot open snapshot file " + path + ": " +
                            std::strerror(errno));
    std::vector<std::uint8_t> data;
    std::uint8_t chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        data.insert(data.end(), chunk, chunk + n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw SnapshotError("read error on snapshot file " + path);
    return data;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

} // namespace laoram::serde
