#include "util/serde.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <mutex>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace laoram::serde {

std::uint64_t
fnv1a64(const std::uint8_t *p, std::size_t len)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::vector<std::uint8_t>
seal(SnapshotKind kind, const std::vector<std::uint8_t> &payload)
{
    Serializer s;
    s.u64(kSnapshotMagic);
    s.u32(kSnapshotVersion);
    s.u32(static_cast<std::uint32_t>(kind));
    s.u64(payload.size());
    s.bytes(payload.data(), payload.size());
    const std::uint64_t sum = fnv1a64(s.data().data(), s.data().size());
    s.u64(sum);
    return s.take();
}

std::vector<std::uint8_t>
unseal(SnapshotKind kind, const std::vector<std::uint8_t> &frame)
{
    // Header (24 B) + checksum (8 B) is the smallest valid frame.
    constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
    if (frame.size() < kHeaderBytes + 8)
        throw SnapshotError("snapshot truncated: " +
                            std::to_string(frame.size()) +
                            " bytes is smaller than the frame header");

    // Verify the checksum before trusting any header field, so a bit
    // flip anywhere (including inside the length) is caught first.
    const std::size_t sumOff = frame.size() - 8;
    const std::uint64_t want = fnv1a64(frame.data(), sumOff);
    Deserializer tail(frame.data() + sumOff, 8);
    const std::uint64_t got = tail.u64();
    if (want != got)
        throw SnapshotError("snapshot checksum mismatch: stored " +
                            std::to_string(got) + ", computed " +
                            std::to_string(want) +
                            " (corrupt or truncated snapshot)");

    Deserializer d(frame.data(), sumOff);
    const std::uint64_t magic = d.u64();
    if (magic != kSnapshotMagic)
        throw SnapshotError("snapshot magic mismatch: not a LAORAM "
                            "client-state snapshot");
    const std::uint32_t version = d.u32();
    if (version != kSnapshotVersion)
        throw SnapshotError(
            "snapshot format version " + std::to_string(version) +
            " is not the supported version " +
            std::to_string(kSnapshotVersion));
    const std::uint32_t gotKind = d.u32();
    if (gotKind != static_cast<std::uint32_t>(kind))
        throw SnapshotError(
            "snapshot section kind " + std::to_string(gotKind) +
            " does not match the expected kind " +
            std::to_string(static_cast<std::uint32_t>(kind)));
    const std::uint64_t len = d.u64();
    if (len != d.remaining())
        throw SnapshotError(
            "snapshot payload length " + std::to_string(len) +
            " disagrees with the frame size (" +
            std::to_string(d.remaining()) + " payload bytes present)");
    std::vector<std::uint8_t> payload(len);
    if (len > 0)
        d.bytes(payload.data(), len);
    return payload;
}

namespace {

std::mutex faultHookMu;
WriteFaultHook faultHook = nullptr;

/** Run the test fault hook (if any) after step @p point. */
bool
stepOk(const char *point)
{
    WriteFaultHook hook;
    {
        std::lock_guard<std::mutex> lock(faultHookMu);
        hook = faultHook;
    }
    return hook == nullptr || hook(point);
}

/** Directory part of @p path ("." when the path has no slash). */
std::string
parentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace

void
setWriteFileAtomicFaultHook(WriteFaultHook hook)
{
    std::lock_guard<std::mutex> lock(faultHookMu);
    faultHook = hook;
}

void
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &data)
{
    // Unique temp name per writer: two processes (or two threads
    // racing in a test) checkpointing the same base path must never
    // scribble on each other's half-written temp file. O_EXCL turns
    // any residual collision into a loud error instead of a silent
    // interleave.
    static std::atomic<std::uint64_t> tmpSeq{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(tmpSeq.fetch_add(1, std::memory_order_relaxed));

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0 || !stepOk("open")) {
        const int err = fd < 0 ? errno : EIO;
        if (fd >= 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
        }
        throw SnapshotError("cannot create snapshot file " + tmp +
                            ": " + std::strerror(err));
    }

    const std::uint8_t *p = data.data();
    std::size_t left = data.size();
    bool writeOk = true;
    while (left > 0) {
        const ::ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            writeOk = false;
            break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
    if (!writeOk || !stepOk("write")) {
        const int err = writeOk ? EIO : errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw SnapshotError("short write to snapshot file " + tmp +
                            ": " + std::strerror(err));
    }

    // Durability step 1: the temp file's *contents* must be on disk
    // before the rename publishes it, or a crash after rename can
    // surface a zero-length/truncated snapshot at the final path.
    const bool fileSynced = ::fsync(fd) == 0;
    if (!fileSynced || !stepOk("fsync-file")) {
        const int err = fileSynced ? EIO : errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throw SnapshotError("cannot fsync snapshot file " + tmp + ": " +
                            std::strerror(err));
    }
    if (::close(fd) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        throw SnapshotError("cannot close snapshot file " + tmp + ": " +
                            std::strerror(err));
    }

    const bool renamed = ::rename(tmp.c_str(), path.c_str()) == 0;
    if (!renamed || !stepOk("rename")) {
        const int err = renamed ? EIO : errno;
        ::unlink(tmp.c_str());
        throw SnapshotError("cannot move snapshot into place at " +
                            path + ": " + std::strerror(err));
    }

    // Durability step 2: the rename itself lives in the parent
    // directory's data; fsync it so the publish survives power loss.
    // The new file is already complete at this point, so a failure
    // here must NOT unlink anything — it only reports that
    // durability of the rename is not yet guaranteed.
    const std::string dir = parentDir(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        throw SnapshotError("cannot open snapshot directory " + dir +
                            " for fsync: " + std::strerror(errno));
    const bool dirSynced = ::fsync(dfd) == 0;
    if (!dirSynced || !stepOk("fsync-dir")) {
        const int err = dirSynced ? EIO : errno;
        ::close(dfd);
        throw SnapshotError("cannot fsync snapshot directory " + dir +
                            ": " + std::strerror(err));
    }
    ::close(dfd);
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw SnapshotError("cannot open snapshot file " + path + ": " +
                            std::strerror(errno));
    std::vector<std::uint8_t> data;
    std::uint8_t chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        data.insert(data.end(), chunk, chunk + n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw SnapshotError("read error on snapshot file " + path);
    return data;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

} // namespace laoram::serde
