/**
 * @file
 * Tiny declarative command-line parser shared by examples and benches.
 *
 * Usage:
 * @code
 *   ArgParser args("bench_fig7", "Reproduces Fig. 7 speedups");
 *   auto n = args.addUint("entries", "embedding entries", 1 << 18);
 *   auto full = args.addFlag("full", "run paper-scale geometry");
 *   args.parse(argc, argv);          // exits with help on --help / error
 *   run(*n, *full);
 * @endcode
 */

#ifndef LAORAM_UTIL_CLI_HH
#define LAORAM_UTIL_CLI_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace laoram {

/** Declarative CLI option container; see file comment for usage. */
class ArgParser
{
  public:
    ArgParser(std::string prog, std::string description);

    /** Register options; returned pointers stay valid until parse(). */
    std::shared_ptr<std::uint64_t> addUint(const std::string &name,
                                           const std::string &help,
                                           std::uint64_t def);
    std::shared_ptr<double> addDouble(const std::string &name,
                                      const std::string &help, double def);
    std::shared_ptr<std::string> addString(const std::string &name,
                                           const std::string &help,
                                           std::string def);
    /** Boolean switch; present => true. */
    std::shared_ptr<bool> addFlag(const std::string &name,
                                  const std::string &help);

    /**
     * Presence tracker for an already-registered option: the returned
     * bool becomes true when parse() actually consumes --name, so a
     * caller can distinguish "user passed the default value
     * explicitly" from "option never given" (e.g. to reject options
     * that only apply to a particular mode). Panics on an unknown
     * name.
     */
    std::shared_ptr<bool> seenTracker(const std::string &name);

    /**
     * Parse argv. On "--help" prints usage and exits 0; on a malformed
     * or unknown option prints usage and exits 1.
     */
    void parse(int argc, const char *const *argv);

    /** Parse from a pre-split vector (used by tests; never exits). */
    bool parseVector(const std::vector<std::string> &args,
                     std::string *error = nullptr);

    std::string usage() const;

  private:
    enum class Kind { Uint, Double, String, Flag };

    struct Option
    {
        std::string name;
        std::string help;
        Kind kind;
        std::shared_ptr<std::uint64_t> uintVal;
        std::shared_ptr<double> doubleVal;
        std::shared_ptr<std::string> stringVal;
        std::shared_ptr<bool> flagVal;
        std::string defaultText;
        std::shared_ptr<bool> seen; ///< set lazily by seenTracker()
    };

    Option *find(const std::string &name);

    std::string prog;
    std::string description;
    std::vector<Option> options;
};

} // namespace laoram

#endif // LAORAM_UTIL_CLI_HH
