#include "util/json_writer.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace laoram::util {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    std::ostringstream os;
    // 15 significant digits: enough for nanosecond-derived
    // timestamps without turning 0.1 into 0.100000000000000006.
    os.precision(15);
    os << v;
    return os.str();
}

JsonWriter::JsonWriter(std::ostream &os, unsigned indent)
    : os(os), indent(indent)
{
}

bool
JsonWriter::done() const
{
    return topEmitted && stack.empty();
}

void
JsonWriter::newlineIndent()
{
    if (indent == 0)
        return;
    os << '\n';
    for (std::size_t i = 0; i < stack.size() * indent; ++i)
        os << ' ';
}

void
JsonWriter::beforeValue(bool isKey)
{
    if (keyPending) {
        LAORAM_ASSERT(!isKey, "json key after key");
        keyPending = false;
        return; // the key already emitted "name": — value follows
    }
    if (stack.empty()) {
        LAORAM_ASSERT(!isKey, "json key outside an object");
        LAORAM_ASSERT(!topEmitted,
                      "second top-level json value");
        topEmitted = true;
        return;
    }
    const Frame frame = stack.back();
    LAORAM_ASSERT(isKey == (frame == Frame::Object),
                  "json ", isKey ? "key inside an array"
                                 : "bare value inside an object");
    if (counts.back() > 0)
        os << ',';
    ++counts.back();
    newlineIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue(false);
    os << '{';
    stack.push_back(Frame::Object);
    counts.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    LAORAM_ASSERT(!stack.empty() && stack.back() == Frame::Object
                      && !keyPending,
                  "unbalanced json endObject");
    const bool hadMembers = counts.back() > 0;
    stack.pop_back();
    counts.pop_back();
    if (hadMembers)
        newlineIndent();
    os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue(false);
    os << '[';
    stack.push_back(Frame::Array);
    counts.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    LAORAM_ASSERT(!stack.empty() && stack.back() == Frame::Array,
                  "unbalanced json endArray");
    const bool hadMembers = counts.back() > 0;
    stack.pop_back();
    counts.pop_back();
    if (hadMembers)
        newlineIndent();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    beforeValue(true);
    os << '"' << jsonEscape(k) << "\":";
    if (indent > 0)
        os << ' ';
    keyPending = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue(false);
    os << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue(false);
    os << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue(false);
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue(false);
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue(false);
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue(false);
    os << "null";
    return *this;
}

} // namespace laoram::util
