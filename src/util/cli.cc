#include "util/cli.hh"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/logging.hh"

namespace laoram {

ArgParser::ArgParser(std::string prog, std::string description)
    : prog(std::move(prog)), description(std::move(description))
{
}

std::shared_ptr<std::uint64_t>
ArgParser::addUint(const std::string &name, const std::string &help,
                   std::uint64_t def)
{
    auto val = std::make_shared<std::uint64_t>(def);
    options.push_back(Option{name, help, Kind::Uint, val, nullptr, nullptr,
                             nullptr, std::to_string(def), nullptr});
    return val;
}

std::shared_ptr<double>
ArgParser::addDouble(const std::string &name, const std::string &help,
                     double def)
{
    auto val = std::make_shared<double>(def);
    options.push_back(Option{name, help, Kind::Double, nullptr, val,
                             nullptr, nullptr, std::to_string(def), nullptr});
    return val;
}

std::shared_ptr<std::string>
ArgParser::addString(const std::string &name, const std::string &help,
                     std::string def)
{
    auto val = std::make_shared<std::string>(std::move(def));
    options.push_back(Option{name, help, Kind::String, nullptr, nullptr,
                             val, nullptr, *val, nullptr});
    return val;
}

std::shared_ptr<bool>
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    auto val = std::make_shared<bool>(false);
    options.push_back(Option{name, help, Kind::Flag, nullptr, nullptr,
                             nullptr, val, "false", nullptr});
    return val;
}

std::shared_ptr<bool>
ArgParser::seenTracker(const std::string &name)
{
    Option *opt = find(name);
    LAORAM_ASSERT(opt != nullptr, "seenTracker for unregistered "
                  "option --", name);
    if (!opt->seen)
        opt->seen = std::make_shared<bool>(false);
    return opt->seen;
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    for (auto &opt : options)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

void
ArgParser::parse(int argc, const char *const *argv)
{
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i)
        args.emplace_back(argv[i]);

    for (const auto &a : args) {
        if (a == "--help" || a == "-h") {
            std::cout << usage();
            std::exit(0);
        }
    }

    std::string error;
    if (!parseVector(args, &error)) {
        std::cerr << "error: " << error << "\n\n" << usage();
        std::exit(1);
    }
}

bool
ArgParser::parseVector(const std::vector<std::string> &args,
                       std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string arg = args[i];
        if (arg.rfind("--", 0) != 0)
            return fail("unexpected positional argument: " + arg);
        arg = arg.substr(2);

        std::string name = arg;
        std::string value;
        bool haveValue = false;
        if (auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            haveValue = true;
        }

        Option *opt = find(name);
        if (!opt)
            return fail("unknown option: --" + name);

        if (opt->kind == Kind::Flag) {
            if (haveValue)
                return fail("flag --" + name + " takes no value");
            *opt->flagVal = true;
            if (opt->seen)
                *opt->seen = true;
            continue;
        }

        if (!haveValue) {
            if (i + 1 >= args.size())
                return fail("option --" + name + " needs a value");
            value = args[++i];
        }

        try {
            switch (opt->kind) {
              case Kind::Uint:
                *opt->uintVal = std::stoull(value);
                break;
              case Kind::Double:
                *opt->doubleVal = std::stod(value);
                break;
              case Kind::String:
                *opt->stringVal = value;
                break;
              case Kind::Flag:
                break; // handled above
            }
        } catch (const std::exception &) {
            return fail("bad value for --" + name + ": " + value);
        }
        if (opt->seen)
            *opt->seen = true;
    }
    return true;
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << prog << " — " << description << "\n\noptions:\n";
    for (const auto &opt : options) {
        os << "  --" << opt.name;
        if (opt.kind != Kind::Flag)
            os << " <value>";
        os << "\n      " << opt.help << " (default: " << opt.defaultText
           << ")\n";
    }
    os << "  --help\n      show this message\n";
    return os.str();
}

} // namespace laoram
