#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace laoram {

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    LAORAM_ASSERT(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    LAORAM_ASSERT(cells.size() == header.size(),
                  "row width ", cells.size(), " != header width ",
                  header.size());
    body.push_back(std::move(cells));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : body)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(
                static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };

    emitRow(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : body)
        emitRow(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(header);
    for (const auto &row : body)
        emit(row);
}

std::string
TextTable::cell(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TextTable::cell(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TextTable::bytesCell(std::uint64_t bytes)
{
    static const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int s = 0;
    while (v >= 1024.0 && s < 4) {
        v /= 1024.0;
        ++s;
    }
    std::ostringstream os;
    os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << " "
       << suffix[s];
    return os.str();
}

} // namespace laoram
