/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Components register named stats in a StatRegistry; at the end of a run
 * the registry can be dumped as a readable table or as CSV. Stats are
 * intentionally simple value types: the simulator is single-threaded and
 * experiments consume final values only.
 */

#ifndef LAORAM_UTIL_STATS_HH
#define LAORAM_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace laoram {

/** Monotonically increasing 64-bit event counter. */
class Counter
{
  public:
    Counter &operator++() { ++val; return *this; }
    Counter &operator+=(std::uint64_t d) { val += d; return *this; }
    void reset() { val = 0; }
    std::uint64_t value() const { return val; }

  private:
    std::uint64_t val = 0;
};

/** Running scalar sample statistics (count/mean/min/max/stddev). */
class Accumulator
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const;
    double minimum() const { return n ? minv : 0.0; }
    double maximum() const { return n ? maxv : 0.0; }
    /** Population variance via Welford's online algorithm. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double meanv = 0.0;
    double m2 = 0.0;
    double minv = 0.0;
    double maxv = 0.0;
};

/**
 * Fixed-width linear histogram over [lo, hi) with under/overflow
 * buckets, plus exact quantile support while bucket resolution allows.
 */
class Histogram
{
  public:
    /**
     * @param lo       lowest tracked value (inclusive)
     * @param hi       highest tracked value (exclusive)
     * @param buckets  number of equal-width buckets (> 0)
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return n; }
    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    std::uint64_t underflow() const { return under; }
    std::uint64_t overflow() const { return over; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /**
     * Approximate p-quantile (0 <= p <= 1) assuming uniform density
     * within buckets; underflow/overflow samples clamp to the range.
     */
    double quantile(double p) const;

  private:
    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t n = 0;
};

/**
 * Named collection of stats plus derived formulas; supports nested
 * dotted names ("oram.pathReads") and text/CSV dumps.
 */
class StatRegistry
{
  public:
    /** Register (or fetch an existing) counter under @p name. */
    Counter &counter(const std::string &name, const std::string &desc = "");
    Accumulator &accumulator(const std::string &name,
                             const std::string &desc = "");

    /**
     * Register a derived value computed at dump time (e.g. a ratio of
     * two counters). Re-registering replaces the formula.
     */
    void formula(const std::string &name, const std::string &desc,
                 std::function<double()> fn);

    /** Reset all counters/accumulators (formulas recompute anyway). */
    void resetAll();

    /** Dump "name value # desc" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Dump "name,value" CSV (header included). */
    void dumpCsv(std::ostream &os) const;

    /** Look up a counter that must already exist. */
    const Counter &counterAt(const std::string &name) const;

    /** Evaluate a registered formula by name. */
    double formulaAt(const std::string &name) const;

    bool hasCounter(const std::string &name) const;

  private:
    struct FormulaEntry
    {
        std::string desc;
        std::function<double()> fn;
    };

    std::map<std::string, std::pair<std::string, Counter>> counters;
    std::map<std::string, std::pair<std::string, Accumulator>> accums;
    std::map<std::string, FormulaEntry> formulas;
};

} // namespace laoram

#endif // LAORAM_UTIL_STATS_HH
