#include "util/latency_histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace laoram {

namespace {

/** Position of the highest set bit (v must be non-zero). */
inline unsigned
highestBit(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(__builtin_clzll(v));
}

/**
 * Tiers needed to cover the full 64-bit range: tier 0 is the exact
 * linear range [0, kSubBuckets); tier t >= 1 covers
 * [kSubBuckets << (t-1), kSubBuckets << t).
 */
constexpr std::size_t kTiers =
    64u - StreamingHistogram::kSubBucketBits;

} // namespace

StreamingHistogram::StreamingHistogram()
    : counts(kTiers * kSubBuckets, 0)
{
}

std::size_t
StreamingHistogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<std::size_t>(v); // tier 0: exact
    const unsigned msb = highestBit(v);
    const unsigned tier = msb - kSubBucketBits + 1;
    const unsigned shift = msb - kSubBucketBits;
    const std::uint64_t sub = (v >> shift) - kSubBuckets;
    return static_cast<std::size_t>(tier) * kSubBuckets
           + static_cast<std::size_t>(sub);
}

std::uint64_t
StreamingHistogram::bucketLow(std::size_t index)
{
    const std::size_t tier = index / kSubBuckets;
    const std::uint64_t sub = index % kSubBuckets;
    if (tier == 0)
        return sub;
    return (static_cast<std::uint64_t>(kSubBuckets) + sub)
           << (tier - 1);
}

std::uint64_t
StreamingHistogram::bucketWidth(std::size_t index)
{
    const std::size_t tier = index / kSubBuckets;
    return tier == 0 ? 1 : std::uint64_t{1} << (tier - 1);
}

void
StreamingHistogram::record(std::int64_t ns)
{
    if (ns < 0) {
        // A negative wall-clock delta is a bug in the caller's timing,
        // not a 0 ns request; keep it out of the percentiles but make
        // it count somewhere visible.
        ++nNegative;
        return;
    }
    const std::uint64_t v = static_cast<std::uint64_t>(ns);
    ++counts[bucketIndex(v)];
    if (n == 0) {
        minNs = maxNs = static_cast<std::int64_t>(v);
    } else {
        minNs = std::min(minNs, static_cast<std::int64_t>(v));
        maxNs = std::max(maxNs, static_cast<std::int64_t>(v));
    }
    ++n;
    total += static_cast<double>(v);
}

void
StreamingHistogram::merge(const StreamingHistogram &other)
{
    LAORAM_ASSERT(counts.size() == other.counts.size(),
                  "histogram layouts diverge");
    nNegative += other.nNegative;
    if (other.n == 0)
        return;
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    if (n == 0) {
        minNs = other.minNs;
        maxNs = other.maxNs;
    } else {
        minNs = std::min(minNs, other.minNs);
        maxNs = std::max(maxNs, other.maxNs);
    }
    n += other.n;
    total += other.total;
}

void
StreamingHistogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    n = 0;
    nNegative = 0;
    total = 0.0;
    minNs = 0;
    maxNs = 0;
}

double
StreamingHistogram::mean() const
{
    return n ? total / static_cast<double>(n) : 0.0;
}

double
StreamingHistogram::quantile(double p) const
{
    if (n == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);

    // Rank of the target sample (1-based, nearest-rank with
    // within-bucket interpolation below).
    const double rank = p * static_cast<double>(n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const std::uint64_t next = seen + counts[i];
        if (static_cast<double>(next) >= rank) {
            // Interpolate uniformly inside this bucket.
            const double into =
                counts[i] == 0
                    ? 0.0
                    : (rank - static_cast<double>(seen))
                          / static_cast<double>(counts[i]);
            const double value =
                static_cast<double>(bucketLow(i))
                + into * static_cast<double>(bucketWidth(i));
            return std::clamp(value, static_cast<double>(minNs),
                              static_cast<double>(maxNs));
        }
        seen = next;
    }
    return static_cast<double>(maxNs);
}

LatencyReport
StreamingHistogram::report() const
{
    LatencyReport rep;
    rep.requests = n;
    rep.meanNs = mean();
    rep.p50Ns = quantile(0.50);
    rep.p90Ns = quantile(0.90);
    rep.p99Ns = quantile(0.99);
    rep.p999Ns = quantile(0.999);
    rep.maxNs = static_cast<double>(maximum());
    rep.droppedNegative = nNegative;
    return rep;
}

} // namespace laoram
