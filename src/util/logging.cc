#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

namespace laoram {

namespace {
LogLevel g_level = LogLevel::Info;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

bool
parseLogLevel(const std::string &text, LogLevel *out)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower += (c >= 'A' && c <= 'Z')
                     ? static_cast<char>(c - 'A' + 'a')
                     : c;
    if (lower == "quiet" || lower == "0")
        *out = LogLevel::Quiet;
    else if (lower == "warn" || lower == "1")
        *out = LogLevel::Warn;
    else if (lower == "info" || lower == "2")
        *out = LogLevel::Info;
    else if (lower == "debug" || lower == "3")
        *out = LogLevel::Debug;
    else
        return false;
    return true;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "quiet";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
    }
    return "?";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::cerr << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail
} // namespace laoram
