#include "util/logging.hh"

#include <cstdlib>
#include <iostream>

namespace laoram {

namespace {
LogLevel g_level = LogLevel::Info;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::cerr << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail
} // namespace laoram
