/**
 * @file
 * Minimal C++17 stand-in for std::span (which is C++20): a non-owning
 * (pointer, length) view over contiguous elements. Only the operations
 * the training substrate needs are provided; swap for std::span once
 * the toolchain baseline moves to C++20.
 */

#ifndef LAORAM_UTIL_SPAN_HH
#define LAORAM_UTIL_SPAN_HH

#include <cstddef>
#include <type_traits>
#include <vector>

namespace laoram {

/** Non-owning view of a contiguous run of T. */
template <typename T>
class Span
{
  public:
    constexpr Span() = default;
    constexpr Span(T *data, std::size_t size) : ptr(data), len(size) {}

    /** View over a whole vector (mutable element type). */
    Span(std::vector<std::remove_const_t<T>> &v)
        : ptr(v.data()), len(v.size())
    {
    }

    /** View over a whole const vector (const element type only). */
    template <typename U = T,
              typename = std::enable_if_t<std::is_const_v<U>>>
    Span(const std::vector<std::remove_const_t<T>> &v)
        : ptr(v.data()), len(v.size())
    {
    }

    /** Span<T> -> Span<const T> conversion. */
    template <typename U = T,
              typename = std::enable_if_t<std::is_const_v<U>>>
    constexpr Span(Span<std::remove_const_t<T>> other)
        : ptr(other.data()), len(other.size())
    {
    }

    constexpr T *data() const { return ptr; }
    constexpr std::size_t size() const { return len; }
    constexpr bool empty() const { return len == 0; }

    constexpr T &operator[](std::size_t i) const { return ptr[i]; }

    constexpr T *begin() const { return ptr; }
    constexpr T *end() const { return ptr + len; }

  private:
    T *ptr = nullptr;
    std::size_t len = 0;
};

} // namespace laoram

#endif // LAORAM_UTIL_SPAN_HH
