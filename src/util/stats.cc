#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "util/logging.hh"

namespace laoram {

void
Accumulator::sample(double v)
{
    if (n == 0) {
        minv = maxv = v;
    } else {
        minv = std::min(minv, v);
        maxv = std::max(maxv, v);
    }
    ++n;
    total += v;
    const double delta = v - meanv;
    meanv += delta / static_cast<double>(n);
    m2 += delta * (v - meanv);
}

void
Accumulator::reset()
{
    *this = Accumulator{};
}

double
Accumulator::mean() const
{
    return n ? meanv : 0.0;
}

double
Accumulator::variance() const
{
    return n ? m2 / static_cast<double>(n) : 0.0;
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo(lo), hi(hi), width((hi - lo) / static_cast<double>(buckets)),
      counts(buckets, 0)
{
    LAORAM_ASSERT(hi > lo, "histogram range must be non-empty");
    LAORAM_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double v)
{
    ++n;
    if (v < lo) {
        ++under;
    } else if (v >= hi) {
        ++over;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= counts.size())
            idx = counts.size() - 1; // guard fp rounding at hi boundary
        ++counts[idx];
    }
}

void
Histogram::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    under = over = n = 0;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo + width * static_cast<double>(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i) + width;
}

double
Histogram::quantile(double p) const
{
    LAORAM_ASSERT(p >= 0.0 && p <= 1.0, "quantile p out of [0,1]");
    if (n == 0)
        return lo;
    const double target = p * static_cast<double>(n);
    double cum = static_cast<double>(under);
    if (target <= cum)
        return lo;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double next = cum + static_cast<double>(counts[i]);
        if (target <= next && counts[i] > 0) {
            const double frac = (target - cum)
                / static_cast<double>(counts[i]);
            return bucketLow(i) + frac * width;
        }
        cum = next;
    }
    return hi;
}

Counter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters.emplace(name, std::make_pair(desc, Counter{})).first;
    return it->second.second;
}

Accumulator &
StatRegistry::accumulator(const std::string &name, const std::string &desc)
{
    auto it = accums.find(name);
    if (it == accums.end())
        it = accums.emplace(name,
                            std::make_pair(desc, Accumulator{})).first;
    return it->second.second;
}

void
StatRegistry::formula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    formulas[name] = FormulaEntry{desc, std::move(fn)};
}

void
StatRegistry::resetAll()
{
    for (auto &[name, entry] : counters)
        entry.second.reset();
    for (auto &[name, entry] : accums)
        entry.second.reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    auto line = [&os](const std::string &name, double value,
                      const std::string &desc) {
        os << std::left << std::setw(40) << name << " "
           << std::right << std::setw(16) << value;
        if (!desc.empty())
            os << "  # " << desc;
        os << "\n";
    };
    for (const auto &[name, entry] : counters)
        line(name, static_cast<double>(entry.second.value()), entry.first);
    for (const auto &[name, entry] : accums) {
        line(name + ".mean", entry.second.mean(), entry.first);
        line(name + ".max", entry.second.maximum(), "");
        line(name + ".count",
             static_cast<double>(entry.second.count()), "");
    }
    for (const auto &[name, entry] : formulas)
        line(name, entry.fn(), entry.desc);
}

void
StatRegistry::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &[name, entry] : counters)
        os << name << "," << entry.second.value() << "\n";
    for (const auto &[name, entry] : accums)
        os << name << ".mean," << entry.second.mean() << "\n";
    for (const auto &[name, entry] : formulas)
        os << name << "," << entry.fn() << "\n";
}

const Counter &
StatRegistry::counterAt(const std::string &name) const
{
    auto it = counters.find(name);
    if (it == counters.end())
        LAORAM_PANIC("unknown counter: ", name);
    return it->second.second;
}

double
StatRegistry::formulaAt(const std::string &name) const
{
    auto it = formulas.find(name);
    if (it == formulas.end())
        LAORAM_PANIC("unknown formula: ", name);
    return it->second.fn();
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters.find(name) != counters.end();
}

} // namespace laoram
