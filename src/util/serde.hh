/**
 * @file
 * Versioned, checksummed binary serialization for trusted client
 * state snapshots.
 *
 * Every stateful layer (position map, stash, RNG streams, traffic
 * meter, engine metadata) speaks this format through a pair of tiny
 * codecs: Serializer appends fixed-width little-endian fields to a
 * byte buffer, Deserializer reads them back and throws SnapshotError
 * on any overrun. A finished payload is framed by seal(): magic +
 * format version + section kind + payload length + an FNV-1a 64
 * checksum over everything before the checksum field, so truncation,
 * bit flips and format drift are all rejected loudly instead of
 * deserializing garbage into a position map.
 *
 * Snapshots are *trusted-side* artifacts: they contain the position
 * map — exactly the secret ORAM exists to hide — so they are written
 * to client-side sidecar files, never into the untrusted server's
 * meta-blob region.
 */

#ifndef LAORAM_UTIL_SERDE_HH
#define LAORAM_UTIL_SERDE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace laoram::serde {

/** Thrown for any malformed, corrupt or mismatched snapshot. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Snapshot framing constants (see seal/unseal). */
constexpr std::uint64_t kSnapshotMagic = 0x31544B434F414CULL; // "LAOCKT1"
constexpr std::uint32_t kSnapshotVersion = 1;

/** Section kinds carried in the frame header. */
enum class SnapshotKind : std::uint32_t {
    Engine = 1,        ///< single-engine trusted client state
    ShardedManifest = 2, ///< ShardedLaoram splitter + shard layout
};

/** Append-only little-endian field writer. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Doubles travel as their IEEE-754 bit pattern (exact). */
    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    bytes(const std::uint8_t *p, std::size_t len)
    {
        buf.insert(buf.end(), p, p + len);
    }

    /** Length-prefixed byte blob (for nested sections / payloads). */
    void
    blob(const std::vector<std::uint8_t> &b)
    {
        u64(b.size());
        bytes(b.data(), b.size());
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

/** Bounds-checked little-endian field reader over a byte span. */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *p, std::size_t len)
        : cur(p), end(p + len)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &b)
        : Deserializer(b.data(), b.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return *cur++;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(*cur++) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(*cur++) << (8 * i);
        return v;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    bytes(std::uint8_t *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, cur, len);
        cur += len;
    }

    std::vector<std::uint8_t>
    blob()
    {
        const std::uint64_t len = u64();
        need(len);
        std::vector<std::uint8_t> b(cur, cur + len);
        cur += len;
        return b;
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - cur);
    }
    bool atEnd() const { return cur == end; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > remaining())
            throw SnapshotError(
                "snapshot truncated: field needs " + std::to_string(n)
                + " bytes but only " + std::to_string(remaining())
                + " remain");
    }

    const std::uint8_t *cur;
    const std::uint8_t *end;
};

/** FNV-1a 64-bit digest; detects any single-bit flip in the frame. */
std::uint64_t fnv1a64(const std::uint8_t *p, std::size_t len);

/**
 * Wrap @p payload in the snapshot frame:
 * [magic u64][version u32][kind u32][payloadLen u64][payload]
 * [checksum u64 over everything before the checksum].
 */
std::vector<std::uint8_t> seal(SnapshotKind kind,
                               const std::vector<std::uint8_t> &payload);

/**
 * Validate @p frame (magic, version, kind, length, checksum) and
 * return its payload. Throws SnapshotError naming the first failed
 * check — a flipped bit, a truncated file and a wrong-kind snapshot
 * all produce distinct messages.
 */
std::vector<std::uint8_t> unseal(SnapshotKind kind,
                                 const std::vector<std::uint8_t> &frame);

/**
 * Write @p data to @p path with crash-safe atomic-replace semantics:
 * the bytes go to a unique temp file in the same directory (O_EXCL,
 * pid- and sequence-suffixed, so concurrent writers against one base
 * path never collide), the temp file is fsync'd *before* rename(2)
 * moves it into place, and the parent directory is fsync'd *after*
 * so the rename itself is durable. A crash or power loss at any
 * point leaves the final path holding either the complete previous
 * contents or the complete new contents — never a truncated or
 * zero-length file. Failures before the rename unlink the temp file
 * and throw SnapshotError; a directory-fsync failure after the rename
 * also throws (durability of the replace is not yet guaranteed) but
 * leaves the already-complete new file in place.
 */
void writeFileAtomic(const std::string &path,
                     const std::vector<std::uint8_t> &data);

/**
 * Test-only fault injection for writeFileAtomic. The hook is invoked
 * after each named step — "open", "write", "fsync-file", "rename",
 * "fsync-dir" — and returning false makes that step fail exactly as
 * if the underlying syscall had (temp unlinked, SnapshotError
 * thrown). A hook may also never return (fork-based crash tests
 * _exit() inside it to simulate the process dying at that point).
 * Pass nullptr to clear. Not for production use; the hook is read
 * under a mutex, so setting it concurrently with writers is safe but
 * slow.
 */
using WriteFaultHook = bool (*)(const char *point);
void setWriteFileAtomicFaultHook(WriteFaultHook hook);

/** Read the whole file; throws SnapshotError if unreadable. */
std::vector<std::uint8_t> readFile(const std::string &path);

/** Does a regular file exist at @p path? */
bool fileExists(const std::string &path);

} // namespace laoram::serde

#endif // LAORAM_UTIL_SERDE_HH
