/**
 * @file
 * The LAORAM *server* — the untrusted CPU-DRAM side of the protocol.
 *
 * Stores the tree as a slot array behind a pluggable storage backend
 * (storage::SlotBackend): DRAM by default, or a persistent mmap file
 * (storage::StorageConfig selects). Each slot holds a fixed-size
 * record: [block id (8 B)] [assigned leaf (8 B)] [payload
 * (payloadBytes)]. Records are encrypted at rest with a fresh nonce per
 * write (crypto::Encryptor), so the only information the server-side
 * observer gains is *which slots* are touched — exactly the paper's
 * threat model.
 *
 * Path engines talk to storage through the *vectored* readSlots /
 * writeSlots calls — one per path (union) — so a backend can
 * coalesce, prefetch or issue one real I/O per path, and the
 * adversary access sink costs one branch per path instead of one per
 * slot when no sink is installed.
 *
 * `payloadBytes` is deliberately decoupled from the geometry's logical
 * `blockBytes`: correctness tests run with real payloads, while
 * paper-scale benches set payloadBytes = 0 and account traffic in
 * logical bytes, keeping memory use manageable without changing any
 * access-pattern metric.
 */

#ifndef LAORAM_ORAM_SERVER_STORAGE_HH
#define LAORAM_ORAM_SERVER_STORAGE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "crypto/encryptor.hh"
#include "oram/tree_geometry.hh"
#include "oram/types.hh"
#include "storage/slot_backend.hh"

namespace laoram::oram {

/** Untrusted tree storage with encryption-at-rest. */
class ServerStorage
{
  public:
    /**
     * DRAM-backed storage (the default everywhere a backend is not
     * explicitly configured).
     *
     * @param geom         tree geometry (not owned; must outlive)
     * @param payloadBytes bytes of payload physically stored per block
     * @param encrypt      encrypt records at rest (ChaCha20)
     * @param keySeed      key-derivation seed when encrypting
     */
    ServerStorage(const TreeGeometry &geom, std::uint64_t payloadBytes,
                  bool encrypt, std::uint64_t keySeed = 0);

    /** Storage with the backend described by @p scfg. */
    ServerStorage(const TreeGeometry &geom, std::uint64_t payloadBytes,
                  bool encrypt, std::uint64_t keySeed,
                  const storage::StorageConfig &scfg);

    /** Storage over a caller-built backend (tests, custom stores). */
    ServerStorage(const TreeGeometry &geom, std::uint64_t payloadBytes,
                  bool encrypt, std::uint64_t keySeed,
                  std::unique_ptr<storage::SlotBackend> backend);

    ~ServerStorage();

    ServerStorage(const ServerStorage &) = delete;
    ServerStorage &operator=(const ServerStorage &) = delete;

    std::uint64_t payloadBytes() const { return payBytes; }
    std::uint64_t recordBytes() const { return recBytes; }
    const TreeGeometry &geometry() const { return geom; }

    /** Read slot @p slot into @p out (reuses out.payload capacity). */
    void readSlot(std::uint64_t slot, StoredBlock &out) const;

    /** Write a real block into @p slot. */
    void writeSlot(std::uint64_t slot, BlockId id, Leaf leaf,
                   const std::uint8_t *payload, std::size_t len);

    /** Overwrite @p slot with an (encrypted) dummy record. */
    void writeDummy(std::uint64_t slot);

    /** One slot of a vectored write (id == kInvalidBlock => dummy). */
    struct SlotWriteOp
    {
        std::uint64_t slot = 0;
        BlockId id = kInvalidBlock;
        Leaf leaf = 0;
        const std::uint8_t *payload = nullptr;
        std::size_t len = 0;
    };

    /**
     * Vectored path read: fetch @p n slots as one backend operation,
     * decoding into @p out (resized to n; payload capacity reused
     * across calls). Slot i of @p slots lands in out[i].
     */
    void readSlots(const std::uint64_t *slots, std::size_t n,
                   std::vector<StoredBlock> &out) const;

    /** Vectored path write-back: apply @p n ops as one backend op. */
    void writeSlots(const SlotWriteOp *ops, std::size_t n);

    /**
     * Persist: save the encryption epoch table into the backend's
     * meta region (persistent backends) and apply its durability
     * policy. Called automatically on destruction.
     */
    void flush();

    /** Number of physical slots (== geometry().totalSlots()). */
    std::uint64_t slots() const { return nSlots; }

    /**
     * DRAM-resident bytes of this storage, as reported by the
     * backend: the full array for DRAM, the currently-mapped page set
     * for an mmap tree (its file can dwarf its resident footprint).
     */
    std::uint64_t residentBytes() const;

    /** The backend this storage runs on. */
    const storage::SlotBackend &backend() const { return *store; }

    /** Monotonic backend I/O ledger (measured ns, ops, bytes). */
    const storage::IoStats &ioStats() const { return store->ioStats(); }

    /** Drop the backend's clean pages (cold-cache benching). */
    void dropPageCache() { store->dropPageCache(); }

    /**
     * True when construction attached to an existing persistent tree
     * (slots kept as-is, epochs restored) instead of dummy-initing.
     */
    bool reopened() const { return wasReopened; }

    /**
     * Adversary's-eye view for security tests: called with
     * (slot, isWrite) on every physical slot access. The sink sees
     * exactly what a bus probe sees — addresses, never contents.
     */
    using AccessSink = std::function<void(std::uint64_t, bool)>;
    void setAccessSink(AccessSink sink) { this->sink = std::move(sink); }

  private:
    void initialise();

    /** Decode one already-plaintext record into @p out. */
    void decodePlaintext(const std::uint8_t *rec,
                         StoredBlock &out) const;

    /**
     * Decode an at-rest record the storage still owns (mapped path):
     * decrypts into scratch so the stored bytes stay encrypted.
     */
    void decodeRecord(std::uint64_t slot, const std::uint8_t *rec,
                      StoredBlock &out) const;

    /**
     * Decode an at-rest record in a caller-owned staging buffer
     * (staged path): decrypts in place, no extra copy.
     */
    void decodeStagedInPlace(std::uint64_t slot, std::uint8_t *rec,
                             StoredBlock &out) const;

    /** Serialise one write op into @p rec and encrypt in place. */
    void encodeRecord(const SlotWriteOp &op, std::uint8_t *rec);

    const TreeGeometry &geom;
    std::uint64_t payBytes;
    std::uint64_t recBytes;
    std::uint64_t nSlots;
    std::unique_ptr<storage::SlotBackend> store;
    mutable crypto::Encryptor enc;
    AccessSink sink;
    bool wasReopened = false;

    // Staging scratch, reused across calls to avoid per-path
    // allocation: decrypt copies (mapped path) and whole-path record
    // buffers + slot lists (staged path).
    mutable std::vector<std::uint8_t> cryptScratch;
    mutable std::vector<std::uint8_t> staging;
    std::vector<std::uint64_t> slotScratch;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_SERVER_STORAGE_HH
