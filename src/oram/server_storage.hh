/**
 * @file
 * The LAORAM *server* — the untrusted CPU-DRAM side of the protocol.
 *
 * Stores the tree as one contiguous slot array. Each slot holds a
 * fixed-size record: [block id (8 B)] [assigned leaf (8 B)] [payload
 * (payloadBytes)]. Records are encrypted at rest with a fresh nonce per
 * write (crypto::Encryptor), so the only information the server-side
 * observer gains is *which slots* are touched — exactly the paper's
 * threat model.
 *
 * `payloadBytes` is deliberately decoupled from the geometry's logical
 * `blockBytes`: correctness tests run with real payloads, while
 * paper-scale benches set payloadBytes = 0 and account traffic in
 * logical bytes, keeping memory use manageable without changing any
 * access-pattern metric.
 */

#ifndef LAORAM_ORAM_SERVER_STORAGE_HH
#define LAORAM_ORAM_SERVER_STORAGE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "crypto/encryptor.hh"
#include "oram/tree_geometry.hh"
#include "oram/types.hh"

namespace laoram::oram {

/** Untrusted tree storage with encryption-at-rest. */
class ServerStorage
{
  public:
    /**
     * @param geom         tree geometry (not owned; must outlive)
     * @param payloadBytes bytes of payload physically stored per block
     * @param encrypt      encrypt records at rest (ChaCha20)
     * @param keySeed      key-derivation seed when encrypting
     */
    ServerStorage(const TreeGeometry &geom, std::uint64_t payloadBytes,
                  bool encrypt, std::uint64_t keySeed = 0);

    std::uint64_t payloadBytes() const { return payBytes; }
    std::uint64_t recordBytes() const { return recBytes; }
    const TreeGeometry &geometry() const { return geom; }

    /** Read slot @p slot into @p out (reuses out.payload capacity). */
    void readSlot(std::uint64_t slot, StoredBlock &out) const;

    /** Write a real block into @p slot. */
    void writeSlot(std::uint64_t slot, BlockId id, Leaf leaf,
                   const std::uint8_t *payload, std::size_t len);

    /** Overwrite @p slot with an (encrypted) dummy record. */
    void writeDummy(std::uint64_t slot);

    /** Number of physical slots (== geometry().totalSlots()). */
    std::uint64_t slots() const { return nSlots; }

    /** Actual resident bytes of this storage (for footprint reports). */
    std::uint64_t residentBytes() const { return raw.size(); }

    /**
     * Adversary's-eye view for security tests: called with
     * (slot, isWrite) on every physical slot access. The sink sees
     * exactly what a bus probe sees — addresses, never contents.
     */
    using AccessSink = std::function<void(std::uint64_t, bool)>;
    void setAccessSink(AccessSink sink) { this->sink = std::move(sink); }

  private:
    std::uint8_t *slotPtr(std::uint64_t slot);
    const std::uint8_t *slotPtr(std::uint64_t slot) const;

    const TreeGeometry &geom;
    std::uint64_t payBytes;
    std::uint64_t recBytes;
    std::uint64_t nSlots;
    std::vector<std::uint8_t> raw;
    mutable crypto::Encryptor enc;
    AccessSink sink;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_SERVER_STORAGE_HH
