/**
 * @file
 * PathORAM (Stefanov et al.) — the baseline engine of the paper.
 *
 * Each logical access: look up the block's leaf, remap it to a fresh
 * uniform leaf, read the whole old path into the stash, perform the
 * operation, write the path back greedily, then run background
 * eviction if the stash exceeds its high-water mark. The paper treats
 * PathORAM as "LAORAM with superblock size 1" (§VII-B).
 */

#ifndef LAORAM_ORAM_PATH_ORAM_HH
#define LAORAM_ORAM_PATH_ORAM_HH

#include "oram/engine.hh"

namespace laoram::oram {

/** Classic PathORAM client over a (possibly fat) storage tree. */
class PathOram final : public TreeOramBase
{
  public:
    explicit PathOram(const EngineConfig &cfg);

    std::string name() const override { return "PathORAM"; }

    void access(BlockId id, AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out) override;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_PATH_ORAM_HH
