#include "oram/tree_geometry.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace laoram::oram {

BucketProfile
BucketProfile::uniform(std::uint64_t z)
{
    LAORAM_ASSERT(z > 0, "bucket size must be positive");
    return BucketProfile{z, z};
}

BucketProfile
BucketProfile::fat(std::uint64_t leafZ)
{
    LAORAM_ASSERT(leafZ > 0, "bucket size must be positive");
    return BucketProfile{leafZ, 2 * leafZ};
}

BucketProfile
BucketProfile::linear(std::uint64_t leafZ, std::uint64_t rootZ)
{
    LAORAM_ASSERT(leafZ > 0 && rootZ >= leafZ,
                  "need rootZ >= leafZ > 0, got ", rootZ, " -> ", leafZ);
    return BucketProfile{leafZ, rootZ};
}

TreeGeometry::TreeGeometry(std::uint64_t numBlocks,
                           std::uint64_t blockBytes,
                           const BucketProfile &profile)
    : nBlocks(numBlocks), bBytes(blockBytes), prof(profile)
{
    LAORAM_ASSERT(numBlocks >= 1, "tree needs at least one block");
    // At least one leaf per block (PathORAM convention), minimum two
    // levels so that "path" is meaningful.
    L = numBlocks <= 2 ? 1 : ceilLog2(numBlocks);
    leaves = std::uint64_t{1} << L;
    nodes = (std::uint64_t{2} << L) - 1;

    levelSlotBase.resize(L + 2, 0);
    slots = 0;
    slotsPerPath = 0;
    for (unsigned l = 0; l <= L; ++l) {
        levelSlotBase[l] = slots;
        const std::uint64_t nodes_at_level = std::uint64_t{1} << l;
        slots += nodes_at_level * bucketSize(l);
        slotsPerPath += bucketSize(l);
    }
    levelSlotBase[L + 1] = slots;
}

std::uint64_t
TreeGeometry::bucketSize(unsigned level) const
{
    LAORAM_ASSERT(level <= L, "level ", level, " beyond leaf level ", L);
    if (prof.isUniform())
        return prof.leafZ;
    // Linear decay from rootZ at level 0 to leafZ at level L, rounded
    // to the nearest integer (paper §V: 10,9,8,7,6,5 for 10->5 over six
    // levels).
    const std::uint64_t extra = prof.rootZ - prof.leafZ;
    const std::uint64_t depth_from_leaf = L - level;
    return prof.leafZ + (extra * depth_from_leaf + L / 2) / (L ? L : 1);
}

std::uint64_t
TreeGeometry::insecureBytes(std::uint64_t numBlocks,
                            std::uint64_t blockBytes)
{
    return numBlocks * blockBytes;
}

NodeIndex
TreeGeometry::pathNode(Leaf leaf, unsigned level) const
{
    LAORAM_ASSERT(leaf < leaves, "leaf ", leaf, " out of range");
    LAORAM_ASSERT(level <= L, "level out of range");
    // The ancestor of leaf node ((1<<L)-1 + leaf) at `level` is reached
    // by dropping the low (L - level) bits of the leaf index.
    return (leaf >> (L - level)) + ((std::uint64_t{1} << level) - 1);
}

unsigned
TreeGeometry::nodeLevel(NodeIndex node) const
{
    LAORAM_ASSERT(node < nodes, "node out of range");
    return floorLog2(node + 1);
}

std::uint64_t
TreeGeometry::nodeSlotBase(NodeIndex node) const
{
    const unsigned level = nodeLevel(node);
    const std::uint64_t first_at_level =
        (std::uint64_t{1} << level) - 1;
    return levelSlotBase[level]
        + (node - first_at_level) * bucketSize(level);
}

NodeIndex
TreeGeometry::slotNode(std::uint64_t slot) const
{
    LAORAM_ASSERT(slot < slots, "slot ", slot, " out of range");
    // Binary search the per-level slot bases, then divide by the
    // level's bucket size.
    unsigned lo = 0, hi = L;
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (levelSlotBase[mid] <= slot)
            lo = mid;
        else
            hi = mid - 1;
    }
    const unsigned level = lo;
    const std::uint64_t first_at_level =
        (std::uint64_t{1} << level) - 1;
    return first_at_level
        + (slot - levelSlotBase[level]) / bucketSize(level);
}

unsigned
TreeGeometry::commonLevel(Leaf a, Leaf b) const
{
    LAORAM_ASSERT(a < leaves && b < leaves, "leaf out of range");
    if (a == b)
        return L;
    // Highest differing bit position decides the divergence level.
    const unsigned msb = floorLog2(a ^ b);
    return L - (msb + 1);
}

} // namespace laoram::oram
