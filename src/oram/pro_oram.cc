#include "oram/pro_oram.hh"

#include <algorithm>
#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace laoram::oram {

StaticSuperblockOram::StaticSuperblockOram(
    const StaticSuperblockConfig &cfg)
    : TreeOramBase(cfg.base), sbSize(cfg.superblockSize)
{
    LAORAM_ASSERT(sbSize >= 1, "superblock size must be >= 1");
    // Static superblocks require group-consistent initial positions:
    // every member of an aligned group starts on the group's leaf.
    for (BlockId base = 0; base < this->cfg.numBlocks; base += sbSize) {
        const Leaf shared = posmap_.get(base);
        const BlockId end =
            std::min(base + sbSize, this->cfg.numBlocks);
        for (BlockId m = base + 1; m < end; ++m)
            posmap_.set(m, shared);
    }
    restoreAtConstructionIfConfigured();
}

std::string
StaticSuperblockOram::name() const
{
    return "PrORAM-static/S" + std::to_string(sbSize);
}

BlockId
StaticSuperblockOram::groupBase(BlockId id) const
{
    return (id / sbSize) * sbSize;
}

BlockId
StaticSuperblockOram::groupEnd(BlockId id) const
{
    return std::min(groupBase(id) + sbSize, cfg.numBlocks);
}

void
StaticSuperblockOram::access(BlockId id, AccessOp op,
                             const std::uint8_t *in, std::size_t len,
                             std::vector<std::uint8_t> *out)
{
    LAORAM_ASSERT(id < cfg.numBlocks, "block ", id, " out of range");
    mtr.recordLogicalAccess();

    // Superblock prefetch hit: the group fetch that brought this block
    // in already paid the path access; serve it from trusted memory
    // (the same accounting PrORAM and LAORAM bins use). With S == 1
    // there is no prefetching and the engine degenerates to exact
    // PathORAM behaviour.
    if (sbSize > 1) {
        if (StashEntry *entry = stash_.find(id)) {
            mtr.recordStashHit();
            entry->pinned = false; // pending access served
            applyOp(*entry, op, in, len, out);
            mtr.observeStashSize(stash_.size());
            return;
        }
    }

    const Leaf current = posmap_.get(id); // shared by the whole group

    readPathMetered(current);

    // The whole superblock moves together to one fresh uniform leaf;
    // members other than the accessed one stay pinned client-side
    // until their expected accesses arrive (prefetch retention).
    const Leaf next = randomLeaf();
    for (BlockId m = groupBase(id); m < groupEnd(id); ++m) {
        posmap_.set(m, next);
        StashEntry &entry = stashEntryFor(m, next);
        if (m == id)
            applyOp(entry, op, in, len, out);
        else if (sbSize > 1)
            entry.pinned = true;
    }

    writePathMetered(current);
    backgroundEvict();
    mtr.observeStashSize(stash_.size());
}

ProOram::ProOram(const ProOramConfig &cfg)
    : TreeOramBase(cfg.base), pcfg(cfg),
      groups(divCeil(cfg.base.numBlocks, cfg.groupSize))
{
    LAORAM_ASSERT(pcfg.groupSize >= 1, "group size must be >= 1");
    LAORAM_ASSERT(pcfg.splitThreshold < pcfg.mergeThreshold,
                  "split threshold must sit below merge threshold");
    restoreAtConstructionIfConfigured();
}

std::string
ProOram::name() const
{
    return "PrORAM/S" + std::to_string(pcfg.groupSize);
}

BlockId
ProOram::groupBase(BlockId id) const
{
    return (id / pcfg.groupSize) * pcfg.groupSize;
}

BlockId
ProOram::groupEnd(BlockId id) const
{
    return std::min(groupBase(id) + pcfg.groupSize, cfg.numBlocks);
}

void
ProOram::mergeGroup(BlockId id, AccessOp op, const std::uint8_t *in,
                    std::size_t len, std::vector<std::uint8_t> *out)
{
    // Fusing a group requires co-locating members that currently live
    // on unrelated paths: fetch the union of member paths, then remap
    // everyone to one fresh leaf and write the union back.
    std::vector<Leaf> leaves;
    for (BlockId m = groupBase(id); m < groupEnd(id); ++m)
        leaves.push_back(posmap_.get(m));
    std::sort(leaves.begin(), leaves.end());
    leaves.erase(std::unique(leaves.begin(), leaves.end()),
                 leaves.end());

    readPathsBatchedMetered(leaves);

    const Leaf next = randomLeaf();
    for (BlockId m = groupBase(id); m < groupEnd(id); ++m) {
        posmap_.set(m, next);
        StashEntry &entry = stashEntryFor(m, next);
        if (m == id)
            applyOp(entry, op, in, len, out);
        else
            entry.pinned = true; // retain for the predicted accesses
    }

    writePathsBatchedMetered(leaves);

    auto &g = groups[id / pcfg.groupSize];
    g.merged = true;
    ++nMerged;
    ++nMergeEvents;
}

void
ProOram::splitGroup(BlockId id)
{
    // Splitting is free at split time: members simply stop moving
    // together; each regains an independent leaf on its next access.
    // Retention pins are released — the prediction was withdrawn.
    auto &g = groups[id / pcfg.groupSize];
    g.merged = false;
    --nMerged;
    ++nSplitEvents;
    for (BlockId m = groupBase(id); m < groupEnd(id); ++m) {
        if (StashEntry *entry = stash_.find(m))
            entry->pinned = false;
    }
}

void
ProOram::access(BlockId id, AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out)
{
    LAORAM_ASSERT(id < cfg.numBlocks, "block ", id, " out of range");
    mtr.recordLogicalAccess();
    ++accessIndex;

    auto &g = groups[id / pcfg.groupSize];

    // Spatial-locality counter (PrORAM §4): recent activity on the
    // group raises it, silence decays it.
    if (g.everAccessed
        && accessIndex - g.lastAccess <= pcfg.window) {
        g.counter = std::min(g.counter + 1, pcfg.counterCap);
    } else {
        g.counter = std::max(g.counter - 1, 0);
    }
    g.lastAccess = accessIndex;
    g.everAccessed = true;

    if (g.merged && g.counter <= pcfg.splitThreshold)
        splitGroup(id);

    // Superblock prefetch hit on a fused group: served client-side,
    // exactly like a LAORAM bin member (the fetch that stashed it
    // already paid the oblivious access).
    if (g.merged) {
        if (StashEntry *entry = stash_.find(id)) {
            mtr.recordStashHit();
            entry->pinned = false; // pending access served
            applyOp(*entry, op, in, len, out);
            mtr.observeStashSize(stash_.size());
            return;
        }
    }

    if (!g.merged && g.counter >= pcfg.mergeThreshold) {
        // Merge performs the fetch of every member (including `id`)
        // and applies the pending operation, so the logical access
        // completes inside it.
        if (stash_.contains(id))
            mtr.recordStashHit();
        mergeGroup(id, op, in, len, out);
        backgroundEvict();
        mtr.observeStashSize(stash_.size());
        return;
    }

    const Leaf current = posmap_.get(id);
    if (stash_.contains(id))
        mtr.recordStashHit();
    readPathMetered(current);

    const Leaf next = randomLeaf();
    if (g.merged) {
        // Fused group: everyone shares `current` and moves together;
        // unaccessed members stay pinned for their predicted turns.
        for (BlockId m = groupBase(id); m < groupEnd(id); ++m) {
            posmap_.set(m, next);
            StashEntry &entry = stashEntryFor(m, next);
            if (m == id)
                applyOp(entry, op, in, len, out);
            else
                entry.pinned = true;
        }
    } else {
        posmap_.set(id, next);
        StashEntry &entry = stashEntryFor(id, next);
        applyOp(entry, op, in, len, out);
    }

    writePathMetered(current);
    backgroundEvict();
    mtr.observeStashSize(stash_.size());
}

void
ProOram::saveClientState(serde::Serializer &s) const
{
    TreeOramBase::saveClientState(s);
    s.u64(groups.size());
    for (const GroupState &g : groups) {
        s.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(
            g.counter)));
        s.u8(g.merged ? 1 : 0);
        s.u64(g.lastAccess);
        s.u8(g.everAccessed ? 1 : 0);
    }
    s.u64(accessIndex);
    s.u64(nMerged);
    s.u64(nMergeEvents);
    s.u64(nSplitEvents);
}

void
ProOram::restoreClientState(serde::Deserializer &d)
{
    TreeOramBase::restoreClientState(d);
    const std::uint64_t count = d.u64();
    if (count != groups.size())
        throw serde::SnapshotError(
            "PrORAM snapshot covers " + std::to_string(count)
            + " groups but this engine has "
            + std::to_string(groups.size()));
    for (GroupState &g : groups) {
        g.counter = static_cast<int>(
            static_cast<std::int64_t>(d.u64()));
        g.merged = d.u8() != 0;
        g.lastAccess = d.u64();
        g.everAccessed = d.u8() != 0;
    }
    accessIndex = d.u64();
    nMerged = d.u64();
    nMergeEvents = d.u64();
    nSplitEvents = d.u64();
}

} // namespace laoram::oram
