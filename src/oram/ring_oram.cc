#include "oram/ring_oram.hh"

#include <algorithm>
#include <unordered_set>

#include "util/logging.hh"

namespace laoram::oram {

namespace {

EngineConfig
withRingProfile(const RingOramConfig &rc)
{
    // Slot layout: every bucket physically holds realZ + dummies slots.
    EngineConfig c = rc.base;
    c.profile = BucketProfile::uniform(rc.realZ + rc.dummies);
    return c;
}

} // namespace

RingOram::RingOram(const RingOramConfig &cfg)
    : OramEngine(withRingProfile(cfg)),
      rcfg(cfg),
      storage_(geom, cfg.base.payloadBytes, cfg.base.encrypt,
               cfg.base.seed ^ 0x51A6, cfg.base.storage),
      posmap_(cfg.base.numBlocks, geom.numLeaves(), rng),
      buckets(geom.numNodes())
{
    requireFreshStorage(storage_, "RingORAM");
    LAORAM_ASSERT(rcfg.realZ >= 1, "RingORAM needs realZ >= 1");
    LAORAM_ASSERT(rcfg.evictEvery >= 1, "eviction rate must be >= 1");
    LAORAM_ASSERT(rcfg.realZ + rcfg.dummies <= 255,
                  "bucket too large for 8-bit slot offsets");
    const std::uint64_t slotsPerBucket = rcfg.realZ + rcfg.dummies;
    for (auto &meta : buckets)
        meta.unreadSlots = slotsPerBucket;
    byLevel.resize(geom.numLevels());
}

StashEntry &
RingOram::entryFor(BlockId id, Leaf leaf)
{
    if (StashEntry *entry = stash_.find(id)) {
        entry->leaf = leaf;
        return *entry;
    }
    auto &entry = stash_.put(id, leaf);
    entry.payload.assign(cfg.payloadBytes, 0);
    return entry;
}

std::string
RingOram::auditRing() const
{
    std::unordered_set<BlockId> seen;
    StoredBlock b;
    for (NodeIndex node = 0; node < geom.numNodes(); ++node) {
        const auto &meta = buckets[node];
        const unsigned level = geom.nodeLevel(node);
        const std::uint64_t base = geom.nodeSlotBase(node);
        if (meta.unreadSlots < meta.real.size())
            return "bucket " + std::to_string(node)
                + " has fewer unread slots than valid blocks";
        for (const auto &[id, off] : meta.real) {
            storage_.readSlot(base + off, b);
            if (b.id != id)
                return "slot record id mismatch at node "
                    + std::to_string(node);
            if (!seen.insert(id).second)
                return "block " + std::to_string(id)
                    + " duplicated in bucket metadata";
            if (stash_.contains(id))
                return "block " + std::to_string(id)
                    + " in both tree and stash";
            const Leaf mapped = posmap_.get(id);
            if (b.leaf != mapped)
                return "block " + std::to_string(id)
                    + " stored leaf disagrees with posmap";
            if (geom.pathNode(mapped, level) != node)
                return "block " + std::to_string(id)
                    + " not on its assigned path";
        }
    }
    for (const auto &[id, entry] : stash_) {
        if (entry.leaf != posmap_.get(id))
            return "stashed block " + std::to_string(id)
                + " leaf disagrees with posmap";
    }
    return {};
}

Leaf
RingOram::reverseLexLeaf(std::uint64_t counter) const
{
    // Bit-reverse the low L bits: consecutive eviction indices map to
    // maximally spread leaves (RingORAM's reverse-lexicographic order).
    const unsigned L = geom.leafLevel();
    std::uint64_t v = counter & (geom.numLeaves() - 1);
    Leaf out = 0;
    for (unsigned i = 0; i < L; ++i) {
        out = (out << 1) | (v & 1);
        v >>= 1;
    }
    return out;
}

void
RingOram::readPathSparse(Leaf leaf, BlockId id)
{
    for (unsigned level = 0; level < geom.numLevels(); ++level) {
        const NodeIndex node = geom.pathNode(leaf, level);
        auto &meta = buckets[node];
        const std::uint64_t base = geom.nodeSlotBase(node);

        auto it = std::find_if(meta.real.begin(), meta.real.end(),
                               [id](const auto &e) {
                                   return e.first == id;
                               });
        if (it != meta.real.end()) {
            storage_.readSlot(base + it->second, scratch);
            LAORAM_ASSERT(scratch.id == id, "bucket metadata desynced");
            stash_.put(scratch.id, scratch.leaf,
                       std::move(scratch.payload));
            meta.real.erase(it);
            LAORAM_ASSERT(meta.unreadSlots > 0, "read of read slot");
            --meta.unreadSlots;
        } else {
            // Burn one unread dummy slot; reshuffle first if none left.
            if (meta.unreadSlots == meta.real.size())
                earlyReshuffle(node);
            --meta.unreadSlots;
        }
    }
    // One physical block per bucket crosses the bus.
    mtr.recordPathRead(geom.numLevels() * cfg.blockBytes,
                       geom.numLevels());
}

void
RingOram::earlyReshuffle(NodeIndex node)
{
    auto &meta = buckets[node];
    const std::uint64_t base = geom.nodeSlotBase(node);
    const std::uint64_t slotsPerBucket = rcfg.realZ + rcfg.dummies;

    // Pull the still-valid blocks out with one vectored read...
    slotScratch.clear();
    for (const auto &[id, off] : meta.real)
        slotScratch.push_back(base + off);
    storage_.readSlots(slotScratch.data(), slotScratch.size(),
                       blockScratch);
    const std::uint64_t liveCount = blockScratch.size();

    // ...and rewrite the bucket wholesale (one vectored write) with
    // fresh encryption. blockScratch payloads stay alive until the
    // write completes.
    meta.real.clear();
    writeScratch.clear();
    for (std::uint64_t i = 0; i < slotsPerBucket; ++i) {
        if (i < liveCount) {
            const StoredBlock &b = blockScratch[i];
            writeScratch.push_back({base + i, b.id, b.leaf,
                                    b.payload.data(),
                                    b.payload.size()});
            meta.real.emplace_back(b.id, static_cast<std::uint8_t>(i));
        } else {
            writeScratch.push_back({base + i, kInvalidBlock, 0,
                                    nullptr, 0});
        }
    }
    storage_.writeSlots(writeScratch.data(), writeScratch.size());
    meta.unreadSlots = slotsPerBucket;

    mtr.recordReshuffle(liveCount * cfg.blockBytes, liveCount,
                        slotsPerBucket * cfg.blockBytes, slotsPerBucket);
}

void
RingOram::evictPath(Leaf leaf, bool asDummy)
{
    const std::uint64_t slotsPerBucket = rcfg.realZ + rcfg.dummies;

    // Read phase: absorb every valid block on the path with one
    // vectored read over the metadata-known slots.
    slotScratch.clear();
    for (unsigned level = 0; level < geom.numLevels(); ++level) {
        const NodeIndex node = geom.pathNode(leaf, level);
        auto &meta = buckets[node];
        const std::uint64_t base = geom.nodeSlotBase(node);
        for (const auto &[id, off] : meta.real)
            slotScratch.push_back(base + off);
        meta.real.clear();
    }
    storage_.readSlots(slotScratch.data(), slotScratch.size(),
                       blockScratch);
    const std::uint64_t blocksIn = blockScratch.size();
    for (StoredBlock &b : blockScratch)
        stash_.put(b.id, b.leaf, std::move(b.payload));

    // Write phase: greedy deepest-first refill, capacity realZ per
    // bucket; remaining slots become fresh dummies.
    for (auto &bucket : byLevel)
        bucket.clear();
    pool.clear();
    for (const auto &[id, entry] : stash_)
        byLevel[geom.commonLevel(entry.leaf, leaf)].push_back(id);

    writeScratch.clear();
    evictedScratch.clear();
    for (unsigned level = geom.numLevels(); level-- > 0;) {
        for (BlockId id : byLevel[level])
            pool.push_back(id);

        const NodeIndex node = geom.pathNode(leaf, level);
        auto &meta = buckets[node];
        const std::uint64_t base = geom.nodeSlotBase(node);
        std::uint64_t filled = 0;
        while (filled < rcfg.realZ && !pool.empty()) {
            const BlockId id = pool.back();
            pool.pop_back();
            StashEntry *entry = stash_.find(id);
            LAORAM_ASSERT(entry, "stash entry vanished during eviction");
            writeScratch.push_back({base + filled, id, entry->leaf,
                                    entry->payload.data(),
                                    entry->payload.size()});
            evictedScratch.push_back(id);
            meta.real.emplace_back(id,
                                   static_cast<std::uint8_t>(filled));
            ++filled;
        }
        for (std::uint64_t s = filled; s < slotsPerBucket; ++s)
            writeScratch.push_back({base + s, kInvalidBlock, 0,
                                    nullptr, 0});
        meta.unreadSlots = slotsPerBucket;
    }
    // One vectored write-back for the whole path; stash entries are
    // erased only afterwards so the payload pointers stay valid.
    storage_.writeSlots(writeScratch.data(), writeScratch.size());
    for (BlockId id : evictedScratch)
        stash_.erase(id);

    const std::uint64_t writeBlocks =
        geom.numLevels() * slotsPerBucket;
    if (asDummy) {
        mtr.recordDummyAccess(writeBlocks * cfg.blockBytes, writeBlocks);
    } else {
        mtr.recordPathRead(blocksIn * cfg.blockBytes, blocksIn);
        mtr.recordPathWrite(writeBlocks * cfg.blockBytes, writeBlocks);
    }
}

void
RingOram::access(BlockId id, AccessOp op, const std::uint8_t *in,
                 std::size_t len, std::vector<std::uint8_t> *out)
{
    LAORAM_ASSERT(id < cfg.numBlocks, "block ", id, " out of range");
    mtr.recordLogicalAccess();

    const Leaf current = posmap_.get(id);
    if (stash_.contains(id))
        mtr.recordStashHit();

    readPathSparse(current, id);

    const Leaf next = rng.nextBounded(geom.numLeaves());
    posmap_.set(id, next);
    StashEntry &entry = entryFor(id, next);
    applyOp(entry, op, in, len, out);

    // Deterministic eviction every A accesses.
    if (++sinceEvict >= rcfg.evictEvery) {
        evictPath(reverseLexLeaf(evictCounter++), false);
        sinceEvict = 0;
    }

    // Stash high-water safety: extra evictions billed as dummies.
    if (stash_.size() > cfg.stashHighWater) {
        constexpr std::uint64_t kMaxBurst = 100000;
        std::uint64_t issued = 0;
        while (stash_.size() > cfg.stashLowWater
               && issued < kMaxBurst) {
            evictPath(reverseLexLeaf(evictCounter++), true);
            ++issued;
        }
    }
    mtr.observeStashSize(stash_.size());
}

} // namespace laoram::oram
