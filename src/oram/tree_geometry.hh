/**
 * @file
 * Storage-tree geometry: node indexing, path navigation, bucket-size
 * profiles (uniform PathORAM buckets and the paper's fat tree), and
 * memory accounting (reproduces Table I).
 *
 * Nodes are kept in standard heap order: root is node 0 at level 0,
 * children of node i are 2i+1 and 2i+2, leaves occupy level L
 * (`leafLevel()`). Leaf `f`'s path is the node set
 * { ancestor(f, l) : l = 0..L }.
 *
 * The fat-tree profile follows §V of the paper: bucket size decays
 * linearly from `rootZ` at the root to `leafZ` at the leaves (the
 * paper's example: leaf 5, root 10, six levels → 10,9,8,7,6,5). The
 * memory-neutral study (§VIII-C) uses the general (rootZ, leafZ) form,
 * e.g. 9→5 against a uniform Z=6 tree.
 */

#ifndef LAORAM_ORAM_TREE_GEOMETRY_HH
#define LAORAM_ORAM_TREE_GEOMETRY_HH

#include <cstdint>

#include "oram/types.hh"

namespace laoram::oram {

/** Bucket-size profile: uniform (classic PathORAM) or linear fat tree. */
struct BucketProfile
{
    std::uint64_t leafZ = 4; ///< bucket size at the leaf level
    std::uint64_t rootZ = 4; ///< bucket size at the root (== leafZ when uniform)

    /** Classic PathORAM: every bucket holds @p z blocks. */
    static BucketProfile uniform(std::uint64_t z);

    /**
     * Paper's fat tree: root bucket `2z` decaying linearly to leaf
     * bucket `z`.
     */
    static BucketProfile fat(std::uint64_t leafZ);

    /** General linear profile for the memory-neutral ablation. */
    static BucketProfile linear(std::uint64_t leafZ, std::uint64_t rootZ);

    bool isUniform() const { return leafZ == rootZ; }
};

/**
 * Immutable description of one ORAM tree; all engines and the server
 * storage consult it for indexing and sizing.
 */
class TreeGeometry
{
  public:
    /**
     * @param numBlocks  logical blocks (embedding entries) to protect
     * @param blockBytes logical size of one block, used for *byte
     *                   accounting* (a 128 B DLRM row, a 4 KiB XLM-R
     *                   row); independent of the payload bytes actually
     *                   materialised in simulation
     * @param profile    bucket-size profile
     *
     * The tree gets `numLeaves = 2^ceil(log2(numBlocks))` leaves, i.e.
     * at least one leaf per block as in the PathORAM paper (and as
     * required for Table I's 8x blow-up at Z=4).
     */
    TreeGeometry(std::uint64_t numBlocks, std::uint64_t blockBytes,
                 const BucketProfile &profile);

    std::uint64_t numBlocks() const { return nBlocks; }
    std::uint64_t blockBytes() const { return bBytes; }
    const BucketProfile &profile() const { return prof; }

    unsigned leafLevel() const { return L; }
    unsigned numLevels() const { return L + 1; }
    std::uint64_t numLeaves() const { return leaves; }
    std::uint64_t numNodes() const { return nodes; }

    /** Bucket size at @p level (root = level 0). */
    std::uint64_t bucketSize(unsigned level) const;

    /** Total physical block slots in the tree. */
    std::uint64_t totalSlots() const { return slots; }

    /** Slots on one root-to-leaf path (sum of per-level bucket sizes). */
    std::uint64_t pathSlots() const { return slotsPerPath; }

    /** Logical bytes moved when one full path is read or written. */
    std::uint64_t pathBytes() const { return slotsPerPath * bBytes; }

    /** Server memory requirement of this tree (Table I columns). */
    std::uint64_t serverBytes() const { return slots * bBytes; }

    /** Memory of an unprotected flat table (Table I "Insecure"). */
    static std::uint64_t insecureBytes(std::uint64_t numBlocks,
                                       std::uint64_t blockBytes);

    /** Heap index of the node on @p leaf's path at @p level. */
    NodeIndex pathNode(Leaf leaf, unsigned level) const;

    /** Level of heap node @p node. */
    unsigned nodeLevel(NodeIndex node) const;

    /** Index of the first physical slot of @p node. */
    std::uint64_t nodeSlotBase(NodeIndex node) const;

    /** Inverse of nodeSlotBase: the node owning physical slot @p slot. */
    NodeIndex slotNode(std::uint64_t slot) const;

    /**
     * Deepest level at which the paths of @p a and @p b overlap
     * (== leafLevel() when a == b, 0 when they diverge at the root).
     */
    unsigned commonLevel(Leaf a, Leaf b) const;

  private:
    std::uint64_t nBlocks;
    std::uint64_t bBytes;
    BucketProfile prof;
    unsigned L;               ///< leaf level
    std::uint64_t leaves;     ///< 2^L
    std::uint64_t nodes;      ///< 2^(L+1) - 1
    std::uint64_t slots;      ///< total slots
    std::uint64_t slotsPerPath;
    /** slot offset of the first node of each level. */
    std::vector<std::uint64_t> levelSlotBase;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_TREE_GEOMETRY_HH
