#include "oram/position_map.hh"

#include "util/logging.hh"

namespace laoram::oram {

PositionMap::PositionMap(std::uint64_t numBlocks, std::uint64_t numLeaves,
                         Rng &rng)
    : map(numBlocks)
{
    LAORAM_ASSERT(numLeaves > 0, "need at least one leaf");
    for (auto &leaf : map)
        leaf = rng.nextBounded(numLeaves);
}

Leaf
PositionMap::get(BlockId id) const
{
    LAORAM_ASSERT(id < map.size(), "block ", id, " beyond map size ",
                  map.size());
    return map[id];
}

void
PositionMap::set(BlockId id, Leaf leaf)
{
    LAORAM_ASSERT(id < map.size(), "block ", id, " beyond map size ",
                  map.size());
    map[id] = leaf;
}

} // namespace laoram::oram
