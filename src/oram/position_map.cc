#include "oram/position_map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace laoram::oram {

PositionMap::PositionMap(std::uint64_t numBlocks, std::uint64_t numLeaves,
                         Rng &rng)
    : map(numBlocks)
{
    LAORAM_ASSERT(numLeaves > 0, "need at least one leaf");
    for (auto &leaf : map)
        leaf = rng.nextBounded(numLeaves);
}

Leaf
PositionMap::get(BlockId id) const
{
    LAORAM_ASSERT(id < map.size(), "block ", id, " beyond map size ",
                  map.size());
    return map[id];
}

void
PositionMap::set(BlockId id, Leaf leaf)
{
    LAORAM_ASSERT(id < map.size(), "block ", id, " beyond map size ",
                  map.size());
    map[id] = leaf;
}

void
PositionMap::setBatch(const BlockId *ids, const Leaf *leaves,
                      std::size_t count)
{
    BlockId maxId = 0;
    for (std::size_t i = 0; i < count; ++i)
        maxId = std::max(maxId, ids[i]);
    LAORAM_ASSERT(count == 0 || maxId < map.size(), "block ", maxId,
                  " beyond map size ", map.size());
    Leaf *const m = map.data();
    for (std::size_t i = 0; i < count; ++i)
        m[ids[i]] = leaves[i];
}

void
PositionMap::save(serde::Serializer &s) const
{
    s.u64(map.size());
    for (Leaf leaf : map)
        s.u64(leaf);
}

void
PositionMap::restore(serde::Deserializer &d)
{
    const std::uint64_t count = d.u64();
    if (count != map.size())
        throw serde::SnapshotError(
            "position-map snapshot covers " + std::to_string(count)
            + " blocks but this engine has "
            + std::to_string(map.size()));
    for (auto &leaf : map)
        leaf = d.u64();
}

} // namespace laoram::oram
