#include "oram/server_storage.hh"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/logging.hh"
#include "util/walltime.hh"

namespace laoram::oram {

namespace {

constexpr std::uint64_t kHeaderBytes = 16; // id (8) + leaf (8)

inline void
storeU64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof(v)); // little-endian hosts only (x86/ARM)
}

inline std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/**
 * Persisted-meta layout: the 4 B/slot encryption epoch table followed
 * by the 16 B key-check canary (see Encryptor::keyCheck).
 */
std::uint64_t
metaBytesFor(bool encrypt, std::uint64_t slots)
{
    return encrypt
        ? slots * sizeof(std::uint32_t) + crypto::kKeyCheckBytes
        : 0;
}

} // namespace

ServerStorage::ServerStorage(const TreeGeometry &geom,
                             std::uint64_t payloadBytes, bool encrypt,
                             std::uint64_t keySeed)
    : ServerStorage(geom, payloadBytes, encrypt, keySeed,
                    storage::StorageConfig{})
{
}

ServerStorage::ServerStorage(const TreeGeometry &geom,
                             std::uint64_t payloadBytes, bool encrypt,
                             std::uint64_t keySeed,
                             const storage::StorageConfig &scfg)
    : ServerStorage(
          geom, payloadBytes, encrypt, keySeed,
          storage::makeBackend(scfg, geom.totalSlots(),
                               kHeaderBytes + payloadBytes,
                               metaBytesFor(encrypt,
                                            geom.totalSlots())))
{
}

ServerStorage::ServerStorage(
    const TreeGeometry &geom, std::uint64_t payloadBytes, bool encrypt,
    std::uint64_t keySeed,
    std::unique_ptr<storage::SlotBackend> backend)
    : geom(geom),
      payBytes(payloadBytes),
      recBytes(kHeaderBytes + payloadBytes),
      nSlots(geom.totalSlots()),
      store(std::move(backend)),
      enc(encrypt
              ? crypto::Encryptor(crypto::Encryptor::deriveKey(keySeed),
                                  nSlots)
              : crypto::Encryptor::makeDisabled())
{
    LAORAM_ASSERT(store, "ServerStorage needs a backend");
    LAORAM_ASSERT(store->slots() == nSlots, "backend holds ",
                  store->slots(), " slots, geometry needs ", nSlots);
    LAORAM_ASSERT(store->recordBytes() == recBytes, "backend records ",
                  store->recordBytes(), " B, storage needs ", recBytes);
    initialise();
}

ServerStorage::~ServerStorage()
{
    flush();
}

void
ServerStorage::initialise()
{
    if (store->openedExisting()) {
        // Reopened persistent tree: records are served as-is; an
        // encrypted tree additionally restores the epoch table the
        // previous run persisted, so every slot decrypts under the
        // nonce it was last written with — after checking the key
        // canary, so a wrong keySeed fails loudly at reopen instead
        // of silently decoding garbage records.
        wasReopened = true;
        if (enc.enabled()) {
            const std::uint64_t want = metaBytesFor(true, nSlots);
            std::vector<std::uint8_t> meta(want, 0);
            const std::uint64_t got =
                store->readMeta(meta.data(), want);
            LAORAM_ASSERT(got == want, "reopened store returned ", got,
                          " B of epoch metadata, expected ", want);
            const auto check = enc.keyCheck();
            if (std::memcmp(meta.data() + want - check.size(),
                            check.data(), check.size())
                != 0) {
                throw std::runtime_error(
                    "reopened encrypted tree was written under a "
                    "different key (key-check canary mismatch); "
                    "refusing to serve garbage records");
            }
            enc.restoreEpochs(
                reinterpret_cast<const std::uint32_t *>(meta.data()),
                nSlots);
        }
        return;
    }

    // Every slot starts as a valid (encrypted) dummy record so that
    // the first read of any path decrypts cleanly. Initialised in
    // vectored chunks — one backend op per chunk, not per slot.
    constexpr std::uint64_t kInitChunk = 4096;
    std::vector<SlotWriteOp> ops;
    for (std::uint64_t base = 0; base < nSlots; base += kInitChunk) {
        const std::uint64_t stop =
            std::min(base + kInitChunk, nSlots);
        ops.clear();
        for (std::uint64_t s = base; s < stop; ++s) {
            SlotWriteOp op;
            op.slot = s;
            ops.push_back(op);
        }
        writeSlots(ops.data(), ops.size());
    }
}

void
ServerStorage::decodePlaintext(const std::uint8_t *rec,
                               StoredBlock &out) const
{
    out.id = loadU64(rec);
    out.leaf = loadU64(rec + 8);
    out.payload.assign(rec + kHeaderBytes, rec + recBytes);
}

void
ServerStorage::decodeRecord(std::uint64_t slot, const std::uint8_t *rec,
                            StoredBlock &out) const
{
    if (enc.enabled()) {
        // Decrypt into a scratch copy; the at-rest bytes stay
        // encrypted.
        cryptScratch.assign(rec, rec + recBytes);
        enc.decryptSlot(slot, cryptScratch.data(), cryptScratch.size());
        rec = cryptScratch.data();
    }
    decodePlaintext(rec, out);
}

void
ServerStorage::decodeStagedInPlace(std::uint64_t slot,
                                   std::uint8_t *rec,
                                   StoredBlock &out) const
{
    if (enc.enabled())
        enc.decryptSlot(slot, rec, recBytes);
    decodePlaintext(rec, out);
}

void
ServerStorage::encodeRecord(const SlotWriteOp &op, std::uint8_t *rec)
{
    LAORAM_ASSERT(op.len <= payBytes, "payload (", op.len,
                  " B) exceeds slot payload capacity (", payBytes,
                  " B)");
    storeU64(rec, op.id);
    storeU64(rec + 8, op.leaf);
    if (payBytes > 0) {
        if (op.len > 0)
            std::memcpy(rec + kHeaderBytes, op.payload, op.len);
        if (op.len < payBytes)
            std::memset(rec + kHeaderBytes + op.len, 0,
                        payBytes - op.len);
    }
    enc.encryptSlot(op.slot, rec, recBytes);
}

void
ServerStorage::readSlot(std::uint64_t slot, StoredBlock &out) const
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    if (sink)
        sink(slot, false);
    if (std::uint8_t *base = store->mappedBase()) {
        const WallClock::time_point t0 = WallClock::now();
        decodeRecord(slot, base + slot * recBytes, out);
        store->noteMappedRead(1, elapsedNs(t0));
        return;
    }
    staging.resize(recBytes);
    store->readSlot(slot, staging.data());
    decodeStagedInPlace(slot, staging.data(), out);
}

void
ServerStorage::writeSlot(std::uint64_t slot, BlockId id, Leaf leaf,
                         const std::uint8_t *payload, std::size_t len)
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    if (sink)
        sink(slot, true);
    SlotWriteOp op;
    op.slot = slot;
    op.id = id;
    op.leaf = leaf;
    op.payload = payload;
    op.len = len;
    if (std::uint8_t *base = store->mappedBase()) {
        const WallClock::time_point t0 = WallClock::now();
        encodeRecord(op, base + slot * recBytes);
        store->noteMappedWrite(1, elapsedNs(t0));
        return;
    }
    staging.resize(recBytes);
    encodeRecord(op, staging.data());
    store->writeSlot(slot, staging.data());
}

void
ServerStorage::writeDummy(std::uint64_t slot)
{
    writeSlot(slot, kInvalidBlock, 0, nullptr, 0);
}

void
ServerStorage::readSlots(const std::uint64_t *slots, std::size_t n,
                         std::vector<StoredBlock> &out) const
{
    // One branch per *path* when no sink is installed — the audit tap
    // only costs per-slot work while a probe is actually attached.
    if (sink) {
        for (std::size_t i = 0; i < n; ++i)
            sink(slots[i], false);
    }
    out.resize(n);
    if (std::uint8_t *base = store->mappedBase()) {
        store->willNeed(slots, n);
        const WallClock::time_point t0 = WallClock::now();
        for (std::size_t i = 0; i < n; ++i) {
            LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                          " out of range");
            decodeRecord(slots[i], base + slots[i] * recBytes, out[i]);
        }
        store->noteMappedRead(n, elapsedNs(t0));
        return;
    }
    staging.resize(n * recBytes);
    store->readSlots(slots, n, staging.data());
    for (std::size_t i = 0; i < n; ++i)
        decodeStagedInPlace(slots[i], staging.data() + i * recBytes,
                            out[i]);
}

void
ServerStorage::writeSlots(const SlotWriteOp *ops, std::size_t n)
{
    if (sink) {
        for (std::size_t i = 0; i < n; ++i)
            sink(ops[i].slot, true);
    }
    if (std::uint8_t *base = store->mappedBase()) {
        const WallClock::time_point t0 = WallClock::now();
        for (std::size_t i = 0; i < n; ++i) {
            LAORAM_ASSERT(ops[i].slot < nSlots, "slot ", ops[i].slot,
                          " out of range");
            encodeRecord(ops[i], base + ops[i].slot * recBytes);
        }
        store->noteMappedWrite(n, elapsedNs(t0));
        return;
    }
    staging.resize(n * recBytes);
    slotScratch.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        slotScratch[i] = ops[i].slot;
        encodeRecord(ops[i], staging.data() + i * recBytes);
    }
    store->writeSlots(slotScratch.data(), n, staging.data());
}

void
ServerStorage::flush()
{
    if (enc.enabled()) {
        const std::uint64_t want = metaBytesFor(true, nSlots);
        if (store->metaCapacity() >= want) {
            // [epoch table][key-check canary]
            std::vector<std::uint8_t> meta(want, 0);
            std::memcpy(meta.data(), enc.epochData(),
                        nSlots * sizeof(std::uint32_t));
            const auto check = enc.keyCheck();
            std::memcpy(meta.data() + want - check.size(),
                        check.data(), check.size());
            store->writeMeta(meta.data(), want);
        }
    }
    store->flush();
}

std::uint64_t
ServerStorage::residentBytes() const
{
    return store->residentBytes();
}

} // namespace laoram::oram
