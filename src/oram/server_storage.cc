#include "oram/server_storage.hh"

#include <cstring>

#include "util/logging.hh"

namespace laoram::oram {

namespace {

constexpr std::uint64_t kHeaderBytes = 16; // id (8) + leaf (8)

inline void
storeU64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof(v)); // little-endian hosts only (x86/ARM)
}

inline std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

} // namespace

ServerStorage::ServerStorage(const TreeGeometry &geom,
                             std::uint64_t payloadBytes, bool encrypt,
                             std::uint64_t keySeed)
    : geom(geom),
      payBytes(payloadBytes),
      recBytes(kHeaderBytes + payloadBytes),
      nSlots(geom.totalSlots()),
      raw(nSlots * recBytes, 0),
      enc(encrypt
              ? crypto::Encryptor(crypto::Encryptor::deriveKey(keySeed),
                                  nSlots)
              : crypto::Encryptor::makeDisabled())
{
    // Every slot starts as a valid (encrypted) dummy record so that the
    // first read of any path decrypts cleanly.
    for (std::uint64_t s = 0; s < nSlots; ++s)
        writeDummy(s);
}

std::uint8_t *
ServerStorage::slotPtr(std::uint64_t slot)
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    return raw.data() + slot * recBytes;
}

const std::uint8_t *
ServerStorage::slotPtr(std::uint64_t slot) const
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    return raw.data() + slot * recBytes;
}

void
ServerStorage::readSlot(std::uint64_t slot, StoredBlock &out) const
{
    if (sink)
        sink(slot, false);
    const std::uint8_t *rec = slotPtr(slot);
    if (enc.enabled()) {
        // Decrypt into a scratch copy; the at-rest bytes stay encrypted.
        std::vector<std::uint8_t> tmp(rec, rec + recBytes);
        enc.decryptSlot(slot, tmp.data(), tmp.size());
        out.id = loadU64(tmp.data());
        out.leaf = loadU64(tmp.data() + 8);
        out.payload.assign(tmp.begin() + kHeaderBytes, tmp.end());
    } else {
        out.id = loadU64(rec);
        out.leaf = loadU64(rec + 8);
        out.payload.assign(rec + kHeaderBytes, rec + recBytes);
    }
}

void
ServerStorage::writeSlot(std::uint64_t slot, BlockId id, Leaf leaf,
                         const std::uint8_t *payload, std::size_t len)
{
    LAORAM_ASSERT(len <= payBytes, "payload (", len,
                  " B) exceeds slot payload capacity (", payBytes, " B)");
    if (sink)
        sink(slot, true);
    std::uint8_t *rec = slotPtr(slot);
    storeU64(rec, id);
    storeU64(rec + 8, leaf);
    if (payBytes > 0) {
        if (len > 0)
            std::memcpy(rec + kHeaderBytes, payload, len);
        if (len < payBytes)
            std::memset(rec + kHeaderBytes + len, 0, payBytes - len);
    }
    enc.encryptSlot(slot, rec, recBytes);
}

void
ServerStorage::writeDummy(std::uint64_t slot)
{
    if (sink)
        sink(slot, true);
    std::uint8_t *rec = slotPtr(slot);
    storeU64(rec, kInvalidBlock);
    storeU64(rec + 8, 0);
    if (payBytes > 0)
        std::memset(rec + kHeaderBytes, 0, payBytes);
    enc.encryptSlot(slot, rec, recBytes);
}

} // namespace laoram::oram
