#include "oram/evictor.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.hh"

namespace laoram::oram {

PathIo::PathIo(const TreeGeometry &geom, ServerStorage &storage,
               Stash &stash)
    : geom(geom), storage(storage), stash(stash)
{
    byLevel.resize(geom.numLevels());
}

void
PathIo::gatherPathSlots(Leaf leaf)
{
    for (unsigned level = 0; level < geom.numLevels(); ++level) {
        const NodeIndex node = geom.pathNode(leaf, level);
        const std::uint64_t base = geom.nodeSlotBase(node);
        const std::uint64_t z = geom.bucketSize(level);
        for (std::uint64_t s = 0; s < z; ++s)
            slotScratch.push_back(base + s);
    }
}

std::uint64_t
PathIo::absorbGatheredSlots()
{
    storage.readSlots(slotScratch.data(), slotScratch.size(),
                      blockScratch);
    std::uint64_t absorbed = 0;
    for (StoredBlock &b : blockScratch) {
        if (b.isDummy())
            continue;
        // A block must never be duplicated between tree and stash.
        LAORAM_ASSERT(!stash.contains(b.id), "block ", b.id,
                      " found in tree while stashed");
        stash.put(b.id, b.leaf, std::move(b.payload));
        ++absorbed;
    }
    return absorbed;
}

std::uint64_t
PathIo::readPath(Leaf leaf)
{
    slotScratch.clear();
    gatherPathSlots(leaf);
    return absorbGatheredSlots();
}

std::uint64_t
PathIo::writePath(Leaf leaf)
{
    const unsigned levels = geom.numLevels();
    for (auto &bucket : byLevel)
        bucket.clear();
    pool.clear();

    // Bucket every evictable stash block by the deepest level of this
    // path where its own assigned path still overlaps. Pinned entries
    // are retained client-side.
    for (const auto &[id, entry] : stash) {
        if (entry.pinned)
            continue;
        byLevel[geom.commonLevel(entry.leaf, leaf)].push_back(id);
    }

    // Plan the whole path as one vectored write: real blocks reference
    // their stash payloads in place, untaken slots become dummies. The
    // stash entries are erased only after the storage op, so every
    // payload pointer stays valid for the write.
    writeScratch.clear();
    evictedScratch.clear();
    std::uint64_t written = 0;
    for (unsigned level = levels; level-- > 0;) {
        // Blocks eligible at deeper levels that did not fit spill into
        // `pool` and remain eligible here.
        for (BlockId id : byLevel[level])
            pool.push_back(id);

        const NodeIndex node = geom.pathNode(leaf, level);
        const std::uint64_t base = geom.nodeSlotBase(node);
        const std::uint64_t z = geom.bucketSize(level);
        std::uint64_t filled = 0;
        while (filled < z && !pool.empty()) {
            const BlockId id = pool.back();
            pool.pop_back();
            StashEntry *entry = stash.find(id);
            LAORAM_ASSERT(entry, "stash entry vanished during eviction");
            writeScratch.push_back({base + filled, id, entry->leaf,
                                    entry->payload.data(),
                                    entry->payload.size()});
            evictedScratch.push_back(id);
            ++filled;
            ++written;
        }
        for (std::uint64_t s = filled; s < z; ++s)
            writeScratch.push_back({base + s, kInvalidBlock, 0,
                                    nullptr, 0});
    }
    storage.writeSlots(writeScratch.data(), writeScratch.size());
    for (BlockId id : evictedScratch)
        stash.erase(id);
    return written;
}

std::vector<NodeIndex>
PathIo::pathUnion(const std::vector<Leaf> &leaves) const
{
    std::vector<NodeIndex> nodes;
    nodes.reserve(leaves.size() * geom.numLevels());
    for (Leaf leaf : leaves)
        for (unsigned level = 0; level < geom.numLevels(); ++level)
            nodes.push_back(geom.pathNode(leaf, level));
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    // Heap indices grow with level, so descending index order is
    // deepest-first — exactly the greedy write-back order.
    std::reverse(nodes.begin(), nodes.end());
    return nodes;
}

std::uint64_t
PathIo::readPathsBatched(const std::vector<Leaf> &leaves)
{
    slotScratch.clear();
    for (NodeIndex node : pathUnion(leaves)) {
        const std::uint64_t base = geom.nodeSlotBase(node);
        const std::uint64_t z = geom.bucketSize(geom.nodeLevel(node));
        for (std::uint64_t s = 0; s < z; ++s)
            slotScratch.push_back(base + s);
    }
    const std::uint64_t slots_read = slotScratch.size();
    absorbGatheredSlots();
    return slots_read;
}

std::uint64_t
PathIo::writePathsBatched(const std::vector<Leaf> &leaves)
{
    const std::vector<NodeIndex> nodes = pathUnion(leaves);

    // Seed every stash block at the deepest union node it may occupy:
    // the node realising max over leaves of commonLevel(block, leaf).
    // The maximiser shares the longest bit-prefix with the block's
    // leaf, so for a sorted leaf set it is always a lower_bound
    // neighbour — O(log k) per block instead of O(k).
    std::vector<Leaf> sorted_leaves(leaves);
    std::sort(sorted_leaves.begin(), sorted_leaves.end());

    std::unordered_map<NodeIndex, std::vector<BlockId>> pending;
    for (const auto &[id, entry] : stash) {
        if (entry.pinned)
            continue;
        auto it = std::lower_bound(sorted_leaves.begin(),
                                   sorted_leaves.end(), entry.leaf);
        unsigned best_level = 0;
        Leaf best_leaf = sorted_leaves.front();
        bool found = false;
        auto consider = [&](Leaf leaf) {
            const unsigned cl = geom.commonLevel(entry.leaf, leaf);
            if (!found || cl > best_level) {
                best_level = cl;
                best_leaf = leaf;
                found = true;
            }
        };
        if (it != sorted_leaves.end())
            consider(*it);
        if (it != sorted_leaves.begin())
            consider(*std::prev(it));
        pending[geom.pathNode(best_leaf, best_level)].push_back(id);
    }

    // Deepest-first fill; leftovers spill to the parent node, which is
    // in the union because path unions are ancestor-closed. The union
    // is written as one vectored storage op; stash entries are erased
    // after it so their payload pointers stay valid for the write.
    writeScratch.clear();
    evictedScratch.clear();
    std::uint64_t slots_written = 0;
    for (NodeIndex node : nodes) {
        auto &candidates = pending[node];
        const std::uint64_t base = geom.nodeSlotBase(node);
        const std::uint64_t z = geom.bucketSize(geom.nodeLevel(node));
        std::uint64_t filled = 0;
        while (filled < z && !candidates.empty()) {
            const BlockId id = candidates.back();
            candidates.pop_back();
            StashEntry *entry = stash.find(id);
            LAORAM_ASSERT(entry, "stash entry vanished during eviction");
            writeScratch.push_back({base + filled, id, entry->leaf,
                                    entry->payload.data(),
                                    entry->payload.size()});
            evictedScratch.push_back(id);
            ++filled;
        }
        for (std::uint64_t s = filled; s < z; ++s)
            writeScratch.push_back({base + s, kInvalidBlock, 0,
                                    nullptr, 0});
        slots_written += z;

        if (!candidates.empty() && node != 0) {
            auto &parent = pending[(node - 1) / 2];
            parent.insert(parent.end(), candidates.begin(),
                          candidates.end());
            candidates.clear();
        }
        // Leftovers at the root simply stay in the stash.
    }
    storage.writeSlots(writeScratch.data(), writeScratch.size());
    for (BlockId id : evictedScratch)
        stash.erase(id);
    return slots_written;
}

std::string
auditTree(const TreeGeometry &geom, const ServerStorage &storage,
          const Stash &stash, const PositionMap &posmap)
{
    std::ostringstream err;
    std::unordered_set<BlockId> seen;
    StoredBlock b;

    for (NodeIndex node = 0; node < geom.numNodes(); ++node) {
        const unsigned level = geom.nodeLevel(node);
        const std::uint64_t base = geom.nodeSlotBase(node);
        const std::uint64_t z = geom.bucketSize(level);
        for (std::uint64_t s = 0; s < z; ++s) {
            storage.readSlot(base + s, b);
            if (b.isDummy())
                continue;
            if (!seen.insert(b.id).second) {
                err << "block " << b.id << " duplicated in tree";
                return err.str();
            }
            if (stash.contains(b.id)) {
                err << "block " << b.id << " in both tree and stash";
                return err.str();
            }
            const Leaf mapped = posmap.get(b.id);
            if (b.leaf != mapped) {
                err << "block " << b.id << " stored leaf " << b.leaf
                    << " != posmap leaf " << mapped;
                return err.str();
            }
            if (geom.pathNode(mapped, level) != node) {
                err << "block " << b.id << " at node " << node
                    << " not on path of leaf " << mapped;
                return err.str();
            }
        }
    }

    for (const auto &[id, entry] : stash) {
        if (entry.leaf != posmap.get(id)) {
            err << "stashed block " << id << " leaf " << entry.leaf
                << " != posmap leaf " << posmap.get(id);
            return err.str();
        }
    }
    return {};
}

} // namespace laoram::oram
