#include "oram/recursive_posmap.hh"

#include <cstring>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace laoram::oram {

namespace {

/** Stash high-water mark for the small map ORAMs. */
constexpr std::uint64_t kLevelHighWater = 100;
constexpr std::uint64_t kLevelLowWater = 20;

} // namespace

RecursivePositionMap::Level::Level(std::uint64_t blocks,
                                   std::uint64_t payloadBytes,
                                   const RecursiveConfig &cfg,
                                   std::uint64_t salt)
    : blocks(blocks),
      geom(blocks, payloadBytes, BucketProfile::uniform(4)),
      storage(geom, payloadBytes, cfg.encrypt, cfg.seed ^ salt),
      stash(),
      io(geom, storage, stash)
{
}

RecursivePositionMap::RecursivePositionMap(std::uint64_t numBlocks,
                                           std::uint64_t numLeaves,
                                           const RecursiveConfig &cfg,
                                           mem::TrafficMeter &meter)
    : cfg(cfg), dataLeaves(numLeaves), meter(meter),
      rng(cfg.seed ^ 0x9eca)
{
    LAORAM_ASSERT(cfg.packing >= 2, "packing must be >= 2");
    LAORAM_ASSERT(numBlocks >= 1 && numLeaves >= 1, "degenerate map");

    // Degenerate case: the whole map fits client memory — identical
    // to the paper's flat-map design.
    if (numBlocks <= cfg.directThreshold) {
        clientMap.resize(numBlocks);
        for (auto &leaf : clientMap)
            leaf = rng.nextBounded(dataLeaves);
        return;
    }

    // Build the ORAM chain until a level's own map fits the client.
    const std::uint64_t payload_bytes = cfg.packing * 4;
    std::uint64_t n = divCeil(numBlocks, cfg.packing);
    std::uint64_t salt = 0x5151;
    while (true) {
        levels.push_back(
            std::make_unique<Level>(n, payload_bytes, cfg, salt++));
        if (n <= cfg.directThreshold)
            break;
        n = divCeil(n, cfg.packing);
    }

    // Draw every level's block positions up front, then materialise
    // payloads + tree placement bottom-up so the chain starts fully
    // consistent (all positions uniform).
    std::vector<std::vector<Leaf>> pos(levels.size());
    for (std::size_t i = 0; i < levels.size(); ++i) {
        pos[i].resize(levels[i]->blocks);
        for (auto &leaf : pos[i])
            leaf = rng.nextBounded(levels[i]->geom.numLeaves());
    }
    clientMap = pos.back();

    std::vector<std::uint8_t> payload(payload_bytes);
    for (std::size_t i = 0; i < levels.size(); ++i) {
        Level &level = *levels[i];
        // Per-node occupancy so the bulk load never overwrites.
        std::vector<std::uint8_t> filled(level.geom.numNodes(), 0);
        for (BlockId j = 0; j < level.blocks; ++j) {
            // Payload: packed child positions (level i-1 blocks, or
            // the main data map when i == 0).
            for (std::uint64_t t = 0; t < cfg.packing; ++t) {
                const std::uint64_t child = j * cfg.packing + t;
                Leaf value = 0;
                if (i == 0) {
                    value = child < numBlocks
                                ? rng.nextBounded(dataLeaves)
                                : 0;
                } else {
                    value = child < levels[i - 1]->blocks
                                ? pos[i - 1][child]
                                : 0;
                }
                storePos(payload, t, value);
            }
            // Place block j on its path, deepest free slot first.
            const Leaf home = pos[i][j];
            bool placed = false;
            for (unsigned lvl = level.geom.numLevels(); lvl-- > 0;) {
                const NodeIndex node = level.geom.pathNode(home, lvl);
                const std::uint64_t z = level.geom.bucketSize(lvl);
                if (filled[node] < z) {
                    level.storage.writeSlot(
                        level.geom.nodeSlotBase(node) + filled[node],
                        j, home, payload.data(), payload.size());
                    ++filled[node];
                    placed = true;
                    break;
                }
            }
            if (!placed)
                level.stash.put(j, home, payload);
        }
    }
}

Leaf
RecursivePositionMap::loadPos(const std::vector<std::uint8_t> &payload,
                              std::uint64_t offset)
{
    std::uint32_t v;
    std::memcpy(&v, payload.data() + offset * 4, 4);
    return v;
}

void
RecursivePositionMap::storePos(std::vector<std::uint8_t> &payload,
                               std::uint64_t offset, Leaf leaf)
{
    LAORAM_ASSERT(leaf <= 0xFFFFFFFFull,
                  "leaf exceeds packed 32-bit representation");
    const auto v = static_cast<std::uint32_t>(leaf);
    std::memcpy(payload.data() + offset * 4, &v, 4);
}

std::vector<std::uint8_t> &
RecursivePositionMap::accessLevel(Level &level, BlockId block, Leaf at,
                                  Leaf to)
{
    level.io.readPath(at);
    meter.recordPathRead(level.geom.pathBytes(),
                         level.geom.pathSlots());

    StashEntry *entry = level.stash.find(block);
    if (!entry) {
        // Should not happen after bulk init; tolerate by creating a
        // zeroed map block (positions 0 — still valid leaves).
        entry = &level.stash.put(block, to);
        entry->payload.assign(cfg.packing * 4, 0);
    }
    entry->leaf = to;
    return entry->payload;
}

Leaf
RecursivePositionMap::getAndSet(BlockId id, Leaf next)
{
    // Flat (non-recursive) fast path.
    if (levels.empty()) {
        LAORAM_ASSERT(id < clientMap.size(), "block out of range");
        const Leaf old = clientMap[id];
        clientMap[id] = next;
        return old;
    }

    // Per-level block indices and intra-block offsets.
    const std::size_t k = levels.size();
    std::vector<BlockId> block(k);
    block[0] = id / cfg.packing;
    for (std::size_t i = 1; i < k; ++i)
        block[i] = block[i - 1] / cfg.packing;

    // Innermost position comes from the client array.
    LAORAM_ASSERT(block[k - 1] < clientMap.size(),
                  "client map index out of range");
    Leaf pos = clientMap[block[k - 1]];
    Leaf npos =
        rng.nextBounded(levels[k - 1]->geom.numLeaves());
    clientMap[block[k - 1]] = npos;

    Leaf result = 0;
    for (std::size_t i = k; i-- > 0;) {
        Level &level = *levels[i];
        // Mutate the packed word BEFORE write-back; the entry may be
        // evicted into the tree by writePath.
        std::vector<std::uint8_t> &payload =
            accessLevel(level, block[i], pos, npos);

        const std::uint64_t off = (i == 0)
                                      ? id % cfg.packing
                                      : block[i - 1] % cfg.packing;
        const Leaf child = loadPos(payload, off);
        Leaf child_new;
        if (i == 0) {
            result = child;
            child_new = next;
        } else {
            child_new =
                rng.nextBounded(levels[i - 1]->geom.numLeaves());
        }
        storePos(payload, off, child_new);

        level.io.writePath(pos);
        meter.recordPathWrite(level.geom.pathBytes(),
                              level.geom.pathSlots());

        // Keep the small map stashes bounded.
        if (level.stash.size() > kLevelHighWater) {
            while (level.stash.size() > kLevelLowWater) {
                const Leaf d =
                    rng.nextBounded(level.geom.numLeaves());
                level.io.readPath(d);
                level.io.writePath(d);
                meter.recordDummyAccess(level.geom.pathBytes(),
                                        level.geom.pathSlots());
            }
        }

        pos = child;
        npos = child_new;
    }
    return result;
}

const std::vector<std::uint8_t> *
RecursivePositionMap::peekLevel(const Level &level, BlockId block,
                                Leaf at,
                                std::vector<std::uint8_t> &scratch)
    const
{
    if (const StashEntry *entry = level.stash.find(block))
        return &entry->payload;
    StoredBlock b;
    for (unsigned lvl = 0; lvl < level.geom.numLevels(); ++lvl) {
        const NodeIndex node = level.geom.pathNode(at, lvl);
        const std::uint64_t base = level.geom.nodeSlotBase(node);
        const std::uint64_t z = level.geom.bucketSize(lvl);
        for (std::uint64_t s = 0; s < z; ++s) {
            level.storage.readSlot(base + s, b);
            if (!b.isDummy() && b.id == block) {
                scratch = b.payload;
                return &scratch;
            }
        }
    }
    return nullptr;
}

Leaf
RecursivePositionMap::peek(BlockId id) const
{
    if (levels.empty())
        return clientMap.at(id);

    const std::size_t k = levels.size();
    std::vector<BlockId> block(k);
    block[0] = id / cfg.packing;
    for (std::size_t i = 1; i < k; ++i)
        block[i] = block[i - 1] / cfg.packing;

    Leaf pos = clientMap.at(block[k - 1]);
    std::vector<std::uint8_t> scratch;
    for (std::size_t i = k; i-- > 0;) {
        const std::vector<std::uint8_t> *payload =
            peekLevel(*levels[i], block[i], pos, scratch);
        LAORAM_ASSERT(payload, "map block ", block[i],
                      " missing at level ", i);
        const std::uint64_t off = (i == 0)
                                      ? id % cfg.packing
                                      : block[i - 1] % cfg.packing;
        pos = loadPos(*payload, off);
    }
    return pos;
}

std::uint64_t
RecursivePositionMap::clientBytes() const
{
    std::uint64_t bytes = clientMap.size() * sizeof(Leaf);
    for (const auto &level : levels)
        bytes += level->stash.residentBytes(cfg.packing * 4);
    return bytes;
}

std::uint64_t
RecursivePositionMap::serverBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &level : levels)
        bytes += level->geom.serverBytes();
    return bytes;
}

void
RecursivePositionMap::save(serde::Serializer &s) const
{
    rng.save(s);
    s.u64(clientMap.size());
    for (Leaf leaf : clientMap)
        s.u64(leaf);

    s.u64(levels.size());
    for (const auto &level : levels) {
        s.u64(level->blocks);
        level->stash.save(s);
        // Decoded tree slots: dummies travel as the invalid id alone,
        // real records carry leaf + packed-position payload.
        s.u64(level->storage.slots());
        StoredBlock b;
        for (std::uint64_t slot = 0; slot < level->storage.slots();
             ++slot) {
            level->storage.readSlot(slot, b);
            s.u64(b.id);
            if (b.isDummy())
                continue;
            s.u64(b.leaf);
            s.blob(b.payload);
        }
    }
}

void
RecursivePositionMap::restore(serde::Deserializer &d)
{
    rng.restore(d);
    const std::uint64_t mapSize = d.u64();
    if (mapSize != clientMap.size())
        throw serde::SnapshotError(
            "recursive-map snapshot has a client map of "
            + std::to_string(mapSize) + " entries but this chain has "
            + std::to_string(clientMap.size()));
    for (Leaf &leaf : clientMap)
        leaf = d.u64();

    const std::uint64_t levelCount = d.u64();
    if (levelCount != levels.size())
        throw serde::SnapshotError(
            "recursive-map snapshot has " + std::to_string(levelCount)
            + " ORAM levels but this chain has "
            + std::to_string(levels.size()));
    for (auto &level : levels) {
        const std::uint64_t blocks = d.u64();
        if (blocks != level->blocks)
            throw serde::SnapshotError(
                "recursive-map level covers "
                + std::to_string(blocks)
                + " blocks in the snapshot but "
                + std::to_string(level->blocks) + " here");
        level->stash.restore(d);
        const std::uint64_t slots = d.u64();
        if (slots != level->storage.slots())
            throw serde::SnapshotError(
                "recursive-map level has " + std::to_string(slots)
                + " tree slots in the snapshot but "
                + std::to_string(level->storage.slots()) + " here");
        for (std::uint64_t slot = 0; slot < slots; ++slot) {
            const BlockId id = d.u64();
            if (id == kInvalidBlock) {
                level->storage.writeDummy(slot);
                continue;
            }
            const Leaf leaf = d.u64();
            const std::vector<std::uint8_t> payload = d.blob();
            level->storage.writeSlot(slot, id, leaf, payload.data(),
                                     payload.size());
        }
    }
}

RecursivePathOram::RecursivePathOram(const EngineConfig &cfg,
                                     const RecursiveConfig &rcfg)
    : OramEngine(cfg),
      storage_(geom, cfg.payloadBytes, cfg.encrypt, cfg.seed ^ 0x2EC,
               cfg.storage),
      stash_(),
      pathIo_(geom, storage_, stash_),
      rpm(cfg.numBlocks, geom.numLeaves(), rcfg, mtr)
{
    requireFreshStorage(storage_, "recursive PathORAM");
}

void
RecursivePathOram::access(BlockId id, AccessOp op,
                          const std::uint8_t *in, std::size_t len,
                          std::vector<std::uint8_t> *out)
{
    LAORAM_ASSERT(id < cfg.numBlocks, "block ", id, " out of range");
    mtr.recordLogicalAccess();

    const Leaf next = rng.nextBounded(geom.numLeaves());
    // One oblivious access per recursion level, then the data path.
    const Leaf current = rpm.getAndSet(id, next);

    if (stash_.contains(id))
        mtr.recordStashHit();
    pathIo_.readPath(current);
    mtr.recordPathRead(geom.pathBytes(), geom.pathSlots());

    StashEntry *entry = stash_.find(id);
    if (!entry) {
        entry = &stash_.put(id, next);
        entry->payload.assign(cfg.payloadBytes, 0);
    }
    entry->leaf = next;
    applyOp(*entry, op, in, len, out);

    pathIo_.writePath(current);
    mtr.recordPathWrite(geom.pathBytes(), geom.pathSlots());

    if (stash_.size() > cfg.stashHighWater) {
        while (stash_.size() > cfg.stashLowWater) {
            const Leaf d = rng.nextBounded(geom.numLeaves());
            pathIo_.readPath(d);
            pathIo_.writePath(d);
            mtr.recordDummyAccess(geom.pathBytes(), geom.pathSlots());
        }
    }
    mtr.observeStashSize(stash_.size());
}

std::string
RecursivePathOram::auditRecursive(std::uint64_t sampleStride) const
{
    StoredBlock b;
    for (NodeIndex node = 0; node < geom.numNodes(); ++node) {
        const unsigned level = geom.nodeLevel(node);
        const std::uint64_t base = geom.nodeSlotBase(node);
        const std::uint64_t z = geom.bucketSize(level);
        for (std::uint64_t s = 0; s < z; ++s) {
            storage_.readSlot(base + s, b);
            if (b.isDummy() || (b.id % sampleStride) != 0)
                continue;
            const Leaf mapped = rpm.peek(b.id);
            if (b.leaf != mapped)
                return "block " + std::to_string(b.id)
                    + " stored leaf disagrees with recursive map";
            if (geom.pathNode(mapped, level) != node)
                return "block " + std::to_string(b.id)
                    + " off its mapped path";
        }
    }
    for (const auto &[id, entry] : stash_) {
        if (entry.leaf != rpm.peek(id))
            return "stashed block " + std::to_string(id)
                + " disagrees with recursive map";
    }
    return {};
}

} // namespace laoram::oram
