/**
 * @file
 * Client-side stash: trusted overflow storage for blocks that could not
 * be written back into the tree (paper §II-E). Lives in GPU HBM in the
 * paper's deployment; accesses to it are invisible to the adversary.
 */

#ifndef LAORAM_ORAM_STASH_HH
#define LAORAM_ORAM_STASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "oram/types.hh"
#include "util/serde.hh"

namespace laoram::oram {

/** A block resident in the stash. */
struct StashEntry
{
    Leaf leaf = 0;
    /**
     * Pinned entries are retained client-side and skipped by
     * write-back eviction — used by superblock engines to keep a
     * prefetched group resident until its pending accesses arrive.
     */
    bool pinned = false;
    std::vector<std::uint8_t> payload;
};

/**
 * Hash-map stash with the iteration support the greedy evictor needs.
 */
class Stash
{
  public:
    /** @return entry for @p id or nullptr. */
    StashEntry *find(BlockId id);
    const StashEntry *find(BlockId id) const;

    /**
     * Insert or overwrite @p id. Returns the (possibly pre-existing)
     * entry.
     */
    StashEntry &put(BlockId id, Leaf leaf,
                    std::vector<std::uint8_t> payload);

    /** Insert a payload-less entry (pattern-only simulations). */
    StashEntry &put(BlockId id, Leaf leaf);

    void erase(BlockId id);
    bool contains(BlockId id) const
    {
        return entries.find(id) != entries.end();
    }

    /** Clear every pin (used when stash pressure trumps retention). */
    void unpinAll();

    std::uint64_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Iterate all (id, entry) pairs; mutation of leaves is allowed. */
    auto begin() { return entries.begin(); }
    auto end() { return entries.end(); }
    auto begin() const { return entries.begin(); }
    auto end() const { return entries.end(); }

    /** Approximate client memory held by stash blocks. */
    std::uint64_t residentBytes(std::uint64_t payloadBytes) const
    {
        return size() * (sizeof(BlockId) + sizeof(Leaf) + payloadBytes);
    }

    /**
     * Checkpoint support. Entries are serialized sorted by block id,
     * so a given stash state always produces identical snapshot
     * bytes regardless of hash-map iteration order. restore()
     * replaces the current contents.
     */
    void save(serde::Serializer &s) const;
    void restore(serde::Deserializer &d);

  private:
    std::unordered_map<BlockId, StashEntry> entries;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_STASH_HH
