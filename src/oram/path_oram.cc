#include "oram/path_oram.hh"

#include "util/logging.hh"

namespace laoram::oram {

PathOram::PathOram(const EngineConfig &cfg) : TreeOramBase(cfg)
{
    restoreAtConstructionIfConfigured();
}

void
PathOram::access(BlockId id, AccessOp op, const std::uint8_t *in,
                 std::size_t len, std::vector<std::uint8_t> *out)
{
    LAORAM_ASSERT(id < cfg.numBlocks, "block ", id, " out of range");
    mtr.recordLogicalAccess();

    // (1) Look up the current path; even a stash-resident block incurs
    // a full path access so that the server-visible pattern stays
    // independent of stash state.
    const Leaf current = posmap_.get(id);
    if (stash_.contains(id))
        mtr.recordStashHit();

    // (2) Fetch the path.
    readPathMetered(current);

    // (3)+(4) Remap to an independent uniform leaf, then operate on
    // the block inside trusted memory.
    const Leaf next = randomLeaf();
    posmap_.set(id, next);
    StashEntry &entry = stashEntryFor(id, next);
    applyOp(entry, op, in, len, out);

    // (5) Greedy write-back along the path just read.
    writePathMetered(current);

    // §II-E: dummy reads once the stash passes its threshold.
    backgroundEvict();
    mtr.observeStashSize(stash_.size());
}

} // namespace laoram::oram
