/**
 * @file
 * Common engine interface and the shared tree-ORAM base class.
 *
 * Every address-hiding scheme in this repository (PathORAM, PrORAM
 * static/dynamic, RingORAM, LAORAM) implements OramEngine, so the
 * benchmark harness can run identical traces through interchangeable
 * engines and compare the traffic meters.
 */

#ifndef LAORAM_ORAM_ENGINE_HH
#define LAORAM_ORAM_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/cost_model.hh"
#include "mem/traffic_meter.hh"
#include "oram/evictor.hh"
#include "oram/position_map.hh"
#include "oram/server_storage.hh"
#include "oram/stash.hh"
#include "oram/tree_geometry.hh"
#include "oram/types.hh"
#include "util/rng.hh"
#include "util/serde.hh"

namespace laoram::oram {

/** Configuration shared by all engines. */
struct EngineConfig
{
    std::uint64_t numBlocks = 1024;  ///< logical blocks to protect
    std::uint64_t blockBytes = 128;  ///< logical block size (accounting)
    std::uint64_t payloadBytes = 0;  ///< physically stored payload bytes
    BucketProfile profile = BucketProfile::uniform(4);
    std::uint64_t stashHighWater = 500; ///< background-eviction trigger
    std::uint64_t stashLowWater = 50;   ///< background-eviction target
    bool encrypt = false;            ///< ChaCha20 at-rest encryption
    std::uint64_t seed = 1;          ///< master RNG seed
    mem::CostModelParams cost{};     ///< latency/bandwidth model

    /**
     * Where the tree's slot records physically live: DRAM (default)
     * or a persistent mmap file. See storage::StorageConfig.
     */
    storage::StorageConfig storage{};

    /**
     * Trusted client-state snapshot sidecar (see
     * storage::CheckpointConfig). With restore set, the engine
     * reloads its position map / stash / RNG streams / meter from
     * checkpoint.path at construction instead of initialising fresh
     * — the only way a keepExisting tree reopen is serveable.
     */
    storage::CheckpointConfig checkpoint{};
};

/**
 * Derive a shard-local engine configuration from one logical config:
 * same knobs (block size, bucket profile, water marks, cost model),
 * but covering only @p shardBlocks blocks — so each shard's tree
 * geometry shrinks with its slice of the id space — and seeded with
 * the shard's own @p shardSeed. A file-backed storage path is suffixed
 * with the shard seed so every shard tree maps its own file. The
 * result is exactly the config a standalone engine over that
 * sub-space would use, which is what makes sharded runs reproducible
 * against unsharded per-shard references.
 */
EngineConfig shardEngineConfig(const EngineConfig &base,
                               std::uint64_t shardBlocks,
                               std::uint64_t shardSeed);

/**
 * Abstract address-hiding engine.
 *
 * A logical access touches one block id; the engine translates it into
 * oblivious server traffic and charges the traffic meter. Engines with
 * payload support move real bytes; with payloadBytes == 0 they degrade
 * to pure access-pattern simulators (all paper metrics are
 * pattern-level).
 */
class OramEngine
{
  public:
    explicit OramEngine(const EngineConfig &cfg);
    virtual ~OramEngine() = default;

    OramEngine(const OramEngine &) = delete;
    OramEngine &operator=(const OramEngine &) = delete;

    virtual std::string name() const = 0;

    /**
     * Perform one logical access.
     *
     * @param id  block to touch (< numBlocks)
     * @param op  Read / Write / Touch
     * @param in  payload for writes (may be null for Touch/Read)
     * @param len payload length for writes
     * @param out filled with the block's payload on reads (optional)
     */
    virtual void access(BlockId id, AccessOp op,
                        const std::uint8_t *in, std::size_t len,
                        std::vector<std::uint8_t> *out) = 0;

    /** Convenience wrappers. */
    void touch(BlockId id) { access(id, AccessOp::Touch, nullptr, 0,
                                    nullptr); }
    void readBlock(BlockId id, std::vector<std::uint8_t> &out);
    void writeBlock(BlockId id, const std::vector<std::uint8_t> &data);

    /**
     * Run a whole address trace. The default walks the trace one touch
     * at a time; LAORAM overrides it with preprocessing + superblock
     * accesses.
     */
    virtual void runTrace(const std::vector<BlockId> &trace);

    /** Blocks currently held in trusted client memory. */
    virtual std::uint64_t stashSize() const = 0;

    const TreeGeometry &geometry() const { return geom; }
    const mem::TrafficMeter &meter() const { return mtr; }
    const EngineConfig &config() const { return cfg; }

    /**
     * Serialize all trusted client state (geometry header, meter,
     * RNG; subclasses append position map, stash, their own
     * counters). Call only at a quiescent point — for pipelined runs
     * that means a window boundary, where the serving thread owns
     * every piece of engine state (see PipelineConfig's
     * window-boundary hook).
     */
    virtual void saveClientState(serde::Serializer &s) const;

    /**
     * Inverse of saveClientState. Throws serde::SnapshotError when
     * the snapshot's geometry header does not match this engine's
     * configuration (wrong-geometry snapshots are refused, never
     * half-applied: validation happens before any state is touched).
     */
    virtual void restoreClientState(serde::Deserializer &d);

    /**
     * Versioned, checksummed snapshot of the trusted client state,
     * flushing server storage first so tree and snapshot land on the
     * same boundary. The blob restores via restoreFrom() into an
     * engine built over the *same* persisted tree.
     */
    std::vector<std::uint8_t> checkpoint();

    /** Validate + apply a checkpoint() blob; throws on any mismatch. */
    void restoreFrom(const std::vector<std::uint8_t> &blob);

    /** checkpoint() to a client-side sidecar file (atomic rename). */
    void checkpointToFile(const std::string &path);

    /** restoreFrom() the sidecar file at @p path. */
    void restoreFromFile(const std::string &path);

  protected:
    /** Flush hook so checkpoint() can quiesce owned server storage. */
    virtual void quiesceStorage() {}

    /**
     * Apply a logical operation to a stash-resident block. Payloads are
     * kept at exactly payloadBytes (zero-padded), so reads after short
     * writes return the padded block, mirroring fixed-size ORAM slots.
     */
    void applyOp(StashEntry &entry, AccessOp op, const std::uint8_t *in,
                 std::size_t len, std::vector<std::uint8_t> *out) const;

    EngineConfig cfg;
    TreeGeometry geom;
    mem::TrafficMeter mtr;
    Rng rng;
};

/**
 * The restore-or-fresh decision every storage-owning engine makes at
 * construction. Fresh storage with no restore request: proceed. A
 * keepExisting reopen is serveable only when a matching client-state
 * snapshot is configured (cfg.checkpoint.restore with an existing
 * snapshot file); otherwise — and when restore is requested against
 * a fresh tree — this fatals with a message naming the
 * checkpoint/restore flow and the exact CLI flags.
 */
void resolveRestoreOrFresh(const ServerStorage &storage,
                           const EngineConfig &cfg);

/**
 * Fatal when @p storage attached to a previous run's tree
 * (keepExisting) under an engine with no checkpoint/restore support
 * (@p engineName: RingORAM, recursive PathORAM). Points at the
 * LAORAM checkpoint flow instead of dead-ending.
 */
void requireFreshStorage(const ServerStorage &storage,
                         const char *engineName);

/**
 * Shared machinery for the PathORAM-family engines: server storage,
 * position map, stash, path I/O, metered path operations and the
 * background-eviction (dummy read) loop of §II-E.
 */
class TreeOramBase : public OramEngine
{
  public:
    explicit TreeOramBase(const EngineConfig &cfg);

    std::uint64_t stashSize() const override { return stash_.size(); }

    /** Test hooks: expose internals for invariant auditing. */
    const ServerStorage &storageForAudit() const { return storage_; }
    const Stash &stashForAudit() const { return stash_; }
    const PositionMap &posmapForAudit() const { return posmap_; }

    /** Mutable storage access for installing test access sinks. */
    ServerStorage &storageForTest() { return storage_; }

    /** Adds position map + stash to the base engine sections. */
    void saveClientState(serde::Serializer &s) const override;
    void restoreClientState(serde::Deserializer &d) override;

  protected:
    void quiesceStorage() override { storage_.flush(); }

    /**
     * Final-class constructors call this as their *last* step: when
     * cfg.checkpoint.restore is configured it reloads the snapshot
     * (the base constructor already vetted the storage side via
     * resolveRestoreOrFresh). Must run from the most-derived
     * constructor so the full restoreClientState override chain is
     * in place.
     */
    void restoreAtConstructionIfConfigured();

    /**
     * Fetch @p id's stash entry, creating a zero-filled one on first
     * touch (blocks are lazily initialised: an unwritten block reads as
     * zeros).
     */
    StashEntry &stashEntryFor(BlockId id, Leaf leaf);

    /** Read @p leaf's path into the stash and charge the meter. */
    void readPathMetered(Leaf leaf);

    /** Write @p leaf's path back from the stash and charge the meter. */
    void writePathMetered(Leaf leaf);

    /**
     * Batched union read/write of several paths (superblock bins,
     * PrORAM merges). Required for correctness when paths overlap —
     * see PathIo::writePathsBatched.
     */
    void readPathsBatchedMetered(const std::vector<Leaf> &leaves);
    void writePathsBatchedMetered(const std::vector<Leaf> &leaves);

    /**
     * Issue dummy accesses (random path read + write-back, no remap)
     * while the stash exceeds the high-water mark, draining to the
     * low-water mark (§II-E; Table II experiment uses 500 -> 50).
     */
    void backgroundEvict();

    /** Draw a uniform leaf. */
    Leaf randomLeaf() { return rng.nextBounded(geom.numLeaves()); }

    ServerStorage storage_;
    PositionMap posmap_;
    Stash stash_;
    PathIo pathIo_;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_ENGINE_HH
