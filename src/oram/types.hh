/**
 * @file
 * Fundamental vocabulary types shared by every ORAM engine.
 */

#ifndef LAORAM_ORAM_TYPES_HH
#define LAORAM_ORAM_TYPES_HH

#include <cstdint>
#include <limits>
#include <vector>

namespace laoram::oram {

/** Logical block (embedding-table entry) identifier. */
using BlockId = std::uint64_t;

/** Leaf index in [0, numLeaves); names one root-to-leaf path. */
using Leaf = std::uint64_t;

/** Heap-order node index in the storage tree (root = 0). */
using NodeIndex = std::uint64_t;

/** Marks an empty (dummy) slot in server storage. */
inline constexpr BlockId kInvalidBlock =
    std::numeric_limits<BlockId>::max();

/** Marks "no preprocessed future path; draw one uniformly at random". */
inline constexpr Leaf kNoFuturePath = std::numeric_limits<Leaf>::max();

/** Operation kinds for a logical access. */
enum class AccessOp : std::uint8_t {
    Read,   ///< fetch payload
    Write,  ///< replace payload
    Touch,  ///< access for pattern purposes only (no payload movement)
};

/** A block as it crosses the client/server boundary. */
struct StoredBlock
{
    BlockId id = kInvalidBlock;
    Leaf leaf = 0;
    std::vector<std::uint8_t> payload;

    bool isDummy() const { return id == kInvalidBlock; }
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_TYPES_HH
