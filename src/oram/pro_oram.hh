/**
 * @file
 * PrORAM-style superblock baselines (Yu et al., ISCA'15), as discussed
 * in paper §II-D and §IX.
 *
 * Two engines:
 *
 * - StaticSuperblockOram: every aligned group of `superblockSize`
 *   consecutive block ids permanently shares one path ("static
 *   superblocks"). An access to any member fetches the shared path and
 *   remaps the whole group to a fresh common leaf.
 *
 * - ProOram ("dynamic superblocks"): per-group spatial-locality
 *   counters. When members of an aligned group are accessed close
 *   together in time the counter rises; crossing the merge threshold
 *   fuses the group onto one path. When co-access stops the counter
 *   decays and the group splits back into independent blocks. This is a
 *   faithful-in-spirit approximation of PrORAM's counter scheme (the
 *   original tracks DRAM-row-granularity locality); on the
 *   high-entropy embedding traces studied here its merge rate collapses
 *   and it degenerates to PathORAM — exactly the observation the paper
 *   uses to justify look-ahead (Fig. 2 discussion).
 */

#ifndef LAORAM_ORAM_PRO_ORAM_HH
#define LAORAM_ORAM_PRO_ORAM_HH

#include "oram/engine.hh"

namespace laoram::oram {

/** Configuration for the static-superblock engine. */
struct StaticSuperblockConfig
{
    EngineConfig base;
    std::uint64_t superblockSize = 4; ///< aligned group width (>= 1)
};

/** PrORAM's static superblocks: id/S defines an immutable group. */
class StaticSuperblockOram final : public TreeOramBase
{
  public:
    explicit StaticSuperblockOram(const StaticSuperblockConfig &cfg);

    std::string name() const override;

    void access(BlockId id, AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out) override;

  private:
    /** First member id of @p id's group. */
    BlockId groupBase(BlockId id) const;
    /** One-past-last member id of @p id's group. */
    BlockId groupEnd(BlockId id) const;

    std::uint64_t sbSize;
};

/** Configuration for the dynamic (counter-based) PrORAM engine. */
struct ProOramConfig
{
    EngineConfig base;
    std::uint64_t groupSize = 4;   ///< candidate superblock width
    std::uint64_t window = 128;    ///< co-access recency window (accesses)
    int mergeThreshold = 4;        ///< counter value that fuses a group
    int splitThreshold = 0;        ///< counter value that splits a group
    int counterCap = 8;            ///< saturation cap
};

/** PrORAM with dynamic counter-driven superblock formation. */
class ProOram final : public TreeOramBase
{
  public:
    explicit ProOram(const ProOramConfig &cfg);

    std::string name() const override;

    void access(BlockId id, AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out) override;

    /** Groups currently fused (observability for tests/benches). */
    std::uint64_t mergedGroups() const { return nMerged; }
    std::uint64_t totalMerges() const { return nMergeEvents; }
    std::uint64_t totalSplits() const { return nSplitEvents; }

    /** Adds the group counters to the tree-ORAM sections. */
    void saveClientState(serde::Serializer &s) const override;
    void restoreClientState(serde::Deserializer &d) override;

  private:
    struct GroupState
    {
        int counter = 0;
        bool merged = false;
        std::uint64_t lastAccess = 0; ///< global access index
        bool everAccessed = false;
    };

    BlockId groupBase(BlockId id) const;
    BlockId groupEnd(BlockId id) const;
    /**
     * Fuse @p id's group: fetch every member's path (batched), remap
     * all members to one fresh leaf, apply the pending operation on
     * @p id, then write the path union back. The op must be applied
     * before write-back, which may evict the block to the tree.
     */
    void mergeGroup(BlockId id, AccessOp op, const std::uint8_t *in,
                    std::size_t len, std::vector<std::uint8_t> *out);
    void splitGroup(BlockId id);

    ProOramConfig pcfg;
    std::vector<GroupState> groups;
    std::uint64_t accessIndex = 0;
    std::uint64_t nMerged = 0;
    std::uint64_t nMergeEvents = 0;
    std::uint64_t nSplitEvents = 0;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_PRO_ORAM_HH
