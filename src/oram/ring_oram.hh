/**
 * @file
 * RingORAM (Ren et al.) — the bandwidth-optimised alternative the
 * paper discusses in §VIII-G.
 *
 * Per logical access RingORAM reads exactly *one* slot per bucket on
 * the path (the requested block where present, an unread dummy
 * elsewhere) instead of PathORAM's full buckets, and defers eviction
 * to every A-th access along reverse-lexicographic paths. Buckets
 * whose unread slots are exhausted are reshuffled early.
 *
 * Simplifications relative to the original (documented in DESIGN.md):
 * bucket metadata (which slot holds which block, remaining unread
 * dummies) is kept client-side instead of in encrypted server headers,
 * and the XOR trick for combining dummy reads is omitted. Neither
 * changes the block-fetch counts the §VIII-G comparison is about.
 */

#ifndef LAORAM_ORAM_RING_ORAM_HH
#define LAORAM_ORAM_RING_ORAM_HH

#include "oram/engine.hh"

namespace laoram::oram {

/** RingORAM-specific knobs layered on the common EngineConfig. */
struct RingOramConfig
{
    EngineConfig base;       ///< base.profile is ignored (see realZ/dummies)
    std::uint64_t realZ = 4; ///< real-block capacity per bucket (Z)
    std::uint64_t dummies = 4; ///< extra dummy slots per bucket (S)
    std::uint64_t evictEvery = 3; ///< eviction rate (A)
};

/** Simplified RingORAM engine. */
class RingOram final : public OramEngine
{
  public:
    explicit RingOram(const RingOramConfig &cfg);

    std::string name() const override { return "RingORAM"; }

    void access(BlockId id, AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out) override;

    std::uint64_t stashSize() const override { return stash_.size(); }

    const RingOramConfig &ringConfig() const { return rcfg; }

    /** Mutable storage access for installing test access sinks. */
    ServerStorage &storageForTest() { return storage_; }

    /**
     * Invariant audit specialised for RingORAM (sparse reads leave
     * stale ciphertext behind, so the generic auditTree cannot be
     * used): every *valid* block per bucket metadata must match its
     * stored record, lie on its position-map path, and appear exactly
     * once across tree metadata and stash.
     *
     * @return empty string when consistent, else the first violation
     */
    std::string auditRing() const;

  private:
    /** Per-bucket client-side metadata. */
    struct BucketMeta
    {
        /** (block id, physical slot offset) for each valid real block. */
        std::vector<std::pair<BlockId, std::uint8_t>> real;
        /** Unread slots still usable to answer accesses obliviously. */
        std::uint64_t unreadSlots = 0;
    };

    StashEntry &entryFor(BlockId id, Leaf leaf);

    /**
     * Deterministic reverse-lexicographic eviction order: spreads
     * consecutive evictions across the tree (RingORAM §3.2).
     */
    Leaf reverseLexLeaf(std::uint64_t counter) const;

    /** Read one slot per bucket along @p leaf, hunting for @p id. */
    void readPathSparse(Leaf leaf, BlockId id);

    /**
     * EvictPath: pull every valid block on @p leaf's path into the
     * stash, then refill buckets greedily up to realZ blocks each.
     * @p asDummy charges the access as a background-eviction dummy.
     */
    void evictPath(Leaf leaf, bool asDummy);

    /** Re-randomise a bucket whose unread slots ran out. */
    void earlyReshuffle(NodeIndex node);

    RingOramConfig rcfg;
    ServerStorage storage_;
    PositionMap posmap_;
    Stash stash_;
    std::vector<BucketMeta> buckets;
    std::uint64_t evictCounter = 0;
    std::uint64_t sinceEvict = 0;

    // Scratch (avoids per-access allocation).
    StoredBlock scratch;
    std::vector<std::vector<BlockId>> byLevel;
    std::vector<BlockId> pool;
    std::vector<std::uint64_t> slotScratch;
    std::vector<StoredBlock> blockScratch;
    std::vector<ServerStorage::SlotWriteOp> writeScratch;
    std::vector<BlockId> evictedScratch;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_RING_ORAM_HH
