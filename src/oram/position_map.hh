/**
 * @file
 * Client-side position map: block id -> currently assigned leaf.
 *
 * In the paper's architecture this lives in the trainer GPU's HBM and
 * is invisible to the adversary. It is a dense array because block ids
 * are dense embedding-table row numbers.
 */

#ifndef LAORAM_ORAM_POSITION_MAP_HH
#define LAORAM_ORAM_POSITION_MAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "oram/types.hh"
#include "util/rng.hh"
#include "util/serde.hh"

namespace laoram::oram {

/** Dense block -> leaf map with uniform random initialisation. */
class PositionMap
{
  public:
    /**
     * Map every block to an independent uniform leaf, as required for
     * PathORAM's initial state.
     */
    PositionMap(std::uint64_t numBlocks, std::uint64_t numLeaves,
                Rng &rng);

    Leaf get(BlockId id) const;
    void set(BlockId id, Leaf leaf);

    /**
     * Apply @p count remaps ids[i] -> leaves[i], in order (a block
     * appearing twice ends on its later leaf). One call per superblock
     * bin or training batch replaces the per-member set() calls that
     * profile at ~15% of LAORAM serve time at S=8: bounds checking is
     * hoisted out of the loop and the map is walked in one pass.
     */
    void setBatch(const BlockId *ids, const Leaf *leaves,
                  std::size_t count);

    std::uint64_t size() const { return map.size(); }

    /** Client memory consumed by the map (for footprint reports). */
    std::uint64_t residentBytes() const
    {
        return map.size() * sizeof(Leaf);
    }

    /**
     * Checkpoint support. restore() refuses a snapshot whose block
     * count differs from this map's (wrong-geometry guard).
     */
    void save(serde::Serializer &s) const;
    void restore(serde::Deserializer &d);

  private:
    std::vector<Leaf> map;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_POSITION_MAP_HH
