#include "oram/engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace laoram::oram {

EngineConfig
shardEngineConfig(const EngineConfig &base, std::uint64_t shardBlocks,
                  std::uint64_t shardSeed)
{
    LAORAM_ASSERT(shardBlocks >= 1,
                  "a shard must cover at least one block");
    EngineConfig cfg = base;
    cfg.numBlocks = shardBlocks;
    cfg.seed = shardSeed;
    // Every shard tree needs its own backing file; the shard seed is
    // a stable pure function of (base seed, shard), so a standalone
    // reference engine derives the identical path.
    if (!cfg.storage.path.empty())
        cfg.storage.path += ".shard-" + std::to_string(shardSeed);
    return cfg;
}

OramEngine::OramEngine(const EngineConfig &cfg)
    : cfg(cfg),
      geom(cfg.numBlocks, cfg.blockBytes, cfg.profile),
      mtr(mem::CostModel(cfg.cost)),
      rng(cfg.seed)
{
    LAORAM_ASSERT(cfg.stashLowWater <= cfg.stashHighWater,
                  "eviction low-water above high-water");
}

void
OramEngine::readBlock(BlockId id, std::vector<std::uint8_t> &out)
{
    access(id, AccessOp::Read, nullptr, 0, &out);
}

void
OramEngine::writeBlock(BlockId id, const std::vector<std::uint8_t> &data)
{
    access(id, AccessOp::Write, data.data(), data.size(), nullptr);
}

void
OramEngine::runTrace(const std::vector<BlockId> &trace)
{
    for (BlockId id : trace)
        touch(id);
}

TreeOramBase::TreeOramBase(const EngineConfig &cfg)
    : OramEngine(cfg),
      storage_(geom, cfg.payloadBytes, cfg.encrypt, cfg.seed ^ 0xC0FFEE,
               cfg.storage),
      posmap_(cfg.numBlocks, geom.numLeaves(), rng),
      stash_(),
      pathIo_(geom, storage_, stash_)
{
    requireFreshStorage(storage_);
}

void
requireFreshStorage(const ServerStorage &storage)
{
    // An engine's trusted client state (position map, stash) lives in
    // memory; a reopened tree's records are mapped against a client
    // state that no longer exists, so serving it would return garbage
    // (or trip the tree/stash duplication invariant mid-path). Refuse
    // loudly until client-state persistence lands; reopen stays fully
    // supported at the ServerStorage level.
    if (storage.reopened()) {
        LAORAM_FATAL(
            "storage.keepExisting reopened an existing tree, but ORAM "
            "engines keep their position map and stash in memory and "
            "cannot serve a previous run's tree; drop keepExisting "
            "(or delete the tree file) to start fresh");
    }
}

void
OramEngine::applyOp(StashEntry &entry, AccessOp op,
                    const std::uint8_t *in, std::size_t len,
                    std::vector<std::uint8_t> *out) const
{
    switch (op) {
      case AccessOp::Touch:
        break;
      case AccessOp::Read:
        if (out)
            *out = entry.payload;
        break;
      case AccessOp::Write: {
        LAORAM_ASSERT(len <= cfg.payloadBytes, "write of ", len,
                      " B exceeds payload capacity ", cfg.payloadBytes);
        entry.payload.assign(cfg.payloadBytes, 0);
        if (in && len > 0)
            std::copy(in, in + len, entry.payload.begin());
        break;
      }
    }
}

StashEntry &
TreeOramBase::stashEntryFor(BlockId id, Leaf leaf)
{
    if (StashEntry *entry = stash_.find(id)) {
        entry->leaf = leaf;
        return *entry;
    }
    auto &entry = stash_.put(id, leaf);
    entry.payload.assign(cfg.payloadBytes, 0);
    return entry;
}

void
TreeOramBase::readPathMetered(Leaf leaf)
{
    pathIo_.readPath(leaf);
    mtr.recordPathRead(geom.pathBytes(), geom.pathSlots());
}

void
TreeOramBase::writePathMetered(Leaf leaf)
{
    pathIo_.writePath(leaf);
    mtr.recordPathWrite(geom.pathBytes(), geom.pathSlots());
}

void
TreeOramBase::readPathsBatchedMetered(const std::vector<Leaf> &leaves)
{
    if (leaves.empty())
        return;
    const std::uint64_t slots = pathIo_.readPathsBatched(leaves);
    mtr.recordBatchedPathReads(leaves.size(), slots * cfg.blockBytes,
                               slots);
}

void
TreeOramBase::writePathsBatchedMetered(const std::vector<Leaf> &leaves)
{
    if (leaves.empty())
        return;
    const std::uint64_t slots = pathIo_.writePathsBatched(leaves);
    mtr.recordBatchedPathWrites(leaves.size(), slots * cfg.blockBytes,
                                slots);
}

void
TreeOramBase::backgroundEvict()
{
    if (stash_.size() <= cfg.stashHighWater)
        return;

    // Capacity trumps retention: prefetch pins are dropped before the
    // client starts paying for dummy accesses.
    stash_.unpinAll();

    // Safety valve: with a pathological configuration (e.g. tree
    // capacity below the working set) the stash cannot drain; cap the
    // dummy burst instead of spinning forever.
    constexpr std::uint64_t kMaxDummiesPerBurst = 100000;
    std::uint64_t issued = 0;
    while (stash_.size() > cfg.stashLowWater
           && issued < kMaxDummiesPerBurst) {
        const Leaf leaf = randomLeaf();
        pathIo_.readPath(leaf);
        pathIo_.writePath(leaf);
        mtr.recordDummyAccess(geom.pathBytes(), geom.pathSlots());
        ++issued;
    }
    if (issued == kMaxDummiesPerBurst) {
        warn("background eviction could not drain stash below ",
             cfg.stashLowWater, " (still ", stash_.size(),
             " blocks) after ", issued, " dummy accesses");
    }
}

} // namespace laoram::oram
