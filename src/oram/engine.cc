#include "oram/engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace laoram::oram {

EngineConfig
shardEngineConfig(const EngineConfig &base, std::uint64_t shardBlocks,
                  std::uint64_t shardSeed)
{
    LAORAM_ASSERT(shardBlocks >= 1,
                  "a shard must cover at least one block");
    EngineConfig cfg = base;
    cfg.numBlocks = shardBlocks;
    cfg.seed = shardSeed;
    // Every shard tree needs its own backing file; the shard seed is
    // a stable pure function of (base seed, shard), so a standalone
    // reference engine derives the identical path. The checkpoint
    // sidecar gets the same suffix: each shard engine snapshots and
    // restores its own trusted state next to its own tree.
    if (!cfg.storage.path.empty())
        cfg.storage.path += ".shard-" + std::to_string(shardSeed);
    if (!cfg.checkpoint.path.empty())
        cfg.checkpoint.path += ".shard-" + std::to_string(shardSeed);
    return cfg;
}

OramEngine::OramEngine(const EngineConfig &cfg)
    : cfg(cfg),
      geom(cfg.numBlocks, cfg.blockBytes, cfg.profile),
      mtr(mem::CostModel(cfg.cost)),
      rng(cfg.seed)
{
    LAORAM_ASSERT(cfg.stashLowWater <= cfg.stashHighWater,
                  "eviction low-water above high-water");
}

void
OramEngine::readBlock(BlockId id, std::vector<std::uint8_t> &out)
{
    access(id, AccessOp::Read, nullptr, 0, &out);
}

void
OramEngine::writeBlock(BlockId id, const std::vector<std::uint8_t> &data)
{
    access(id, AccessOp::Write, data.data(), data.size(), nullptr);
}

void
OramEngine::runTrace(const std::vector<BlockId> &trace)
{
    for (BlockId id : trace)
        touch(id);
}

TreeOramBase::TreeOramBase(const EngineConfig &cfg)
    : OramEngine(cfg),
      storage_(geom, cfg.payloadBytes, cfg.encrypt, cfg.seed ^ 0xC0FFEE,
               cfg.storage),
      posmap_(cfg.numBlocks, geom.numLeaves(), rng),
      stash_(),
      pathIo_(geom, storage_, stash_)
{
    // The actual restore (when cfg.checkpoint.restore is set) runs in
    // the final engine's constructor, which knows the full snapshot
    // layout; here we only decide fresh vs restorable vs fatal.
    resolveRestoreOrFresh(storage_, cfg);
}

void
resolveRestoreOrFresh(const ServerStorage &storage,
                      const EngineConfig &cfg)
{
    const bool restore =
        cfg.checkpoint.restore && !cfg.checkpoint.path.empty();
    if (!storage.reopened()) {
        // A fresh tree has no previous contents for a snapshot's
        // position map to point into; restoring against it would
        // serve garbage, so refuse up front.
        if (restore) {
            LAORAM_FATAL(
                "--restore requested but the tree storage initialised "
                "fresh; a client-state snapshot is only meaningful "
                "against the persisted tree it was taken with. Reopen "
                "the original tree with --storage-keep (and the "
                "original --storage-path) alongside --restore "
                "--checkpoint-path=", cfg.checkpoint.path);
        }
        return;
    }
    if (!restore) {
        LAORAM_FATAL(
            "storage.keepExisting reopened an existing tree, but the "
            "engine's trusted client state (position map, stash, RNG "
            "streams) was not restored with it; serve this tree by "
            "passing --restore --checkpoint-path=<snapshot> (a sidecar "
            "written by checkpoint() / --checkpoint-path on the "
            "previous run), or drop --storage-keep / delete the tree "
            "file to start fresh");
    }
    if (!serde::fileExists(cfg.checkpoint.path)) {
        LAORAM_FATAL(
            "--restore requested but no snapshot is present at ",
            cfg.checkpoint.path,
            "; this reopened tree is genuinely unrestorable without "
            "its client-state sidecar — recover the snapshot file, or "
            "drop --storage-keep / delete the tree file to start "
            "fresh");
    }
}

void
requireFreshStorage(const ServerStorage &storage, const char *engineName)
{
    if (storage.reopened()) {
        LAORAM_FATAL(
            "storage.keepExisting reopened an existing tree, but ",
            engineName,
            " has no checkpoint/restore support for its trusted "
            "client state; only the LAORAM/PathORAM family engines "
            "can serve a reopened tree (checkpoint() + --restore "
            "--checkpoint-path=<snapshot>). Drop keepExisting (or "
            "delete the tree file) to start fresh");
    }
}

namespace {

/** Snapshot section: the 11 traffic counters in declaration order. */
void
saveCounters(serde::Serializer &s, const mem::TrafficCounters &c)
{
    s.u64(c.logicalAccesses);
    s.u64(c.pathReads);
    s.u64(c.pathWrites);
    s.u64(c.dummyReads);
    s.u64(c.blocksRead);
    s.u64(c.blocksWritten);
    s.u64(c.bytesRead);
    s.u64(c.bytesWritten);
    s.u64(c.stashPeak);
    s.u64(c.stashHits);
    s.u64(c.reshuffles);
}

mem::TrafficCounters
restoreCounters(serde::Deserializer &d)
{
    mem::TrafficCounters c;
    c.logicalAccesses = d.u64();
    c.pathReads = d.u64();
    c.pathWrites = d.u64();
    c.dummyReads = d.u64();
    c.blocksRead = d.u64();
    c.blocksWritten = d.u64();
    c.bytesRead = d.u64();
    c.bytesWritten = d.u64();
    c.stashPeak = d.u64();
    c.stashHits = d.u64();
    c.reshuffles = d.u64();
    return c;
}

void
checkField(const char *name, std::uint64_t want, std::uint64_t got)
{
    if (want != got)
        throw serde::SnapshotError(
            std::string("snapshot geometry mismatch: ") + name +
            " is " + std::to_string(got) +
            " in the snapshot but this engine has " +
            std::to_string(want));
}

} // namespace

void
OramEngine::saveClientState(serde::Serializer &s) const
{
    // Geometry header first: restore validates every field before
    // touching any state.
    s.u64(cfg.numBlocks);
    s.u64(cfg.blockBytes);
    s.u64(cfg.payloadBytes);
    s.u64(geom.numLeaves());
    s.u64(geom.numNodes());
    s.u8(cfg.encrypt ? 1 : 0);
    s.u64(cfg.seed);

    saveCounters(s, mtr.counters());
    s.u64(mtr.clock().picoseconds());
    rng.save(s);
}

void
OramEngine::restoreClientState(serde::Deserializer &d)
{
    checkField("numBlocks", cfg.numBlocks, d.u64());
    checkField("blockBytes", cfg.blockBytes, d.u64());
    checkField("payloadBytes", cfg.payloadBytes, d.u64());
    checkField("numLeaves", geom.numLeaves(), d.u64());
    checkField("numNodes", geom.numNodes(), d.u64());
    checkField("encrypt", cfg.encrypt ? 1 : 0, d.u8());
    checkField("seed", cfg.seed, d.u64());

    const mem::TrafficCounters counters = restoreCounters(d);
    const std::uint64_t clockPs = d.u64();
    mtr.restoreState(counters, clockPs);
    rng.restore(d);
}

std::vector<std::uint8_t>
OramEngine::checkpoint()
{
    // Land the tree and the snapshot on the same boundary.
    quiesceStorage();
    serde::Serializer s;
    saveClientState(s);
    return serde::seal(serde::SnapshotKind::Engine, s.take());
}

void
OramEngine::restoreFrom(const std::vector<std::uint8_t> &blob)
{
    const std::vector<std::uint8_t> payload =
        serde::unseal(serde::SnapshotKind::Engine, blob);
    serde::Deserializer d(payload);
    restoreClientState(d);
    if (!d.atEnd())
        throw serde::SnapshotError(
            "snapshot has " + std::to_string(d.remaining()) +
            " trailing bytes after the last section (engine type "
            "mismatch?)");
}

void
OramEngine::checkpointToFile(const std::string &path)
{
    serde::writeFileAtomic(path, checkpoint());
}

void
OramEngine::restoreFromFile(const std::string &path)
{
    restoreFrom(serde::readFile(path));
}

void
TreeOramBase::restoreAtConstructionIfConfigured()
{
    if (cfg.checkpoint.restore && !cfg.checkpoint.path.empty())
        restoreFromFile(cfg.checkpoint.path);
}

void
TreeOramBase::saveClientState(serde::Serializer &s) const
{
    OramEngine::saveClientState(s);
    posmap_.save(s);
    stash_.save(s);
}

void
TreeOramBase::restoreClientState(serde::Deserializer &d)
{
    OramEngine::restoreClientState(d);
    posmap_.restore(d);
    stash_.restore(d);
}

void
OramEngine::applyOp(StashEntry &entry, AccessOp op,
                    const std::uint8_t *in, std::size_t len,
                    std::vector<std::uint8_t> *out) const
{
    switch (op) {
      case AccessOp::Touch:
        break;
      case AccessOp::Read:
        if (out)
            *out = entry.payload;
        break;
      case AccessOp::Write: {
        LAORAM_ASSERT(len <= cfg.payloadBytes, "write of ", len,
                      " B exceeds payload capacity ", cfg.payloadBytes);
        entry.payload.assign(cfg.payloadBytes, 0);
        if (in && len > 0)
            std::copy(in, in + len, entry.payload.begin());
        break;
      }
    }
}

StashEntry &
TreeOramBase::stashEntryFor(BlockId id, Leaf leaf)
{
    if (StashEntry *entry = stash_.find(id)) {
        entry->leaf = leaf;
        return *entry;
    }
    auto &entry = stash_.put(id, leaf);
    entry.payload.assign(cfg.payloadBytes, 0);
    return entry;
}

void
TreeOramBase::readPathMetered(Leaf leaf)
{
    pathIo_.readPath(leaf);
    mtr.recordPathRead(geom.pathBytes(), geom.pathSlots());
}

void
TreeOramBase::writePathMetered(Leaf leaf)
{
    pathIo_.writePath(leaf);
    mtr.recordPathWrite(geom.pathBytes(), geom.pathSlots());
}

void
TreeOramBase::readPathsBatchedMetered(const std::vector<Leaf> &leaves)
{
    if (leaves.empty())
        return;
    const std::uint64_t slots = pathIo_.readPathsBatched(leaves);
    mtr.recordBatchedPathReads(leaves.size(), slots * cfg.blockBytes,
                               slots);
}

void
TreeOramBase::writePathsBatchedMetered(const std::vector<Leaf> &leaves)
{
    if (leaves.empty())
        return;
    const std::uint64_t slots = pathIo_.writePathsBatched(leaves);
    mtr.recordBatchedPathWrites(leaves.size(), slots * cfg.blockBytes,
                                slots);
}

void
TreeOramBase::backgroundEvict()
{
    if (stash_.size() <= cfg.stashHighWater)
        return;

    // Capacity trumps retention: prefetch pins are dropped before the
    // client starts paying for dummy accesses.
    stash_.unpinAll();

    // Safety valve: with a pathological configuration (e.g. tree
    // capacity below the working set) the stash cannot drain; cap the
    // dummy burst instead of spinning forever.
    constexpr std::uint64_t kMaxDummiesPerBurst = 100000;
    std::uint64_t issued = 0;
    while (stash_.size() > cfg.stashLowWater
           && issued < kMaxDummiesPerBurst) {
        const Leaf leaf = randomLeaf();
        pathIo_.readPath(leaf);
        pathIo_.writePath(leaf);
        mtr.recordDummyAccess(geom.pathBytes(), geom.pathSlots());
        ++issued;
    }
    if (issued == kMaxDummiesPerBurst) {
        warn("background eviction could not drain stash below ",
             cfg.stashLowWater, " (still ", stash_.size(),
             " blocks) after ", issued, " dummy accesses");
    }
}

} // namespace laoram::oram
