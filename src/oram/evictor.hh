/**
 * @file
 * Path I/O: the two primitive server interactions every tree-based
 * engine is built from — reading a full path into the stash, and the
 * greedy deepest-first write-back that refills the same path from the
 * stash (PathORAM §3.3 / paper §II-C steps 2 and 5).
 *
 * Also hosts the tree auditor used by tests to verify the core
 * PathORAM invariant: every initialised real block lies either in the
 * stash or on the path named by its position-map leaf.
 */

#ifndef LAORAM_ORAM_EVICTOR_HH
#define LAORAM_ORAM_EVICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "oram/position_map.hh"
#include "oram/server_storage.hh"
#include "oram/stash.hh"
#include "oram/tree_geometry.hh"
#include "oram/types.hh"

namespace laoram::oram {

/**
 * Stateless-per-call path reader/writer bound to one (geometry,
 * storage, stash) triple. Engines own one and call it for every real
 * or dummy access.
 */
class PathIo
{
  public:
    PathIo(const TreeGeometry &geom, ServerStorage &storage, Stash &stash);

    /**
     * Read every slot on @p leaf's path; absorb real blocks into the
     * stash (their assigned leaf comes from the stored record).
     *
     * @return number of real blocks absorbed
     */
    std::uint64_t readPath(Leaf leaf);

    /**
     * Greedy write-back along @p leaf's path: each stash block is
     * bucketed by the deepest level at which its assigned path still
     * overlaps this path, then levels are filled leaf-to-root, unplaced
     * blocks spilling toward the root and finally staying in the stash.
     * Untaken slots are overwritten with encrypted dummies.
     *
     * @return number of real blocks written back
     */
    std::uint64_t writePath(Leaf leaf);

    /**
     * Batched read of several paths (a LAORAM superblock bin or a
     * PrORAM merge): each node in the union of the paths is read
     * exactly once — re-reading a shared prefix node would only fetch
     * slots the client already absorbed.
     *
     * @return number of physical slots read (union size)
     */
    std::uint64_t readPathsBatched(const std::vector<Leaf> &leaves);

    /**
     * Batched greedy write-back over the union of several paths.
     * Nodes are filled deepest-level-first; blocks that do not fit
     * spill to their parent (which is always in the union, since path
     * unions are ancestor-closed) and ultimately back to the stash.
     * Writing the union once — instead of path-by-path — is required
     * for correctness: sequential per-path write-backs would overwrite
     * shared prefix nodes populated by the previous path.
     *
     * @return number of physical slots written (union size)
     */
    std::uint64_t writePathsBatched(const std::vector<Leaf> &leaves);

  private:
    /** Sorted (level-descending, then node) union of path nodes. */
    std::vector<NodeIndex> pathUnion(const std::vector<Leaf> &leaves)
        const;

    /** Append every slot of @p leaf's path to slotScratch. */
    void gatherPathSlots(Leaf leaf);

    /**
     * Vectored fetch of slotScratch into the stash (one storage op);
     * returns the number of real blocks absorbed.
     */
    std::uint64_t absorbGatheredSlots();

    const TreeGeometry &geom;
    ServerStorage &storage;
    Stash &stash;

    // Scratch buffers reused across calls to avoid per-path allocation.
    std::vector<std::vector<BlockId>> byLevel;
    std::vector<BlockId> pool;
    std::vector<std::uint64_t> slotScratch;
    std::vector<StoredBlock> blockScratch;
    std::vector<ServerStorage::SlotWriteOp> writeScratch;
    std::vector<BlockId> evictedScratch;
};

/**
 * Exhaustively audit the tree + stash against the position map.
 *
 * Checks, for every real block found in server storage: its stored
 * leaf matches the position map, and the node it occupies lies on that
 * leaf's path; and that no block appears twice (tree/tree or
 * tree/stash).
 *
 * @return empty string when consistent, else a description of the
 *         first violation (tests assert on empty)
 */
std::string auditTree(const TreeGeometry &geom,
                      const ServerStorage &storage,
                      const Stash &stash, const PositionMap &posmap);

} // namespace laoram::oram

#endif // LAORAM_ORAM_EVICTOR_HH
