/**
 * @file
 * Recursive position map (Stefanov et al., PathORAM §6) and a
 * PathORAM engine built on it.
 *
 * The paper's LAORAM stores the position map flat in trainer-GPU HBM
 * (§III) — an O(N log N)-bit client structure. The classic
 * alternative packs the map into a chain of smaller ORAMs: ORAM_1
 * holds the main map (chi positions per block), ORAM_2 holds ORAM_1's
 * map, and so on until the innermost map fits in client memory. Every
 * logical access then costs one extra path access per recursion
 * level.
 *
 * This module implements that substrate so the repository can
 * *quantify* the paper's design choice: bench_recursion_ablation
 * measures the traffic/time overhead LAORAM avoids by spending HBM on
 * the flat map.
 */

#ifndef LAORAM_ORAM_RECURSIVE_POSMAP_HH
#define LAORAM_ORAM_RECURSIVE_POSMAP_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/traffic_meter.hh"
#include "oram/engine.hh"
#include "oram/evictor.hh"
#include "oram/server_storage.hh"
#include "oram/stash.hh"
#include "oram/tree_geometry.hh"
#include "util/rng.hh"

namespace laoram::oram {

/** Recursion knobs. */
struct RecursiveConfig
{
    std::uint64_t packing = 16;       ///< chi: positions per map block
    std::uint64_t directThreshold = 1024; ///< client-resident map size
    bool encrypt = false;             ///< encrypt map ORAMs at rest
    std::uint64_t seed = 1;
};

/**
 * Position map stored as a chain of PathORAM trees.
 *
 * The main map (level 0) answers "where is data block b in the data
 * tree"; each deeper level stores the previous level's positions,
 * chi to a block. The innermost level is a plain client array of at
 * most directThreshold entries.
 */
class RecursivePositionMap
{
  public:
    /**
     * @param numBlocks data blocks whose positions are tracked
     * @param numLeaves leaf domain of the *data* tree
     * @param cfg       recursion parameters
     * @param meter     traffic meter charged for every map ORAM access
     */
    RecursivePositionMap(std::uint64_t numBlocks,
                         std::uint64_t numLeaves,
                         const RecursiveConfig &cfg,
                         mem::TrafficMeter &meter);

    /**
     * Oblivious lookup-and-update: returns block @p id's current data
     * leaf and re-points it at @p next. Costs one path access per
     * recursion level, charged to the meter.
     */
    Leaf getAndSet(BlockId id, Leaf next);

    /** Number of ORAM levels in the chain (0 = map fits the client). */
    std::uint64_t oramLevels() const { return levels.size(); }

    /** Client-resident bytes (innermost array + level stashes). */
    std::uint64_t clientBytes() const;

    /** Server bytes consumed by the map ORAMs. */
    std::uint64_t serverBytes() const;

    /**
     * Non-oblivious debug/test read of a position: walks the chain
     * through storage without generating access-pattern traffic.
     */
    Leaf peek(BlockId id) const;

    /**
     * Checkpoint support: serialize the whole chain — client-resident
     * innermost map, every level's stash and decoded tree slots, and
     * the internal RNG stream. restore() refuses a snapshot whose
     * level layout differs (wrong-geometry guard) and rewrites the
     * level trees through their storage, so subsequent getAndSet
     * sequences continue bit-identically.
     */
    void save(serde::Serializer &s) const;
    void restore(serde::Deserializer &d);

  private:
    /** One ORAM in the chain. */
    struct Level
    {
        Level(std::uint64_t blocks, std::uint64_t payloadBytes,
              const RecursiveConfig &cfg, std::uint64_t salt);

        std::uint64_t blocks;
        TreeGeometry geom;
        ServerStorage storage;
        Stash stash;
        PathIo io;
    };

    /**
     * Oblivious access to @p level's block @p block located at
     * @p at; remaps it to @p to and returns its stash entry payload
     * for in-place mutation (valid until the level's next access).
     */
    std::vector<std::uint8_t> &accessLevel(Level &level,
                                           BlockId block, Leaf at,
                                           Leaf to);

    /** Read a packed 32-bit position word. */
    static Leaf loadPos(const std::vector<std::uint8_t> &payload,
                        std::uint64_t offset);
    static void storePos(std::vector<std::uint8_t> &payload,
                         std::uint64_t offset, Leaf leaf);

    /** Find @p block's payload at @p level without traffic (peek). */
    const std::vector<std::uint8_t> *peekLevel(const Level &level,
                                               BlockId block,
                                               Leaf at,
                                               std::vector<std::uint8_t>
                                                   &scratch) const;

    RecursiveConfig cfg;
    std::uint64_t dataLeaves;
    mem::TrafficMeter &meter;
    Rng rng;

    /** levels[0] holds the main map; back() is the innermost ORAM. */
    std::vector<std::unique_ptr<Level>> levels;
    /** Positions of levels.back()'s blocks (client-resident). */
    std::vector<Leaf> clientMap;
};

/**
 * PathORAM over a recursive position map — the memory-frugal client
 * the paper's flat-map design is traded against.
 */
class RecursivePathOram final : public OramEngine
{
  public:
    RecursivePathOram(const EngineConfig &cfg,
                      const RecursiveConfig &rcfg);

    std::string name() const override { return "PathORAM-recursive"; }

    void access(BlockId id, AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out)
        override;

    std::uint64_t stashSize() const override { return stash_.size(); }

    const RecursivePositionMap &positionMap() const { return rpm; }

    /**
     * Invariant audit: for every data block that has been accessed at
     * least once, it must be findable on its peeked path or in the
     * stash.
     */
    std::string auditRecursive(std::uint64_t sampleStride = 1) const;

  private:
    ServerStorage storage_;
    Stash stash_;
    PathIo pathIo_;
    RecursivePositionMap rpm;
};

} // namespace laoram::oram

#endif // LAORAM_ORAM_RECURSIVE_POSMAP_HH
