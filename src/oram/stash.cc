#include "oram/stash.hh"

#include <algorithm>

namespace laoram::oram {

StashEntry *
Stash::find(BlockId id)
{
    auto it = entries.find(id);
    return it == entries.end() ? nullptr : &it->second;
}

const StashEntry *
Stash::find(BlockId id) const
{
    auto it = entries.find(id);
    return it == entries.end() ? nullptr : &it->second;
}

StashEntry &
Stash::put(BlockId id, Leaf leaf, std::vector<std::uint8_t> payload)
{
    auto &entry = entries[id];
    entry.leaf = leaf;
    entry.payload = std::move(payload);
    return entry;
}

StashEntry &
Stash::put(BlockId id, Leaf leaf)
{
    auto &entry = entries[id];
    entry.leaf = leaf;
    return entry;
}

void
Stash::erase(BlockId id)
{
    entries.erase(id);
}

void
Stash::unpinAll()
{
    for (auto &[id, entry] : entries)
        entry.pinned = false;
}

void
Stash::save(serde::Serializer &s) const
{
    std::vector<BlockId> ids;
    ids.reserve(entries.size());
    for (const auto &[id, entry] : entries)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());

    s.u64(ids.size());
    for (BlockId id : ids) {
        const StashEntry &entry = entries.at(id);
        s.u64(id);
        s.u64(entry.leaf);
        s.u8(entry.pinned ? 1 : 0);
        s.blob(entry.payload);
    }
}

void
Stash::restore(serde::Deserializer &d)
{
    entries.clear();
    const std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        const BlockId id = d.u64();
        StashEntry &entry = entries[id];
        entry.leaf = d.u64();
        entry.pinned = d.u8() != 0;
        entry.payload = d.blob();
    }
}

} // namespace laoram::oram
