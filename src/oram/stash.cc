#include "oram/stash.hh"

namespace laoram::oram {

StashEntry *
Stash::find(BlockId id)
{
    auto it = entries.find(id);
    return it == entries.end() ? nullptr : &it->second;
}

const StashEntry *
Stash::find(BlockId id) const
{
    auto it = entries.find(id);
    return it == entries.end() ? nullptr : &it->second;
}

StashEntry &
Stash::put(BlockId id, Leaf leaf, std::vector<std::uint8_t> payload)
{
    auto &entry = entries[id];
    entry.leaf = leaf;
    entry.payload = std::move(payload);
    return entry;
}

StashEntry &
Stash::put(BlockId id, Leaf leaf)
{
    auto &entry = entries[id];
    entry.leaf = leaf;
    return entry;
}

void
Stash::erase(BlockId id)
{
    entries.erase(id);
}

void
Stash::unpinAll()
{
    for (auto &[id, entry] : entries)
        entry.pinned = false;
}

} // namespace laoram::oram
