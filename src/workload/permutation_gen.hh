/**
 * @file
 * Permutation dataset (paper §VII-B): addresses are drawn without
 * repetition until every address has been accessed once, then the
 * process restarts with a fresh permutation. The PathORAM paper proves
 * this maximises stash pressure, so it is LAORAM's worst case.
 */

#ifndef LAORAM_WORKLOAD_PERMUTATION_GEN_HH
#define LAORAM_WORKLOAD_PERMUTATION_GEN_HH

#include "workload/trace.hh"

namespace laoram::workload {

/** Permutation-stream generator parameters. */
struct PermutationParams
{
    std::uint64_t numBlocks = 1 << 20;
    std::uint64_t accesses = 100000;
    std::uint64_t seed = 1;
};

/** Generate a permutation trace (possibly spanning several epochs). */
Trace makePermutationTrace(const PermutationParams &params);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_PERMUTATION_GEN_HH
