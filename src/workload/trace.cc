#include "workload/trace.hh"

#include <algorithm>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/logging.hh"

namespace laoram::workload {

std::uint64_t
Trace::uniqueCount() const
{
    std::unordered_map<BlockId, bool> seen;
    seen.reserve(accesses.size());
    for (BlockId id : accesses)
        seen[id] = true;
    return seen.size();
}

double
Trace::hotMass(std::uint64_t topN) const
{
    if (accesses.empty() || topN == 0)
        return 0.0;
    std::unordered_map<BlockId, std::uint64_t> freq;
    freq.reserve(accesses.size());
    for (BlockId id : accesses)
        ++freq[id];
    std::vector<std::uint64_t> counts;
    counts.reserve(freq.size());
    for (const auto &[id, n] : freq)
        counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t hot = 0;
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(
             topN, counts.size()); ++i) {
        hot += counts[i];
    }
    return static_cast<double>(hot)
        / static_cast<double>(accesses.size());
}

void
Trace::save(std::ostream &os) const
{
    os << "laoram-trace 1 " << (name.empty() ? "unnamed" : name) << " "
       << numBlocks << " " << accesses.size() << "\n";
    for (std::size_t i = 0; i < accesses.size(); ++i) {
        os << accesses[i];
        os << (((i + 1) % 16 == 0) ? '\n' : ' ');
    }
    os << "\n";
}

Trace
Trace::load(std::istream &is)
{
    std::string magic;
    int version = 0;
    Trace t;
    std::uint64_t count = 0;
    is >> magic >> version >> t.name >> t.numBlocks >> count;
    if (!is || magic != "laoram-trace")
        LAORAM_FATAL("not a laoram-trace stream (magic '", magic, "')");
    if (version != 1)
        LAORAM_FATAL("unsupported trace version ", version);
    t.accesses.resize(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        is >> t.accesses[i];
        if (!is)
            LAORAM_FATAL("trace truncated at access ", i, " of ", count);
        if (t.accesses[i] >= t.numBlocks)
            LAORAM_FATAL("trace access ", t.accesses[i],
                         " out of range for table of ", t.numBlocks);
    }
    return t;
}

} // namespace laoram::workload
