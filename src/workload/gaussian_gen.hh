/**
 * @file
 * Gaussian dataset (paper §VII-B): the address stream is sampled from
 * a (truncated, integer-rounded) Gaussian over the table — mild
 * temporal locality concentrated around the mean.
 */

#ifndef LAORAM_WORKLOAD_GAUSSIAN_GEN_HH
#define LAORAM_WORKLOAD_GAUSSIAN_GEN_HH

#include "workload/trace.hh"

namespace laoram::workload {

/** Gaussian-stream generator parameters. */
struct GaussianParams
{
    std::uint64_t numBlocks = 1 << 20;
    std::uint64_t accesses = 100000;
    double mean = -1.0;   ///< < 0 -> numBlocks / 2
    double stddev = -1.0; ///< < 0 -> numBlocks / 8
    std::uint64_t seed = 1;
};

/** Generate a Gaussian-distributed address trace. */
Trace makeGaussianTrace(const GaussianParams &params);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_GAUSSIAN_GEN_HH
