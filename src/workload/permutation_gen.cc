#include "workload/permutation_gen.hh"

#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::workload {

Trace
makePermutationTrace(const PermutationParams &params)
{
    LAORAM_ASSERT(params.numBlocks > 0, "empty address space");
    Trace t;
    t.name = "permutation";
    t.numBlocks = params.numBlocks;
    t.accesses.reserve(params.accesses);

    Rng rng(params.seed);
    std::vector<BlockId> perm(params.numBlocks);
    std::iota(perm.begin(), perm.end(), BlockId{0});

    std::uint64_t cursor = perm.size(); // forces a shuffle on entry
    while (t.accesses.size() < params.accesses) {
        if (cursor == perm.size()) {
            // New epoch: every address exactly once, fresh order.
            rng.shuffle(perm);
            cursor = 0;
        }
        t.accesses.push_back(perm[cursor++]);
    }
    return t;
}

} // namespace laoram::workload
