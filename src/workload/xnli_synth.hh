/**
 * @file
 * XNLI-like (XLM-R) trace synthesizer.
 *
 * XLM-R tokenises the multilingual XNLI corpus through a 262,144-entry
 * SentencePiece vocabulary (paper §VII-C: 262,144 rows of 4 KiB).
 * Natural-language token frequencies are famously Zipfian, so the
 * synthesizer draws token ranks from Zipf(s≈1) and scatters ranks over
 * the id space (vocabulary ids are not frequency-sorted). This yields
 * the high duplicate rate the paper credits for XNLI's near-zero dummy
 * read counts (Table II).
 */

#ifndef LAORAM_WORKLOAD_XNLI_SYNTH_HH
#define LAORAM_WORKLOAD_XNLI_SYNTH_HH

#include "workload/trace.hh"

namespace laoram::workload {

/** XNLI-like synthesizer parameters. */
struct XnliParams
{
    std::uint64_t vocabSize = 262144; ///< XLM-R vocabulary (paper)
    std::uint64_t accesses = 100000;
    double skew = 1.0;                ///< token-frequency Zipf exponent
    std::uint64_t seed = 1;
};

/** Generate an XNLI/XLM-R-like token-id trace. */
Trace makeXnliTrace(const XnliParams &params);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_XNLI_SYNTH_HH
