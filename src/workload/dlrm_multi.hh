/**
 * @file
 * Multi-table DLRM trace synthesizer: every training sample performs
 * one lookup in each of the model's embedding tables (26 for
 * Criteo-class DLRM), with per-table Zipf-skewed row popularity.
 * Flattened through train::TableSet, the result is a single-ORAM
 * trace protecting all tables at once.
 */

#ifndef LAORAM_WORKLOAD_DLRM_MULTI_HH
#define LAORAM_WORKLOAD_DLRM_MULTI_HH

#include "train/table_set.hh"
#include "workload/trace.hh"

namespace laoram::workload {

/** Multi-table generator parameters. */
struct DlrmMultiParams
{
    std::uint64_t samples = 4096; ///< training samples (rows/sample = #tables)
    double skew = 1.05;           ///< per-table Zipf exponent
    std::uint64_t seed = 1;
};

/**
 * Generate a flattened multi-table trace: sample s contributes one
 * access per table, in table order (the gather a DLRM batch performs).
 */
Trace makeDlrmMultiTrace(const train::TableSet &tables,
                         const DlrmMultiParams &params);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_DLRM_MULTI_HH
