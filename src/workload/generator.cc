#include "workload/generator.hh"

#include "util/logging.hh"
#include "workload/gaussian_gen.hh"
#include "workload/kaggle_synth.hh"
#include "workload/permutation_gen.hh"
#include "workload/xnli_synth.hh"

namespace laoram::workload {

DatasetKind
datasetFromName(const std::string &name)
{
    if (name == "permutation")
        return DatasetKind::Permutation;
    if (name == "gaussian")
        return DatasetKind::Gaussian;
    if (name == "kaggle")
        return DatasetKind::Kaggle;
    if (name == "xnli")
        return DatasetKind::Xnli;
    LAORAM_FATAL("unknown dataset '", name,
                 "' (expected permutation|gaussian|kaggle|xnli)");
}

const char *
datasetName(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::Permutation: return "permutation";
      case DatasetKind::Gaussian: return "gaussian";
      case DatasetKind::Kaggle: return "kaggle";
      case DatasetKind::Xnli: return "xnli";
    }
    return "unknown";
}

Trace
makeTrace(DatasetKind kind, std::uint64_t numBlocks,
          std::uint64_t accesses, std::uint64_t seed)
{
    switch (kind) {
      case DatasetKind::Permutation: {
        PermutationParams p;
        p.numBlocks = numBlocks;
        p.accesses = accesses;
        p.seed = seed;
        return makePermutationTrace(p);
      }
      case DatasetKind::Gaussian: {
        GaussianParams p;
        p.numBlocks = numBlocks;
        p.accesses = accesses;
        p.seed = seed;
        return makeGaussianTrace(p);
      }
      case DatasetKind::Kaggle: {
        KaggleParams p;
        p.numBlocks = numBlocks;
        p.accesses = accesses;
        p.seed = seed;
        return makeKaggleTrace(p);
      }
      case DatasetKind::Xnli: {
        XnliParams p;
        p.vocabSize = numBlocks;
        p.accesses = accesses;
        p.seed = seed;
        return makeXnliTrace(p);
      }
    }
    LAORAM_PANIC("unreachable dataset kind");
}

std::uint64_t
paperNumBlocks(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::Permutation: return std::uint64_t{8} << 20;
      case DatasetKind::Gaussian: return std::uint64_t{8} << 20;
      case DatasetKind::Kaggle: return 10131227;
      case DatasetKind::Xnli: return 262144;
    }
    return 0;
}

std::uint64_t
paperBlockBytes(DatasetKind kind)
{
    switch (kind) {
      case DatasetKind::Permutation: return 128;
      case DatasetKind::Gaussian: return 128;
      case DatasetKind::Kaggle: return 128;
      case DatasetKind::Xnli: return 4096;
    }
    return 0;
}

} // namespace laoram::workload
