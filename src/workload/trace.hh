/**
 * @file
 * Address-trace container plus text serialisation.
 *
 * A Trace is what every ORAM engine consumes: an ordered list of
 * embedding-table row indices ("block ids") together with the table
 * size they index into. The serialised form lets experiments be
 * re-run on externally produced traces (e.g. indices extracted from a
 * real Criteo Kaggle preprocessing run, which we cannot redistribute).
 */

#ifndef LAORAM_WORKLOAD_TRACE_HH
#define LAORAM_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "oram/types.hh"

namespace laoram::workload {

using oram::BlockId;

/** An embedding access trace. */
struct Trace
{
    std::string name;          ///< dataset label ("permutation", ...)
    std::uint64_t numBlocks = 0; ///< embedding-table rows indexed
    std::vector<BlockId> accesses;

    std::uint64_t size() const { return accesses.size(); }

    /** Distinct ids appearing in the trace. */
    std::uint64_t uniqueCount() const;

    /**
     * Fraction of accesses landing in the @p topN most frequent ids —
     * the "hot band mass" used to calibrate the Kaggle-like
     * synthesizer against paper Fig. 2.
     */
    double hotMass(std::uint64_t topN) const;

    /** Serialise as "laoram-trace 1 <name> <numBlocks> <n>" + ids. */
    void save(std::ostream &os) const;

    /** Parse the save() format; fatal on malformed input. */
    static Trace load(std::istream &is);
};

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_TRACE_HH
