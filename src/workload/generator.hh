/**
 * @file
 * Unified trace-generator factory used by benches and examples: one
 * enum per paper dataset, one call to build a trace at any scale.
 */

#ifndef LAORAM_WORKLOAD_GENERATOR_HH
#define LAORAM_WORKLOAD_GENERATOR_HH

#include <string>

#include "workload/trace.hh"

namespace laoram::workload {

/** The paper's evaluation datasets (§VII-B). */
enum class DatasetKind
{
    Permutation, ///< worst case: no repeats within an epoch
    Gaussian,    ///< mild locality around the table centre
    Kaggle,      ///< DLRM / Criteo-like: uniform cloud + thin hot band
    Xnli,        ///< XLM-R / XNLI-like: Zipfian token stream
};

/** Parse "permutation" / "gaussian" / "kaggle" / "xnli". */
DatasetKind datasetFromName(const std::string &name);

/** Human-readable dataset name. */
const char *datasetName(DatasetKind kind);

/**
 * Build a trace of @p accesses over a table of @p numBlocks entries.
 * Dataset-specific shape parameters use the calibrated defaults from
 * the per-generator headers.
 */
Trace makeTrace(DatasetKind kind, std::uint64_t numBlocks,
                std::uint64_t accesses, std::uint64_t seed);

/** Paper table sizes for each dataset (§VII-C, Table I). */
std::uint64_t paperNumBlocks(DatasetKind kind);

/** Paper logical row bytes for each dataset (§VII-C). */
std::uint64_t paperBlockBytes(DatasetKind kind);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_GENERATOR_HH
