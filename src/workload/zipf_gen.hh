/**
 * @file
 * Plain Zipf trace generator — the building block for the NLP-style
 * synthetic datasets and for locality-sweep ablations.
 */

#ifndef LAORAM_WORKLOAD_ZIPF_GEN_HH
#define LAORAM_WORKLOAD_ZIPF_GEN_HH

#include "workload/trace.hh"

namespace laoram::workload {

/** Zipf-stream generator parameters. */
struct ZipfParams
{
    std::uint64_t numBlocks = 1 << 20;
    std::uint64_t accesses = 100000;
    double skew = 1.0;            ///< Zipf exponent
    bool scatterRanks = true;     ///< decorrelate rank from id
    std::uint64_t seed = 1;
};

/**
 * Generate a Zipf-distributed trace. With @p scatterRanks the
 * popularity ranks are spread over the id space by a fixed bijection,
 * so "hot" does not mean "low id" (vocabulary ids are not
 * frequency-sorted in real embedding tables).
 */
Trace makeZipfTrace(const ZipfParams &params);

/** The rank -> id bijection used when scatterRanks is set. */
BlockId scatterRank(std::uint64_t rank, std::uint64_t numBlocks);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_ZIPF_GEN_HH
