/**
 * @file
 * Plain Zipf trace generator — the building block for the NLP-style
 * synthetic datasets and for locality-sweep ablations.
 */

#ifndef LAORAM_WORKLOAD_ZIPF_GEN_HH
#define LAORAM_WORKLOAD_ZIPF_GEN_HH

#include "workload/trace.hh"

namespace laoram::workload {

/** Zipf-stream generator parameters. */
struct ZipfParams
{
    std::uint64_t numBlocks = 1 << 20;
    std::uint64_t accesses = 100000;
    double skew = 1.0;            ///< Zipf exponent
    bool scatterRanks = true;     ///< decorrelate rank from id
    std::uint64_t seed = 1;
};

/**
 * Generate a Zipf-distributed trace. With @p scatterRanks the
 * popularity ranks are spread over the id space by a fixed bijection,
 * so "hot" does not mean "low id" (vocabulary ids are not
 * frequency-sorted in real embedding tables).
 */
Trace makeZipfTrace(const ZipfParams &params);

/**
 * The rank -> id bijection used when scatterRanks is set, with its
 * multiplier/offset search hoisted to construction: both are pure
 * functions of @p numBlocks, so a trace generator builds one
 * RankScatterer and maps every sample through it instead of re-running
 * the coprime search per access.
 */
class RankScatterer
{
  public:
    explicit RankScatterer(std::uint64_t numBlocks);

    BlockId
    operator()(std::uint64_t rank) const
    {
        return static_cast<BlockId>(
            (static_cast<__uint128_t>(rank) * mult + offset)
            % numBlocks);
    }

  private:
    std::uint64_t numBlocks;
    std::uint64_t mult;
    std::uint64_t offset;
};

/**
 * One-shot convenience wrapper around RankScatterer (re-derives the
 * multiplier per call; fine off the hot path).
 */
BlockId scatterRank(std::uint64_t rank, std::uint64_t numBlocks);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_ZIPF_GEN_HH
