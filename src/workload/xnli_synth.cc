#include "workload/xnli_synth.hh"

#include "workload/zipf_gen.hh"

namespace laoram::workload {

Trace
makeXnliTrace(const XnliParams &params)
{
    ZipfParams zp;
    zp.numBlocks = params.vocabSize;
    zp.accesses = params.accesses;
    zp.skew = params.skew;
    zp.scatterRanks = true;
    zp.seed = params.seed;

    Trace t = makeZipfTrace(zp);
    t.name = "xnli";
    return t;
}

} // namespace laoram::workload
