#include "workload/dlrm_multi.hh"

#include "util/rng.hh"
#include "workload/zipf_gen.hh"

namespace laoram::workload {

Trace
makeDlrmMultiTrace(const train::TableSet &tables,
                   const DlrmMultiParams &params)
{
    Trace t;
    t.name = "dlrm-multi";
    t.numBlocks = tables.totalBlocks();
    t.accesses.reserve(params.samples * tables.numTables());

    Rng rng(params.seed);
    // One popularity distribution per table; ranks scattered over the
    // table's rows so "hot" is not "low row id". Scatterers are built
    // once per table, not once per sampled access.
    std::vector<ZipfSampler> zipfs;
    std::vector<RankScatterer> scatters;
    zipfs.reserve(tables.numTables());
    scatters.reserve(tables.numTables());
    for (std::uint64_t tab = 0; tab < tables.numTables(); ++tab) {
        zipfs.emplace_back(tables.tableRows(tab), params.skew);
        scatters.emplace_back(tables.tableRows(tab));
    }

    std::vector<std::uint64_t> sample(tables.numTables());
    for (std::uint64_t s = 0; s < params.samples; ++s) {
        for (std::uint64_t tab = 0; tab < tables.numTables(); ++tab) {
            const std::uint64_t rank = zipfs[tab](rng);
            sample[tab] = scatters[tab](rank);
        }
        tables.appendSample(sample, t.accesses);
    }
    return t;
}

} // namespace laoram::workload
