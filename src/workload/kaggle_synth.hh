/**
 * @file
 * Kaggle-like (DLRM) trace synthesizer.
 *
 * The Criteo Ad Kaggle dataset contains real user data and cannot be
 * redistributed, so we synthesize a stream with the two structural
 * properties paper Fig. 2 exhibits and that LAORAM's results actually
 * depend on:
 *
 *  1. most accesses scatter uniformly over the ~10.1M-entry table
 *     (the random cloud of Fig. 2), and
 *  2. a thin, heavily reused "hot band" of low indices (the dark band
 *     at the bottom of Fig. 2) supplies a small duplicate fraction
 *     that eases stash pressure (paper §VIII-B's explanation of why
 *     real traces beat the permutation worst case).
 *
 * Defaults are calibrated so that roughly 15 % of accesses land in a
 * ~2K-entry Zipf-distributed hot set — matching the narrow band and
 * the "some duplicate addresses within a window" description.
 */

#ifndef LAORAM_WORKLOAD_KAGGLE_SYNTH_HH
#define LAORAM_WORKLOAD_KAGGLE_SYNTH_HH

#include "workload/trace.hh"

namespace laoram::workload {

/** Kaggle-like synthesizer parameters. */
struct KaggleParams
{
    /** Largest Criteo Kaggle embedding table (paper §VII-C). */
    std::uint64_t numBlocks = 10131227;
    std::uint64_t accesses = 100000;
    double hotProbability = 0.15; ///< P(access comes from the hot band)
    std::uint64_t hotSetSize = 2048; ///< entries in the band
    double hotSkew = 1.05;        ///< Zipf exponent inside the band
    std::uint64_t seed = 1;
};

/** Generate a Kaggle/DLRM-like trace. */
Trace makeKaggleTrace(const KaggleParams &params);

} // namespace laoram::workload

#endif // LAORAM_WORKLOAD_KAGGLE_SYNTH_HH
