#include "workload/zipf_gen.hh"

#include <numeric>

#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::workload {

RankScatterer::RankScatterer(std::uint64_t numBlocks)
    : numBlocks(numBlocks)
{
    LAORAM_ASSERT(numBlocks > 0, "empty address space");
    // Multiplicative bijection: an odd multiplier coprime with the
    // table size spreads consecutive ranks across the address space.
    // Start from the golden-ratio constant and step until coprime so
    // the map stays a bijection for any table size.
    mult = 0x9E3779B97F4A7C15ULL % numBlocks;
    if (mult == 0)
        mult = 1;
    while (std::gcd(mult, numBlocks) != 1)
        ++mult;
    // Affine offset so rank 0 (the hottest item) does not pin to id 0.
    offset = 0x632BE59BD9B4E019ULL % numBlocks;
}

BlockId
scatterRank(std::uint64_t rank, std::uint64_t numBlocks)
{
    return RankScatterer(numBlocks)(rank);
}

Trace
makeZipfTrace(const ZipfParams &params)
{
    LAORAM_ASSERT(params.numBlocks > 0, "empty address space");
    Trace t;
    t.name = "zipf";
    t.numBlocks = params.numBlocks;
    t.accesses.reserve(params.accesses);

    Rng rng(params.seed);
    ZipfSampler zipf(params.numBlocks, params.skew);
    const RankScatterer scatter(params.numBlocks);
    for (std::uint64_t i = 0; i < params.accesses; ++i) {
        const std::uint64_t rank = zipf(rng);
        t.accesses.push_back(params.scatterRanks
                                 ? scatter(rank)
                                 : static_cast<BlockId>(rank));
    }
    return t;
}

} // namespace laoram::workload
