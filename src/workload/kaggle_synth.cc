#include "workload/kaggle_synth.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::workload {

Trace
makeKaggleTrace(const KaggleParams &params)
{
    LAORAM_ASSERT(params.hotSetSize <= params.numBlocks,
                  "hot set larger than the table");
    LAORAM_ASSERT(params.hotProbability >= 0.0
                      && params.hotProbability <= 1.0,
                  "hot probability must be in [0,1]");

    Trace t;
    t.name = "kaggle";
    t.numBlocks = params.numBlocks;
    t.accesses.reserve(params.accesses);

    Rng rng(params.seed);
    ZipfSampler hot(std::max<std::uint64_t>(params.hotSetSize, 1),
                    params.hotSkew);

    for (std::uint64_t i = 0; i < params.accesses; ++i) {
        if (rng.nextBool(params.hotProbability)) {
            // Hot band: Zipf over the lowest indices — reproduces the
            // dark band at the bottom of Fig. 2.
            t.accesses.push_back(hot(rng));
        } else {
            // Cold cloud: uniform over the whole table.
            t.accesses.push_back(rng.nextBounded(params.numBlocks));
        }
    }
    return t;
}

} // namespace laoram::workload
