#include "workload/gaussian_gen.hh"

#include "util/rng.hh"

namespace laoram::workload {

Trace
makeGaussianTrace(const GaussianParams &params)
{
    Trace t;
    t.name = "gaussian";
    t.numBlocks = params.numBlocks;
    t.accesses.reserve(params.accesses);

    Rng rng(params.seed);
    GaussianIndexSampler sampler(params.numBlocks, params.mean,
                                 params.stddev);
    for (std::uint64_t i = 0; i < params.accesses; ++i)
        t.accesses.push_back(sampler(rng));
    return t;
}

} // namespace laoram::workload
