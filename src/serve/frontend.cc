#include "serve/frontend.hh"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cache/hot_cache.hh"
#include "obs/metrics.hh"
#include "util/bounded_queue.hh"
#include "util/logging.hh"
#include "util/walltime.hh"

namespace laoram::serve {

namespace {

/** Live frontend metrics (process-wide; lanes share the handles). */
struct FrontendMetrics
{
    obs::Counter &sessions;
    obs::Gauge &admissionDepth;
    obs::Counter &rejects;
    obs::Histogram &batchOps;
    obs::Histogram &windowOps;
};

FrontendMetrics &
frontendMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static FrontendMetrics m{
        reg.counter("serve.sessions", "client sessions opened"),
        reg.gauge("serve.admission_depth",
                  "operations admitted but not yet coalesced"),
        reg.counter("serve.rejects",
                    "operations refused at admission"),
        reg.histogram("serve.batch_ops",
                      "operations per submitted batch"),
        reg.histogram("serve.window_ops",
                      "operations per coalesced window"),
    };
    return m;
}

/**
 * One batch's shared completion state. Result slots are pre-sized at
 * submit time, every operation writes only its own slot, and the last
 * completer (tracked by `remaining`, a release-sequence chain) fulfils
 * the promise — so serving threads of different shards complete
 * operations of one batch without any lock.
 */
struct BatchState
{
    std::promise<BatchResult> promise;
    BatchResult result;
    std::atomic<std::uint32_t> remaining{0};

    /**
     * Set (before the matching `remaining` decrement) when admission
     * rejected part of the batch; the last completer then fails the
     * promise instead of fulfilling it.
     */
    std::atomic<bool> rejected{false};

    /** Retire @p count operations; fulfil/fail on the last one. */
    void
    complete(std::uint32_t count)
    {
        if (remaining.fetch_sub(count, std::memory_order_acq_rel)
            == count) {
            if (rejected.load(std::memory_order_acquire)) {
                promise.set_exception(
                    std::make_exception_ptr(RejectedError{}));
            } else {
                promise.set_value(std::move(result));
            }
        }
    }
};

/** One admitted operation, queued shard-locally until coalesced. */
struct PendingOp
{
    OpType type = OpType::Lookup;
    BlockId localId = 0;
    std::vector<std::uint8_t> payload; ///< update bytes
    std::shared_ptr<BatchState> batch;
    std::uint32_t slot = 0; ///< index into batch->result.results
    WallClock::time_point submitted{};
    bool flushMarker = false; ///< flush() sentinel, not an operation
};

} // namespace

/**
 * One shard's ingress lane: the admission queue, the coalescer that
 * assembles full windows from it, and the serving-side hooks that
 * apply payloads and complete futures. Implements ServeSource, so a
 * stock BatchPipeline drives it like any trace.
 */
class ServeFrontend::ShardLane final : public core::ServeSource
{
  public:
    ShardLane(std::uint64_t windowAccesses, std::size_t admissionOps,
              cache::HotEmbeddingCache *cache)
        : windowAccesses(windowAccesses), queue(admissionOps),
          cache(cache)
    {
    }

    /**
     * Coalesce the next window: pop admitted operations (blocking
     * while the queue is open but empty) until the window is full, a
     * flush sentinel cuts it short, or the stream ends. Full windows
     * are the determinism anchor — window contents depend only on the
     * lane's arrival order, never on pipeline timing — which is why
     * partial windows exist solely at explicit flush/shutdown points.
     */
    bool
    nextWindow(core::SourceWindow &out) override
    {
        // One assembler at a time: with a preprocessor pool several
        // threads claim windows concurrently, and contiguous index
        // assignment plus FIFO consumption both live under this lock.
        std::lock_guard<std::mutex> lock(assembleMu);
        out.accesses.clear();
        WindowPlan plan;
        while (out.accesses.size() < windowAccesses) {
            PendingOp op;
            if (!queue.pop(op))
                break; // closed and drained: final partial window
            if (op.flushMarker) {
                if (out.accesses.empty())
                    continue; // nothing pending at the flush point
                break;        // cut the partial window now
            }
            if (obs::metricsEnabled())
                frontendMetrics().admissionDepth.dec();
            // Hot-cache fast path: when the row is resident and no
            // earlier *planned* operation on this id is still in
            // flight (the eligibility gate that preserves per-id
            // arrival order), apply the operation to the trusted
            // cache row right here on the assembler thread and
            // complete its future at DRAM speed. The id is STILL
            // pushed into out.accesses below — the scheduled ORAM
            // access happens as a dummy and doubles as the coalesced
            // write-back for the row — so the server-visible trace is
            // byte-identical with the cache off.
            bool fast = false;
            if (cache != nullptr) {
                bool blocked;
                {
                    // Never hold pendingMu across the cache call:
                    // the serving thread locks the cache mutex first
                    // and pendingMu second (onTouch via windowServed),
                    // so the reverse nesting here would deadlock.
                    std::lock_guard<std::mutex> plk(pendingMu);
                    blocked = plannedPending.find(op.localId)
                              != plannedPending.end();
                }
                if (!blocked) {
                    if (op.type == OpType::Update) {
                        fast = cache->tryServeAtAdmission(
                            op.localId,
                            [&op](std::vector<std::uint8_t> &row) {
                                const std::size_t n = std::min(
                                    row.size(), op.payload.size());
                                std::copy_n(op.payload.begin(), n,
                                            row.begin());
                            });
                    } else {
                        fast = cache->tryServeAtAdmission(
                            op.localId,
                            [&op](std::vector<std::uint8_t> &row) {
                                op.batch->result.results[op.slot]
                                    .payload = row;
                            });
                    }
                }
            }
            out.accesses.push_back(op.localId);
            if (fast) {
                {
                    std::lock_guard<std::mutex> hlk(histMu);
                    hist.record(elapsedNs(op.submitted,
                                          WallClock::now()));
                }
                op.batch->complete(1);
                continue;
            }
            {
                std::lock_guard<std::mutex> plk(pendingMu);
                ++plannedPending[op.localId];
            }
            plan.byId[op.localId].push_back(plan.ops.size());
            plan.ops.push_back(std::move(op));
        }
        if (out.accesses.empty())
            return false;
        if (obs::metricsEnabled())
            frontendMetrics().windowOps.record(out.accesses.size());
        out.windowIndex = windowsEmitted++;
        out.traceOffset = accessesEmitted;
        accessesEmitted += out.accesses.size();
        {
            std::lock_guard<std::mutex> plock(planMu);
            plans.emplace(out.windowIndex, std::move(plan));
        }
        return true;
    }

    void
    windowServing(std::uint64_t windowIndex) override
    {
        std::lock_guard<std::mutex> plock(planMu);
        auto it = plans.find(windowIndex);
        LAORAM_ASSERT(it != plans.end(), "serving window ",
                      windowIndex, " with no coalesced plan");
        current = std::move(it->second);
        plans.erase(it);
        applied = 0;
    }

    /**
     * Engine touch hook (serving thread, mid-window): drain every
     * pending operation on this id in submission order — updates
     * overwrite the payload, lookups copy it out afterwards, so a
     * session reads its own prior writes even within one window.
     * Later touches of the same id in this window find nothing left.
     */
    void
    onTouch(BlockId localId, std::vector<std::uint8_t> &payload)
    {
        auto it = current.byId.find(localId);
        if (it == current.byId.end())
            return;
        for (const std::size_t idx : it->second) {
            PendingOp &op = current.ops[idx];
            if (op.type == OpType::Update) {
                const std::size_t n =
                    std::min(payload.size(), op.payload.size());
                std::copy_n(op.payload.begin(), n, payload.begin());
            } else {
                op.batch->result.results[op.slot].payload = payload;
            }
        }
        applied += it->second.size();
        // Remember the drain; the planned-pending gate is released
        // only in windowServed, after the engine has written the
        // touched payload back into the cache row — releasing it here
        // would let an assembler fast-apply to the row in that gap
        // and lose its update to the pending write-back.
        drainedThisWindow.emplace_back(localId, it->second.size());
        current.byId.erase(it);
    }

    /**
     * Completion point: the window's path unions are written back, so
     * results are durable — record latencies and fulfil futures.
     */
    void
    windowServed(std::uint64_t windowIndex) override
    {
        (void)windowIndex;
        LAORAM_ASSERT(applied == current.ops.size(),
                      "window served but only ", applied, " of ",
                      current.ops.size(), " operations were touched");
        const WallClock::time_point now = WallClock::now();
        {
            std::lock_guard<std::mutex> hlk(histMu);
            for (PendingOp &op : current.ops)
                hist.record(elapsedNs(op.submitted, now));
        }
        for (PendingOp &op : current.ops)
            op.batch->complete(1);
        // The window's write-backs are durable; lift the fast-path
        // gate for the ids whose planned operations just retired.
        if (!drainedThisWindow.empty()) {
            std::lock_guard<std::mutex> plk(pendingMu);
            for (const auto &[localId, count] : drainedThisWindow) {
                auto it = plannedPending.find(localId);
                LAORAM_ASSERT(it != plannedPending.end()
                                  && it->second >= count,
                              "planned-pending underflow on block ",
                              localId);
                it->second -= count;
                if (it->second == 0)
                    plannedPending.erase(it);
            }
            drainedThisWindow.clear();
        }
        current = WindowPlan{};
    }

    StreamingHistogram *latencyHistogram() override { return &hist; }

    BoundedQueue<PendingOp> &admission() { return queue; }
    const StreamingHistogram &latency() const { return hist; }

  private:
    /** A coalesced window's operations + per-id touch plan. */
    struct WindowPlan
    {
        std::vector<PendingOp> ops; ///< lane-arrival (submission) order
        /** localId -> indices into ops, drained at first touch. */
        std::unordered_map<BlockId, std::vector<std::size_t>> byId;
    };

    const std::uint64_t windowAccesses;
    BoundedQueue<PendingOp> queue;

    /** The shard engine's hot-row cache; nullptr when disabled. */
    cache::HotEmbeddingCache *const cache;

    std::mutex assembleMu; ///< serialises nextWindow
    std::uint64_t windowsEmitted = 0;
    std::uint64_t accessesEmitted = 0;

    std::mutex planMu; ///< assembler threads -> serving thread
    std::unordered_map<std::uint64_t, WindowPlan> plans;

    /**
     * Fast-path eligibility gate: per-id count of planned (non-fast)
     * operations coalesced but not yet retired by windowServed. While
     * non-zero, later operations on the id must also take the planned
     * path so per-id arrival order survives the coalesce-ahead race
     * (window w+1 is assembled while window w is still serving).
     */
    std::mutex pendingMu;
    std::unordered_map<BlockId, std::uint64_t> plannedPending;

    // Serving-thread-only state (one serving thread per lane).
    WindowPlan current;
    std::size_t applied = 0;
    std::vector<std::pair<BlockId, std::uint64_t>> drainedThisWindow;

    /**
     * Guarded by histMu: fast-path completions record from assembler
     * threads while windowServed records from the serving thread.
     * End-of-run reads (latency(), latencyHistogram()->report())
     * happen after the lane's stream drained and threads joined.
     */
    std::mutex histMu;
    StreamingHistogram hist;
};

std::future<BatchResult>
Session::submit(Batch batch)
{
    return frontend->submit(std::move(batch));
}

ServeFrontend::ServeFrontend(core::ShardedLaoram &engine,
                             FrontendConfig cfg)
    : engine(engine), cfg(cfg)
{
    if (cfg.admissionOps < 1)
        LAORAM_FATAL("frontend admissionOps must be >= 1");
    if (engine.servingPoolSize() != engine.numShards()) {
        LAORAM_FATAL(
            "online serving needs one serving lane per shard "
            "(servingThreads 0 or >= numShards): lane streams only "
            "end at stop(), so a pool of ", engine.servingPoolSize(),
            " over ", engine.numShards(),
            " shards would starve the unclaimed shards");
    }
    const std::uint64_t window =
        engine.config().pipeline.windowAccesses;
    lanes.reserve(engine.numShards());
    for (std::uint32_t s = 0; s < engine.numShards(); ++s)
        lanes.push_back(std::make_unique<ShardLane>(
            window, cfg.admissionOps, engine.shard(s).hotCache()));
}

ServeFrontend::~ServeFrontend()
{
    if (started && !stopped) {
        try {
            stop();
        } catch (...) {
            // Destructors must not throw; stop() already joined the
            // driver, which is all teardown needs.
        }
    }
}

Session
ServeFrontend::session()
{
    if (obs::metricsEnabled())
        frontendMetrics().sessions.inc();
    return Session(*this, nextSession.fetch_add(
                              1, std::memory_order_relaxed));
}

core::ServeSource &
ServeFrontend::shardSource(std::uint32_t shard)
{
    return *lanes[shard];
}

void
ServeFrontend::mergedLatency(StreamingHistogram &into)
{
    for (const std::unique_ptr<ShardLane> &lane : lanes)
        into.merge(lane->latency());
}

std::future<BatchResult>
ServeFrontend::submit(Batch batch)
{
    auto state = std::make_shared<BatchState>();
    std::future<BatchResult> fut = state->promise.get_future();
    if (batch.ops.empty()) {
        state->promise.set_value(BatchResult{});
        return fut;
    }
    state->result.results.resize(batch.ops.size());
    state->remaining.store(
        static_cast<std::uint32_t>(batch.ops.size()),
        std::memory_order_relaxed);
    if (obs::metricsEnabled())
        frontendMetrics().batchOps.record(batch.ops.size());

    const WallClock::time_point now = WallClock::now();
    for (std::size_t i = 0; i < batch.ops.size(); ++i) {
        Op &op = batch.ops[i];
        if (op.id >= engine.splitter().numBlocks())
            LAORAM_FATAL("operation on block ", op.id,
                         " outside the block space of ",
                         engine.splitter().numBlocks());
        state->result.results[i].id = op.id;

        PendingOp pending;
        pending.type = op.type;
        pending.localId = engine.splitter().localId(op.id);
        pending.payload = std::move(op.payload);
        pending.batch = state;
        pending.slot = static_cast<std::uint32_t>(i);
        pending.submitted = now;

        BoundedQueue<PendingOp> &queue =
            lanes[engine.splitter().shardOf(op.id)]->admission();
        const bool admitted =
            cfg.queueFullPolicy == QueueFullPolicy::Block
                ? queue.push(std::move(pending))
                : queue.tryPush(std::move(pending));
        if (!admitted) {
            // Queue full (Reject policy) or closed (submit after
            // stop): fail the batch. Operations already admitted
            // still serve — their side effects apply — but the
            // rejected flag makes the last completer fail the future.
            if (obs::metricsEnabled())
                frontendMetrics().rejects.add(batch.ops.size() - i);
            state->rejected.store(true, std::memory_order_release);
            state->complete(
                static_cast<std::uint32_t>(batch.ops.size() - i));
            break;
        }
        if (obs::metricsEnabled())
            frontendMetrics().admissionDepth.inc();
    }
    return fut;
}

void
ServeFrontend::start()
{
    if (started)
        LAORAM_FATAL("ServeFrontend::start called twice (a frontend "
                     "serves one run; build a new one to serve again)");
    started = true;

    // The frontend owns the touch callback while serving: route each
    // touched block back to its lane's pending-operation plan.
    engine.setTouchCallback(
        [this](BlockId globalId, std::vector<std::uint8_t> &payload) {
            lanes[engine.splitter().shardOf(globalId)]->onTouch(
                engine.splitter().localId(globalId), payload);
        });

    driver = std::thread([this] {
        try {
            report_ = engine.serve(*this);
        } catch (...) {
            driverError = std::current_exception();
        }
    });
}

void
ServeFrontend::flush()
{
    PendingOp marker;
    marker.flushMarker = true;
    for (const std::unique_ptr<ShardLane> &lane : lanes) {
        // push() returning false just means the lane already shut
        // down — nothing left to flush there.
        (void)lane->admission().push(marker);
    }
}

core::ShardedPipelineReport
ServeFrontend::stop()
{
    if (!started)
        LAORAM_FATAL("ServeFrontend::stop before start");
    if (stopped)
        return report_;
    for (const std::unique_ptr<ShardLane> &lane : lanes)
        lane->admission().close();
    driver.join();
    engine.setTouchCallback(nullptr);
    stopped = true;
    if (driverError)
        std::rethrow_exception(driverError);
    return report_;
}

} // namespace laoram::serve
