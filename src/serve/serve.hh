/**
 * @file
 * serve() — the one way to run a LAORAM engine over any access
 * stream.
 *
 * Every run is "drive an engine from a ServeSource through the
 * two-stage pipeline"; these overloads are the uniform spelling of
 * that for each engine shape (standalone / sharded) and stream shape
 * (explicit source / pre-built trace). Examples and benches call
 * serve(); the member entry points (Laoram::runTrace,
 * BatchPipeline::run, ShardedLaoram::runTrace) remain as documented
 * adapters over the same code path.
 *
 * For online request traffic, construct a ServeFrontend
 * (serve/frontend.hh) — its start() drives the sharded overload on a
 * background thread.
 */

#ifndef LAORAM_SERVE_SERVE_HH
#define LAORAM_SERVE_SERVE_HH

#include <vector>

#include "core/pipeline.hh"
#include "core/sharded_laoram.hh"

namespace laoram::serve {

/** Drive @p engine from @p source under the pipeline knobs @p cfg. */
inline core::PipelineReport
serve(core::Laoram &engine, core::ServeSource &source,
      const core::PipelineConfig &cfg)
{
    return core::BatchPipeline(engine, cfg).run(source);
}

/** Trace convenience: wraps @p trace in a TraceSource. */
inline core::PipelineReport
serve(core::Laoram &engine, const std::vector<core::BlockId> &trace,
      const core::PipelineConfig &cfg)
{
    return core::BatchPipeline(engine, cfg).run(trace);
}

/**
 * Trace convenience matching the engine's own configuration: windows
 * follow engine.laoramConfig().lookaheadWindow (0 = whole trace) on
 * the calling thread — the serial reference flow.
 */
inline core::PipelineReport
serve(core::Laoram &engine, const std::vector<core::BlockId> &trace)
{
    core::PipelineConfig pc;
    pc.mode = core::PipelineMode::Simulated;
    pc.windowAccesses = engine.laoramConfig().lookaheadWindow == 0
                            ? std::max<std::uint64_t>(trace.size(), 1)
                            : engine.laoramConfig().lookaheadWindow;
    return core::BatchPipeline(engine, pc).run(trace);
}

/** Drive every shard of @p engine from @p source's lanes. */
inline core::ShardedPipelineReport
serve(core::ShardedLaoram &engine, core::ShardedServeSource &source)
{
    return engine.serve(source);
}

/** Sharded trace convenience: split, then serve lane per shard. */
inline core::ShardedPipelineReport
serve(core::ShardedLaoram &engine,
      const std::vector<core::BlockId> &trace)
{
    return engine.runTrace(trace);
}

} // namespace laoram::serve

#endif // LAORAM_SERVE_SERVE_HH
