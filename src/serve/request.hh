/**
 * @file
 * Request/response types of the online serving frontend.
 *
 * Clients talk to the frontend in *batches*: a batch is an ordered
 * list of lookup/update operations on global block ids, submitted as
 * one unit and answered by one future. Operations of one batch may
 * land in different shards and different look-ahead windows — the
 * future resolves only after every one of them was served against
 * the authoritative trusted-client state. Without a hot-row cache
 * that means the operation's window was written back to the ORAM
 * tree; with one (--cache-mb), an operation on a resident row may
 * complete at admission time, its value living in the trusted cache
 * until the row's already-scheduled access flushes it (write-back
 * coalescing). Either way a completed lookup reflects every earlier
 * same-session operation on that id.
 *
 * Ordering semantics: operations are applied in submission order
 * *per session* (one session's batches form one logical stream), so a
 * lookup submitted after an update to the same id observes the
 * update. Across sessions no order is promised — concurrent sessions
 * race exactly like concurrent clients of any storage service.
 */

#ifndef LAORAM_SERVE_REQUEST_HH
#define LAORAM_SERVE_REQUEST_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/superblock.hh"

namespace laoram::serve {

using core::BlockId;

/** What one operation does to its block. */
enum class OpType : std::uint8_t
{
    Lookup, ///< read the block's payload bytes
    Update, ///< overwrite the payload with the op's bytes
};

/** One operation on one global block id. */
struct Op
{
    OpType type = OpType::Lookup;
    BlockId id = 0;

    /**
     * Update payload (ignored for lookups). Shorter than the engine's
     * payloadBytes overwrites a prefix; longer is truncated.
     */
    std::vector<std::uint8_t> payload;

    static Op
    lookup(BlockId id)
    {
        Op op;
        op.type = OpType::Lookup;
        op.id = id;
        return op;
    }

    static Op
    update(BlockId id, std::vector<std::uint8_t> payload)
    {
        Op op;
        op.type = OpType::Update;
        op.id = id;
        op.payload = std::move(payload);
        return op;
    }
};

/** An ordered list of operations submitted as one unit. */
struct Batch
{
    std::vector<Op> ops;
};

/** Result of one operation, in the batch's submission order. */
struct OpResult
{
    BlockId id = 0;

    /** Payload bytes at serve time (lookups only; empty for updates). */
    std::vector<std::uint8_t> payload;
};

/** Fulfilled value of Session::submit's future. */
struct BatchResult
{
    std::vector<OpResult> results; ///< one per op, same order
};

/** What Session::submit does when admission queues are full. */
enum class QueueFullPolicy : std::uint8_t
{
    Block,  ///< block the submitter until room frees up (backpressure)
    Reject, ///< fail the batch's future with RejectedError
};

/**
 * Set on a batch's future under QueueFullPolicy::Reject when an
 * admission queue was full at submit time. Operations admitted before
 * the queue filled are still served (their side effects apply); only
 * the batch-level result is withheld.
 */
class RejectedError : public std::runtime_error
{
  public:
    RejectedError()
        : std::runtime_error(
              "batch rejected: serving admission queue full")
    {
    }
};

} // namespace laoram::serve

#endif // LAORAM_SERVE_REQUEST_HH
