/**
 * @file
 * The online serving frontend: concurrent client sessions in front of
 * a sharded LAORAM, coalesced into look-ahead windows.
 *
 * LAORAM's whole trick is seeing a window of *future* accesses; the
 * offline path gets that from a pre-built trace. Online, the future
 * is the requests already sitting in the admission queues: the
 * frontend's **coalescer** merges the operations of every session
 * into per-shard streams and cuts them into full look-ahead windows —
 * the same numbered SourceWindows a trace produces — which the
 * unchanged two-stage pipeline preprocesses and serves. Cross-session
 * coalescing subsumes shard-aware batching: a request is routed to
 * its shard's lane and packed next to whatever other sessions want
 * from that shard.
 *
 * Obliviousness: coalescing only changes *which* window a real access
 * lands in, never what the server observes about it — every window is
 * preprocessed into superblock bins whose paths are fresh uniform
 * draws, exactly as in trace replay, and short bins already pad their
 * path unions the same way. The server-visible sequence stays
 * (shard, uniform path) pairs; arrival timing is what any ORAM
 * deployment already leaks.
 *
 * Determinism: window contents are a pure function of the per-shard
 * *arrival order* of operations. Replaying the same arrival order
 * (e.g. submitting from one thread, or joining submitter threads
 * before flush()) reproduces payload bytes, position maps and stashes
 * for any serving-pool size, prep-thread count or queue depth — the
 * session-replay differential suite locks this in. Concurrent
 * sessions make arrival order (and thus window packing) racy between
 * runs, but never unsafe: results are still exact per request.
 *
 * Lifecycle: construct over a ShardedLaoram, create sessions, then
 *   start()  — serving begins (a driver thread runs engine.serve)
 *   submit() — any time after construction; pre-start submissions
 *              queue up to the admission capacity
 *   flush()  — cut partial windows so everything pending completes
 *   stop()   — drain, shut down, and return the run's report
 *
 * The frontend requires servingPoolSize() == numShards: lanes only
 * end their streams at stop(), so a smaller pool would serve its
 * first shards forever and starve the rest.
 */

#ifndef LAORAM_SERVE_FRONTEND_HH
#define LAORAM_SERVE_FRONTEND_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/sharded_laoram.hh"
#include "serve/request.hh"

namespace laoram::serve {

/** Frontend knobs. */
struct FrontendConfig
{
    /**
     * Admission-queue capacity per shard lane, in operations — the
     * frontend's backpressure bound: at most this many operations per
     * shard can sit between submit() and window assembly.
     */
    std::size_t admissionOps = 4096;

    /** What submit() does when an admission queue is full. */
    QueueFullPolicy queueFullPolicy = QueueFullPolicy::Block;
};

class ServeFrontend;

/**
 * A client session handle (copyable, cheap). Each session's batches
 * are applied in submission order; see request.hh for semantics.
 * Thread-safety: one session is used by one client thread; distinct
 * sessions submit concurrently without external locking.
 */
class Session
{
  public:
    /**
     * Submit a batch; the future resolves once every operation was
     * served and written back (or fails with RejectedError under
     * QueueFullPolicy::Reject). Safe before start(): operations queue
     * in admission until serving begins.
     */
    std::future<BatchResult> submit(Batch batch);

    std::uint64_t id() const { return sid; }

  private:
    friend class ServeFrontend;
    Session(ServeFrontend &frontend, std::uint64_t sid)
        : frontend(&frontend), sid(sid)
    {
    }

    ServeFrontend *frontend;
    std::uint64_t sid;
};

/**
 * Session ingress + cross-session coalescer over one ShardedLaoram
 * (see file comment). Implements ShardedServeSource: shard lane s is
 * the window stream the serving pool's lane s consumes.
 *
 * The frontend owns the engine's touch callback while serving —
 * installing a training callback alongside online serving is not
 * supported (route training through Update operations instead).
 */
class ServeFrontend final : public core::ShardedServeSource
{
  public:
    explicit ServeFrontend(core::ShardedLaoram &engine,
                           FrontendConfig cfg = FrontendConfig{});
    ~ServeFrontend() override;

    ServeFrontend(const ServeFrontend &) = delete;
    ServeFrontend &operator=(const ServeFrontend &) = delete;

    /** Open a new client session. */
    Session session();

    /** Begin serving: spawns the driver thread running engine.serve. */
    void start();

    /**
     * Cut every lane's pending partial window so all operations
     * submitted so far complete without waiting for future traffic to
     * fill their windows. Callable repeatedly.
     */
    void flush();

    /**
     * Drain everything admitted, end every lane's stream, join the
     * driver, and return the run's report (latency percentiles in
     * report.aggregate.latency). Idempotent; rethrows any serving
     * error.
     */
    core::ShardedPipelineReport stop();

    // ---- ShardedServeSource (consumed by engine.serve) ----
    core::ServeSource &shardSource(std::uint32_t shard) override;
    void mergedLatency(StreamingHistogram &into) override;

    const FrontendConfig &config() const { return cfg; }

  private:
    friend class Session;
    class ShardLane;

    std::future<BatchResult> submit(Batch batch);

    core::ShardedLaoram &engine;
    FrontendConfig cfg;
    std::vector<std::unique_ptr<ShardLane>> lanes;
    std::thread driver;
    std::exception_ptr driverError;
    core::ShardedPipelineReport report_;
    std::atomic<std::uint64_t> nextSession{0};
    bool started = false;
    bool stopped = false;
};

} // namespace laoram::serve

#endif // LAORAM_SERVE_FRONTEND_HH
