#include "obs/sampler.hh"

#include <chrono>
#include <utility>

#include "obs/metrics.hh"
#include "util/json_writer.hh"
#include "util/logging.hh"

namespace laoram::obs {

namespace {

std::int64_t
steadyNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

MetricsSampler::MetricsSampler(MetricsRegistry &registry,
                               Config config)
    : registry(registry), config(std::move(config))
{
}

MetricsSampler::~MetricsSampler()
{
    stop();
}

bool
MetricsSampler::start()
{
    LAORAM_ASSERT(!running, "sampler started twice");
    LAORAM_ASSERT(config.intervalMs > 0,
                  "sampler interval must be positive");
    out.open(config.path);
    if (!out) {
        warn("metrics: cannot open '", config.path,
             "' for writing; sampling disabled");
        return false;
    }
    startNs = steadyNs();
    stopping = false;
    running = true;
    thread = std::thread([this] { run(); });
    return true;
}

void
MetricsSampler::stop()
{
    if (!running)
        return;
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cv.notify_all();
    thread.join();
    running = false;
    // The final sample happens here, after the thread has quiesced,
    // so the last line carries end-of-run totals.
    writeSample();
    out.flush();
    if (!out)
        warn("metrics: write to '", config.path, "' failed");
    out.close();
}

std::uint64_t
MetricsSampler::samplesWritten() const
{
    return samples.load(std::memory_order_relaxed);
}

void
MetricsSampler::run()
{
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
        const auto interval =
            std::chrono::milliseconds(config.intervalMs);
        if (cv.wait_for(lock, interval, [this] { return stopping; }))
            break;
        // Sampling outside the lock would let stop() race the
        // stream; snapshot() itself never blocks updaters.
        writeSample();
    }
}

void
MetricsSampler::writeSample()
{
    const std::int64_t nowNs = steadyNs();
    const MetricsSnapshot snap = registry.snapshot();
    util::JsonWriter w(out, 0);
    w.beginObject();
    w.field("ts_ms",
            static_cast<std::uint64_t>((nowNs - startNs) / 1000000));
    w.field("seq", samples.load(std::memory_order_relaxed));
    for (const MetricsSnapshot::Value &v : snap.values)
        w.field(v.name, v.value);
    w.endObject();
    out << '\n';
    samples.fetch_add(1, std::memory_order_relaxed);
}

} // namespace laoram::obs
