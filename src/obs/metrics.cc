#include "obs/metrics.hh"

#include <sstream>

#include "util/logging.hh"

namespace laoram::obs {

namespace detail {
std::atomic<bool> gMetricsEnabled{false};
} // namespace detail

void
setMetricsEnabled(bool on)
{
    detail::gMetricsEnabled.store(on, std::memory_order_relaxed);
}

namespace {

/** Bit width of @p v: 0 for 0, else 1 + floor(log2 v). */
std::size_t
bitWidth(std::uint64_t v)
{
    std::size_t w = 0;
    while (v != 0) {
        ++w;
        v >>= 1;
    }
    return w;
}

} // namespace

void
Histogram::record(std::uint64_t value)
{
    buckets[bitWidth(value)].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    total.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = maxV.load(std::memory_order_relaxed);
    while (cur < value
           && !maxV.compare_exchange_weak(cur, value,
                                          std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::quantile(double p) const
{
    const std::uint64_t samples = count();
    if (samples == 0)
        return 0;
    const double target = p * static_cast<double>(samples);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i].load(std::memory_order_relaxed);
        if (static_cast<double>(seen) >= target) {
            // Lower bound of bucket i: 0 for i==0, else 2^(i-1).
            return i == 0 ? 0 : (std::uint64_t{1} << (i - 1));
        }
    }
    return max();
}

struct MetricsRegistry::Entry
{
    std::string name;
    std::string help;
    Kind kind = Kind::Counter;
    // Exactly one of these is live, by kind; unique_ptr members keep
    // handle addresses stable as `entries` grows.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
};

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry reg;
    return reg;
}

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &name,
                              const std::string &help, Kind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    for (const std::unique_ptr<Entry> &e : entries) {
        if (e->name == name) {
            LAORAM_ASSERT(e->kind == kind, "metric '", name,
                          "' re-registered with a different kind");
            return *e;
        }
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->help = help;
    entry->kind = kind;
    switch (kind) {
      case Kind::Counter:
        entry->counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        entry->gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        entry->histogram = std::make_unique<Histogram>();
        break;
    }
    entries.push_back(std::move(entry));
    return *entries.back();
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help)
{
    return *findOrCreate(name, help, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    return *findOrCreate(name, help, Kind::Gauge).gauge;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help)
{
    return *findOrCreate(name, help, Kind::Histogram).histogram;
}

std::size_t
MetricsRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

void
MetricsRegistry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu);
    for (const std::unique_ptr<Entry> &e : entries) {
        switch (e->kind) {
          case Kind::Counter:
            e->counter->v.store(0, std::memory_order_relaxed);
            break;
          case Kind::Gauge:
            e->gauge->v.store(0, std::memory_order_relaxed);
            break;
          case Kind::Histogram: {
            Histogram &h = *e->histogram;
            for (auto &b : h.buckets)
                b.store(0, std::memory_order_relaxed);
            h.n.store(0, std::memory_order_relaxed);
            h.total.store(0, std::memory_order_relaxed);
            h.maxV.store(0, std::memory_order_relaxed);
            break;
          }
        }
    }
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    MetricsSnapshot snap;
    snap.values.reserve(entries.size());
    for (const std::unique_ptr<Entry> &e : entries) {
        switch (e->kind) {
          case Kind::Counter:
            snap.values.push_back(
                {e->name,
                 static_cast<double>(e->counter->get())});
            break;
          case Kind::Gauge:
            snap.values.push_back(
                {e->name, static_cast<double>(e->gauge->get())});
            break;
          case Kind::Histogram: {
            const Histogram &h = *e->histogram;
            const double cnt = static_cast<double>(h.count());
            const double sum = static_cast<double>(h.sum());
            snap.values.push_back({e->name + ".count", cnt});
            snap.values.push_back({e->name + ".sum", sum});
            snap.values.push_back(
                {e->name + ".mean", cnt > 0.0 ? sum / cnt : 0.0});
            snap.values.push_back(
                {e->name + ".max", static_cast<double>(h.max())});
            snap.values.push_back(
                {e->name + ".p50",
                 static_cast<double>(h.quantile(0.5))});
            snap.values.push_back(
                {e->name + ".p99",
                 static_cast<double>(h.quantile(0.99))});
            break;
          }
        }
    }
    return snap;
}

namespace {

/** laoram_<name with dots/dashes as underscores>. */
std::string
promName(const std::string &name)
{
    std::string out = "laoram_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

std::string
MetricsRegistry::prometheusText() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::ostringstream os;
    for (const std::unique_ptr<Entry> &e : entries) {
        const std::string base = promName(e->name);
        const char *type = e->kind == Kind::Counter ? "counter"
                                                    : "gauge";
        if (e->kind == Kind::Histogram) {
            // Exposed as a summary-ish pair plus the tracked max; the
            // power-of-two buckets are a sampler-side detail.
            const Histogram &h = *e->histogram;
            if (!e->help.empty())
                os << "# HELP " << base << " " << e->help << "\n";
            os << "# TYPE " << base << " summary\n"
               << base << "_count " << h.count() << "\n"
               << base << "_sum " << h.sum() << "\n"
               << base << "_max " << h.max() << "\n";
            continue;
        }
        if (!e->help.empty())
            os << "# HELP " << base << " " << e->help << "\n";
        os << "# TYPE " << base << " " << type << "\n" << base << " ";
        if (e->kind == Kind::Counter)
            os << e->counter->get();
        else
            os << e->gauge->get();
        os << "\n";
    }
    return os.str();
}

} // namespace laoram::obs
