/**
 * @file
 * Machine-readable end-of-run reports: serialise the structs the run
 * loops already return (PipelineReport, ShardedPipelineReport,
 * traffic counters, latency percentiles) as one JSON document, so an
 * example invoked with --report-json feeds dashboards and scripted
 * comparisons without scraping its stdout tables.
 *
 * Schema: a top-level object with "schema" ("laoram.run_report.v1"),
 * "kind" ("pipeline" or "sharded"), a "pipeline" object mirroring
 * PipelineReport field-for-field in snake_case (with "latency"
 * nested), an optional "traffic" object of TrafficCounters, and for
 * sharded runs "sim_ns"/"sim_total_ns" plus a "shards" array.
 */

#ifndef LAORAM_OBS_RUN_REPORT_HH
#define LAORAM_OBS_RUN_REPORT_HH

#include <string>

namespace laoram {

struct LatencyReport;

namespace core {
struct PipelineReport;
struct ShardedPipelineReport;
} // namespace core

namespace cache {
struct CacheStats;
} // namespace cache

namespace mem {
struct TrafficCounters;
} // namespace mem

namespace util {
class JsonWriter;
} // namespace util

namespace obs {

/** Emit @p rep as a JSON object on @p w (composable building block). */
void writePipelineReport(util::JsonWriter &w,
                         const core::PipelineReport &rep);

/** Emit @p rep as a JSON object on @p w. */
void writeLatencyReport(util::JsonWriter &w, const LatencyReport &rep);

/** Emit @p c as a JSON object on @p w. */
void writeTrafficCounters(util::JsonWriter &w,
                          const mem::TrafficCounters &c);

/** Emit hot-cache counters (+ hit_rate) as a JSON object on @p w. */
void writeCacheStats(util::JsonWriter &w, const cache::CacheStats &c);

/**
 * Write a kind="pipeline" run report to @p path; @p traffic (the
 * engine's counters) is included when non-null. Warns and returns
 * false on I/O failure — a report is telemetry, never worth killing
 * a finished run over.
 */
bool writeRunReportJson(const std::string &path,
                        const core::PipelineReport &rep,
                        const mem::TrafficCounters *traffic = nullptr);

/** Write a kind="sharded" run report (aggregate + per-shard array). */
bool writeRunReportJson(const std::string &path,
                        const core::ShardedPipelineReport &rep);

} // namespace obs
} // namespace laoram

#endif // LAORAM_OBS_RUN_REPORT_HH
