/**
 * @file
 * Background metrics sampler: a thread that snapshots the
 * MetricsRegistry every intervalMs and appends one compact JSON line
 * per tick to an output file, giving a live time series of the
 * counters/gauges the serving stack updates (JSON-lines: one
 * self-contained object per line, trivially tail-able and
 * jq-friendly).
 *
 * Line shape:
 *   {"ts_ms":12,"seq":0,"pipeline.windows_served":40,...}
 *
 * ts_ms is milliseconds since start() so successive lines diff
 * cleanly; seq is the tick number. stop() takes one final sample
 * before joining, so short runs still get an end-of-run line whose
 * totals reconcile with the final report.
 */

#ifndef LAORAM_OBS_SAMPLER_HH
#define LAORAM_OBS_SAMPLER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace laoram::obs {

class MetricsRegistry;

/** Background JSON-lines sampler; see file comment. */
class MetricsSampler
{
  public:
    struct Config
    {
        std::string path;        ///< output file (truncated)
        std::uint64_t intervalMs = 100;
    };

    MetricsSampler(MetricsRegistry &registry, Config config);

    /** Joins the thread (taking a last sample) if still running. */
    ~MetricsSampler();

    MetricsSampler(const MetricsSampler &) = delete;
    MetricsSampler &operator=(const MetricsSampler &) = delete;

    /**
     * Open the output and launch the sampling thread. Returns false
     * (with a warning) if the file cannot be opened.
     */
    bool start();

    /** Take a final sample, stop the thread, flush and close. */
    void stop();

    /** Lines emitted so far (including the final stop() sample). */
    std::uint64_t samplesWritten() const;

  private:
    void run();
    void writeSample();

    MetricsRegistry &registry;
    Config config;

    std::ofstream out;
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool stopping = false;
    bool running = false;
    std::atomic<std::uint64_t> samples{0};
    std::int64_t startNs = 0;
};

} // namespace laoram::obs

#endif // LAORAM_OBS_SAMPLER_HH
