#include "obs/run_report.hh"

#include <fstream>
#include <functional>

#include "cache/hot_cache.hh"
#include "core/pipeline.hh"
#include "core/sharded_laoram.hh"
#include "mem/traffic_meter.hh"
#include "util/json_writer.hh"
#include "util/latency_histogram.hh"
#include "util/logging.hh"

namespace laoram::obs {

void
writeLatencyReport(util::JsonWriter &w, const LatencyReport &rep)
{
    w.beginObject();
    w.field("requests", rep.requests);
    w.field("mean_ns", rep.meanNs);
    w.field("p50_ns", rep.p50Ns);
    w.field("p90_ns", rep.p90Ns);
    w.field("p99_ns", rep.p99Ns);
    w.field("p999_ns", rep.p999Ns);
    w.field("max_ns", rep.maxNs);
    w.field("dropped_negative", rep.droppedNegative);
    w.endObject();
}

void
writeCacheStats(util::JsonWriter &w, const cache::CacheStats &c)
{
    w.beginObject();
    w.field("hits", c.hits);
    w.field("misses", c.misses);
    w.field("hit_rate", c.hitRate());
    w.field("evictions", c.evictions);
    w.field("writeback_coalesced", c.writebackCoalesced);
    w.field("admission_hits", c.admissionHits);
    w.field("resident_rows", c.residentRows);
    w.field("resident_bytes", c.residentBytes);
    w.field("capacity_rows", c.capacityRows);
    w.endObject();
}

void
writeTrafficCounters(util::JsonWriter &w,
                     const mem::TrafficCounters &c)
{
    w.beginObject();
    w.field("logical_accesses", c.logicalAccesses);
    w.field("path_reads", c.pathReads);
    w.field("path_writes", c.pathWrites);
    w.field("dummy_reads", c.dummyReads);
    w.field("blocks_read", c.blocksRead);
    w.field("blocks_written", c.blocksWritten);
    w.field("bytes_read", c.bytesRead);
    w.field("bytes_written", c.bytesWritten);
    w.field("stash_peak", c.stashPeak);
    w.field("stash_hits", c.stashHits);
    w.field("reshuffles", c.reshuffles);
    w.endObject();
}

void
writePipelineReport(util::JsonWriter &w, const core::PipelineReport &rep)
{
    w.beginObject();
    w.field("windows", rep.windows);
    w.field("total_prep_ns", rep.totalPrepNs);
    w.field("total_access_ns", rep.totalAccessNs);
    w.field("serial_ns", rep.serialNs);
    w.field("pipelined_ns", rep.pipelinedNs);
    w.field("prep_hidden_fraction", rep.prepHiddenFraction);
    w.field("wall_prep_ns", rep.wallPrepNs);
    w.field("wall_serve_ns", rep.wallServeNs);
    w.field("wall_total_ns", rep.wallTotalNs);
    w.field("wall_fill_ns", rep.wallFillNs);
    w.field("wall_stall_ns", rep.wallStallNs);
    w.field("wall_reorder_stall_ns", rep.wallReorderStallNs);
    w.field("prep_threads",
            static_cast<std::uint64_t>(rep.prepThreads));
    w.key("prep_thread_busy_ns").beginArray();
    for (double v : rep.prepThreadBusyNs)
        w.value(v);
    w.endArray();
    w.key("prep_thread_utilization").beginArray();
    for (double v : rep.prepThreadUtilization)
        w.value(v);
    w.endArray();
    w.key("prep_thread_windows").beginArray();
    for (std::uint64_t v : rep.prepThreadWindows)
        w.value(v);
    w.endArray();
    w.field("wall_io_ns", rep.wallIoNs);
    w.field("io_serve_fraction", rep.ioServeFraction);
    w.field("measured_prep_hidden_fraction",
            rep.measuredPrepHiddenFraction);
    w.key("latency");
    writeLatencyReport(w, rep.latency);
    w.key("cache");
    writeCacheStats(w, rep.cache);
    w.endObject();
}

namespace {

bool
writeDocument(const std::string &path,
              const std::function<void(util::JsonWriter &)> &body)
{
    std::ofstream os(path);
    if (!os) {
        warn("report: cannot open '", path, "' for writing");
        return false;
    }
    util::JsonWriter w(os, 2);
    body(w);
    os << '\n';
    os.flush();
    if (!os) {
        warn("report: write to '", path, "' failed");
        return false;
    }
    return true;
}

} // namespace

bool
writeRunReportJson(const std::string &path,
                   const core::PipelineReport &rep,
                   const mem::TrafficCounters *traffic)
{
    return writeDocument(path, [&](util::JsonWriter &w) {
        w.beginObject();
        w.field("schema", "laoram.run_report.v1");
        w.field("kind", "pipeline");
        w.key("pipeline");
        writePipelineReport(w, rep);
        if (traffic != nullptr) {
            w.key("traffic");
            writeTrafficCounters(w, *traffic);
        }
        w.endObject();
    });
}

bool
writeRunReportJson(const std::string &path,
                   const core::ShardedPipelineReport &rep)
{
    return writeDocument(path, [&](util::JsonWriter &w) {
        w.beginObject();
        w.field("schema", "laoram.run_report.v1");
        w.field("kind", "sharded");
        w.key("pipeline");
        writePipelineReport(w, rep.aggregate);
        w.key("traffic");
        writeTrafficCounters(w, rep.traffic);
        w.field("sim_ns", rep.simNs);
        w.field("sim_total_ns", rep.simTotalNs);
        w.key("shards").beginArray();
        for (const core::ShardReport &shard : rep.shards) {
            w.beginObject();
            w.field("accesses", shard.accesses);
            w.field("sim_ns", shard.simNs);
            w.key("pipeline");
            writePipelineReport(w, shard.pipeline);
            w.key("traffic");
            writeTrafficCounters(w, shard.traffic);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    });
}

} // namespace laoram::obs
