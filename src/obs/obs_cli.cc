#include "obs/obs_cli.hh"

#include <cstdlib>
#include <fstream>

#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace laoram::obs {

ObsArgs
addObsArgs(ArgParser &args)
{
    ObsArgs oa;
    oa.metricsOut = args.addString(
        "metrics-out",
        "sample live metrics to this JSON-lines file", "");
    oa.metricsIntervalMs = args.addUint(
        "metrics-interval-ms", "sampling period for --metrics-out",
        100);
    oa.metricsIntervalSeen = args.seenTracker("metrics-interval-ms");
    oa.metricsProm = args.addString(
        "metrics-prom",
        "write a Prometheus-style text exposition here at shutdown",
        "");
    oa.traceOut = args.addString(
        "trace-out",
        "write a Chrome-trace/Perfetto span dump to this file", "");
    oa.traceBuffer = args.addUint(
        "trace-buffer",
        "span ring capacity per thread for --trace-out", 1 << 16);
    oa.traceBufferSeen = args.seenTracker("trace-buffer");
    oa.logLevel = args.addString(
        "log-level",
        "verbosity: quiet|warn|info|debug (default: info, or "
        "LAORAM_LOG_LEVEL)",
        "");
    oa.logLevelSeen = args.seenTracker("log-level");
    oa.reportJson = args.addString(
        "report-json",
        "dump the final run report (pipeline + traffic + latency) "
        "to this JSON file",
        "");
    return oa;
}

bool
obsConfigFromArgsChecked(const ObsArgs &oa, ObsConfig *out,
                         std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    ObsConfig cfg;
    cfg.metricsOut = *oa.metricsOut;
    cfg.metricsIntervalMs = *oa.metricsIntervalMs;
    cfg.metricsProm = *oa.metricsProm;
    cfg.traceOut = *oa.traceOut;
    cfg.traceBufferEvents = *oa.traceBuffer;
    cfg.reportJson = *oa.reportJson;

    if (*oa.metricsIntervalSeen && cfg.metricsOut.empty())
        return fail(
            "--metrics-interval-ms requires --metrics-out");
    if (cfg.metricsIntervalMs == 0)
        return fail("--metrics-interval-ms must be positive");
    if (*oa.traceBufferSeen && cfg.traceOut.empty())
        return fail("--trace-buffer requires --trace-out");
    if (cfg.traceBufferEvents == 0)
        return fail("--trace-buffer must be positive");
    if (*oa.logLevelSeen) {
        if (!parseLogLevel(*oa.logLevel, &cfg.logLevel))
            return fail("unknown --log-level '" + *oa.logLevel
                        + "' (want quiet|warn|info|debug or 0..3)");
        cfg.logLevelSet = true;
    }

    *out = cfg;
    return true;
}

ObsConfig
obsConfigFromArgs(const ObsArgs &oa)
{
    ObsConfig cfg;
    std::string error;
    if (!obsConfigFromArgsChecked(oa, &cfg, &error))
        LAORAM_FATAL(error);
    return cfg;
}

bool
applyLogLevelFromEnv()
{
    const char *env = std::getenv("LAORAM_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return false;
    LogLevel level;
    if (!parseLogLevel(env, &level)) {
        warn("ignoring unparseable LAORAM_LOG_LEVEL '", env, "'");
        return false;
    }
    setLogLevel(level);
    return true;
}

ObsSession::ObsSession(const ObsConfig &config) : config(config)
{
    if (config.logLevelSet)
        setLogLevel(config.logLevel);
    else
        applyLogLevelFromEnv();

    const bool wantMetrics =
        !config.metricsOut.empty() || !config.metricsProm.empty();
    if (wantMetrics)
        setMetricsEnabled(true);
    if (!config.metricsOut.empty()) {
        sampler = std::make_unique<MetricsSampler>(
            MetricsRegistry::instance(),
            MetricsSampler::Config{config.metricsOut,
                                   config.metricsIntervalMs});
        if (!sampler->start())
            sampler.reset();
    }
    if (!config.traceOut.empty())
        Tracer::instance().enable(config.traceBufferEvents);
}

ObsSession::~ObsSession()
{
    finish();
}

void
ObsSession::finish()
{
    if (finished)
        return;
    finished = true;
    if (sampler != nullptr) {
        sampler->stop();
        inform("metrics: wrote ", sampler->samplesWritten(),
               " samples to ", config.metricsOut);
        sampler.reset();
    }
    if (!config.metricsProm.empty()) {
        std::ofstream os(config.metricsProm);
        if (!os) {
            warn("metrics: cannot open '", config.metricsProm,
                 "' for writing");
        } else {
            os << MetricsRegistry::instance().prometheusText();
        }
    }
    if (!config.traceOut.empty()) {
        Tracer &tracer = Tracer::instance();
        tracer.disable();
        if (tracer.writeFile(config.traceOut)) {
            inform("trace: wrote ", tracer.recorded(), " spans (",
                   tracer.dropped(), " dropped) from ",
                   tracer.threadsSeen(), " threads to ",
                   config.traceOut);
        }
    }
}

} // namespace laoram::obs
