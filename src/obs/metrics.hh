/**
 * @file
 * Process-wide live metrics: named counters, gauges and histograms
 * with relaxed-atomic hot-path updates, snapshot-able from a
 * background sampler thread while traffic is flowing.
 *
 * Design contract:
 *
 *  - Handles are registered once (at subsystem construction, or
 *    lazily behind a function-local static) and returned as stable
 *    references into the singleton MetricsRegistry; registration
 *    takes a mutex, updates never do.
 *  - Every instrumentation site guards its whole update block with a
 *    single branch on metricsEnabled() — one relaxed atomic-bool load
 *    — so a run without --metrics-out pays one predicted-not-taken
 *    branch per site (verified by bench_obs_overhead).
 *  - Counters registered under one name aggregate naturally: every
 *    shard engine's TrafficMeter and every SlotBackend of one kind
 *    shares the same handle, so the sampled series is the live
 *    process-wide total that reconciles with the end-of-run report
 *    sums.
 *
 * This registry is deliberately separate from util/stats.hh's
 * StatRegistry: that one is a single-threaded end-of-run formula
 * dump, this one is the thread-safe live surface the sampler reads
 * mid-run.
 */

#ifndef LAORAM_OBS_METRICS_HH
#define LAORAM_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace laoram::obs {

namespace detail {
extern std::atomic<bool> gMetricsEnabled;
} // namespace detail

/**
 * The hot-path gate: instrumentation sites wrap their updates in
 * `if (obs::metricsEnabled()) { ... }`. A relaxed load of one global
 * atomic bool — set once at startup, before traffic — is the entire
 * disabled-path cost.
 */
inline bool
metricsEnabled()
{
    return detail::gMetricsEnabled.load(std::memory_order_relaxed);
}

/** Flip the gate (ObsSession at startup; tests). */
void setMetricsEnabled(bool on);

/** Monotonic counter (relaxed increments; no hot-path gate inside). */
class Counter
{
  public:
    void
    add(std::uint64_t d)
    {
        v.fetch_add(d, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    std::uint64_t
    get() const
    {
        return v.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> v{0};
};

/** Signed instantaneous level (queue depths, in-flight windows). */
class Gauge
{
  public:
    void
    add(std::int64_t d)
    {
        v.fetch_add(d, std::memory_order_relaxed);
    }

    void inc() { add(1); }
    void dec() { add(-1); }

    void
    set(std::int64_t x)
    {
        v.store(x, std::memory_order_relaxed);
    }

    /** Raise to @p x if larger (high-water marks, e.g. stash peak). */
    void
    setMax(std::int64_t x)
    {
        std::int64_t cur = v.load(std::memory_order_relaxed);
        while (cur < x
               && !v.compare_exchange_weak(cur, x,
                                           std::memory_order_relaxed)) {
        }
    }

    std::int64_t
    get() const
    {
        return v.load(std::memory_order_relaxed);
    }

  private:
    friend class MetricsRegistry;
    std::atomic<std::int64_t> v{0};
};

/**
 * Lock-free power-of-two histogram for hot-path size/duration
 * distributions (coalesced batch sizes). Bucket i counts values whose
 * bit width is i (bucket 0 holds zeros), so record() is a bit-scan
 * plus three relaxed adds.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 65;

    void record(std::uint64_t value);

    std::uint64_t
    count() const
    {
        return n.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return total.load(std::memory_order_relaxed);
    }

    std::uint64_t
    max() const
    {
        return maxV.load(std::memory_order_relaxed);
    }

    /**
     * Approximate p-quantile (0..1) from the bucket counts: the lower
     * bound of the bucket the quantile lands in. Zero when empty.
     */
    std::uint64_t quantile(double p) const;

  private:
    friend class MetricsRegistry;
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
    std::atomic<std::uint64_t> n{0};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> maxV{0};
};

/** One flattened sample of the registry (histograms expanded). */
struct MetricsSnapshot
{
    struct Value
    {
        std::string name;
        double value = 0.0;
    };

    std::vector<Value> values; ///< registration order, stable names
};

/**
 * The process-wide registry. counter()/gauge()/histogram() register
 * on first use and return the same stable handle for the same name
 * ever after (help text of the first registration wins).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name,
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help = "");
    Histogram &histogram(const std::string &name,
                         const std::string &help = "");

    /**
     * Flatten every metric into one sample (relaxed reads; safe
     * against concurrent updates). Histograms expand into
     * .count/.sum/.mean/.max/.p50/.p99 entries.
     */
    MetricsSnapshot snapshot() const;

    /**
     * Prometheus-style text exposition: names are prefixed "laoram_"
     * with dots mapped to underscores, each preceded by # HELP/# TYPE
     * lines.
     */
    std::string prometheusText() const;

    /** Registered metric count (tests). */
    std::size_t size() const;

    /**
     * Test hook: zero every registered metric (handles stay valid).
     * Callers must quiesce updaters first.
     */
    void resetForTest();

  private:
    MetricsRegistry() = default;

    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct Entry; ///< name + help + owned metric storage

    Entry &findOrCreate(const std::string &name,
                        const std::string &help, Kind kind);

    mutable std::mutex mu;
    std::vector<std::unique_ptr<Entry>> entries;
};

} // namespace laoram::obs

#endif // LAORAM_OBS_METRICS_HH
