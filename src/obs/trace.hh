/**
 * @file
 * Scoped span tracing into Chrome-trace/Perfetto JSON.
 *
 * Each thread records completed spans into its own fixed-capacity
 * ring buffer (registered on first use; no lock on the record path),
 * so tracing a pipelined sharded run costs two clock reads and one
 * ring store per span. A full ring overwrites its oldest event and
 * counts the drop — recording never blocks and memory stays bounded
 * at capacity * sizeof(TraceEvent) per thread.
 *
 * Span naming convention (docs/ARCHITECTURE.md "Observability"):
 * lower-case dash-separated phase names — "prep-window",
 * "reorder-wait", "serve-window", "path-read", "path-write",
 * "rpc-read", "rpc-write", "checkpoint", "restore", "reshard" — with
 * the window index / slot count as the numeric arg where one exists.
 *
 * writeTo()/writeFile() emit the Chrome trace-event JSON
 * ({"traceEvents":[...]}) that chrome://tracing and Perfetto load
 * directly: "X" complete events with microsecond timestamps, plus
 * "M" thread_name metadata and a laoram.dropped counter per thread.
 * Call them only when recording threads are quiesced (end of run) —
 * the rings are single-writer and unsynchronized by design.
 */

#ifndef LAORAM_OBS_TRACE_HH
#define LAORAM_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace laoram::obs {

namespace detail {
extern std::atomic<bool> gTraceEnabled;
} // namespace detail

/** The record-path gate: one relaxed atomic-bool load. */
inline bool
tracingEnabled()
{
    return detail::gTraceEnabled.load(std::memory_order_relaxed);
}

/** Value of TraceSpan/traceRecord's arg when there is none. */
constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

/**
 * Nanoseconds since the tracer's epoch (process-stable origin for
 * every thread). Only meaningful while tracing is enabled.
 */
std::int64_t traceNowNs();

/**
 * Record a completed span on the calling thread's ring:
 * [startNs, startNs + durNs) in traceNowNs() time. No-op when
 * tracing is disabled. @p name must outlive the run (string
 * literals).
 */
void traceRecord(const char *name, std::int64_t startNs,
                 std::int64_t durNs, std::uint64_t arg = kNoArg);

/**
 * Back-dated convenience: a span of @p durNs ending now (for call
 * sites that only measured a duration, e.g. the mapped I/O path).
 */
void traceRecordEndingNow(const char *name, std::int64_t durNs,
                          std::uint64_t arg = kNoArg);

/**
 * Label the calling thread in the trace ("serve", "prep-0",
 * "lane-2"); shows up as Perfetto track names. The first name a
 * thread sets wins (outer scopes are more specific than the stages
 * they run). No-op when disabled.
 */
void traceSetThreadName(const std::string &name);

/**
 * RAII span: captures the enabled flag and start time at
 * construction, records on destruction. Near-zero when disabled
 * (one branch, no clock read).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, std::uint64_t arg = kNoArg)
        : name(name), arg(arg),
          startNs(tracingEnabled() ? traceNowNs() : -1)
    {
    }

    ~TraceSpan()
    {
        if (startNs >= 0)
            traceRecord(name, startNs, traceNowNs() - startNs, arg);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name;
    std::uint64_t arg;
    std::int64_t startNs;
};

/** The process-wide tracer (ring-buffer owner + JSON writer). */
class Tracer
{
  public:
    static Tracer &instance();

    /**
     * Start recording with @p perThreadCapacity events per thread
     * ring (>= 1). Re-enabling with a different capacity applies to
     * rings registered after the call; reset() first for a clean
     * slate.
     */
    void enable(std::size_t perThreadCapacity);

    void disable();

    /** Events recorded (kept in rings), across all threads. */
    std::uint64_t recorded() const;

    /** Events overwritten because a ring was full. */
    std::uint64_t dropped() const;

    /** Threads that recorded at least one event. */
    std::size_t threadsSeen() const;

    /**
     * Emit Chrome trace-event JSON. Quiesce recording threads first
     * (see file comment).
     */
    void writeTo(std::ostream &os) const;

    /** writeTo() into @p path; warns and returns false on I/O error. */
    bool writeFile(const std::string &path) const;

    /**
     * Test hook: drop every ring and drop counter (thread
     * registrations are forgotten; rings re-register on next use).
     * Callers must quiesce recording threads first.
     */
    void reset();

  private:
    Tracer() = default;
};

/**
 * Structural validation of Chrome-trace JSON (used by the trace
 * schema test and bench_obs_overhead, so "loads in Perfetto" is
 * checked in-tree, not by eyeball): parses the JSON, requires a
 * top-level object with a "traceEvents" array whose elements carry
 * name/ph/ts/pid/tid, and reports how many "X" events and distinct
 * tids it saw.
 */
bool validateChromeTrace(const std::string &json, std::string *error,
                         std::uint64_t *completeEvents = nullptr,
                         std::size_t *distinctThreads = nullptr);

} // namespace laoram::obs

#endif // LAORAM_OBS_TRACE_HH
