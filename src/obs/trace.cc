#include "obs/trace.hh"

#include <chrono>
#include <cstddef>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/json_writer.hh"
#include "util/logging.hh"

namespace laoram::obs {

namespace detail {
std::atomic<bool> gTraceEnabled{false};
} // namespace detail

namespace {

struct TraceEvent
{
    const char *name = nullptr;
    std::int64_t startNs = 0;
    std::int64_t durNs = 0;
    std::uint64_t arg = kNoArg;
};

/**
 * One thread's ring. Single writer (the owning thread); readers
 * (writeTo/recorded) run only once recording threads are quiesced,
 * per the header contract.
 */
struct ThreadBuf
{
    std::vector<TraceEvent> events; ///< ring storage, reserved to cap
    std::size_t capacity = 0;
    std::size_t head = 0; ///< oldest slot once the ring wrapped
    std::uint64_t tid = 0;
    std::string threadName;
};

std::mutex gMu;
std::vector<std::unique_ptr<ThreadBuf>> gBufs;
std::size_t gCapacity = 1 << 16;
std::uint64_t gNextTid = 1;
// Bumped by reset() so threads re-register instead of writing into a
// freed ring through their cached pointer.
std::atomic<std::uint64_t> gGeneration{1};
std::atomic<std::uint64_t> gDropped{0};
std::atomic<std::int64_t> gEpochNs{0};

struct TlsRef
{
    ThreadBuf *buf = nullptr;
    std::uint64_t gen = 0;
};

thread_local TlsRef tlsRef;

std::int64_t
steadyNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

ThreadBuf &
myBuf()
{
    const std::uint64_t gen =
        gGeneration.load(std::memory_order_acquire);
    if (tlsRef.buf != nullptr && tlsRef.gen == gen)
        return *tlsRef.buf;
    std::lock_guard<std::mutex> lock(gMu);
    auto buf = std::make_unique<ThreadBuf>();
    buf->capacity = gCapacity;
    buf->events.reserve(buf->capacity);
    buf->tid = gNextTid++;
    tlsRef.buf = buf.get();
    tlsRef.gen = gGeneration.load(std::memory_order_relaxed);
    gBufs.push_back(std::move(buf));
    return *tlsRef.buf;
}

} // namespace

std::int64_t
traceNowNs()
{
    return steadyNs() - gEpochNs.load(std::memory_order_relaxed);
}

void
traceRecord(const char *name, std::int64_t startNs, std::int64_t durNs,
            std::uint64_t arg)
{
    if (!tracingEnabled())
        return;
    ThreadBuf &buf = myBuf();
    TraceEvent ev{name, startNs, durNs, arg};
    if (buf.events.size() < buf.capacity) {
        buf.events.push_back(ev);
        return;
    }
    // Ring full: overwrite the oldest event rather than block or grow.
    buf.events[buf.head] = ev;
    buf.head = (buf.head + 1) % buf.capacity;
    gDropped.fetch_add(1, std::memory_order_relaxed);
}

void
traceRecordEndingNow(const char *name, std::int64_t durNs,
                     std::uint64_t arg)
{
    if (!tracingEnabled())
        return;
    const std::int64_t end = traceNowNs();
    traceRecord(name, end - durNs, durNs, arg);
}

void
traceSetThreadName(const std::string &name)
{
    if (!tracingEnabled())
        return;
    // First name wins: an outer scope (a sharded lane worker) names
    // the thread before handing it to an inner stage (the pipeline's
    // serving side), and the more specific outer name should stick.
    ThreadBuf &buf = myBuf();
    if (buf.threadName.empty())
        buf.threadName = name;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(std::size_t perThreadCapacity)
{
    LAORAM_ASSERT(perThreadCapacity > 0,
                  "trace ring capacity must be positive");
    {
        std::lock_guard<std::mutex> lock(gMu);
        gCapacity = perThreadCapacity;
    }
    // One epoch per process run; re-enabling keeps timestamps
    // comparable across phases.
    std::int64_t expected = 0;
    gEpochNs.compare_exchange_strong(expected, steadyNs(),
                                     std::memory_order_relaxed);
    detail::gTraceEnabled.store(true, std::memory_order_release);
}

void
Tracer::disable()
{
    detail::gTraceEnabled.store(false, std::memory_order_release);
}

std::uint64_t
Tracer::recorded() const
{
    std::lock_guard<std::mutex> lock(gMu);
    std::uint64_t total = 0;
    for (const auto &buf : gBufs)
        total += buf->events.size();
    return total;
}

std::uint64_t
Tracer::dropped() const
{
    return gDropped.load(std::memory_order_relaxed);
}

std::size_t
Tracer::threadsSeen() const
{
    std::lock_guard<std::mutex> lock(gMu);
    std::size_t n = 0;
    for (const auto &buf : gBufs)
        if (!buf->events.empty())
            ++n;
    return n;
}

void
Tracer::writeTo(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(gMu);
    util::JsonWriter w(os, 1);
    w.beginObject();
    w.key("traceEvents").beginArray();
    for (const auto &buf : gBufs) {
        if (!buf->threadName.empty()) {
            w.beginObject()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", std::uint64_t{1})
                .field("tid", buf->tid)
                .key("args")
                .beginObject()
                .field("name", buf->threadName)
                .endObject()
                .endObject();
        }
        // Oldest-first ring order: [head, end) then [0, head).
        const std::size_t n = buf->events.size();
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &ev =
                buf->events[(buf->head + i) % n];
            w.beginObject()
                .field("name", ev.name)
                .field("ph", "X")
                .field("ts",
                       static_cast<double>(ev.startNs) / 1000.0)
                .field("dur",
                       static_cast<double>(ev.durNs) / 1000.0)
                .field("pid", std::uint64_t{1})
                .field("tid", buf->tid);
            if (ev.arg != kNoArg) {
                w.key("args")
                    .beginObject()
                    .field("arg", ev.arg)
                    .endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
    w.key("otherData")
        .beginObject()
        .field("dropped", gDropped.load(std::memory_order_relaxed))
        .endObject();
    w.endObject();
    os << '\n';
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        warn("trace: cannot open '", path, "' for writing");
        return false;
    }
    writeTo(os);
    os.flush();
    if (!os) {
        warn("trace: write to '", path, "' failed");
        return false;
    }
    return true;
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(gMu);
    gBufs.clear();
    gNextTid = 1;
    gDropped.store(0, std::memory_order_relaxed);
    gGeneration.fetch_add(1, std::memory_order_release);
}

namespace {

/**
 * Minimal recursive-descent JSON reader backing validateChromeTrace.
 * Not a general-purpose parser — just enough structure to check that
 * a dump is well-formed and walk the traceEvents array.
 */
struct JsonValue
{
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &k) const
    {
        for (const auto &kv : object)
            if (kv.first == k)
                return &kv.second;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text(text), error(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != text.size())
            return fail("trailing data after top-level value");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error != nullptr && error->empty()) {
            std::ostringstream os;
            os << msg << " at offset " << pos;
            *error = os.str();
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()
               && (text[pos] == ' ' || text[pos] == '\t'
                   || text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    parseLiteral(const char *lit)
    {
        std::size_t i = 0;
        while (lit[i] != '\0') {
            if (pos + i >= text.size() || text[pos + i] != lit[i])
                return false;
            ++i;
        }
        pos += i;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("unterminated escape");
                const char e = text[pos++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("short \\u escape");
                    // Structural check only: accept and skip the
                    // code unit without transcoding to UTF-8.
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos + i];
                        const bool hex =
                            (h >= '0' && h <= '9')
                            || (h >= 'a' && h <= 'f')
                            || (h >= 'A' && h <= 'F');
                        if (!hex)
                            return fail("bad \\u escape");
                    }
                    pos += 4;
                    out += '?';
                    break;
                  }
                  default:
                    return fail("bad escape character");
                }
                continue;
            }
            out += c;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        while (pos < text.size()
               && ((text[pos] >= '0' && text[pos] <= '9')
                   || text[pos] == '.' || text[pos] == 'e'
                   || text[pos] == 'E' || text[pos] == '+'
                   || text[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected number");
        try {
            out = std::stod(text.substr(start, pos - start));
        } catch (...) {
            return fail("malformed number");
        }
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string k;
                if (!parseString(k))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.object.emplace_back(std::move(k), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.array.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return parseString(out.str);
        }
        if (parseLiteral("null")) {
            out.type = JsonValue::Type::Null;
            return true;
        }
        if (parseLiteral("true")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return true;
        }
        if (parseLiteral("false")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return true;
        }
        out.type = JsonValue::Type::Number;
        return parseNumber(out.number);
    }

    const std::string &text;
    std::string *error;
    std::size_t pos = 0;
};

bool
setError(std::string *error, const std::string &msg)
{
    if (error != nullptr)
        *error = msg;
    return false;
}

} // namespace

bool
validateChromeTrace(const std::string &json, std::string *error,
                    std::uint64_t *completeEvents,
                    std::size_t *distinctThreads)
{
    if (error != nullptr)
        error->clear();
    JsonValue root;
    JsonParser parser(json, error);
    if (!parser.parse(root))
        return false;
    if (root.type != JsonValue::Type::Object)
        return setError(error, "top level is not an object");
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr
        || events->type != JsonValue::Type::Array)
        return setError(error, "missing traceEvents array");
    std::uint64_t xEvents = 0;
    std::vector<double> tids;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &ev = events->array[i];
        std::ostringstream where;
        where << "traceEvents[" << i << "]";
        if (ev.type != JsonValue::Type::Object)
            return setError(error, where.str() + " is not an object");
        const JsonValue *name = ev.find("name");
        const JsonValue *ph = ev.find("ph");
        const JsonValue *pid = ev.find("pid");
        const JsonValue *tid = ev.find("tid");
        if (name == nullptr
            || name->type != JsonValue::Type::String)
            return setError(error,
                            where.str() + " lacks a string name");
        if (ph == nullptr || ph->type != JsonValue::Type::String)
            return setError(error, where.str() + " lacks a ph");
        if (pid == nullptr
            || pid->type != JsonValue::Type::Number)
            return setError(error,
                            where.str() + " lacks a numeric pid");
        if (tid == nullptr
            || tid->type != JsonValue::Type::Number)
            return setError(error,
                            where.str() + " lacks a numeric tid");
        if (ph->str == "X") {
            const JsonValue *ts = ev.find("ts");
            const JsonValue *dur = ev.find("dur");
            if (ts == nullptr
                || ts->type != JsonValue::Type::Number)
                return setError(
                    error, where.str() + " lacks a numeric ts");
            if (dur == nullptr
                || dur->type != JsonValue::Type::Number)
                return setError(
                    error, where.str() + " lacks a numeric dur");
            ++xEvents;
            bool seen = false;
            for (double t : tids)
                if (t == tid->number)
                    seen = true;
            if (!seen)
                tids.push_back(tid->number);
        }
    }
    if (completeEvents != nullptr)
        *completeEvents = xEvents;
    if (distinctThreads != nullptr)
        *distinctThreads = tids.size();
    return true;
}

} // namespace laoram::obs
