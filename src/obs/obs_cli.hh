/**
 * @file
 * Shared CLI plumbing for the observability subsystem: every example
 * registers the same --metrics-* / --trace-* / --log-level options
 * with one addObsArgs() call and turns them into a running
 * ObsSession (sampler thread + tracer + log level) with another.
 *
 * Lifecycle: construct the ObsSession after ArgParser::parse and
 * before traffic starts; call finish() (or let the destructor)
 * after the run loop drains, once worker threads are joined — the
 * trace dump requires quiesced recorder threads (see obs/trace.hh).
 */

#ifndef LAORAM_OBS_OBS_CLI_HH
#define LAORAM_OBS_OBS_CLI_HH

#include <cstdint>
#include <memory>
#include <string>

#include "util/cli.hh"
#include "util/logging.hh"

namespace laoram::obs {

class MetricsSampler;

/** Parsed observability option handles (valid after parse). */
struct ObsArgs
{
    std::shared_ptr<std::string> metricsOut; ///< JSON-lines path
    std::shared_ptr<std::uint64_t> metricsIntervalMs;
    std::shared_ptr<bool> metricsIntervalSeen;
    std::shared_ptr<std::string> metricsProm; ///< exposition path
    std::shared_ptr<std::string> traceOut;    ///< Chrome-trace path
    std::shared_ptr<std::uint64_t> traceBuffer; ///< events/thread
    std::shared_ptr<bool> traceBufferSeen;
    std::shared_ptr<std::string> logLevel;
    std::shared_ptr<bool> logLevelSeen;
    std::shared_ptr<std::string> reportJson; ///< run-report path
};

/** Register the shared observability options on @p args. */
ObsArgs addObsArgs(ArgParser &args);

/** Resolved observability configuration. */
struct ObsConfig
{
    std::string metricsOut;  ///< empty => no sampler
    std::uint64_t metricsIntervalMs = 100;
    std::string metricsProm; ///< empty => no exposition dump
    std::string traceOut;    ///< empty => tracing disabled
    std::uint64_t traceBufferEvents = 1 << 16;
    bool logLevelSet = false; ///< --log-level given explicitly
    LogLevel logLevel = LogLevel::Info;
    std::string reportJson; ///< empty => no run report
};

/**
 * Resolve parsed options into @p out without exiting: false (with
 * @p error set when non-null) on a bad --log-level name, a zero
 * --metrics-interval-ms or --trace-buffer, or an interval/buffer
 * option given without the output it configures (the *Seen trackers
 * make that check catch explicitly-passed default values too). The
 * testable core of obsConfigFromArgs.
 */
bool obsConfigFromArgsChecked(const ObsArgs &oa, ObsConfig *out,
                              std::string *error = nullptr);

/** Resolve parsed options; fatal (exit 1) on anything the checked
 *  variant rejects. */
ObsConfig obsConfigFromArgs(const ObsArgs &oa);

/**
 * If the LAORAM_LOG_LEVEL environment variable is set and parses,
 * apply it via setLogLevel() and return true; warn (and return
 * false) on an unparseable value. The --log-level flag wins over the
 * environment — ObsSession only consults this when the flag was not
 * given.
 */
bool applyLogLevelFromEnv();

/**
 * RAII activation of the configured observability surface: applies
 * the log level (flag, else LAORAM_LOG_LEVEL), flips the metrics
 * gate and starts the sampler when --metrics-out/--metrics-prom ask
 * for output, and enables the tracer when --trace-out does.
 * finish() stops the sampler (final reconciling sample), writes the
 * Prometheus exposition and the trace file.
 */
class ObsSession
{
  public:
    explicit ObsSession(const ObsConfig &config);

    /** Calls finish() if it has not run yet. */
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    /**
     * Flush every configured output. Call after worker threads are
     * joined (quiesced-recorder contract); idempotent.
     */
    void finish();

  private:
    ObsConfig config;
    std::unique_ptr<MetricsSampler> sampler;
    bool finished = false;
};

} // namespace laoram::obs

#endif // LAORAM_OBS_OBS_CLI_HH
