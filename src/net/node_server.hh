/**
 * @file
 * NodeListener: the accept loop that turns a RemoteKvServer into a
 * real multi-node storage server. The server already knows how to
 * serve any connected stream socket (RemoteKvServer::serveSocket,
 * one service thread per connection); this class owns the listening
 * socket — TCP `host:port` or UNIX-domain `unix:/path` — and feeds
 * accepted connections into it.
 *
 * Lifecycle (the laoram_node binary's main loop):
 *
 *   1. construct → bind + listen + start the accept thread
 *   2. endpoint() → the bound address (ephemeral port resolved), for
 *      the startup log line and for tests that listen on port 0
 *   3. stop()    → stop accepting and join the accept thread; the
 *      caller then drain()s or shutdown()s the RemoteKvServer, which
 *      owns the accepted connections
 *
 * stop() uses a self-pipe rather than closing the listen fd under the
 * accept thread: poll() watches both fds, so the wake-up is race-free
 * and portable.
 */

#ifndef LAORAM_NET_NODE_SERVER_HH
#define LAORAM_NET_NODE_SERVER_HH

#include <thread>

#include "net/endpoint.hh"
#include "storage/remote_backend.hh"

namespace laoram::net {

/** Accepts connections on an Endpoint and hands them to a server. */
class NodeListener
{
  public:
    /**
     * Bind + listen on @p ep and start accepting for @p server (not
     * owned; must outlive the listener or be shut down first).
     *
     * @throws std::runtime_error when the endpoint cannot be bound —
     *         an environmental failure the caller reports (the node
     *         binary fatals, a test surfaces the message).
     */
    NodeListener(storage::RemoteKvServer &server, const Endpoint &ep);
    ~NodeListener();

    NodeListener(const NodeListener &) = delete;
    NodeListener &operator=(const NodeListener &) = delete;

    /** The bound address (port 0 resolved to the kernel's pick). */
    const Endpoint &endpoint() const { return bound; }

    /**
     * Stop accepting: wake and join the accept thread, close the
     * listening socket (and unlink a UDS path — the address should
     * die with the listener). Idempotent; the destructor calls it.
     * Connections already accepted stay up — they belong to the
     * RemoteKvServer.
     */
    void stop();

  private:
    void acceptLoop();

    storage::RemoteKvServer &server;
    Endpoint bound;
    int listenFd = -1;
    int wakePipe[2] = {-1, -1}; ///< [0] polled, [1] written by stop()
    std::thread acceptor;
};

} // namespace laoram::net

#endif // LAORAM_NET_NODE_SERVER_HH
