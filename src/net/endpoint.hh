/**
 * @file
 * Stream-socket endpoints for multi-node serving: one small value
 * type naming where a laoram_node listens (TCP `host:port` or a
 * UNIX-domain socket `unix:/path`), plus the dial/listen/accept
 * plumbing every networked piece of the repo shares.
 *
 * The spellings accepted by parseEndpoint are the spellings users
 * type (`--listen`, `--remote-endpoint`) and the spellings tests
 * print, so there is exactly one grammar:
 *
 *   host:port      TCP (host is a name or numeric address; port 0 on
 *                  a listener binds an ephemeral port — boundEndpoint
 *                  reports the one the kernel picked)
 *   unix:PATH      UNIX-domain stream socket at PATH
 *
 * All sockets are blocking; dialers set TCP_NODELAY (the RPC protocol
 * is request/response with small frames, where Nagle only adds
 * latency). These helpers return errors instead of exiting so callers
 * choose their own failure policy: a client retries with backoff, a
 * node binary fatals at startup.
 */

#ifndef LAORAM_NET_ENDPOINT_HH
#define LAORAM_NET_ENDPOINT_HH

#include <cstdint>
#include <string>

namespace laoram::net {

/** A parsed listen/dial target. */
struct Endpoint
{
    enum class Kind
    {
        None, ///< default-constructed; never dialable
        Tcp,  ///< host:port stream socket
        Uds,  ///< unix:/path stream socket
    };

    Kind kind = Kind::None;
    std::string host; ///< Tcp only
    std::uint16_t port = 0; ///< Tcp only
    std::string path; ///< Uds only

    bool valid() const { return kind != Kind::None; }

    /** Canonical round-trippable spelling ("host:port" / "unix:p"). */
    std::string str() const;
};

/**
 * Parse "host:port" or "unix:PATH" into @p out. Returns false (with
 * @p error set when non-null, @p out untouched) on an empty string, a
 * missing/non-numeric/oversized port, or an empty UDS path.
 */
bool parseEndpoint(const std::string &text, Endpoint *out,
                   std::string *error = nullptr);

/**
 * Dial @p ep (blocking connect). Returns the connected fd, or -1 with
 * @p error describing the failure — connection refused is an expected
 * outcome (node not up yet, node restarting), which is why this does
 * not fatal.
 */
int dialEndpoint(const Endpoint &ep, std::string *error = nullptr);

/**
 * Bind + listen on @p ep. A UDS path is unlinked first (a restarted
 * node must be able to rebind its own stale socket file); a TCP
 * listener sets SO_REUSEADDR for the same reason. Returns the
 * listening fd, or -1 with @p error set.
 */
int listenEndpoint(const Endpoint &ep, std::string *error = nullptr);

/**
 * The endpoint a listener fd is actually bound to — resolves port 0
 * to the kernel-assigned ephemeral port so a test (or a log line) can
 * hand clients a dialable address.
 */
Endpoint boundEndpoint(int listenFd, const Endpoint &requested);

} // namespace laoram::net

#endif // LAORAM_NET_ENDPOINT_HH
