#include "net/node_server.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace laoram::net {

NodeListener::NodeListener(storage::RemoteKvServer &server,
                           const Endpoint &ep)
    : server(server)
{
    std::string error;
    listenFd = listenEndpoint(ep, &error);
    if (listenFd < 0)
        throw std::runtime_error("laoram_node cannot listen: "
                                 + error);
    bound = boundEndpoint(listenFd, ep);
    if (::pipe(wakePipe) != 0) {
        ::close(listenFd);
        listenFd = -1;
        throw std::runtime_error(
            "laoram_node cannot create its wake pipe");
    }
    acceptor = std::thread([this] { acceptLoop(); });
}

NodeListener::~NodeListener()
{
    stop();
}

void
NodeListener::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {};
        fds[0].fd = listenFd;
        fds[0].events = POLLIN;
        fds[1].fd = wakePipe[0];
        fds[1].events = POLLIN;
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return; // poll failure: nothing sane left to accept
        }
        if (fds[1].revents != 0)
            return; // stop() woke us
        if (fds[0].revents == 0)
            continue;
        const int conn = ::accept(listenFd, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listener is gone
        }
        if (bound.kind == Endpoint::Kind::Tcp) {
            // Request/response with small frames: Nagle + delayed-ACK
            // would add ~40 ms to every reply. The dialer already
            // disables it; the accepted side must too.
            const int one = 1;
            ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
        }
        server.serveSocket(conn);
    }
}

void
NodeListener::stop()
{
    if (acceptor.joinable()) {
        const char wake = 1;
        // A full pipe is impossible (one byte per stop), but keep the
        // write checked so -Wunused-result stays quiet.
        if (::write(wakePipe[1], &wake, 1) < 0) {
            // EBADF etc.: accept thread will still exit on poll error.
        }
        acceptor.join();
    }
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    for (int &end : wakePipe) {
        if (end >= 0) {
            ::close(end);
            end = -1;
        }
    }
    if (bound.kind == Endpoint::Kind::Uds && !bound.path.empty())
        ::unlink(bound.path.c_str());
}

} // namespace laoram::net
