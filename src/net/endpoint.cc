#include "net/endpoint.hh"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace laoram::net {

namespace {

void
setError(std::string *error, std::string message)
{
    if (error != nullptr)
        *error = std::move(message);
}

constexpr const char *kUdsPrefix = "unix:";

} // namespace

std::string
Endpoint::str() const
{
    switch (kind) {
      case Kind::Tcp:
        return host + ":" + std::to_string(port);
      case Kind::Uds:
        return std::string(kUdsPrefix) + path;
      case Kind::None:
        break;
    }
    return "<none>";
}

bool
parseEndpoint(const std::string &text, Endpoint *out,
              std::string *error)
{
    if (text.empty()) {
        setError(error, "empty endpoint (expected host:port or "
                        "unix:PATH)");
        return false;
    }
    Endpoint ep;
    if (text.rfind(kUdsPrefix, 0) == 0) {
        ep.kind = Endpoint::Kind::Uds;
        ep.path = text.substr(std::strlen(kUdsPrefix));
        if (ep.path.empty()) {
            setError(error, "empty unix-socket path in endpoint '"
                                + text + "'");
            return false;
        }
        // sockaddr_un::sun_path is a fixed ~108-byte field; refuse
        // anything that would silently truncate.
        if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            setError(error, "unix-socket path too long in endpoint '"
                                + text + "'");
            return false;
        }
    } else {
        const std::size_t colon = text.rfind(':');
        if (colon == std::string::npos || colon == 0
            || colon + 1 == text.size()) {
            setError(error, "endpoint '" + text
                                + "' is not host:port or unix:PATH");
            return false;
        }
        ep.kind = Endpoint::Kind::Tcp;
        ep.host = text.substr(0, colon);
        const std::string portText = text.substr(colon + 1);
        std::uint64_t port = 0;
        for (const char c : portText) {
            if (c < '0' || c > '9') {
                setError(error, "non-numeric port in endpoint '"
                                    + text + "'");
                return false;
            }
            port = port * 10 + static_cast<std::uint64_t>(c - '0');
            if (port > 65535) {
                setError(error,
                         "port out of range in endpoint '" + text
                             + "'");
                return false;
            }
        }
        ep.port = static_cast<std::uint16_t>(port);
    }
    if (out != nullptr)
        *out = std::move(ep);
    return true;
}

namespace {

int
dialTcp(const Endpoint &ep, std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portText = std::to_string(ep.port);
    const int rc =
        ::getaddrinfo(ep.host.c_str(), portText.c_str(), &hints, &res);
    if (rc != 0) {
        setError(error, "cannot resolve '" + ep.str()
                            + "': " + ::gai_strerror(rc));
        return -1;
    }
    int fd = -1;
    int lastErrno = ECONNREFUSED;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            lastErrno = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastErrno = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        setError(error, "cannot connect to '" + ep.str()
                            + "': " + std::strerror(lastErrno));
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

int
dialUds(const Endpoint &ep, std::string *error)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setError(error, std::string("socket(AF_UNIX) failed: ")
                            + std::strerror(errno));
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        setError(error, "cannot connect to '" + ep.str()
                            + "': " + std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

int
dialEndpoint(const Endpoint &ep, std::string *error)
{
    switch (ep.kind) {
      case Endpoint::Kind::Tcp:
        return dialTcp(ep, error);
      case Endpoint::Kind::Uds:
        return dialUds(ep, error);
      case Endpoint::Kind::None:
        break;
    }
    setError(error, "cannot dial an unset endpoint");
    return -1;
}

int
listenEndpoint(const Endpoint &ep, std::string *error)
{
    int fd = -1;
    if (ep.kind == Endpoint::Kind::Tcp) {
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        hints.ai_flags = AI_PASSIVE;
        addrinfo *res = nullptr;
        const std::string portText = std::to_string(ep.port);
        const int rc = ::getaddrinfo(
            ep.host.empty() ? nullptr : ep.host.c_str(),
            portText.c_str(), &hints, &res);
        if (rc != 0) {
            setError(error, "cannot resolve listen address '"
                                + ep.str()
                                + "': " + ::gai_strerror(rc));
            return -1;
        }
        int lastErrno = EADDRNOTAVAIL;
        for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
            fd = ::socket(ai->ai_family, ai->ai_socktype,
                          ai->ai_protocol);
            if (fd < 0) {
                lastErrno = errno;
                continue;
            }
            const int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0)
                break;
            lastErrno = errno;
            ::close(fd);
            fd = -1;
        }
        ::freeaddrinfo(res);
        if (fd < 0) {
            setError(error, "cannot bind '" + ep.str()
                                + "': " + std::strerror(lastErrno));
            return -1;
        }
    } else if (ep.kind == Endpoint::Kind::Uds) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            setError(error, std::string("socket(AF_UNIX) failed: ")
                                + std::strerror(errno));
            return -1;
        }
        // A SIGKILLed node leaves its socket file behind; the
        // restarted node owns the path and may reclaim it.
        ::unlink(ep.path.c_str());
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, ep.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr))
            != 0) {
            setError(error, "cannot bind '" + ep.str()
                                + "': " + std::strerror(errno));
            ::close(fd);
            return -1;
        }
    } else {
        setError(error, "cannot listen on an unset endpoint");
        return -1;
    }

    if (::listen(fd, SOMAXCONN) != 0) {
        setError(error, "listen('" + ep.str()
                            + "') failed: " + std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

Endpoint
boundEndpoint(int listenFd, const Endpoint &requested)
{
    if (requested.kind != Endpoint::Kind::Tcp || requested.port != 0)
        return requested;
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    Endpoint ep = requested;
    if (::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                      &len)
        == 0) {
        if (addr.ss_family == AF_INET) {
            ep.port = ntohs(
                reinterpret_cast<const sockaddr_in *>(&addr)
                    ->sin_port);
        } else if (addr.ss_family == AF_INET6) {
            ep.port = ntohs(
                reinterpret_cast<const sockaddr_in6 *>(&addr)
                    ->sin6_port);
        }
    }
    return ep;
}

} // namespace laoram::net
