#include "crypto/chacha20.hh"

#include <cstring>

namespace laoram::crypto {

namespace {

constexpr std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

inline void
quarterRound(std::uint32_t &a, std::uint32_t &b, std::uint32_t &c,
             std::uint32_t &d)
{
    a += b; d ^= a; d = rotl32(d, 16);
    c += d; b ^= c; b = rotl32(b, 12);
    a += b; d ^= a; d = rotl32(d, 8);
    c += d; b ^= c; b = rotl32(b, 7);
}

inline std::uint32_t
load32le(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0])
        | (static_cast<std::uint32_t>(p[1]) << 8)
        | (static_cast<std::uint32_t>(p[2]) << 16)
        | (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void
store32le(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

} // namespace

void
ChaCha20::block(const Key256 &key, const Nonce96 &nonce,
                std::uint32_t counter, std::uint8_t out[blockBytes])
{
    // "expand 32-byte k" constants per RFC 8439 §2.3.
    std::uint32_t state[16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for (int i = 0; i < 8; ++i)
        state[4 + i] = load32le(key.data() + 4 * i);
    state[12] = counter;
    for (int i = 0; i < 3; ++i)
        state[13 + i] = load32le(nonce.data() + 4 * i);

    std::uint32_t x[16];
    std::memcpy(x, state, sizeof(x));

    for (int round = 0; round < 10; ++round) {
        // column rounds
        quarterRound(x[0], x[4], x[8], x[12]);
        quarterRound(x[1], x[5], x[9], x[13]);
        quarterRound(x[2], x[6], x[10], x[14]);
        quarterRound(x[3], x[7], x[11], x[15]);
        // diagonal rounds
        quarterRound(x[0], x[5], x[10], x[15]);
        quarterRound(x[1], x[6], x[11], x[12]);
        quarterRound(x[2], x[7], x[8], x[13]);
        quarterRound(x[3], x[4], x[9], x[14]);
    }

    for (int i = 0; i < 16; ++i)
        store32le(out + 4 * i, x[i] + state[i]);
}

void
ChaCha20::xorStream(const Key256 &key, const Nonce96 &nonce,
                    std::uint32_t counter, std::uint8_t *data,
                    std::size_t len)
{
    std::uint8_t keystream[blockBytes];
    std::size_t off = 0;
    while (off < len) {
        block(key, nonce, counter++, keystream);
        const std::size_t chunk =
            (len - off < blockBytes) ? len - off : blockBytes;
        for (std::size_t i = 0; i < chunk; ++i)
            data[off + i] ^= keystream[i];
        off += chunk;
    }
}

} // namespace laoram::crypto
