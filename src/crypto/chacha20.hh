/**
 * @file
 * ChaCha20 stream cipher (RFC 8439 block function).
 *
 * The paper assumes server-resident embedding blocks are encrypted so
 * that only the *address* stream leaks; we implement that assumption
 * rather than hand-waving it. ChaCha20 is used (a) by Encryptor to
 * encrypt bucket payloads at rest and (b) as a deterministic keyed PRF
 * where tests need reproducible pseudorandom bytes.
 *
 * This is a reference implementation tuned for clarity; it is fast
 * enough for the simulator (hundreds of MB/s) and validated against the
 * RFC 8439 test vectors in tests/crypto.
 */

#ifndef LAORAM_CRYPTO_CHACHA20_HH
#define LAORAM_CRYPTO_CHACHA20_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace laoram::crypto {

/** 256-bit key. */
using Key256 = std::array<std::uint8_t, 32>;
/** 96-bit nonce (RFC 8439 layout). */
using Nonce96 = std::array<std::uint8_t, 12>;

/**
 * ChaCha20 keystream generator / XOR cipher.
 *
 * Stateless convenience API: every call derives the keystream from
 * (key, nonce, counter), so encrypt and decrypt are the same operation.
 */
class ChaCha20
{
  public:
    static constexpr std::size_t blockBytes = 64;

    /**
     * Produce one 64-byte keystream block.
     *
     * @param key      256-bit key
     * @param nonce    96-bit nonce
     * @param counter  block counter (RFC 8439 initial counter word)
     * @param out      64-byte output buffer
     */
    static void block(const Key256 &key, const Nonce96 &nonce,
                      std::uint32_t counter,
                      std::uint8_t out[blockBytes]);

    /**
     * XOR @p len bytes of @p data in place with the keystream starting
     * at block @p counter. Encrypt == decrypt.
     */
    static void xorStream(const Key256 &key, const Nonce96 &nonce,
                          std::uint32_t counter, std::uint8_t *data,
                          std::size_t len);
};

} // namespace laoram::crypto

#endif // LAORAM_CRYPTO_CHACHA20_HH
