#include "crypto/encryptor.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::crypto {

Encryptor::Encryptor(const Key256 &key, std::uint64_t slots)
    : isEnabled(true), key(key), epochs(slots, 0)
{
}

Encryptor::Encryptor() : isEnabled(false) {}

Encryptor
Encryptor::makeDisabled()
{
    return Encryptor();
}

Nonce96
Encryptor::nonceFor(std::uint64_t slot, std::uint32_t epoch) const
{
    // Nonce = slot id (8 bytes LE) || epoch (4 bytes LE): unique per
    // (slot, write) pair, which is all a stream cipher needs.
    Nonce96 nonce{};
    for (int i = 0; i < 8; ++i)
        nonce[i] = static_cast<std::uint8_t>(slot >> (8 * i));
    for (int i = 0; i < 4; ++i)
        nonce[8 + i] = static_cast<std::uint8_t>(epoch >> (8 * i));
    return nonce;
}

void
Encryptor::encryptSlot(std::uint64_t slot, std::uint8_t *data,
                       std::size_t len)
{
    if (!isEnabled)
        return;
    LAORAM_ASSERT(slot < epochs.size(), "slot out of range");
    ++epochs[slot];
    ChaCha20::xorStream(key, nonceFor(slot, epochs[slot]), 0, data, len);
}

void
Encryptor::decryptSlot(std::uint64_t slot, std::uint8_t *data,
                       std::size_t len) const
{
    if (!isEnabled)
        return;
    LAORAM_ASSERT(slot < epochs.size(), "slot out of range");
    ChaCha20::xorStream(key, nonceFor(slot, epochs[slot]), 0, data, len);
}

std::array<std::uint8_t, kKeyCheckBytes>
Encryptor::keyCheck() const
{
    std::array<std::uint8_t, kKeyCheckBytes> out{};
    if (!isEnabled)
        return out;
    // Slot index all-ones is unreachable by record writes (slots are
    // bounded by epochs.size()), so this nonce never collides with a
    // record keystream.
    ChaCha20::xorStream(key, nonceFor(~std::uint64_t{0}, 0), 0,
                        out.data(), out.size());
    return out;
}

void
Encryptor::restoreEpochs(const std::uint32_t *data, std::uint64_t count)
{
    LAORAM_ASSERT(isEnabled, "restoring epochs on a disabled encryptor");
    LAORAM_ASSERT(count == epochs.size(), "epoch table holds ", count,
                  " entries, storage has ", epochs.size(), " slots");
    epochs.assign(data, data + count);
}

Key256
Encryptor::deriveKey(std::uint64_t seed)
{
    Key256 k{};
    std::uint64_t sm = seed;
    for (int i = 0; i < 4; ++i) {
        const std::uint64_t word = splitMix64(sm);
        for (int b = 0; b < 8; ++b)
            k[8 * i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    return k;
}

} // namespace laoram::crypto
