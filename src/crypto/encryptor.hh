/**
 * @file
 * Bucket payload encryption for server storage.
 *
 * Every physical bucket slot is encrypted under a per-slot nonce derived
 * from (slot id, write epoch), so rewriting the same slot never reuses a
 * keystream. Because ORAM security rests on the *address* stream, the
 * cipher's job here is only to keep contents (including whether a slot
 * holds a real or dummy block) opaque — which a fresh-nonce stream
 * cipher provides.
 */

#ifndef LAORAM_CRYPTO_ENCRYPTOR_HH
#define LAORAM_CRYPTO_ENCRYPTOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/chacha20.hh"

namespace laoram::crypto {

/** Size of the key-check canary (see Encryptor::keyCheck). */
inline constexpr std::size_t kKeyCheckBytes = 16;

/**
 * Encrypts/decrypts slot-sized byte buffers in place.
 *
 * Tracks a per-slot write epoch internally; callers just say
 * "encrypt slot s now" and "decrypt slot s" and nonce management is
 * handled. Disabled mode (makeDisabled()) is a no-op pass-through used
 * by large benches where encryption throughput is not the metric.
 */
class Encryptor
{
  public:
    /** Construct an enabled encryptor over @p slots slots. */
    Encryptor(const Key256 &key, std::uint64_t slots);

    /** A pass-through encryptor (no crypto, no epoch state). */
    static Encryptor makeDisabled();

    bool enabled() const { return isEnabled; }

    /**
     * Encrypt @p data in place as the next write of @p slot (bumps the
     * slot's epoch).
     */
    void encryptSlot(std::uint64_t slot, std::uint8_t *data,
                     std::size_t len);

    /** Decrypt @p data in place using @p slot's current epoch. */
    void decryptSlot(std::uint64_t slot, std::uint8_t *data,
                     std::size_t len) const;

    /** Derive a key from a 64-bit seed (tests / examples convenience). */
    static Key256 deriveKey(std::uint64_t seed);

    /**
     * Epoch-table persistence (nonces are not secret): a persistent
     * storage backend saves the table alongside the slot data so an
     * encrypted tree still decrypts after a process restart.
     */
    const std::uint32_t *epochData() const { return epochs.data(); }
    std::uint64_t epochCount() const { return epochs.size(); }
    void restoreEpochs(const std::uint32_t *data, std::uint64_t count);

    /**
     * Deterministic key fingerprint: the keystream for a reserved
     * nonce (slot = all-ones, epoch = 0) that no record write can
     * ever use. Persisted next to the epoch table so a reopen under
     * the wrong key fails loudly instead of silently serving
     * garbage records.
     */
    std::array<std::uint8_t, kKeyCheckBytes> keyCheck() const;

  private:
    Encryptor(); // disabled-mode constructor

    Nonce96 nonceFor(std::uint64_t slot, std::uint32_t epoch) const;

    bool isEnabled;
    Key256 key{};
    std::vector<std::uint32_t> epochs;
};

} // namespace laoram::crypto

#endif // LAORAM_CRYPTO_ENCRYPTOR_HH
