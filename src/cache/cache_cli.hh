/**
 * @file
 * Shared CLI plumbing for the hot-embedding cache tier: every
 * serving example registers the same --cache-mb / --cache-policy
 * options with one addCacheArgs() call and resolves them into a
 * CacheConfig with another. Capacity is expressed in MiB because
 * that is the unit operators size a client-side row cache in; 0
 * (the default) leaves the cache disabled and the client on the
 * pure-ORAM path.
 */

#ifndef LAORAM_CACHE_CACHE_CLI_HH
#define LAORAM_CACHE_CACHE_CLI_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cache/hot_cache.hh"
#include "util/cli.hh"

namespace laoram::cache {

/** Parsed cache option handles (valid after parse). */
struct CacheArgs
{
    std::shared_ptr<std::uint64_t> cacheMb; ///< capacity (MiB); 0 = off
    std::shared_ptr<std::string> cachePolicy; ///< "lru" | "lfu"
    std::shared_ptr<bool> cachePolicySeen;
};

/** Register the shared cache options on @p args. */
CacheArgs addCacheArgs(ArgParser &args);

/**
 * Resolve parsed options into @p out without exiting: false (with
 * @p error set when non-null) on an unknown --cache-policy name or a
 * --cache-policy given without --cache-mb. The testable core of
 * cacheConfigFromArgs.
 */
bool cacheConfigFromArgsChecked(const CacheArgs &ca, CacheConfig *out,
                                std::string *error = nullptr);

/** Resolve parsed options; fatal (exit 1) on anything the checked
 *  variant rejects. */
CacheConfig cacheConfigFromArgs(const CacheArgs &ca);

} // namespace laoram::cache

#endif // LAORAM_CACHE_CACHE_CLI_HH
