#include "cache/hot_cache.hh"

#include <algorithm>
#include <cctype>

#include "obs/metrics.hh"
#include "util/logging.hh"

namespace laoram::cache {

namespace {

/** Live-metrics mirror: one process-wide handle set for all caches. */
struct CacheMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Counter &writebackCoalesced;
    obs::Counter &admissionHits;
};

CacheMetrics &
cacheMetrics()
{
    static CacheMetrics m = [] {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
        return CacheMetrics{
            reg.counter("cache.hits",
                        "scheduled accesses served from the hot cache"),
            reg.counter("cache.misses",
                        "scheduled accesses served from ORAM"),
            reg.counter("cache.evictions", "hot-cache rows evicted"),
            reg.counter("cache.writeback_coalesced",
                        "deferred updates flushed into scheduled "
                        "accesses"),
            reg.counter("cache.admission_hits",
                        "operations served at admission time"),
        };
    }();
    return m;
}

} // namespace

const char *
policyName(CachePolicy policy)
{
    return policy == CachePolicy::Lfu ? "lfu" : "lru";
}

bool
parsePolicy(const std::string &text, CachePolicy *out)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "lru") {
        *out = CachePolicy::Lru;
        return true;
    }
    if (lower == "lfu") {
        *out = CachePolicy::Lfu;
        return true;
    }
    return false;
}

void
CacheStats::accumulate(const CacheStats &other)
{
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    writebackCoalesced += other.writebackCoalesced;
    admissionHits += other.admissionHits;
    residentRows += other.residentRows;
    residentBytes += other.residentBytes;
    capacityRows += other.capacityRows;
}

CacheStats
CacheStats::deltaFrom(const CacheStats &start) const
{
    CacheStats d = *this;
    d.hits -= start.hits;
    d.misses -= start.misses;
    d.evictions -= start.evictions;
    d.writebackCoalesced -= start.writebackCoalesced;
    d.admissionHits -= start.admissionHits;
    return d;
}

HotEmbeddingCache::HotEmbeddingCache(const CacheConfig &config,
                                     std::uint64_t rowBytes)
    : cfg(config), bytesPerRow(rowBytes),
      maxRows(std::max<std::uint64_t>(
          1, rowBytes > 0 ? config.capacityBytes / rowBytes : 0))
{
    LAORAM_ASSERT(rowBytes > 0,
                  "hot cache requires a non-zero payload width");
}

HotEmbeddingCache::OrderKey
HotEmbeddingCache::keyOf(oram::BlockId id, const Row &row) const
{
    const std::uint64_t primary =
        cfg.policy == CachePolicy::Lfu ? row.freq : row.lastUse;
    return OrderKey{primary, row.lastUse, id};
}

void
HotEmbeddingCache::touchLocked(oram::BlockId id, Row &row)
{
    order.erase(keyOf(id, row));
    ++row.freq;
    row.lastUse = ++useSeq;
    order.insert(keyOf(id, row));
}

AccessOutcome
HotEmbeddingCache::beginScheduledAccess(oram::BlockId id,
                                        std::vector<std::uint8_t> &payload)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = rows.find(id);
    if (it == rows.end()) {
        ++st.misses;
        if (obs::metricsEnabled())
            cacheMetrics().misses.inc();
        return AccessOutcome::Miss;
    }
    Row &row = it->second;
    ++st.hits;
    touchLocked(id, row);
    // The row is authoritative on every kind of hit: the stash
    // payload takes the cached value so the bytes written back to the
    // ORAM tree are identical to the cache-off run.
    payload.assign(row.data.begin(), row.data.end());
    if (row.pinned > 0) {
        // One scheduled touch is the write-back for every deferred
        // admission-time op on this row: several ops on one id in a
        // window share a single bin-member touch, so release all
        // pins, not one.
        st.writebackCoalesced += row.pinned;
        if (obs::metricsEnabled()) {
            cacheMetrics().hits.inc();
            cacheMetrics().writebackCoalesced.add(row.pinned);
        }
        row.pinned = 0;
        return AccessOutcome::Flushed;
    }
    if (obs::metricsEnabled())
        cacheMetrics().hits.inc();
    return AccessOutcome::HitInPlace;
}

void
HotEmbeddingCache::completeScheduledAccess(
    oram::BlockId id, const std::vector<std::uint8_t> &payload)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = rows.find(id);
    LAORAM_ASSERT(it != rows.end(),
                  "row vanished between begin/completeScheduledAccess");
    Row &row = it->second;
    // A pin acquired since beginScheduledAccess means an assembler
    // thread served a newer op from this row while the access was in
    // flight. The fast path is gated off whenever planned ops on the
    // id are outstanding, so the access can only have been a pure
    // dummy for this row and any pin here always postdates
    // @p payload: keep the newer value and let its own scheduled
    // access flush it (lost-update guard).
    if (row.pinned > 0)
        return;
    row.data.assign(payload.begin(), payload.end());
}

void
HotEmbeddingCache::evictForSpaceLocked()
{
    while (rows.size() >= maxRows) {
        // Oldest/least-frequent first; pinned rows hold deferred
        // write-backs and are not evictable, so skip past them.
        auto victim = order.begin();
        while (victim != order.end()
               && rows.at(std::get<2>(*victim)).pinned > 0)
            ++victim;
        if (victim == order.end())
            return; // everything pinned: caller skips the insert
        rows.erase(std::get<2>(*victim));
        order.erase(victim);
        ++st.evictions;
        if (obs::metricsEnabled())
            cacheMetrics().evictions.inc();
    }
}

void
HotEmbeddingCache::insertLocked(oram::BlockId id,
                                std::vector<std::uint8_t> data,
                                std::uint64_t freq)
{
    evictForSpaceLocked();
    if (rows.size() >= maxRows)
        return; // all resident rows pinned; drop the fill
    Row row;
    row.data = std::move(data);
    row.freq = freq;
    row.lastUse = ++useSeq;
    order.insert(keyOf(id, row));
    rows.emplace(id, std::move(row));
}

void
HotEmbeddingCache::fill(oram::BlockId id,
                        const std::vector<std::uint8_t> &payload)
{
    LAORAM_ASSERT(payload.size() == bytesPerRow,
                  "hot-cache fill width mismatch");
    std::lock_guard<std::mutex> lock(mu);
    auto it = rows.find(id);
    if (it != rows.end()) {
        it->second.data.assign(payload.begin(), payload.end());
        return;
    }
    insertLocked(id, {payload.begin(), payload.end()}, 1);
}

bool
HotEmbeddingCache::tryServeAtAdmission(
    oram::BlockId id,
    const std::function<void(std::vector<std::uint8_t> &)> &fn)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = rows.find(id);
    if (it == rows.end())
        return false;
    Row &row = it->second;
    fn(row.data);
    ++row.pinned;
    ++st.admissionHits;
    if (obs::metricsEnabled())
        cacheMetrics().admissionHits.inc();
    return true;
}

void
HotEmbeddingCache::assertNoPinsLocked(const char *op) const
{
    for (const auto &[id, row] : rows)
        LAORAM_ASSERT(row.pinned == 0, op, " would drop ", row.pinned,
                      " deferred write-back(s) on block ", id,
                      "; quiesce (drain the frontend) first");
}

CacheStats
HotEmbeddingCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    CacheStats out = st;
    out.residentRows = rows.size();
    out.residentBytes = rows.size() * bytesPerRow;
    out.capacityRows = maxRows;
    return out;
}

void
HotEmbeddingCache::save(serde::Serializer &s) const
{
    std::lock_guard<std::mutex> lock(mu);
    assertNoPinsLocked("hot-cache save()");
    s.u8(static_cast<std::uint8_t>(cfg.policy));
    s.u64(bytesPerRow);
    s.u64(cfg.capacityBytes);
    s.u64(st.hits);
    s.u64(st.misses);
    s.u64(st.evictions);
    s.u64(st.writebackCoalesced);
    s.u64(st.admissionHits);
    s.u64(rows.size());
    // Eviction order, coldest first, so restore replays insertions
    // and reproduces the same relative recency/frequency ranking.
    for (const OrderKey &key : order) {
        const oram::BlockId id = std::get<2>(key);
        const Row &row = rows.at(id);
        s.u64(id);
        s.u64(row.freq);
        s.bytes(row.data.data(), row.data.size());
    }
}

void
HotEmbeddingCache::restore(serde::Deserializer &d)
{
    std::lock_guard<std::mutex> lock(mu);
    const std::uint8_t policy = d.u8();
    if (policy != static_cast<std::uint8_t>(cfg.policy))
        throw serde::SnapshotError(
            "hot-cache snapshot policy " + std::to_string(policy) +
            " does not match the configured policy " +
            std::string(policyName(cfg.policy)));
    const std::uint64_t snapRowBytes = d.u64();
    if (snapRowBytes != bytesPerRow)
        throw serde::SnapshotError(
            "hot-cache snapshot row width " +
            std::to_string(snapRowBytes) +
            " does not match the engine payload width " +
            std::to_string(bytesPerRow));
    const std::uint64_t snapCapacity = d.u64();
    if (snapCapacity != cfg.capacityBytes)
        throw serde::SnapshotError(
            "hot-cache snapshot capacity " +
            std::to_string(snapCapacity) +
            " bytes does not match the configured capacity " +
            std::to_string(cfg.capacityBytes) + " bytes");
    CacheStats restored;
    restored.hits = d.u64();
    restored.misses = d.u64();
    restored.evictions = d.u64();
    restored.writebackCoalesced = d.u64();
    restored.admissionHits = d.u64();
    const std::uint64_t nRows = d.u64();
    if (nRows > maxRows)
        throw serde::SnapshotError(
            "hot-cache snapshot holds " + std::to_string(nRows) +
            " rows but the configured capacity is " +
            std::to_string(maxRows) + " rows");
    assertNoPinsLocked("hot-cache restore()");
    rows.clear();
    order.clear();
    useSeq = 0;
    st = restored;
    for (std::uint64_t i = 0; i < nRows; ++i) {
        const oram::BlockId id = d.u64();
        const std::uint64_t freq = d.u64();
        std::vector<std::uint8_t> data(bytesPerRow);
        d.bytes(data.data(), data.size());
        insertLocked(id, std::move(data), freq);
    }
}

void
HotEmbeddingCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    // Same quiesced-boundary contract as save(): a pinned row is the
    // only copy of an acknowledged deferred write-back.
    assertNoPinsLocked("hot-cache clear()");
    rows.clear();
    order.clear();
    useSeq = 0;
}

} // namespace laoram::cache
