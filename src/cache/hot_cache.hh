/**
 * @file
 * Trusted-client hot-embedding cache tier.
 *
 * Zipfian embedding workloads concentrate most touches on a tiny hot
 * set, so the client keeps a bounded cache of hot rows in its own
 * (trusted) DRAM and serves them without waiting for the ORAM path
 * read. The non-negotiable invariant is obliviousness: the client
 * STILL ISSUES EVERY SCHEDULED ORAM ACCESS, hit or miss — a hit only
 * changes which bytes the client considers authoritative, never which
 * slots the server sees touched. The server-visible access sequence
 * is byte-identical with the cache on or off (enforced by
 * tests/integration/cache_differential_test.cc).
 *
 * Protocol (engine serving thread, per scheduled access of block id):
 *
 *   switch (cache.beginScheduledAccess(id, stashPayload)) {
 *   case Miss:       applyOps(stashPayload); cache.fill(id, ...); break;
 *   case HitInPlace: applyOps(stashPayload);   // payload <- row copy
 *                    cache.completeScheduledAccess(id, stashPayload);
 *                    break;
 *   case Flushed:    break;  // admission-time ops already folded in;
 *   }                        // this access was their write-back
 *
 * The single-access path (Laoram::access, i.e. readBlock/writeBlock
 * and resharding) runs the same protocol so a resident row — which
 * may carry deferred admission-time updates newer than the stash —
 * stays authoritative there too. Its operation is new, though, so
 * after Flushed it still applies the op to the payload (which now
 * holds the deferred value) and calls completeScheduledAccess; the
 * access's own path write doubles as the coalesced write-back.
 *
 * The frontend fast path (tryServeAtAdmission) applies an operation
 * to the cached row at coalesce time — on a prep/assembler thread,
 * completing the client future at DRAM speed — and pins the row until
 * its scheduled access flushes the new value back into the stash
 * (write-back coalescing: the SGD update rides the access that was
 * already going to happen). Pinned rows are never evicted, so a
 * deferred write-back cannot be lost.
 *
 * The cache is trusted client state like the position map: its
 * contents (which ids are hot) are exactly what ORAM hides, so it
 * checkpoints into the client-side snapshot sidecar (save/restore)
 * and must never leak server-side.
 */

#ifndef LAORAM_CACHE_HOT_CACHE_HH
#define LAORAM_CACHE_HOT_CACHE_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "oram/types.hh"
#include "util/serde.hh"

namespace laoram::cache {

/** Eviction policy for the hot-row cache. */
enum class CachePolicy : std::uint8_t {
    Lru = 0, ///< evict the least-recently-touched row
    Lfu = 1, ///< evict the least-frequently-touched row (LRU tiebreak)
};

/** Stable lower-case name ("lru" / "lfu"). */
const char *policyName(CachePolicy policy);

/** Parse "lru"/"lfu" (case-insensitive); false on anything else. */
bool parsePolicy(const std::string &text, CachePolicy *out);

/** Client-side cache sizing/policy knobs (0 capacity = disabled). */
struct CacheConfig
{
    std::uint64_t capacityBytes = 0; ///< row-data budget; 0 disables
    CachePolicy policy = CachePolicy::Lru;

    bool enabled() const { return capacityBytes > 0; }
};

/** Counters + occupancy snapshot for reports and live metrics. */
struct CacheStats
{
    std::uint64_t hits = 0;   ///< scheduled accesses served from DRAM
    std::uint64_t misses = 0; ///< scheduled accesses that went to ORAM
    std::uint64_t evictions = 0;
    /** Deferred admission-time ops flushed into a scheduled access. */
    std::uint64_t writebackCoalesced = 0;
    /** Ops applied + completed at admission (frontend fast path). */
    std::uint64_t admissionHits = 0;

    std::uint64_t residentRows = 0;  ///< occupancy level (not a counter)
    std::uint64_t residentBytes = 0; ///< occupancy level (not a counter)
    std::uint64_t capacityRows = 0;  ///< configured row budget

    double
    hitRate() const
    {
        const std::uint64_t accesses = hits + misses;
        return accesses ? static_cast<double>(hits)
                              / static_cast<double>(accesses)
                        : 0.0;
    }

    /** Sum counters; occupancy/capacity levels add (per-shard merge). */
    void accumulate(const CacheStats &other);

    /** Counter delta since @p start (levels keep this side's values). */
    CacheStats deltaFrom(const CacheStats &start) const;
};

/** Outcome of beginScheduledAccess (see file header for protocol). */
enum class AccessOutcome : std::uint8_t {
    Miss,       ///< not resident: touch the stash payload, then fill()
    HitInPlace, ///< payload <- row; touch it, completeScheduledAccess()
    Flushed,    ///< payload <- row; pinned write-back coalesced, done
};

/**
 * Bounded map of hot embedding rows, all payloadBytes wide.
 *
 * Thread safety: one internal mutex serializes every operation. The
 * engine serving thread and the frontend assembler threads contend on
 * it; callbacks passed to tryServeAtAdmission run under the lock and
 * must not re-enter the cache or take locks ordered before it.
 * Deliberately consumes no engine randomness, so attaching a cache
 * cannot perturb the deterministic access schedule.
 */
class HotEmbeddingCache
{
  public:
    /** @p rowBytes must equal the engine payloadBytes (> 0). */
    HotEmbeddingCache(const CacheConfig &config, std::uint64_t rowBytes);

    /**
     * Serving-thread entry for the scheduled access of @p id. On any
     * kind of hit the authoritative row is copied into @p payload.
     */
    AccessOutcome beginScheduledAccess(oram::BlockId id,
                                       std::vector<std::uint8_t> &payload);

    /**
     * Write the touched @p payload back into the row (HitInPlace).
     * No-op when the row acquired a pin since beginScheduledAccess:
     * the pinned value postdates @p payload and must win, or the
     * acknowledged fast-path op would be silently lost.
     */
    void completeScheduledAccess(oram::BlockId id,
                                 const std::vector<std::uint8_t> &payload);

    /** Miss fill: admit a copy of @p payload, evicting as needed. */
    void fill(oram::BlockId id, const std::vector<std::uint8_t> &payload);

    /**
     * Frontend fast path (assembler thread): if @p id is resident,
     * run @p fn on the row under the lock, pin the row until its
     * scheduled access flushes, and return true. The caller must
     * guarantee that no earlier planned (non-fast) operation on the
     * same id is still outstanding, or arrival order is violated.
     */
    bool tryServeAtAdmission(
        oram::BlockId id,
        const std::function<void(std::vector<std::uint8_t> &)> &fn);

    CacheStats stats() const;
    std::uint64_t rowBytes() const { return bytesPerRow; }
    std::uint64_t capacityRows() const { return maxRows; }
    const CacheConfig &config() const { return cfg; }

    /**
     * Checkpoint the cache contents (ids + rows + counters) into @p s.
     * Only legal at a quiesced boundary: no pinned write-backs may be
     * outstanding.
     */
    void save(serde::Serializer &s) const;

    /**
     * Restore contents saved by save(). Throws serde::SnapshotError
     * when the snapshot's policy/rowBytes/capacity disagree with this
     * cache's configuration. Quiesced-boundary only, like save().
     */
    void restore(serde::Deserializer &d);

    /**
     * Drop all rows; counters keep accumulating. Quiesced-boundary
     * only: panics when a pinned write-back is outstanding (it would
     * be the only copy of an acknowledged update), matching save().
     */
    void clear();

  private:
    struct Row
    {
        std::vector<std::uint8_t> data;
        std::uint64_t freq = 0;    ///< touches (Lfu primary key)
        std::uint64_t lastUse = 0; ///< recency sequence (Lru / tiebreak)
        std::uint32_t pinned = 0;  ///< outstanding deferred write-backs
    };

    /** Eviction-order key: (policy primary, recency, id). */
    using OrderKey =
        std::tuple<std::uint64_t, std::uint64_t, oram::BlockId>;

    OrderKey keyOf(oram::BlockId id, const Row &row) const;
    /** Panic if any row is pinned (quiesced-boundary contract). */
    void assertNoPinsLocked(const char *op) const;
    void touchLocked(oram::BlockId id, Row &row);
    void evictForSpaceLocked();
    void insertLocked(oram::BlockId id, std::vector<std::uint8_t> data,
                      std::uint64_t freq);

    const CacheConfig cfg;
    const std::uint64_t bytesPerRow;
    const std::uint64_t maxRows;

    mutable std::mutex mu;
    std::unordered_map<oram::BlockId, Row> rows;
    std::set<OrderKey> order;
    std::uint64_t useSeq = 0;
    CacheStats st;
};

} // namespace laoram::cache

#endif // LAORAM_CACHE_HOT_CACHE_HH
