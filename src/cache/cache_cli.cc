#include "cache/cache_cli.hh"

#include "util/logging.hh"

namespace laoram::cache {

CacheArgs
addCacheArgs(ArgParser &args)
{
    CacheArgs ca;
    ca.cacheMb = args.addUint(
        "cache-mb",
        "trusted-client hot-row cache capacity in MiB (0 = disabled)",
        0);
    ca.cachePolicy = args.addString(
        "cache-policy", "hot-row eviction policy: lru|lfu", "lru");
    ca.cachePolicySeen = args.seenTracker("cache-policy");
    return ca;
}

bool
cacheConfigFromArgsChecked(const CacheArgs &ca, CacheConfig *out,
                           std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };

    CacheConfig cfg;
    cfg.capacityBytes = *ca.cacheMb * (std::uint64_t{1} << 20);
    if (!parsePolicy(*ca.cachePolicy, &cfg.policy))
        return fail("unknown --cache-policy '" + *ca.cachePolicy +
                    "' (want lru|lfu)");
    if (*ca.cachePolicySeen && !cfg.enabled())
        return fail("--cache-policy requires --cache-mb > 0");
    *out = cfg;
    return true;
}

CacheConfig
cacheConfigFromArgs(const CacheArgs &ca)
{
    CacheConfig cfg;
    std::string error;
    if (!cacheConfigFromArgsChecked(ca, &cfg, &error))
        LAORAM_FATAL(error);
    return cfg;
}

} // namespace laoram::cache
