#include "storage/slot_backend.hh"

#include <map>
#include <mutex>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "storage/dram_backend.hh"
#include "storage/mmap_backend.hh"
#include "storage/remote_backend.hh"
#include "util/logging.hh"
#include "util/walltime.hh"

namespace laoram::storage {

/**
 * Live mirror of the IoStats ledger, one handle set per backend
 * *kind*: every instance of a kind (shard engines, the remote
 * server's inner store) shares the same storage.<kind>.* series, so
 * the sampled totals are process-wide.
 */
struct BackendObs
{
    obs::Counter &readOps;
    obs::Counter &writeOps;
    obs::Counter &slotsRead;
    obs::Counter &slotsWritten;
    obs::Counter &bytesRead;
    obs::Counter &bytesWritten;
    obs::Counter &flushes;
    obs::Counter &readNs;
    obs::Counter &writeNs;
};

namespace {

BackendObs &
backendObsFor(const std::string &kind)
{
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<BackendObs>> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(kind);
    if (it == cache.end()) {
        auto &reg = obs::MetricsRegistry::instance();
        const std::string p = "storage." + kind + ".";
        it = cache
                 .emplace(kind,
                          std::unique_ptr<BackendObs>(new BackendObs{
                              reg.counter(p + "read_ops"),
                              reg.counter(p + "write_ops"),
                              reg.counter(p + "slots_read"),
                              reg.counter(p + "slots_written"),
                              reg.counter(p + "bytes_read"),
                              reg.counter(p + "bytes_written"),
                              reg.counter(p + "flushes"),
                              reg.counter(p + "read_ns"),
                              reg.counter(p + "write_ns"),
                          }))
                 .first;
    }
    return *it->second;
}

} // namespace

BackendObs &
SlotBackend::boundObs()
{
    if (obs_ == nullptr)
        obs_ = &backendObsFor(name());
    return *obs_;
}

IoStats
IoStats::since(const IoStats &start) const
{
    IoStats d;
    d.readOps = readOps - start.readOps;
    d.writeOps = writeOps - start.writeOps;
    d.slotsRead = slotsRead - start.slotsRead;
    d.slotsWritten = slotsWritten - start.slotsWritten;
    d.bytesRead = bytesRead - start.bytesRead;
    d.bytesWritten = bytesWritten - start.bytesWritten;
    d.flushes = flushes - start.flushes;
    d.readNs = readNs - start.readNs;
    d.writeNs = writeNs - start.writeNs;
    d.flushNs = flushNs - start.flushNs;
    return d;
}

IoStats &
IoStats::operator+=(const IoStats &other)
{
    readOps += other.readOps;
    writeOps += other.writeOps;
    slotsRead += other.slotsRead;
    slotsWritten += other.slotsWritten;
    bytesRead += other.bytesRead;
    bytesWritten += other.bytesWritten;
    flushes += other.flushes;
    readNs += other.readNs;
    writeNs += other.writeNs;
    flushNs += other.flushNs;
    return *this;
}

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Dram:
        return "dram";
      case BackendKind::MmapFile:
        return "mmap";
      case BackendKind::Remote:
        return "remote";
    }
    return "?";
}

SlotBackend::SlotBackend(std::uint64_t slots, std::uint64_t recordBytes)
    : nSlots(slots), recBytes(recordBytes)
{
    LAORAM_ASSERT(recBytes > 0, "slot records cannot be empty");
}

void
SlotBackend::readSlot(std::uint64_t slot, std::uint8_t *dst)
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    const WallClock::time_point t0 = WallClock::now();
    doReadSlot(slot, dst);
    const std::int64_t ns = elapsedNs(t0);
    stats.readNs += ns;
    ++stats.readOps;
    ++stats.slotsRead;
    stats.bytesRead += recBytes;
    if (obs::metricsEnabled()) {
        BackendObs &o = boundObs();
        o.readOps.inc();
        o.slotsRead.inc();
        o.bytesRead.add(recBytes);
        o.readNs.add(static_cast<std::uint64_t>(ns));
    }
}

void
SlotBackend::writeSlot(std::uint64_t slot, const std::uint8_t *src)
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    const WallClock::time_point t0 = WallClock::now();
    doWriteSlot(slot, src);
    const std::int64_t ns = elapsedNs(t0);
    stats.writeNs += ns;
    ++stats.writeOps;
    ++stats.slotsWritten;
    stats.bytesWritten += recBytes;
    if (obs::metricsEnabled()) {
        BackendObs &o = boundObs();
        o.writeOps.inc();
        o.slotsWritten.inc();
        o.bytesWritten.add(recBytes);
        o.writeNs.add(static_cast<std::uint64_t>(ns));
    }
}

void
SlotBackend::readSlots(const std::uint64_t *slots, std::size_t n,
                       std::uint8_t *dst)
{
    if (n == 0)
        return;
    const WallClock::time_point t0 = WallClock::now();
    doReadSlots(slots, n, dst);
    const std::int64_t ns = elapsedNs(t0);
    stats.readNs += ns;
    ++stats.readOps;
    stats.slotsRead += n;
    stats.bytesRead += n * recBytes;
    obs::traceRecordEndingNow("path-read", ns, n);
    if (obs::metricsEnabled()) {
        BackendObs &o = boundObs();
        o.readOps.inc();
        o.slotsRead.add(n);
        o.bytesRead.add(n * recBytes);
        o.readNs.add(static_cast<std::uint64_t>(ns));
    }
}

void
SlotBackend::writeSlots(const std::uint64_t *slots, std::size_t n,
                        const std::uint8_t *src)
{
    if (n == 0)
        return;
    const WallClock::time_point t0 = WallClock::now();
    doWriteSlots(slots, n, src);
    const std::int64_t ns = elapsedNs(t0);
    stats.writeNs += ns;
    ++stats.writeOps;
    stats.slotsWritten += n;
    stats.bytesWritten += n * recBytes;
    obs::traceRecordEndingNow("path-write", ns, n);
    if (obs::metricsEnabled()) {
        BackendObs &o = boundObs();
        o.writeOps.inc();
        o.slotsWritten.add(n);
        o.bytesWritten.add(n * recBytes);
        o.writeNs.add(static_cast<std::uint64_t>(ns));
    }
}

void
SlotBackend::flush()
{
    const WallClock::time_point t0 = WallClock::now();
    doFlush();
    stats.flushNs += elapsedNs(t0);
    ++stats.flushes;
    if (obs::metricsEnabled())
        boundObs().flushes.inc();
}

void
SlotBackend::noteMappedRead(std::uint64_t slotCount, std::int64_t ns)
{
    ++stats.readOps;
    stats.slotsRead += slotCount;
    stats.bytesRead += slotCount * recBytes;
    stats.readNs += ns;
    // The mapped fast path only measures a duration, so the span is
    // back-dated to end at the report point.
    obs::traceRecordEndingNow("path-read", ns, slotCount);
    if (obs::metricsEnabled()) {
        BackendObs &o = boundObs();
        o.readOps.inc();
        o.slotsRead.add(slotCount);
        o.bytesRead.add(slotCount * recBytes);
        o.readNs.add(static_cast<std::uint64_t>(ns));
    }
}

void
SlotBackend::noteMappedWrite(std::uint64_t slotCount, std::int64_t ns)
{
    ++stats.writeOps;
    stats.slotsWritten += slotCount;
    stats.bytesWritten += slotCount * recBytes;
    stats.writeNs += ns;
    obs::traceRecordEndingNow("path-write", ns, slotCount);
    if (obs::metricsEnabled()) {
        BackendObs &o = boundObs();
        o.writeOps.inc();
        o.slotsWritten.add(slotCount);
        o.bytesWritten.add(slotCount * recBytes);
        o.writeNs.add(static_cast<std::uint64_t>(ns));
    }
}

void
SlotBackend::doReadSlots(const std::uint64_t *slots, std::size_t n,
                         std::uint8_t *dst)
{
    for (std::size_t i = 0; i < n; ++i) {
        LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                      " out of range");
        doReadSlot(slots[i], dst + i * recBytes);
    }
}

void
SlotBackend::doWriteSlots(const std::uint64_t *slots, std::size_t n,
                          const std::uint8_t *src)
{
    for (std::size_t i = 0; i < n; ++i) {
        LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                      " out of range");
        doWriteSlot(slots[i], src + i * recBytes);
    }
}

std::unique_ptr<SlotBackend>
makeBackend(const StorageConfig &cfg, std::uint64_t slots,
            std::uint64_t recordBytes, std::uint64_t metaBytes)
{
    switch (cfg.kind) {
      case BackendKind::Dram:
        return std::make_unique<DramBackend>(slots, recordBytes);
      case BackendKind::MmapFile:
        if (cfg.path.empty())
            LAORAM_FATAL("mmap storage backend requires a file path "
                         "(StorageConfig::path)");
        return std::make_unique<MmapFileBackend>(cfg, slots,
                                                 recordBytes,
                                                 metaBytes);
      case BackendKind::Remote:
        // Self-hosted node: the client backend owns an in-process
        // RemoteKvServer composing over DRAM (or mmap when a path is
        // configured), so every caller of makeBackend gets the full
        // RPC data path without managing a server.
        return std::make_unique<RemoteKvBackend>(cfg, slots,
                                                 recordBytes,
                                                 metaBytes);
    }
    LAORAM_PANIC("unreachable backend kind");
}

} // namespace laoram::storage
