#include "storage/slot_backend.hh"

#include "storage/dram_backend.hh"
#include "storage/mmap_backend.hh"
#include "storage/remote_backend.hh"
#include "util/logging.hh"
#include "util/walltime.hh"

namespace laoram::storage {

IoStats
IoStats::since(const IoStats &start) const
{
    IoStats d;
    d.readOps = readOps - start.readOps;
    d.writeOps = writeOps - start.writeOps;
    d.slotsRead = slotsRead - start.slotsRead;
    d.slotsWritten = slotsWritten - start.slotsWritten;
    d.bytesRead = bytesRead - start.bytesRead;
    d.bytesWritten = bytesWritten - start.bytesWritten;
    d.flushes = flushes - start.flushes;
    d.readNs = readNs - start.readNs;
    d.writeNs = writeNs - start.writeNs;
    d.flushNs = flushNs - start.flushNs;
    return d;
}

IoStats &
IoStats::operator+=(const IoStats &other)
{
    readOps += other.readOps;
    writeOps += other.writeOps;
    slotsRead += other.slotsRead;
    slotsWritten += other.slotsWritten;
    bytesRead += other.bytesRead;
    bytesWritten += other.bytesWritten;
    flushes += other.flushes;
    readNs += other.readNs;
    writeNs += other.writeNs;
    flushNs += other.flushNs;
    return *this;
}

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Dram:
        return "dram";
      case BackendKind::MmapFile:
        return "mmap";
      case BackendKind::Remote:
        return "remote";
    }
    return "?";
}

SlotBackend::SlotBackend(std::uint64_t slots, std::uint64_t recordBytes)
    : nSlots(slots), recBytes(recordBytes)
{
    LAORAM_ASSERT(recBytes > 0, "slot records cannot be empty");
}

void
SlotBackend::readSlot(std::uint64_t slot, std::uint8_t *dst)
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    const WallClock::time_point t0 = WallClock::now();
    doReadSlot(slot, dst);
    stats.readNs += elapsedNs(t0);
    ++stats.readOps;
    ++stats.slotsRead;
    stats.bytesRead += recBytes;
}

void
SlotBackend::writeSlot(std::uint64_t slot, const std::uint8_t *src)
{
    LAORAM_ASSERT(slot < nSlots, "slot ", slot, " out of range");
    const WallClock::time_point t0 = WallClock::now();
    doWriteSlot(slot, src);
    stats.writeNs += elapsedNs(t0);
    ++stats.writeOps;
    ++stats.slotsWritten;
    stats.bytesWritten += recBytes;
}

void
SlotBackend::readSlots(const std::uint64_t *slots, std::size_t n,
                       std::uint8_t *dst)
{
    if (n == 0)
        return;
    const WallClock::time_point t0 = WallClock::now();
    doReadSlots(slots, n, dst);
    stats.readNs += elapsedNs(t0);
    ++stats.readOps;
    stats.slotsRead += n;
    stats.bytesRead += n * recBytes;
}

void
SlotBackend::writeSlots(const std::uint64_t *slots, std::size_t n,
                        const std::uint8_t *src)
{
    if (n == 0)
        return;
    const WallClock::time_point t0 = WallClock::now();
    doWriteSlots(slots, n, src);
    stats.writeNs += elapsedNs(t0);
    ++stats.writeOps;
    stats.slotsWritten += n;
    stats.bytesWritten += n * recBytes;
}

void
SlotBackend::flush()
{
    const WallClock::time_point t0 = WallClock::now();
    doFlush();
    stats.flushNs += elapsedNs(t0);
    ++stats.flushes;
}

void
SlotBackend::noteMappedRead(std::uint64_t slotCount, std::int64_t ns)
{
    ++stats.readOps;
    stats.slotsRead += slotCount;
    stats.bytesRead += slotCount * recBytes;
    stats.readNs += ns;
}

void
SlotBackend::noteMappedWrite(std::uint64_t slotCount, std::int64_t ns)
{
    ++stats.writeOps;
    stats.slotsWritten += slotCount;
    stats.bytesWritten += slotCount * recBytes;
    stats.writeNs += ns;
}

void
SlotBackend::doReadSlots(const std::uint64_t *slots, std::size_t n,
                         std::uint8_t *dst)
{
    for (std::size_t i = 0; i < n; ++i) {
        LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                      " out of range");
        doReadSlot(slots[i], dst + i * recBytes);
    }
}

void
SlotBackend::doWriteSlots(const std::uint64_t *slots, std::size_t n,
                          const std::uint8_t *src)
{
    for (std::size_t i = 0; i < n; ++i) {
        LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                      " out of range");
        doWriteSlot(slots[i], src + i * recBytes);
    }
}

std::unique_ptr<SlotBackend>
makeBackend(const StorageConfig &cfg, std::uint64_t slots,
            std::uint64_t recordBytes, std::uint64_t metaBytes)
{
    switch (cfg.kind) {
      case BackendKind::Dram:
        return std::make_unique<DramBackend>(slots, recordBytes);
      case BackendKind::MmapFile:
        if (cfg.path.empty())
            LAORAM_FATAL("mmap storage backend requires a file path "
                         "(StorageConfig::path)");
        return std::make_unique<MmapFileBackend>(cfg, slots,
                                                 recordBytes,
                                                 metaBytes);
      case BackendKind::Remote:
        // Self-hosted node: the client backend owns an in-process
        // RemoteKvServer composing over DRAM (or mmap when a path is
        // configured), so every caller of makeBackend gets the full
        // RPC data path without managing a server.
        return std::make_unique<RemoteKvBackend>(cfg, slots,
                                                 recordBytes,
                                                 metaBytes);
    }
    LAORAM_PANIC("unreachable backend kind");
}

} // namespace laoram::storage
