/**
 * @file
 * DramBackend — the default in-process slot store.
 *
 * One contiguous heap array, exactly the pre-subsystem ServerStorage
 * layout. Addressable (mappedBase()), so ServerStorage keeps its
 * zero-copy encode/decode hot path; the staged do* overrides exist
 * for conformance testing and as the reference implementation.
 */

#ifndef LAORAM_STORAGE_DRAM_BACKEND_HH
#define LAORAM_STORAGE_DRAM_BACKEND_HH

#include <vector>

#include "storage/slot_backend.hh"

namespace laoram::storage {

/** Heap-resident slot array (not persistent). */
class DramBackend final : public SlotBackend
{
  public:
    DramBackend(std::uint64_t slots, std::uint64_t recordBytes);

    std::string name() const override { return "dram"; }

    std::uint8_t *mappedBase() override { return raw.data(); }

    std::uint64_t residentBytes() const override { return raw.size(); }

  protected:
    void doReadSlot(std::uint64_t slot, std::uint8_t *dst) override;
    void doWriteSlot(std::uint64_t slot,
                     const std::uint8_t *src) override;

  private:
    std::vector<std::uint8_t> raw;
};

} // namespace laoram::storage

#endif // LAORAM_STORAGE_DRAM_BACKEND_HH
