#include "storage/remote_backend.hh"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace laoram::storage {

namespace {

constexpr std::uint32_t kMaxFrameBytes = 1u << 30; ///< 1 GiB sanity cap
constexpr std::uint8_t kResponseBit = 0x80;

obs::Gauge &
inflightWritesGauge()
{
    static obs::Gauge &g = obs::MetricsRegistry::instance().gauge(
        "storage.remote.inflight_writes",
        "async write/flush RPCs parked in the pipelining window");
    return g;
}

// node.* metrics: the storage-node side of the link (also live for a
// self-hosted in-process node, which runs the same frame loop).

obs::Counter &
nodeConnectionsCounter()
{
    static obs::Counter &c = obs::MetricsRegistry::instance().counter(
        "node.connections",
        "client connections accepted by the remote-KV node");
    return c;
}

obs::Gauge &
nodeActiveConnectionsGauge()
{
    static obs::Gauge &g = obs::MetricsRegistry::instance().gauge(
        "node.active_connections",
        "remote-KV node connections currently being served");
    return g;
}

obs::Counter &
nodeRpcsCounter()
{
    static obs::Counter &c = obs::MetricsRegistry::instance().counter(
        "node.rpcs", "request frames executed by the remote-KV node");
    return c;
}

obs::Counter &
nodeReplayDiscardsCounter()
{
    static obs::Counter &c = obs::MetricsRegistry::instance().counter(
        "node.replay_discards",
        "replayed mutations acked without re-execution (seq at or "
        "below the session high-water mark)");
    return c;
}

obs::Counter &
nodeClientReconnectsCounter()
{
    static obs::Counter &c = obs::MetricsRegistry::instance().counter(
        "node.client_reconnects",
        "successful client reconnect+replay recoveries");
    return c;
}

/** Span name for a completed RPC, by request opcode. */
const char *
rpcSpanName(std::uint8_t op)
{
    switch (static_cast<RemoteOp>(op)) {
      case RemoteOp::ReadSlots:
        return "rpc-read";
      case RemoteOp::WriteSlots:
        return "rpc-write";
      case RemoteOp::Flush:
        return "rpc-flush";
      default:
        return "rpc";
    }
}

/** Paranoia cap on slot counts from the wire (a path union is small). */
constexpr std::uint64_t kMaxSlotsPerRpc = 1u << 22;

inline void
appendU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    const std::size_t at = buf.size();
    buf.resize(at + sizeof(v));
    std::memcpy(buf.data() + at, &v, sizeof(v)); // little-endian hosts
}

inline std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Send exactly @p len bytes; false on a dead peer (EPIPE/RESET). */
bool
sendAll(int fd, const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** Receive exactly @p len bytes; false on EOF or a dead peer. */
bool
recvAll(int fd, std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::recv(fd, data, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // orderly shutdown mid-frame or at boundary
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Receive one frame into @p body (replacing its contents); false when
 * the connection is gone.
 */
bool
recvFrame(int fd, std::vector<std::uint8_t> &body)
{
    std::uint32_t len = 0;
    if (!recvAll(fd, reinterpret_cast<std::uint8_t *>(&len),
                 sizeof(len)))
        return false;
    if (len > kMaxFrameBytes)
        return false; // protocol corruption; drop the connection
    body.resize(len);
    return recvAll(fd, body.data(), len);
}

/** recvAll under an absolute deadline; false on EOF, error or timeout. */
bool
recvAllDeadline(int fd, std::uint8_t *data, std::size_t len,
                std::chrono::steady_clock::time_point deadline)
{
    while (len > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline)
            return false;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count();
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(
            &pfd, 1, static_cast<int>(left > 0 ? left : 1));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (ready == 0)
            return false; // deadline expired: the server is hung
        const ssize_t n = ::recv(fd, data, len, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * recvFrame with an optional whole-frame deadline (@p timeoutMs <= 0
 * waits forever). A timeout is indistinguishable from a dead peer to
 * the caller — both mean "this connection is not going to answer".
 */
bool
recvFrameDeadline(int fd, std::vector<std::uint8_t> &body,
                  std::int64_t timeoutMs)
{
    if (timeoutMs <= 0)
        return recvFrame(fd, body);
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::milliseconds(timeoutMs);
    std::uint32_t len = 0;
    if (!recvAllDeadline(fd, reinterpret_cast<std::uint8_t *>(&len),
                         sizeof(len), deadline))
        return false;
    if (len > kMaxFrameBytes)
        return false;
    body.resize(len);
    return recvAllDeadline(fd, body.data(), len, deadline);
}

/** Frame + send @p body; false when the connection is gone. */
bool
sendFrame(int fd, const std::vector<std::uint8_t> &body)
{
    LAORAM_ASSERT(body.size() <= kMaxFrameBytes,
                  "RPC frame of ", body.size(),
                  " B exceeds the protocol cap");
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    if (!sendAll(fd, reinterpret_cast<const std::uint8_t *>(&len),
                 sizeof(len)))
        return false;
    return sendAll(fd, body.data(), body.size());
}

} // namespace

// ===================================================== RemoteKvServer

RemoteKvServer::RemoteKvServer(std::unique_ptr<SlotBackend> inner,
                               const RemoteKvConfig &shaping)
    : store(std::move(inner)), shaping(shaping)
{
    LAORAM_ASSERT(store, "remote-KV server needs an inner backend");
}

RemoteKvServer::~RemoteKvServer()
{
    shutdown();
}

int
RemoteKvServer::connectClient()
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        LAORAM_FATAL("socketpair() failed for remote-KV connection: ",
                     std::strerror(errno));

    std::lock_guard<std::mutex> lock(connMu);
    if (stopped) {
        ::close(sv[0]);
        ::close(sv[1]);
        LAORAM_FATAL("connectClient() on a shut-down remote-KV server");
    }
    Connection conn;
    conn.fd = sv[1];
    conn.thread =
        std::thread([this, fd = sv[1]] { serveConnection(fd); });
    conns.push_back(std::move(conn));
    return sv[0];
}

void
RemoteKvServer::serveSocket(int fd)
{
    std::lock_guard<std::mutex> lock(connMu);
    if (stopped) {
        // An accept racing a shutdown/drain: refuse quietly — the
        // peer sees EOF and (in endpoint mode) redials elsewhere.
        ::close(fd);
        return;
    }
    Connection conn;
    conn.fd = fd;
    conn.thread = std::thread([this, fd] { serveConnection(fd); });
    conns.push_back(std::move(conn));
}

void
RemoteKvServer::stopConnections(int how)
{
    std::vector<Connection> victims;
    {
        std::lock_guard<std::mutex> lock(connMu);
        stopped = true;
        victims.swap(conns);
    }
    for (Connection &c : victims) {
        // shutdown (not close) so a service thread blocked in recv()
        // wakes up; SHUT_RD alone lets an in-progress response drain.
        ::shutdown(c.fd, how);
    }
    for (Connection &c : victims) {
        if (c.thread.joinable())
            c.thread.join();
        ::close(c.fd);
    }
}

void
RemoteKvServer::shutdown()
{
    stopConnections(SHUT_RDWR);
}

void
RemoteKvServer::drain()
{
    stopConnections(SHUT_RD);
    std::lock_guard<std::mutex> lock(storeMu);
    store->flush();
}

bool
RemoteKvServer::admitMutation(std::uint64_t sessionId,
                              std::uint64_t seq)
{
    if (sessionId == 0)
        return true; // legacy client: no replay session, no dedupe
    std::lock_guard<std::mutex> lock(sessionMu);
    std::uint64_t &highWater = sessionHighWater[sessionId];
    if (seq <= highWater) {
        if (obs::metricsEnabled())
            nodeReplayDiscardsCounter().inc();
        return false;
    }
    highWater = seq;
    return true;
}

void
RemoteKvServer::shapeDelay(std::uint64_t wireBytes) const
{
    std::int64_t ns = shaping.latencyNs;
    if (shaping.bytesPerSec > 0) {
        ns += static_cast<std::int64_t>(
            static_cast<double>(wireBytes) * 1e9
            / static_cast<double>(shaping.bytesPerSec));
    }
    if (ns > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

void
RemoteKvServer::serveConnection(int fd)
{
    const std::uint64_t recBytes = store->recordBytes();
    std::vector<std::uint8_t> req;
    std::vector<std::uint8_t> resp;
    std::vector<std::uint64_t> slots;

    if (obs::metricsEnabled()) {
        nodeConnectionsCounter().inc();
        nodeActiveConnectionsGauge().inc();
    }

    /** Replay session bound to this connection by its Hello (0 until
     *  then, and forever for a legacy 16-byte Hello). */
    std::uint64_t connSession = 0;

    // Wire-supplied indices are untrusted input: a bad one must drop
    // the connection, not reach the inner store (whose range asserts
    // are for *library* bugs and abort the whole node).
    auto slotsValid = [this](const std::vector<std::uint64_t> &v) {
        for (const std::uint64_t slot : v)
            if (slot >= store->slots())
                return false;
        return true;
    };

    while (recvFrame(fd, req)) {
        if (req.size() < 1 + sizeof(std::uint64_t))
            break; // malformed header; drop the connection
        const std::uint8_t op = req[0];
        const std::uint64_t seq = readU64(req.data() + 1);
        const std::uint8_t *payload = req.data() + 9;
        const std::size_t payloadLen = req.size() - 9;

        resp.clear();
        resp.push_back(static_cast<std::uint8_t>(op | kResponseBit));
        appendU64(resp, seq);
        bool ok = true;

        if (obs::metricsEnabled())
            nodeRpcsCounter().inc();

        switch (static_cast<RemoteOp>(op)) {
          case RemoteOp::Hello: {
            // 16 B legacy (slots, recordBytes) or 24 B with a replay
            // sessionId appended; anything else is a corrupt stream.
            if (payloadLen != 16 && payloadLen != 24) {
                ok = false;
                break;
            }
            connSession = payloadLen == 24 ? readU64(payload + 16) : 0;
            appendU64(resp, store->slots());
            appendU64(resp, store->recordBytes());
            appendU64(resp, store->metaCapacity());
            resp.push_back(store->persistent() ? 1 : 0);
            resp.push_back(store->openedExisting() ? 1 : 0);
            break;
          }
          case RemoteOp::ReadSlots: {
            if (payloadLen < sizeof(std::uint64_t)) {
                ok = false;
                break;
            }
            const std::uint64_t n = readU64(payload);
            // Bound the *response* frame too: n records must fit the
            // u32 length prefix (and the client's frame cap), or the
            // reply would truncate and desync the stream.
            if (n > kMaxSlotsPerRpc
                || payloadLen != (1 + n) * sizeof(std::uint64_t)
                || 9 + n * recBytes > kMaxFrameBytes) {
                ok = false;
                break;
            }
            slots.resize(n);
            std::memcpy(slots.data(), payload + 8, n * 8);
            if (!slotsValid(slots)) {
                ok = false;
                break;
            }
            const std::size_t at = resp.size();
            resp.resize(at + n * recBytes);
            std::lock_guard<std::mutex> lock(storeMu);
            store->readSlots(slots.data(), n, resp.data() + at);
            break;
          }
          case RemoteOp::WriteSlots: {
            if (payloadLen < sizeof(std::uint64_t)) {
                ok = false;
                break;
            }
            const std::uint64_t n = readU64(payload);
            if (n > kMaxSlotsPerRpc
                || payloadLen
                       != (1 + n) * sizeof(std::uint64_t)
                              + n * recBytes) {
                ok = false;
                break;
            }
            slots.resize(n);
            std::memcpy(slots.data(), payload + 8, n * 8);
            if (!slotsValid(slots)) {
                ok = false;
                break;
            }
            if (!admitMutation(connSession, seq))
                break; // replayed duplicate: ack without re-applying
            std::lock_guard<std::mutex> lock(storeMu);
            store->writeSlots(slots.data(), n,
                              payload + 8 + n * 8);
            break;
          }
          case RemoteOp::Flush: {
            if (!admitMutation(connSession, seq))
                break;
            std::lock_guard<std::mutex> lock(storeMu);
            store->flush();
            break;
          }
          case RemoteOp::ReadMeta: {
            if (payloadLen != sizeof(std::uint64_t)) {
                ok = false;
                break;
            }
            const std::uint64_t want = readU64(payload);
            if (want > kMaxFrameBytes) {
                ok = false;
                break;
            }
            std::vector<std::uint8_t> meta(want, 0);
            std::uint64_t got = 0;
            {
                std::lock_guard<std::mutex> lock(storeMu);
                got = store->readMeta(meta.data(), want);
            }
            appendU64(resp, got);
            resp.insert(resp.end(), meta.begin(), meta.begin() + got);
            break;
          }
          case RemoteOp::WriteMeta: {
            if (payloadLen < sizeof(std::uint64_t)) {
                ok = false;
                break;
            }
            const std::uint64_t len = readU64(payload);
            if (payloadLen != sizeof(std::uint64_t) + len) {
                ok = false;
                break;
            }
            if (!admitMutation(connSession, seq))
                break;
            std::lock_guard<std::mutex> lock(storeMu);
            store->writeMeta(payload + 8, len);
            break;
          }
          case RemoteOp::Stat: {
            std::lock_guard<std::mutex> lock(storeMu);
            appendU64(resp, store->residentBytes());
            break;
          }
          default:
            ok = false;
            break;
        }

        if (!ok)
            break; // protocol violation: drop the connection

        // Network shaper: the handshake is control-plane and exempt;
        // every data-plane RPC pays latency + wire time for both
        // directions' bytes before its reply leaves.
        if (static_cast<RemoteOp>(op) != RemoteOp::Hello)
            shapeDelay(req.size() + resp.size());

        if (!sendFrame(fd, resp))
            break;
    }
    // Signal EOF to the peer so a client blocked in a response wait
    // fails fast instead of hanging (protocol violations drop the
    // connection without a reply). Only shutdown here — close() is
    // owned by RemoteKvServer::shutdown(), since a second shutdown
    // is harmless but a double-close races with fd reuse.
    ::shutdown(fd, SHUT_RDWR);
    if (obs::metricsEnabled())
        nodeActiveConnectionsGauge().dec();
}

// ==================================================== RemoteKvBackend

namespace {

/** Seed material for jitter/session ids (timing + identity only —
 *  never data, so determinism of payloads is untouched). */
std::uint64_t
entropy64()
{
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) | rd();
}

} // namespace

RemoteKvBackend::RemoteKvBackend(const StorageConfig &cfg,
                                 std::uint64_t slots,
                                 std::uint64_t recordBytes,
                                 std::uint64_t metaBytes)
    : SlotBackend(slots, recordBytes),
      cfg(cfg.remote),
      jitterRng(entropy64())
{
    LAORAM_ASSERT(this->cfg.windowDepth >= 1,
                  "remote-KV window needs at least one RPC in flight");
    if (!this->cfg.endpoint.empty()) {
        // Endpoint mode: dial an out-of-process laoram_node. The node
        // owns its storage and meta sizing; the handshake checks the
        // geometry agrees.
        std::string error;
        if (!net::parseEndpoint(this->cfg.endpoint, &remoteEp, &error))
            LAORAM_FATAL("bad remote-KV endpoint: ", error);
        sessionId = this->cfg.sessionId;
        while (sessionId == 0)
            sessionId = jitterRng();
        fd = dialWithRetry("initial connect");
        return;
    }
    // Self-hosted mode: compose the node's inner store from the same
    // StorageConfig — a configured path means a persistent (mmap)
    // node, otherwise the node serves from its own DRAM.
    StorageConfig inner = cfg;
    inner.kind = cfg.path.empty() ? BackendKind::Dram
                                  : BackendKind::MmapFile;
    server = std::make_unique<RemoteKvServer>(
        makeBackend(inner, slots, recordBytes, metaBytes), cfg.remote);
    fd = server->connectClient();
    try {
        handshake();
    } catch (...) {
        ::close(fd); // members are destroyed, but a raw fd is not
        throw;
    }
}

RemoteKvBackend::RemoteKvBackend(int fd, std::uint64_t slots,
                                 std::uint64_t recordBytes,
                                 const RemoteKvConfig &cfg)
    : SlotBackend(slots, recordBytes),
      cfg(cfg),
      fd(fd),
      jitterRng(entropy64())
{
    LAORAM_ASSERT(this->cfg.windowDepth >= 1,
                  "remote-KV window needs at least one RPC in flight");
    // Attach mode serves tests that control the server's lifetime:
    // the fd cannot be redialled, so the endpoint (if any) is ignored
    // and a lost connection stays fatal.
    try {
        handshake();
    } catch (...) {
        ::close(this->fd);
        throw;
    }
}

RemoteKvBackend::~RemoteKvBackend()
{
    // Best-effort drain: anything still in flight either completes or
    // the connection is already dead (in which case the futures die
    // with their broken promises — we are past caring on teardown).
    pendingWrites.clear();
    pendingRpcs.clear();
    if (fd >= 0)
        ::close(fd);
    // The self-hosted server (if any) is destroyed after the client
    // fd closes, so its service thread sees EOF and exits cleanly.
}

void
RemoteKvBackend::handshake()
{
    if (!rawHello(fd))
        connectionLost("handshake");
}

bool
RemoteKvBackend::rawHello(int helloFd)
{
    std::vector<std::uint8_t> frame;
    frame.push_back(static_cast<std::uint8_t>(RemoteOp::Hello));
    appendU64(frame, 0); // seq 0: outside the data-RPC stream
    appendU64(frame, nSlots);
    appendU64(frame, recBytes);
    appendU64(frame, sessionId);
    if (!sendFrame(helloFd, frame))
        return false;
    if (!recvFrameDeadline(helloFd, frame, cfg.responseTimeoutMs))
        return false;
    constexpr std::size_t kHelloBody = 3 * sizeof(std::uint64_t) + 2;
    if (frame.size() != 9 + kHelloBody
        || frame[0]
               != (static_cast<std::uint8_t>(RemoteOp::Hello)
                   | kResponseBit)
        || readU64(frame.data() + 1) != 0)
        return false;
    const std::uint8_t *body = frame.data() + 9;
    const std::uint64_t srvSlots = readU64(body);
    const std::uint64_t srvRec = readU64(body + 8);
    if (srvSlots != nSlots || srvRec != recBytes) {
        throw std::runtime_error(
            "remote-KV handshake: server stores " +
            std::to_string(srvSlots) + " slots of " +
            std::to_string(srvRec) + " B, client expects " +
            std::to_string(nSlots) + " slots of " +
            std::to_string(recBytes) + " B");
    }
    serverMetaCap = readU64(body + 16);
    serverPersistent = body[24] != 0;
    serverReopened = body[25] != 0;
    return true;
}

void
RemoteKvBackend::connectionLost(const char *what) const
{
    LAORAM_FATAL("remote-KV connection lost during ", what,
                 " (server died or closed the socket); the tree is "
                 "unreachable, aborting the run");
}

int
RemoteKvBackend::dialWithRetry(const char *what)
{
    // Attempt 0 is immediate (the node is usually up); each further
    // attempt waits base * 2^(attempt-1) capped at backoffMaxMs, plus
    // up to 50% jitter so shard clients do not redial in lock-step.
    for (std::uint32_t attempt = 0; attempt <= cfg.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            const int shift =
                attempt - 1 < 20 ? static_cast<int>(attempt - 1) : 20;
            std::int64_t waitMs = cfg.backoffBaseMs << shift;
            if (waitMs > cfg.backoffMaxMs || waitMs <= 0)
                waitMs = cfg.backoffMaxMs;
            if (waitMs > 1)
                waitMs += static_cast<std::int64_t>(
                    jitterRng() % static_cast<std::uint64_t>(
                        waitMs / 2 + 1));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(waitMs));
        }
        std::string error;
        const int nfd = net::dialEndpoint(remoteEp, &error);
        if (nfd < 0)
            continue; // refused/unreachable: the node may be restarting
        if (rawHello(nfd))
            return nfd;
        ::close(nfd); // half-open or hung node: try again
    }
    connectionLost(what);
}

void
RemoteKvBackend::recoverConnection(const char *what)
{
    if (!retryEnabled())
        connectionLost(what);
    warn("remote-KV connection to ", remoteEp.str(), " lost during ",
         what, "; reconnecting and replaying ", pendingRpcs.size(),
         " un-acked request(s)");
    for (;;) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
        try {
            fd = dialWithRetry(what); // fatal when retries run out
        } catch (const std::runtime_error &e) {
            // Mid-run geometry change: the node restarted over a
            // different tree — replaying into it would corrupt.
            LAORAM_FATAL("remote-KV reconnect to ", remoteEp.str(),
                         " refused: ", e.what());
        }
        // Responses are strictly ordered, so the un-acked RPCs are
        // exactly the contiguous tail of the stream: re-send them in
        // order. The node's session high-water mark discards (but
        // acks) any mutation it already applied.
        bool replayed = true;
        for (const PendingRpc &pending : pendingRpcs) {
            if (!sendFrame(fd, pending.frame)) {
                replayed = false; // died again mid-replay: redial
                break;
            }
        }
        if (replayed)
            break;
    }
    if (obs::metricsEnabled())
        nodeClientReconnectsCounter().inc();
}

std::vector<std::uint8_t> &
RemoteKvBackend::beginRequest(RemoteOp op)
{
    frameScratch.clear();
    frameScratch.push_back(static_cast<std::uint8_t>(op));
    appendU64(frameScratch, nextSeq);
    return frameScratch;
}

RemoteKvBackend::Completion
RemoteKvBackend::dispatchRequest()
{
    PendingRpc pending;
    pending.seq = nextSeq;
    pending.op = frameScratch[0];
    if (obs::tracingEnabled())
        pending.dispatchNs = obs::traceNowNs();
    if (retryEnabled())
        pending.frame = frameScratch; // kept for reconnect replay
    Completion completion = pending.promise.get_future();
    pendingRpcs.push_back(std::move(pending));
    ++nextSeq;

    // The RPC is parked *before* the send, so a send failure recovers
    // uniformly: the reconnect replay re-sends every pending frame,
    // including this one.
    if (!sendFrame(fd, frameScratch))
        recoverConnection("request send");
    return completion;
}

RemoteKvBackend::Completion
RemoteKvBackend::sendRequest(RemoteOp op,
                             const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> &frame = beginRequest(op);
    frame.insert(frame.end(), payload.begin(), payload.end());
    return dispatchRequest();
}

bool
RemoteKvBackend::recvResponseFrame(std::vector<std::uint8_t> &frame)
{
    return recvFrameDeadline(fd, frame, cfg.responseTimeoutMs);
}

void
RemoteKvBackend::harvestOne()
{
    LAORAM_ASSERT(!pendingRpcs.empty(),
                  "harvest with no RPC outstanding");
    std::vector<std::uint8_t> frame;
    for (;;) {
        // Any failure here — EOF, reset, a hung server tripping the
        // response deadline, a malformed or mis-sequenced frame from
        // a corrupted stream — means this connection is done; in
        // endpoint mode the recovery replays the window and the loop
        // keeps harvesting the replayed stream.
        if (!recvResponseFrame(frame)) {
            recoverConnection("response wait");
            continue;
        }
        if (frame.size() < 1 + sizeof(std::uint64_t)) {
            recoverConnection("response decode");
            continue;
        }
        const std::uint8_t op = frame[0];
        const std::uint64_t seq = readU64(frame.data() + 1);
        // In-order stream: every response must match the oldest
        // request.
        if (op != (pendingRpcs.front().op | kResponseBit)
            || seq != pendingRpcs.front().seq) {
            recoverConnection("response sequencing");
            continue;
        }
        break;
    }

    PendingRpc pending = std::move(pendingRpcs.front());
    pendingRpcs.pop_front();
    if (pending.dispatchNs >= 0 && obs::tracingEnabled()) {
        // Full round trip, dispatch to harvest — for an async write
        // this includes the time it sat pipelined in the window.
        obs::traceRecord(rpcSpanName(pending.op), pending.dispatchNs,
                         obs::traceNowNs() - pending.dispatchNs,
                         pending.seq);
    }
    frame.erase(frame.begin(), frame.begin() + 9);
    pending.promise.set_value(std::move(frame));
}

std::vector<std::uint8_t>
RemoteKvBackend::await(Completion &c)
{
    while (c.wait_for(std::chrono::seconds(0))
           != std::future_status::ready)
        harvestOne();
    return c.get();
}

void
RemoteKvBackend::reapCompletedWrites()
{
    while (!pendingWrites.empty()
           && pendingWrites.front().wait_for(std::chrono::seconds(0))
                  == std::future_status::ready) {
        pendingWrites.front().get(); // ack body is empty
        pendingWrites.pop_front();
    }
    if (obs::metricsEnabled()) {
        inflightWritesGauge().set(
            static_cast<std::int64_t>(pendingWrites.size()));
    }
}

void
RemoteKvBackend::doReadSlot(std::uint64_t slot, std::uint8_t *dst)
{
    doReadSlots(&slot, 1, dst);
}

void
RemoteKvBackend::doWriteSlot(std::uint64_t slot,
                             const std::uint8_t *src)
{
    doWriteSlots(&slot, 1, src);
}

void
RemoteKvBackend::doReadSlots(const std::uint64_t *slots, std::size_t n,
                             std::uint8_t *dst)
{
    std::vector<std::uint8_t> &frame = beginRequest(RemoteOp::ReadSlots);
    frame.reserve(frame.size() + (1 + n) * sizeof(std::uint64_t));
    appendU64(frame, n);
    for (std::size_t i = 0; i < n; ++i) {
        LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                      " out of range");
        appendU64(frame, slots[i]);
    }
    // The read pipelines behind any in-flight writes on the ordered
    // stream, so it observes all of them; awaiting it resolves their
    // completions along the way (harvested strictly in order).
    Completion read = dispatchRequest();
    const std::vector<std::uint8_t> body = await(read);
    if (body.size() != n * recBytes)
        connectionLost("read payload decode");
    std::memcpy(dst, body.data(), body.size());
    reapCompletedWrites();
}

void
RemoteKvBackend::doWriteSlots(const std::uint64_t *slots, std::size_t n,
                              const std::uint8_t *src)
{
    // Async write: one vectored RPC for the whole path, completion
    // parked in the bounded window. Only a full window blocks — that
    // wait is genuine backpressure from the (shaped) link and lands in
    // the caller's timed section.
    reapCompletedWrites();
    while (pendingWrites.size() >= cfg.windowDepth) {
        Completion oldest = std::move(pendingWrites.front());
        pendingWrites.pop_front();
        await(oldest);
        reapCompletedWrites();
    }

    // Serialized straight into the frame buffer: the path's records
    // are copied exactly once on their way to the socket.
    std::vector<std::uint8_t> &frame =
        beginRequest(RemoteOp::WriteSlots);
    frame.reserve(frame.size() + (1 + n) * sizeof(std::uint64_t)
                  + n * recBytes);
    appendU64(frame, n);
    for (std::size_t i = 0; i < n; ++i) {
        LAORAM_ASSERT(slots[i] < nSlots, "slot ", slots[i],
                      " out of range");
        appendU64(frame, slots[i]);
    }
    frame.insert(frame.end(), src, src + n * recBytes);
    pendingWrites.push_back(dispatchRequest());
    if (obs::metricsEnabled()) {
        inflightWritesGauge().set(
            static_cast<std::int64_t>(pendingWrites.size()));
    }
}

void
RemoteKvBackend::doFlush()
{
    // Flush is a barrier: it orders behind every outstanding write on
    // the stream, so awaiting its ack drains the whole window.
    Completion flushed =
        sendRequest(RemoteOp::Flush, std::vector<std::uint8_t>{});
    await(flushed);
    while (!pendingWrites.empty()) {
        pendingWrites.front().get();
        pendingWrites.pop_front();
    }
    if (obs::metricsEnabled())
        inflightWritesGauge().set(0);
}

std::uint64_t
RemoteKvBackend::residentBytes() const
{
    // Control-plane RPC (not an IoStats op): reports the *server*
    // node's resident bytes — the client side keeps nothing mapped,
    // which is the whole point of a remote tree.
    auto *self = const_cast<RemoteKvBackend *>(this);
    Completion stat =
        self->sendRequest(RemoteOp::Stat, std::vector<std::uint8_t>{});
    const std::vector<std::uint8_t> body = self->await(stat);
    if (body.size() != sizeof(std::uint64_t))
        connectionLost("stat decode");
    self->reapCompletedWrites();
    return readU64(body.data());
}

void
RemoteKvBackend::writeMeta(const std::uint8_t *src, std::uint64_t len)
{
    std::vector<std::uint8_t> &frame =
        beginRequest(RemoteOp::WriteMeta);
    appendU64(frame, len);
    frame.insert(frame.end(), src, src + len);
    Completion ack = dispatchRequest();
    await(ack);
    reapCompletedWrites();
}

std::uint64_t
RemoteKvBackend::readMeta(std::uint8_t *dst, std::uint64_t len) const
{
    auto *self = const_cast<RemoteKvBackend *>(this);
    appendU64(self->beginRequest(RemoteOp::ReadMeta), len);
    Completion read = self->dispatchRequest();
    const std::vector<std::uint8_t> body = self->await(read);
    if (body.size() < sizeof(std::uint64_t))
        connectionLost("meta decode");
    const std::uint64_t got = readU64(body.data());
    if (body.size() != sizeof(std::uint64_t) + got || got > len)
        connectionLost("meta decode");
    std::memcpy(dst, body.data() + 8, got);
    self->reapCompletedWrites();
    return got;
}

} // namespace laoram::storage
