#include "storage/dram_backend.hh"

#include <cstring>

namespace laoram::storage {

DramBackend::DramBackend(std::uint64_t slots, std::uint64_t recordBytes)
    : SlotBackend(slots, recordBytes), raw(slots * recordBytes, 0)
{
}

void
DramBackend::doReadSlot(std::uint64_t slot, std::uint8_t *dst)
{
    std::memcpy(dst, raw.data() + slot * recBytes, recBytes);
}

void
DramBackend::doWriteSlot(std::uint64_t slot, const std::uint8_t *src)
{
    std::memcpy(raw.data() + slot * recBytes, src, recBytes);
}

} // namespace laoram::storage
