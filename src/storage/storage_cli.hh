/**
 * @file
 * Shared CLI plumbing for backend selection: every example and bench
 * that builds an engine registers the same four --storage* options
 * and turns them into a StorageConfig with one call.
 */

#ifndef LAORAM_STORAGE_STORAGE_CLI_HH
#define LAORAM_STORAGE_STORAGE_CLI_HH

#include <memory>
#include <string>

#include "storage/slot_backend.hh"
#include "util/cli.hh"

namespace laoram::storage {

/** Parsed --storage* option handles (valid after ArgParser::parse). */
struct StorageArgs
{
    std::shared_ptr<std::string> backend;    ///< dram | mmap | remote
    std::shared_ptr<std::string> path;       ///< mmap backing file
    std::shared_ptr<bool> pathSeen;          ///< --storage-path given
    std::shared_ptr<std::string> durability; ///< buffered|async|sync
    std::shared_ptr<bool> keepExisting;      ///< reopen compatible file

    // --storage=remote link knobs (rejected on other backends; the
    // *Seen trackers make that check catch explicitly-passed default
    // values too).
    std::shared_ptr<std::uint64_t> remoteLatencyUs; ///< per-RPC latency
    std::shared_ptr<std::uint64_t> remoteMbps;      ///< link bandwidth
    std::shared_ptr<std::uint64_t> remoteWindow;    ///< async in-flight
    std::shared_ptr<bool> remoteLatencySeen;
    std::shared_ptr<bool> remoteMbpsSeen;
    std::shared_ptr<bool> remoteWindowSeen;

    // Out-of-process node (laoram_node) dial knobs.
    std::shared_ptr<std::string> remoteEndpoint; ///< host:port|unix:p
    std::shared_ptr<std::uint64_t> remoteRetries;   ///< redials/loss
    std::shared_ptr<std::uint64_t> remoteTimeoutMs; ///< response wait
    std::shared_ptr<bool> remoteEndpointSeen;
    std::shared_ptr<bool> remoteRetriesSeen;
    std::shared_ptr<bool> remoteTimeoutSeen;

    // Trusted-state checkpoint knobs (client-side sidecar file; see
    // storage::CheckpointConfig).
    std::shared_ptr<std::string> checkpointPath; ///< sidecar file
    std::shared_ptr<bool> checkpointPathSeen;
    std::shared_ptr<bool> restore; ///< restore sidecar at startup
};

/** Register --storage, --storage-path, --storage-durability,
 *  --storage-keep plus the --remote-latency-us / --remote-mbps /
 *  --remote-window link knobs on @p args. @p defaultPath seeds
 *  --storage-path. */
StorageArgs addStorageArgs(ArgParser &args,
                           const std::string &defaultPath = "");

/**
 * Resolve parsed options into @p out / @p checkpoint without exiting:
 * false (with @p error set when non-null) on an unknown backend or
 * durability name, mmap without a path, --storage-keep on a backend
 * that cannot reopen anything, a non-default --remote-* option on a
 * backend that is not remote, or a zero --remote-window. The testable
 * core of storageConfigFromArgs.
 *
 * Checkpoint rules: --restore requires --checkpoint-path (there is
 * nothing to restore from otherwise), --checkpoint-path requires a
 * persistent backend (a trusted-state snapshot is only meaningful
 * against a tree that survives the process), and --restore requires
 * --storage-keep (restoring client state over a re-initialised tree
 * would serve garbage). When @p checkpoint is null the caller does
 * not support checkpointing, and an explicitly-passed
 * --checkpoint-path / --restore is rejected instead of silently
 * ignored.
 */
bool storageConfigFromArgsChecked(const StorageArgs &sa,
                                  StorageConfig *out,
                                  CheckpointConfig *checkpoint,
                                  std::string *error = nullptr);

/** Storage-only overload: checkpoint options are rejected if given. */
bool storageConfigFromArgsChecked(const StorageArgs &sa,
                                  StorageConfig *out,
                                  std::string *error = nullptr);

/**
 * Resolve parsed options into a StorageConfig (+ CheckpointConfig
 * when @p checkpoint is non-null). Fatal (exit 1) on any
 * configuration storageConfigFromArgsChecked rejects.
 */
StorageConfig
storageConfigFromArgs(const StorageArgs &sa,
                      CheckpointConfig *checkpoint = nullptr);

/** Stable lower-case name for a durability mode ("buffered", ...). */
const char *durabilityName(Durability durability);

} // namespace laoram::storage

#endif // LAORAM_STORAGE_STORAGE_CLI_HH
