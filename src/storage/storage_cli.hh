/**
 * @file
 * Shared CLI plumbing for backend selection: every example and bench
 * that builds an engine registers the same four --storage* options
 * and turns them into a StorageConfig with one call.
 */

#ifndef LAORAM_STORAGE_STORAGE_CLI_HH
#define LAORAM_STORAGE_STORAGE_CLI_HH

#include <memory>
#include <string>

#include "storage/slot_backend.hh"
#include "util/cli.hh"

namespace laoram::storage {

/** Parsed --storage* option handles (valid after ArgParser::parse). */
struct StorageArgs
{
    std::shared_ptr<std::string> backend;    ///< dram | mmap | remote
    std::shared_ptr<std::string> path;       ///< mmap backing file
    std::shared_ptr<bool> pathSeen;          ///< --storage-path given
    std::shared_ptr<std::string> durability; ///< buffered|async|sync
    std::shared_ptr<bool> keepExisting;      ///< reopen compatible file

    // --storage=remote link knobs (rejected on other backends; the
    // *Seen trackers make that check catch explicitly-passed default
    // values too).
    std::shared_ptr<std::uint64_t> remoteLatencyUs; ///< per-RPC latency
    std::shared_ptr<std::uint64_t> remoteMbps;      ///< link bandwidth
    std::shared_ptr<std::uint64_t> remoteWindow;    ///< async in-flight
    std::shared_ptr<bool> remoteLatencySeen;
    std::shared_ptr<bool> remoteMbpsSeen;
    std::shared_ptr<bool> remoteWindowSeen;
};

/** Register --storage, --storage-path, --storage-durability,
 *  --storage-keep plus the --remote-latency-us / --remote-mbps /
 *  --remote-window link knobs on @p args. @p defaultPath seeds
 *  --storage-path. */
StorageArgs addStorageArgs(ArgParser &args,
                           const std::string &defaultPath = "");

/**
 * Resolve parsed options into @p out without exiting: false (with
 * @p error set when non-null) on an unknown backend or durability
 * name, mmap without a path, --storage-keep on a backend that cannot
 * reopen anything, a non-default --remote-* option on a backend that
 * is not remote, or a zero --remote-window. The testable core of
 * storageConfigFromArgs.
 */
bool storageConfigFromArgsChecked(const StorageArgs &sa,
                                  StorageConfig *out,
                                  std::string *error = nullptr);

/**
 * Resolve parsed options into a StorageConfig. Fatal (exit 1) on any
 * configuration storageConfigFromArgsChecked rejects.
 */
StorageConfig storageConfigFromArgs(const StorageArgs &sa);

/** Stable lower-case name for a durability mode ("buffered", ...). */
const char *durabilityName(Durability durability);

} // namespace laoram::storage

#endif // LAORAM_STORAGE_STORAGE_CLI_HH
