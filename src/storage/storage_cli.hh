/**
 * @file
 * Shared CLI plumbing for backend selection: every example and bench
 * that builds an engine registers the same four --storage* options
 * and turns them into a StorageConfig with one call.
 */

#ifndef LAORAM_STORAGE_STORAGE_CLI_HH
#define LAORAM_STORAGE_STORAGE_CLI_HH

#include <memory>
#include <string>

#include "storage/slot_backend.hh"
#include "util/cli.hh"

namespace laoram::storage {

/** Parsed --storage* option handles (valid after ArgParser::parse). */
struct StorageArgs
{
    std::shared_ptr<std::string> backend;    ///< dram | mmap
    std::shared_ptr<std::string> path;       ///< mmap backing file
    std::shared_ptr<std::string> durability; ///< buffered|async|sync
    std::shared_ptr<bool> keepExisting;      ///< reopen compatible file
};

/** Register --storage, --storage-path, --storage-durability,
 *  --storage-keep on @p args. @p defaultPath seeds --storage-path. */
StorageArgs addStorageArgs(ArgParser &args,
                           const std::string &defaultPath = "");

/**
 * Resolve parsed options into @p out without exiting: false (with
 * @p error set when non-null) on an unknown backend or durability
 * name, mmap without a path, or --storage-keep on a backend that
 * cannot reopen anything. The testable core of
 * storageConfigFromArgs.
 */
bool storageConfigFromArgsChecked(const StorageArgs &sa,
                                  StorageConfig *out,
                                  std::string *error = nullptr);

/**
 * Resolve parsed options into a StorageConfig. Fatal (exit 1) on any
 * configuration storageConfigFromArgsChecked rejects.
 */
StorageConfig storageConfigFromArgs(const StorageArgs &sa);

/** Stable lower-case name for a durability mode ("buffered", ...). */
const char *durabilityName(Durability durability);

} // namespace laoram::storage

#endif // LAORAM_STORAGE_STORAGE_CLI_HH
