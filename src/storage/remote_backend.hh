/**
 * @file
 * Remote-KV slot storage: the tree served over a network-shaped RPC
 * link instead of local memory.
 *
 * Two halves speak a small length-prefixed binary protocol over a
 * stream socket (an AF_UNIX socketpair when the server is hosted
 * in-process):
 *
 *  - RemoteKvServer — the untrusted storage node. One service thread
 *    per connection pops request frames, executes them against an
 *    *inner* SlotBackend (any existing backend: DRAM for a
 *    memory-tier KV node, mmap for a persistent one — the backends
 *    compose), applies the injectable latency/bandwidth shaper, and
 *    replies. Requests on one connection are processed strictly in
 *    order, which is the ordering contract the client's pipelining
 *    relies on.
 *
 *  - RemoteKvBackend — a *staged* SlotBackend (mappedBase() == null):
 *    ServerStorage moves whole ORAM paths through the vectored
 *    readSlots/writeSlots calls, and each such call becomes exactly
 *    ONE request frame — a path is one RPC, never one RPC per slot.
 *    Writes are asynchronous: the request is sent and a completion
 *    future is parked in a bounded in-flight window
 *    (RemoteKvConfig::windowDepth), so the serving thread keeps
 *    going while the write travels. Reads are pipelined behind any
 *    outstanding writes on the same ordered stream, so a read can
 *    never observe a stale slot. The time the client *does* block —
 *    harvesting write completions when the window is full, waiting
 *    for read payloads — lands in the IoStats ledger, which is how
 *    PipelineReport::wallIoNs comes to include genuine RPC waits.
 *
 * Wire format (all integers little-endian, like every on-disk /
 * on-wire structure in this repo):
 *
 *   frame    := u32 bodyLen, body
 *   body     := u8 opcode, u64 seq, payload...
 *   response := same framing; opcode = request opcode | 0x80, seq
 *               echoed; a response is sent for every request.
 *
 *   Hello      c->s: u64 slots, u64 recordBytes
 *                    [, u64 sessionId]   (16 B legacy / 24 B current)
 *              s->c: u64 slots, u64 recordBytes, u64 metaCapacity,
 *                    u8 persistent, u8 openedExisting
 *   ReadSlots  c->s: u64 n, u64 slot[n]
 *              s->c: u8 record[n * recordBytes]
 *   WriteSlots c->s: u64 n, u64 slot[n], u8 record[n * recordBytes]
 *              s->c: (empty ack)
 *   Flush      c->s: (empty)          s->c: (empty ack)
 *   ReadMeta   c->s: u64 len          s->c: u64 got, u8 data[got]
 *   WriteMeta  c->s: u64 len, data    s->c: (empty ack)
 *   Stat       c->s: (empty)          s->c: u64 residentBytes
 *
 * The shaper sleeps latencyNs + wireBytes / bytesPerSec per request
 * before replying, so a slow-remote regime (where the look-ahead
 * pipeline's prep threads earn their keep) reproduces deterministically
 * on any host; the IoStats *counts* are identical for any shaper
 * setting, only the measured nanoseconds change.
 *
 * Failure model: self-hosted / attached-fd clients treat a lost
 * connection (server killed mid-trace, EOF, ECONNRESET) as a clean
 * LAORAM_FATAL — their server shares the process, so a lost
 * socketpair is unrecoverable. A client dialled at an *endpoint*
 * (RemoteKvConfig::endpoint, i.e. a real out-of-process laoram_node)
 * instead reconnects with bounded exponential backoff + jitter and
 * replays its un-acked request window: responses arrive strictly in
 * request order, so the un-acked RPCs are exactly the contiguous
 * tail of the stream, and re-sending them in order preserves
 * read-your-writes. The node discards (but still acks) replayed
 * mutations at-or-below the session's applied high-water mark, so a
 * write that was applied but whose ack was lost is not applied
 * twice. Only when every retry is exhausted does the endpoint client
 * fall back to the same fatal. Construction-time problems (handshake
 * geometry mismatch) throw std::runtime_error like an incompatible
 * mmap reopen.
 */

#ifndef LAORAM_STORAGE_REMOTE_BACKEND_HH
#define LAORAM_STORAGE_REMOTE_BACKEND_HH

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/endpoint.hh"
#include "storage/slot_backend.hh"

namespace laoram::storage {

/** RPC opcodes (request values; responses are op | 0x80). */
enum class RemoteOp : std::uint8_t
{
    Hello = 1,
    ReadSlots = 2,
    WriteSlots = 3,
    Flush = 4,
    ReadMeta = 5,
    WriteMeta = 6,
    Stat = 7,
};

/**
 * In-process remote-KV storage node: serves the wire protocol above
 * over stream sockets, executing against an inner SlotBackend.
 *
 * connectClient() hands out one end of a fresh socketpair and spawns
 * a service thread for the other end, so tests and the self-hosted
 * RemoteKvBackend get a real kernel-buffered byte stream without any
 * port management. Multiple connections share the inner backend under
 * a mutex (requests across connections interleave at frame
 * granularity; within a connection they are strictly ordered).
 */
class RemoteKvServer
{
  public:
    RemoteKvServer(std::unique_ptr<SlotBackend> inner,
                   const RemoteKvConfig &shaping);
    ~RemoteKvServer();

    RemoteKvServer(const RemoteKvServer &) = delete;
    RemoteKvServer &operator=(const RemoteKvServer &) = delete;

    /**
     * Open a new connection: returns the client-side fd (caller owns
     * and closes it) and starts a service thread on the server side.
     */
    int connectClient();

    /**
     * Serve an already-connected stream socket (an accepted TCP/UDS
     * connection): takes ownership of @p fd and spawns its service
     * thread. This is how NodeListener turns accepts into
     * connections; the frame loop is identical to connectClient's.
     */
    void serveSocket(int fd);

    /**
     * Hard-stop the node: shut down every connection socket (which
     * unblocks service threads mid-recv) and join the threads. Models
     * a remote node dying mid-trace; the destructor runs the same
     * path for a clean teardown.
     */
    void shutdown();

    /**
     * Graceful stop (laoram_node's SIGTERM path): shut down only the
     * *read* side of every connection, so a request already being
     * processed still gets its response out, join the service
     * threads, then flush the inner backend so a persistent node's
     * acked writes reach media before the process exits.
     */
    void drain();

    /** The backend this node serves (server-side IoStats live here). */
    const SlotBackend &inner() const { return *store; }

  private:
    void serveConnection(int fd);

    /** Shared teardown: @p how is SHUT_RD (drain) or SHUT_RDWR. */
    void stopConnections(int how);

    /** Shaper: block this request for its modeled network time. */
    void shapeDelay(std::uint64_t wireBytes) const;

    /**
     * Replay idempotence: true when a mutating request (WriteSlots /
     * WriteMeta / Flush) at @p seq from @p sessionId is new and must
     * execute; false when it is a replayed duplicate the node already
     * applied — the caller still acks it, silently. Advances the
     * session's high-water mark when it returns true.
     */
    bool admitMutation(std::uint64_t sessionId, std::uint64_t seq);

    std::unique_ptr<SlotBackend> store;
    RemoteKvConfig shaping;

    std::mutex storeMu; ///< serializes inner-backend access

    /**
     * Per-session applied high-water marks (guarded by sessionMu).
     * Lost on node restart — harmless, because a restarted node sees
     * the client replay a contiguous ordered tail whose re-execution
     * is naturally idempotent (same slots, same bytes).
     */
    std::mutex sessionMu;
    std::unordered_map<std::uint64_t, std::uint64_t> sessionHighWater;

    std::mutex connMu; ///< guards conns (connect vs shutdown)
    struct Connection
    {
        int fd = -1;
        std::thread thread;
    };
    std::vector<Connection> conns;
    bool stopped = false;
};

/**
 * Client-side staged SlotBackend speaking the remote-KV protocol.
 * One vectored readSlots/writeSlots call = one RPC; writes pipeline
 * asynchronously through a bounded in-flight window of completion
 * futures. Single-threaded per instance, like every SlotBackend.
 */
class RemoteKvBackend final : public SlotBackend
{
  public:
    /**
     * Self-hosted convenience used by makeBackend(--storage=remote):
     * builds the inner backend described by @p cfg (mmap when
     * cfg.path is set, DRAM otherwise), hosts an in-process
     * RemoteKvServer over it, connects, and handshakes. When
     * cfg.remote.endpoint is set no server is hosted: the client
     * dials the out-of-process laoram_node there instead (with the
     * same retry/backoff policy as a mid-run reconnect), and
     * @p metaBytes is ignored — the node owns its meta sizing.
     */
    RemoteKvBackend(const StorageConfig &cfg, std::uint64_t slots,
                    std::uint64_t recordBytes, std::uint64_t metaBytes);

    /**
     * Attach to an already-running server over @p fd (takes ownership
     * of the fd). Used by tests that control the server's lifetime —
     * e.g. to kill it mid-trace.
     *
     * @throws std::runtime_error when the handshake reports a
     *         different geometry than (@p slots, @p recordBytes).
     */
    RemoteKvBackend(int fd, std::uint64_t slots,
                    std::uint64_t recordBytes,
                    const RemoteKvConfig &cfg);

    ~RemoteKvBackend() override;

    std::string name() const override { return "remote"; }

    std::uint64_t residentBytes() const override;
    bool persistent() const override { return serverPersistent; }
    bool openedExisting() const override { return serverReopened; }

    std::uint64_t metaCapacity() const override { return serverMetaCap; }
    void writeMeta(const std::uint8_t *src, std::uint64_t len) override;
    std::uint64_t readMeta(std::uint8_t *dst,
                           std::uint64_t len) const override;

    /** In-flight write RPCs right now (bounded by windowDepth). */
    std::size_t inFlightWrites() const { return pendingWrites.size(); }

    /** The in-process server when self-hosted (null when attached). */
    const RemoteKvServer *selfHostedServer() const { return server.get(); }

  protected:
    void doReadSlot(std::uint64_t slot, std::uint8_t *dst) override;
    void doWriteSlot(std::uint64_t slot,
                     const std::uint8_t *src) override;
    void doReadSlots(const std::uint64_t *slots, std::size_t n,
                     std::uint8_t *dst) override;
    void doWriteSlots(const std::uint64_t *slots, std::size_t n,
                      const std::uint8_t *src) override;
    void doFlush() override;

  private:
    using Completion = std::future<std::vector<std::uint8_t>>;

    void handshake();

    /**
     * One raw Hello exchange on @p helloFd, outside the pendingRpcs
     * machinery (seq 0, never used by data RPCs) so a recovery
     * re-handshake cannot disturb the in-flight window. Caches the
     * server facts on success; false on a connection-level failure
     * (caller retries or fatals); throws std::runtime_error on a
     * geometry mismatch.
     */
    bool rawHello(int helloFd);

    /**
     * Start building a request frame in frameScratch (opcode + seq
     * header written); the caller appends the payload bytes directly
     * — no intermediate buffer — and then dispatchRequest() sends.
     */
    std::vector<std::uint8_t> &beginRequest(RemoteOp op);

    /**
     * Send the frame built since beginRequest(); returns the
     * completion future its response will resolve. Never blocks on
     * the server (only on socket-buffer backpressure).
     */
    Completion dispatchRequest();

    /** Convenience for small control RPCs with a prebuilt payload. */
    Completion sendRequest(RemoteOp op,
                           const std::vector<std::uint8_t> &payload);

    /**
     * Receive exactly one response frame; resolve the oldest pending.
     * A dead or hung (responseTimeoutMs exceeded) connection runs the
     * recovery path first, then keeps harvesting the replayed stream.
     */
    void harvestOne();

    /** Drive harvestOne() until @p c is resolved; returns its body. */
    std::vector<std::uint8_t> await(Completion &c);

    /** Drop already-resolved write completions off the window head. */
    void reapCompletedWrites();

    /** Fatal: the connection died mid-run. Never returns. */
    [[noreturn]] void connectionLost(const char *what) const;

    /** True when a lost connection may be redialled (endpoint mode). */
    bool retryEnabled() const { return remoteEp.valid(); }

    /**
     * The connection died (or timed out) during @p what: redial the
     * endpoint with bounded backoff + jitter, re-handshake, and
     * replay every pending request frame in order. Fatal (via
     * connectionLost) when not in endpoint mode or when maxRetries
     * dials all fail.
     */
    void recoverConnection(const char *what);

    /**
     * One backoff-paced dial + raw re-handshake attempt loop; returns
     * the connected, handshaken fd or fatals. Shared by construction
     * and recovery (construction tolerates a node that is still
     * starting up the same way recovery tolerates one restarting).
     */
    int dialWithRetry(const char *what);

    /**
     * Receive one response frame, honouring cfg.responseTimeoutMs;
     * false on EOF, error, or deadline (caller recovers or fatals).
     */
    bool recvResponseFrame(std::vector<std::uint8_t> &frame);

    std::unique_ptr<RemoteKvServer> server; ///< self-hosted only
    RemoteKvConfig cfg;
    net::Endpoint remoteEp; ///< parsed cfg.endpoint (invalid = none)
    int fd = -1;

    std::uint64_t nextSeq = 1;
    std::uint64_t sessionId = 0; ///< replay identity sent in Hello

    /** Jitter source for backoff pacing (timing only, never data). */
    std::mt19937_64 jitterRng;

    /** Responses arrive strictly in request order. */
    struct PendingRpc
    {
        std::uint64_t seq = 0;
        std::uint8_t op = 0;
        std::promise<std::vector<std::uint8_t>> promise;
        /** Tracer timestamp at dispatch (-1 = tracing was off). */
        std::int64_t dispatchNs = -1;
        /**
         * Full request frame, kept for replay (endpoint mode only —
         * a self-hosted client cannot reconnect, so it skips the
         * copy).
         */
        std::vector<std::uint8_t> frame;
    };
    mutable std::deque<PendingRpc> pendingRpcs;

    /** Outstanding async write/flush completions, oldest first. */
    mutable std::deque<Completion> pendingWrites;

    // Handshake-cached server facts.
    bool serverPersistent = false;
    bool serverReopened = false;
    std::uint64_t serverMetaCap = 0;

    mutable std::vector<std::uint8_t> frameScratch;
};

} // namespace laoram::storage

#endif // LAORAM_STORAGE_REMOTE_BACKEND_HH
