#include "storage/mmap_backend.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hh"

#if defined(_WIN32)
#error "MmapFileBackend requires a POSIX platform"
#endif

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace laoram::storage {

namespace {

constexpr std::uint64_t kMagic = 0x54'4C'53'52'4F'41'4CULL; // "LAORSLT"
constexpr std::uint32_t kVersion = 1;

/** On-disk header, held in the file's first page. */
struct FileHeader
{
    std::uint64_t magic;
    std::uint32_t version;
    std::uint32_t reserved;
    std::uint64_t slots;
    std::uint64_t recordBytes;
    std::uint64_t metaBytes;
};

std::uint64_t
roundUp(std::uint64_t v, std::uint64_t to)
{
    return (v + to - 1) / to * to;
}

} // namespace

MmapFileBackend::MmapFileBackend(const StorageConfig &cfg,
                                 std::uint64_t slots,
                                 std::uint64_t recordBytes,
                                 std::uint64_t metaBytesWanted)
    : SlotBackend(slots, recordBytes),
      filePath(cfg.path),
      durability(cfg.durability),
      metaBytes(metaBytesWanted)
{
    const long page = sysconf(_SC_PAGESIZE);
    pageBytes = page > 0 ? static_cast<std::uint64_t>(page) : 4096;

    const std::uint64_t headerRegion = roundUp(sizeof(FileHeader),
                                               pageBytes);
    const std::uint64_t metaRegion = roundUp(metaBytes, pageBytes);
    totalBytes = headerRegion + metaRegion + nSlots * recBytes;

    fd = ::open(filePath.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0)
        LAORAM_FATAL("mmap backend: cannot open '", filePath,
                     "': ", std::strerror(errno));

    struct stat st{};
    if (::fstat(fd, &st) != 0)
        LAORAM_FATAL("mmap backend: fstat('", filePath,
                     "') failed: ", std::strerror(errno));

    if (cfg.keepExisting
        && static_cast<std::uint64_t>(st.st_size) == totalBytes) {
        // Attach to the existing tree; header verified after mapping.
        reopened = true;
    } else if (cfg.keepExisting && st.st_size != 0) {
        ::close(fd);
        throw std::runtime_error(
            "mmap backend: '" + filePath + "' exists with size "
            + std::to_string(st.st_size) + " but this tree needs "
            + std::to_string(totalBytes)
            + " bytes; refusing to clobber an incompatible store");
    } else {
        // Fresh store: size the file (sparse; pages materialise on
        // first write) and stamp the header below.
        if (::ftruncate(fd, 0) != 0
            || ::ftruncate(fd, static_cast<off_t>(totalBytes)) != 0)
            LAORAM_FATAL("mmap backend: ftruncate('", filePath, "', ",
                         totalBytes,
                         ") failed: ", std::strerror(errno));
    }

    void *m = ::mmap(nullptr, totalBytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
    if (m == MAP_FAILED)
        LAORAM_FATAL("mmap backend: mmap of '", filePath, "' (",
                     totalBytes, " B) failed: ", std::strerror(errno));
    map = static_cast<std::uint8_t *>(m);
    metaBase = map + headerRegion;
    slotBase = metaBase + metaRegion;

    auto *hdr = reinterpret_cast<FileHeader *>(map);
    if (reopened) {
        if (hdr->magic != kMagic || hdr->version != kVersion
            || hdr->slots != nSlots || hdr->recordBytes != recBytes
            || hdr->metaBytes != metaBytes) {
            ::munmap(map, totalBytes);
            ::close(fd);
            throw std::runtime_error(
                "mmap backend: '" + filePath
                + "' header does not describe this tree (slots/record"
                  "/meta geometry mismatch); refusing to reopen");
        }
    } else {
        hdr->magic = kMagic;
        hdr->version = kVersion;
        hdr->reserved = 0;
        hdr->slots = nSlots;
        hdr->recordBytes = recBytes;
        hdr->metaBytes = metaBytes;
    }

    if (cfg.adviseRandom)
        ::madvise(slotBase, nSlots * recBytes, MADV_RANDOM);
}

MmapFileBackend::~MmapFileBackend()
{
    if (map) {
        // Buffered durability still makes the close orderly: dirty
        // pages are scheduled for write-back before the mapping goes
        // away, so a clean reopen reads what was written.
        ::msync(map, totalBytes,
                durability == Durability::Sync ? MS_SYNC : MS_ASYNC);
        ::munmap(map, totalBytes);
    }
    if (fd >= 0)
        ::close(fd);
}

void
MmapFileBackend::doReadSlot(std::uint64_t slot, std::uint8_t *dst)
{
    std::memcpy(dst, slotBase + slot * recBytes, recBytes);
}

void
MmapFileBackend::doWriteSlot(std::uint64_t slot, const std::uint8_t *src)
{
    std::memcpy(slotBase + slot * recBytes, src, recBytes);
}

void
MmapFileBackend::doFlush()
{
    switch (durability) {
      case Durability::Buffered:
        break;
      case Durability::Async:
        ::msync(map, totalBytes, MS_ASYNC);
        break;
      case Durability::Sync:
        ::msync(map, totalBytes, MS_SYNC);
        break;
    }
}

void
MmapFileBackend::willNeed(const std::uint64_t *slots, std::size_t n)
{
    // Coalesce the slot list into maximal contiguous byte ranges and
    // hand each to the kernel as one page-aligned MADV_WILLNEED —
    // the vectored read that follows then faults on pages already in
    // flight instead of demand-paging one bucket at a time. Path slot
    // lists arrive bucket-contiguous, so this degenerates to one
    // hint per tree node run.
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i + 1;
        while (j < n && slots[j] == slots[j - 1] + 1)
            ++j;
        const std::uint64_t begin = slots[i] * recBytes;
        const std::uint64_t end = (slots[j - 1] + 1) * recBytes;
        const std::uint64_t pageBegin = begin / pageBytes * pageBytes;
        const std::uint64_t pageEnd = roundUp(end, pageBytes);
        ::madvise(slotBase + pageBegin, pageEnd - pageBegin,
                  MADV_WILLNEED);
        i = j;
    }
}

std::uint64_t
MmapFileBackend::residentBytes() const
{
    // mincore() the mapping chunk by chunk: one vec byte per page,
    // bounded scratch even for paper-scale trees.
    constexpr std::size_t kChunkPages = 1 << 16; // 256 MiB per chunk
    unsigned char vec[kChunkPages];
    std::uint64_t resident = 0;
    const std::uint64_t pages = (totalBytes + pageBytes - 1)
        / pageBytes;
    for (std::uint64_t p = 0; p < pages; p += kChunkPages) {
        const std::size_t count = static_cast<std::size_t>(
            std::min<std::uint64_t>(kChunkPages, pages - p));
        if (::mincore(map + p * pageBytes, count * pageBytes, vec)
            != 0)
            return 0; // unsupported: report nothing rather than lie
        for (std::size_t i = 0; i < count; ++i)
            if (vec[i] & 1)
                resident += pageBytes;
    }
    return resident;
}

void
MmapFileBackend::dropPageCache()
{
    // Cold-cache benching: push dirty pages to media, drop this
    // mapping's PTE references, THEN evict the now-unreferenced clean
    // pages from the page cache (fadvise skips pages a mapping still
    // holds, so the order matters). Subsequent slot reads fault back
    // in from the file — a genuinely cold run.
    ::msync(map, totalBytes, MS_SYNC);
    ::madvise(map, totalBytes, MADV_DONTNEED);
#if defined(POSIX_FADV_DONTNEED)
    ::posix_fadvise(fd, 0, static_cast<off_t>(totalBytes),
                    POSIX_FADV_DONTNEED);
#endif
}

void
MmapFileBackend::writeMeta(const std::uint8_t *src, std::uint64_t len)
{
    LAORAM_ASSERT(len <= metaBytes, "meta blob of ", len,
                  " B exceeds reserved capacity ", metaBytes);
    if (len > 0)
        std::memcpy(metaBase, src, len);
}

std::uint64_t
MmapFileBackend::readMeta(std::uint8_t *dst, std::uint64_t len) const
{
    const std::uint64_t n = std::min(len, metaBytes);
    if (n > 0)
        std::memcpy(dst, metaBase, n);
    return n;
}

} // namespace laoram::storage
