#include "storage/storage_cli.hh"

#include "util/logging.hh"

namespace laoram::storage {

StorageArgs
addStorageArgs(ArgParser &args, const std::string &defaultPath)
{
    StorageArgs sa;
    sa.backend = args.addString(
        "storage", "tree storage backend: dram | mmap", "dram");
    sa.path = args.addString(
        "storage-path", "backing file for --storage=mmap", defaultPath);
    sa.durability = args.addString(
        "storage-durability",
        "mmap flush policy: buffered | async | sync", "buffered");
    sa.keepExisting = args.addFlag(
        "storage-keep",
        "reopen an existing compatible tree file instead of "
        "re-initialising it");
    return sa;
}

StorageConfig
storageConfigFromArgs(const StorageArgs &sa)
{
    StorageConfig cfg;
    if (*sa.backend == "dram") {
        cfg.kind = BackendKind::Dram;
    } else if (*sa.backend == "mmap") {
        cfg.kind = BackendKind::MmapFile;
        if (sa.path->empty())
            LAORAM_FATAL("--storage=mmap requires --storage-path");
    } else {
        LAORAM_FATAL("unknown --storage backend '", *sa.backend,
                     "' (expected dram or mmap)");
    }
    cfg.path = *sa.path;

    if (*sa.durability == "buffered")
        cfg.durability = Durability::Buffered;
    else if (*sa.durability == "async")
        cfg.durability = Durability::Async;
    else if (*sa.durability == "sync")
        cfg.durability = Durability::Sync;
    else
        LAORAM_FATAL("unknown --storage-durability '", *sa.durability,
                     "' (expected buffered, async or sync)");

    cfg.keepExisting = *sa.keepExisting;
    return cfg;
}

} // namespace laoram::storage
