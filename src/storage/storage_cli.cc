#include "storage/storage_cli.hh"

#include <string>
#include <utility>

#include "util/logging.hh"

namespace laoram::storage {

StorageArgs
addStorageArgs(ArgParser &args, const std::string &defaultPath)
{
    StorageArgs sa;
    sa.backend = args.addString(
        "storage", "tree storage backend: dram | mmap | remote",
        "dram");
    sa.path = args.addString(
        "storage-path",
        "backing file for --storage=mmap (and, when given explicitly, "
        "the persistent tree of a --storage=remote node)",
        defaultPath);
    sa.pathSeen = args.seenTracker("storage-path");
    sa.durability = args.addString(
        "storage-durability",
        "mmap flush policy: buffered | async | sync", "buffered");
    sa.keepExisting = args.addFlag(
        "storage-keep",
        "reopen an existing compatible tree file instead of "
        "re-initialising it");
    sa.remoteLatencyUs = args.addUint(
        "remote-latency-us",
        "--storage=remote: shaped per-RPC latency in microseconds",
        0);
    sa.remoteMbps = args.addUint(
        "remote-mbps",
        "--storage=remote: shaped link bandwidth in MB/s (0 = "
        "unlimited)",
        0);
    sa.remoteWindow = args.addUint(
        "remote-window",
        "--storage=remote: max async write RPCs in flight", 4);
    sa.remoteLatencySeen = args.seenTracker("remote-latency-us");
    sa.remoteMbpsSeen = args.seenTracker("remote-mbps");
    sa.remoteWindowSeen = args.seenTracker("remote-window");
    sa.remoteEndpoint = args.addString(
        "remote-endpoint",
        "--storage=remote: dial an out-of-process laoram_node at "
        "host:port or unix:PATH instead of self-hosting the node "
        "in-process",
        "");
    sa.remoteRetries = args.addUint(
        "remote-retries",
        "--remote-endpoint: reconnect attempts per lost connection, "
        "with bounded exponential backoff (0 = fail fast)",
        8);
    sa.remoteTimeoutMs = args.addUint(
        "remote-timeout-ms",
        "--remote-endpoint: deadline on each response wait before "
        "the connection counts as lost (0 = wait forever)",
        0);
    sa.remoteEndpointSeen = args.seenTracker("remote-endpoint");
    sa.remoteRetriesSeen = args.seenTracker("remote-retries");
    sa.remoteTimeoutSeen = args.seenTracker("remote-timeout-ms");
    sa.checkpointPath = args.addString(
        "checkpoint-path",
        "client-side sidecar file for trusted-state snapshots "
        "(position map, stash, RNG streams); requires a persistent "
        "backend",
        "");
    sa.checkpointPathSeen = args.seenTracker("checkpoint-path");
    sa.restore = args.addFlag(
        "restore",
        "restore trusted client state from --checkpoint-path at "
        "startup (requires --storage-keep over the matching tree)");
    return sa;
}

namespace {

void
setError(std::string *error, std::string message)
{
    if (error != nullptr)
        *error = std::move(message);
}

} // namespace

bool
storageConfigFromArgsChecked(const StorageArgs &sa, StorageConfig *out,
                             std::string *error)
{
    return storageConfigFromArgsChecked(sa, out, nullptr, error);
}

bool
storageConfigFromArgsChecked(const StorageArgs &sa, StorageConfig *out,
                             CheckpointConfig *checkpoint,
                             std::string *error)
{
    StorageConfig cfg;
    if (*sa.backend == "dram") {
        cfg.kind = BackendKind::Dram;
    } else if (*sa.backend == "mmap") {
        cfg.kind = BackendKind::MmapFile;
        if (sa.path->empty()) {
            setError(error, "--storage=mmap requires --storage-path");
            return false;
        }
    } else if (*sa.backend == "remote") {
        cfg.kind = BackendKind::Remote;
    } else {
        setError(error, "unknown --storage backend '" + *sa.backend
                            + "' (expected dram, mmap or remote)");
        return false;
    }
    // A remote node persists (mmap-inner) only when the user *asked*
    // for a path: the convenience default that seeds --storage-path
    // for mmap must not silently turn the documented DRAM-backed node
    // into one that writes a tree file.
    if (cfg.kind == BackendKind::Remote && !*sa.pathSeen)
        cfg.path.clear();
    else
        cfg.path = *sa.path;

    if (cfg.kind == BackendKind::Remote) {
        if (*sa.remoteWindow == 0) {
            setError(error, "--remote-window must be at least 1 "
                            "(one RPC in flight)");
            return false;
        }
        cfg.remote.latencyNs =
            static_cast<std::int64_t>(*sa.remoteLatencyUs) * 1000;
        cfg.remote.bytesPerSec = *sa.remoteMbps * 1000 * 1000;
        cfg.remote.windowDepth =
            static_cast<std::size_t>(*sa.remoteWindow);
        if (!sa.remoteEndpoint->empty()) {
            // Endpoint mode: the laoram_node at that address owns the
            // tree (and its file); a client-side path would silently
            // do nothing.
            if (!cfg.path.empty()) {
                setError(error,
                         "--remote-endpoint and --storage-path are "
                         "mutually exclusive: the node at the "
                         "endpoint owns the tree file (pass the path "
                         "to laoram_node instead)");
                return false;
            }
            if (sa.remoteEndpoint->rfind("unix:", 0) != 0
                && sa.remoteEndpoint->rfind(':')
                       == std::string::npos) {
                setError(error, "--remote-endpoint '"
                                    + *sa.remoteEndpoint
                                    + "' is not host:port or "
                                      "unix:PATH");
                return false;
            }
            cfg.remote.endpoint = *sa.remoteEndpoint;
            cfg.remote.maxRetries =
                static_cast<std::uint32_t>(*sa.remoteRetries);
            cfg.remote.responseTimeoutMs =
                static_cast<std::int64_t>(*sa.remoteTimeoutMs);
        } else if (*sa.remoteRetriesSeen || *sa.remoteTimeoutSeen) {
            // Retry/timeout only exist on the reconnecting dial path;
            // a self-hosted in-process node can never reconnect.
            setError(error,
                     "--remote-retries/--remote-timeout-ms require "
                     "--remote-endpoint (a self-hosted node cannot "
                     "be redialled)");
            return false;
        }
    } else if (*sa.remoteLatencySeen || *sa.remoteMbpsSeen
               || *sa.remoteWindowSeen || *sa.remoteEndpointSeen
               || *sa.remoteRetriesSeen || *sa.remoteTimeoutSeen) {
        // A shaped link on a local backend would silently measure
        // nothing: the --remote-* knobs only exist on the RPC path,
        // so reject them loudly instead of ignoring them. Presence-
        // tracked, so even an explicitly-passed default value trips
        // this.
        setError(error, "--remote-latency-us/--remote-mbps/"
                        "--remote-window/--remote-endpoint/"
                        "--remote-retries/--remote-timeout-ms "
                        "require --storage=remote");
        return false;
    }

    if (*sa.durability == "buffered")
        cfg.durability = Durability::Buffered;
    else if (*sa.durability == "async")
        cfg.durability = Durability::Async;
    else if (*sa.durability == "sync")
        cfg.durability = Durability::Sync;
    else {
        setError(error, "unknown --storage-durability '"
                            + *sa.durability
                            + "' (expected buffered, async or sync)");
        return false;
    }

    cfg.keepExisting = *sa.keepExisting;
    if (cfg.keepExisting
        && (cfg.kind == BackendKind::Dram
            || (cfg.kind == BackendKind::Remote && cfg.path.empty()
                && cfg.remote.endpoint.empty()))) {
        // A DRAM tree (local, or behind a pathless remote node) dies
        // with the process: "keep" it and the run would silently
        // serve a fresh store while the user believes state survived.
        // Reject loudly instead.
        setError(error, "--storage-keep requires a persistent backend "
                        "(--storage=mmap, or --storage=remote with "
                        "--storage-path or --remote-endpoint)");
        return false;
    }

    // ---- Trusted-state checkpoint knobs. ----
    const bool checkpointSeen = *sa.checkpointPathSeen || *sa.restore;
    if (checkpoint == nullptr && checkpointSeen) {
        // The caller never consumes a CheckpointConfig; accepting the
        // options would silently drop the user's durability request.
        setError(error, "this tool does not support "
                        "--checkpoint-path/--restore");
        return false;
    }
    CheckpointConfig ckpt;
    ckpt.path = *sa.checkpointPath;
    ckpt.restore = *sa.restore;
    if (ckpt.restore && ckpt.path.empty()) {
        setError(error,
                 "--restore requires --checkpoint-path (there is no "
                 "snapshot to restore from)");
        return false;
    }
    // An endpoint node counts as potentially persistent: whether its
    // tree actually survives is the node's configuration, which the
    // handshake reports at connect time.
    const bool persistent =
        cfg.kind == BackendKind::MmapFile
        || (cfg.kind == BackendKind::Remote
            && (!cfg.path.empty() || !cfg.remote.endpoint.empty()));
    if (!ckpt.path.empty() && !persistent) {
        // A snapshot is only meaningful against the tree it was taken
        // with; a DRAM tree dies with the process.
        setError(error, "--checkpoint-path requires a persistent "
                        "backend (--storage=mmap, or --storage=remote "
                        "with --storage-path)");
        return false;
    }
    if (ckpt.restore && !cfg.keepExisting) {
        setError(error,
                 "--restore requires --storage-keep: restored client "
                 "state is only valid over the reopened tree the "
                 "snapshot was taken with");
        return false;
    }

    if (out != nullptr)
        *out = std::move(cfg);
    if (checkpoint != nullptr)
        *checkpoint = std::move(ckpt);
    return true;
}

StorageConfig
storageConfigFromArgs(const StorageArgs &sa, CheckpointConfig *checkpoint)
{
    StorageConfig cfg;
    std::string error;
    if (!storageConfigFromArgsChecked(sa, &cfg, checkpoint, &error))
        LAORAM_FATAL(error);
    return cfg;
}

const char *
durabilityName(Durability durability)
{
    switch (durability) {
    case Durability::Buffered:
        return "buffered";
    case Durability::Async:
        return "async";
    case Durability::Sync:
        return "sync";
    }
    return "unknown";
}

} // namespace laoram::storage
