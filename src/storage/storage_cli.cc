#include "storage/storage_cli.hh"

#include <string>
#include <utility>

#include "util/logging.hh"

namespace laoram::storage {

StorageArgs
addStorageArgs(ArgParser &args, const std::string &defaultPath)
{
    StorageArgs sa;
    sa.backend = args.addString(
        "storage", "tree storage backend: dram | mmap", "dram");
    sa.path = args.addString(
        "storage-path", "backing file for --storage=mmap", defaultPath);
    sa.durability = args.addString(
        "storage-durability",
        "mmap flush policy: buffered | async | sync", "buffered");
    sa.keepExisting = args.addFlag(
        "storage-keep",
        "reopen an existing compatible tree file instead of "
        "re-initialising it");
    return sa;
}

namespace {

void
setError(std::string *error, std::string message)
{
    if (error != nullptr)
        *error = std::move(message);
}

} // namespace

bool
storageConfigFromArgsChecked(const StorageArgs &sa, StorageConfig *out,
                             std::string *error)
{
    StorageConfig cfg;
    if (*sa.backend == "dram") {
        cfg.kind = BackendKind::Dram;
    } else if (*sa.backend == "mmap") {
        cfg.kind = BackendKind::MmapFile;
        if (sa.path->empty()) {
            setError(error, "--storage=mmap requires --storage-path");
            return false;
        }
    } else {
        setError(error, "unknown --storage backend '" + *sa.backend
                            + "' (expected dram or mmap)");
        return false;
    }
    cfg.path = *sa.path;

    if (*sa.durability == "buffered")
        cfg.durability = Durability::Buffered;
    else if (*sa.durability == "async")
        cfg.durability = Durability::Async;
    else if (*sa.durability == "sync")
        cfg.durability = Durability::Sync;
    else {
        setError(error, "unknown --storage-durability '"
                            + *sa.durability
                            + "' (expected buffered, async or sync)");
        return false;
    }

    cfg.keepExisting = *sa.keepExisting;
    if (cfg.keepExisting && cfg.kind == BackendKind::Dram) {
        // A DRAM tree dies with the process: "keep" it and the run
        // would silently serve a fresh store while the user believes
        // state survived. Reject loudly instead.
        setError(error, "--storage-keep requires a persistent backend "
                        "(--storage=mmap with --storage-path)");
        return false;
    }

    if (out != nullptr)
        *out = std::move(cfg);
    return true;
}

StorageConfig
storageConfigFromArgs(const StorageArgs &sa)
{
    StorageConfig cfg;
    std::string error;
    if (!storageConfigFromArgsChecked(sa, &cfg, &error))
        LAORAM_FATAL(error);
    return cfg;
}

const char *
durabilityName(Durability durability)
{
    switch (durability) {
    case Durability::Buffered:
        return "buffered";
    case Durability::Async:
        return "async";
    case Durability::Sync:
        return "sync";
    }
    return "unknown";
}

} // namespace laoram::storage
