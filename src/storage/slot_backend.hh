/**
 * @file
 * The storage-backend subsystem: where the ORAM tree's slot records
 * physically live.
 *
 * ServerStorage owns serialization and encryption-at-rest; a
 * SlotBackend owns the *bytes*. Backends store fixed-size records
 * (recordBytes each) addressed by slot index and come in two flavours:
 *
 *  - addressable: the whole slot array is mapped into the process
 *    (DramBackend, MmapFileBackend). mappedBase() returns the base
 *    pointer and ServerStorage encodes/decodes records in place —
 *    zero staging copies, exactly the pre-backend hot path. For a
 *    file mapping the page faults taken during that decode ARE the
 *    I/O wait, and they land inside the timed window.
 *  - staged: mappedBase() returns null and ServerStorage moves bytes
 *    through the vectored readSlots/writeSlots calls (one call per
 *    ORAM path), which is the natural shape for a remote KV or block
 *    device backend to coalesce or batch.
 *
 * Every backend keeps an IoStats ledger (ops, slots, bytes, measured
 * nanoseconds) that the pipeline reports as the serving thread's
 * genuine I/O stall component.
 */

#ifndef LAORAM_STORAGE_SLOT_BACKEND_HH
#define LAORAM_STORAGE_SLOT_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace laoram::storage {

/** Per-backend-kind live metric handles (see slot_backend.cc). */
struct BackendObs;

/** Monotonic I/O ledger of one backend (value type; freely copyable). */
struct IoStats
{
    std::uint64_t readOps = 0;   ///< read calls issued (vectored = 1)
    std::uint64_t writeOps = 0;  ///< write calls issued (vectored = 1)
    std::uint64_t slotsRead = 0;
    std::uint64_t slotsWritten = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t flushes = 0;
    std::int64_t readNs = 0;  ///< measured wall time inside reads
    std::int64_t writeNs = 0; ///< measured wall time inside writes
    std::int64_t flushNs = 0; ///< measured wall time inside flush()

    /** Total measured backend time (read + write + flush). */
    std::int64_t totalNs() const { return readNs + writeNs + flushNs; }

    /** Element-wise difference (this - start), for interval metrics. */
    IoStats since(const IoStats &start) const;

    /** Element-wise accumulation (shard aggregation). */
    IoStats &operator+=(const IoStats &other);
};

/** How flush() pushes a persistent backend's dirty pages to media. */
enum class Durability
{
    Buffered, ///< page cache only; the OS writes back eventually
    Async,    ///< msync(MS_ASYNC): schedule write-back, don't wait
    Sync,     ///< msync(MS_SYNC): block until bytes are on media
};

/** Which SlotBackend implementation a ServerStorage should build. */
enum class BackendKind
{
    Dram,     ///< in-process heap array (default; not persistent)
    MmapFile, ///< file-backed mmap tree; survives process restart
    Remote,   ///< remote-KV node over batched/async RPC (staged)
};

/** Stable lower-case name for CLI/report output. */
const char *backendKindName(BackendKind kind);

/**
 * Remote-KV link knobs (BackendKind::Remote): the client's async
 * pipelining window and the server-side network shaper that makes
 * slow-remote regimes reproducible on any host. The shaper changes
 * only measured nanoseconds — IoStats *counts* are identical for any
 * setting.
 */
struct RemoteKvConfig
{
    /** Modeled one-way service latency added to every RPC (0 = off). */
    std::int64_t latencyNs = 0;

    /**
     * Modeled link bandwidth: each RPC additionally waits
     * wireBytes / bytesPerSec (0 = unlimited).
     */
    std::uint64_t bytesPerSec = 0;

    /**
     * Maximum write/flush RPCs in flight before the client blocks
     * harvesting completions. Reads always pipeline behind the
     * outstanding writes on the ordered stream, so this bounds client
     * memory and socket backlog, not correctness.
     */
    std::size_t windowDepth = 4;

    /**
     * Dial target of an out-of-process laoram_node ("host:port" or
     * "unix:PATH"; see net/endpoint.hh). Empty = self-hosted
     * in-process node, the PR-5 behaviour. Setting an endpoint also
     * arms the reconnect path: a lost connection is retried with
     * bounded backoff and the un-acked request window replayed,
     * instead of the self-hosted mode's immediate fatal.
     */
    std::string endpoint;

    /**
     * Reconnect attempts per connection loss before giving up fatally
     * (endpoint mode only; 0 = fail fast like self-hosted mode).
     * Every attempt waits backoffBaseMs * 2^attempt, capped at
     * backoffMaxMs, plus up to 50% random jitter so a fleet of shard
     * clients does not redial a restarted node in lock-step.
     */
    std::uint32_t maxRetries = 8;
    std::int64_t backoffBaseMs = 10;
    std::int64_t backoffMaxMs = 2000;

    /**
     * Deadline on each response wait (0 = wait forever). A server
     * that hangs without closing the socket — network black hole,
     * stalled node — converts into the reconnect path instead of
     * blocking the serving thread indefinitely.
     */
    std::int64_t responseTimeoutMs = 0;

    /**
     * Replay-session identity sent in the Hello. The node keeps a
     * per-session high-water mark of applied mutating seqs, so a
     * reconnected client replaying its window cannot double-apply a
     * write the node already acked. 0 = derive a random id per
     * backend instance (the only sensible default; collisions across
     * 64 bits are ignorable).
     */
    std::uint64_t sessionId = 0;
};

/** Backend-construction knobs threaded through EngineConfig. */
struct StorageConfig
{
    BackendKind kind = BackendKind::Dram;

    /** Backing file for MmapFile (required; created if missing). */
    std::string path;

    /** flush() behaviour of a persistent backend. */
    Durability durability = Durability::Buffered;

    /**
     * Hint the kernel that slot access is random (madvise MADV_RANDOM)
     * — true by default because an ORAM's physical access pattern is
     * uniformly random by construction, so read-ahead only pollutes
     * the page cache.
     */
    bool adviseRandom = true;

    /**
     * Reopen @p path if it already holds a compatible tree instead of
     * re-initialising: the storage skips its dummy-slot init and the
     * previous run's records (and persisted encryption epochs) are
     * served as-is.
     */
    bool keepExisting = false;

    /**
     * Remote-KV link parameters (BackendKind::Remote only). The
     * in-process node composes over the other knobs above: with
     * `path` set the node persists its tree via MmapFileBackend
     * (durability/keepExisting apply server-side), otherwise it
     * serves from DRAM.
     */
    RemoteKvConfig remote{};
};

/**
 * Trusted client-state snapshot knobs, threaded through EngineConfig
 * next to StorageConfig. The snapshot (position map, stash, RNG
 * streams, meter) is a *client-side sidecar file*: it contains the
 * position map — exactly the mapping ORAM exists to hide — so it is
 * never written into the untrusted backend's meta-blob region, and a
 * deployment must protect it like any other trusted-client memory.
 */
struct CheckpointConfig
{
    /** Sidecar snapshot file ("" = checkpointing disabled). */
    std::string path;

    /**
     * Restore trusted client state from @p path at construction.
     * Requires a persistent backend reopened with keepExisting: the
     * snapshot is only meaningful against the tree it was taken
     * with.
     */
    bool restore = false;
};

/**
 * Abstract fixed-record slot store. All methods are single-threaded
 * per instance (each ORAM engine owns exactly one storage).
 */
class SlotBackend
{
  public:
    SlotBackend(std::uint64_t slots, std::uint64_t recordBytes);
    virtual ~SlotBackend() = default;

    SlotBackend(const SlotBackend &) = delete;
    SlotBackend &operator=(const SlotBackend &) = delete;

    virtual std::string name() const = 0;

    std::uint64_t slots() const { return nSlots; }
    std::uint64_t recordBytes() const { return recBytes; }

    // ---- Staged I/O (timed + counted; used when mappedBase() is
    // null, and by conformance tests to exercise any backend). ----

    /** Copy one record out of / into the store. */
    void readSlot(std::uint64_t slot, std::uint8_t *dst);
    void writeSlot(std::uint64_t slot, const std::uint8_t *src);

    /**
     * Vectored path operations: @p dst / @p src hold n records
     * back-to-back, record i belonging to slots[i]. One call covers
     * one whole ORAM path (or path union), so a backend can coalesce
     * adjacent slots, prefetch, or issue one real I/O per path.
     */
    void readSlots(const std::uint64_t *slots, std::size_t n,
                   std::uint8_t *dst);
    void writeSlots(const std::uint64_t *slots, std::size_t n,
                    const std::uint8_t *src);

    /** Apply the configured durability policy (no-op for DRAM). */
    void flush();

    // ---- Addressable fast path. ----

    /**
     * Base pointer of the mapped slot array (slot s's record lives at
     * mappedBase() + s * recordBytes()), or null for staged backends.
     */
    virtual std::uint8_t *mappedBase() { return nullptr; }
    const std::uint8_t *
    mappedBase() const
    {
        return const_cast<SlotBackend *>(this)->mappedBase();
    }

    /**
     * Prefetch hint issued before a vectored read of @p n slots
     * (MADV_WILLNEED over the covered ranges for a file mapping).
     */
    virtual void
    willNeed(const std::uint64_t *slots, std::size_t n)
    {
        (void)slots;
        (void)n;
    }

    /**
     * Accounting entry points for the mapped fast path: ServerStorage
     * decodes/encodes records directly in mapped memory and reports
     * the op here so IoStats stays complete for every backend.
     */
    void noteMappedRead(std::uint64_t slotCount, std::int64_t ns);
    void noteMappedWrite(std::uint64_t slotCount, std::int64_t ns);

    // ---- Introspection / persistence. ----

    /** Bytes of this store currently resident in DRAM. */
    virtual std::uint64_t residentBytes() const = 0;

    /** True when the slot data outlives the process (file-backed). */
    virtual bool persistent() const { return false; }

    /**
     * True when construction attached to an existing compatible store
     * instead of creating a fresh one (the owner must then skip its
     * dummy initialisation and restore persisted metadata).
     */
    virtual bool openedExisting() const { return false; }

    /** Drop clean pages from the page cache (cold-cache benching). */
    virtual void dropPageCache() {}

    /**
     * Small client-metadata blob persisted next to the slot data
     * (ServerStorage stores its encryption epoch table here so an
     * encrypted tree decrypts after reopen). Non-persistent backends
     * expose zero capacity.
     */
    virtual std::uint64_t metaCapacity() const { return 0; }
    virtual void
    writeMeta(const std::uint8_t *src, std::uint64_t len)
    {
        (void)src;
        (void)len;
    }
    virtual std::uint64_t
    readMeta(std::uint8_t *dst, std::uint64_t len) const
    {
        (void)dst;
        (void)len;
        return 0;
    }

    const IoStats &ioStats() const { return stats; }

  protected:
    /** Single-record transfer; @p slot is already range-checked. */
    virtual void doReadSlot(std::uint64_t slot, std::uint8_t *dst) = 0;
    virtual void doWriteSlot(std::uint64_t slot,
                             const std::uint8_t *src) = 0;

    /** Vectored transfers; default loops the single-slot ops. */
    virtual void doReadSlots(const std::uint64_t *slots, std::size_t n,
                             std::uint8_t *dst);
    virtual void doWriteSlots(const std::uint64_t *slots, std::size_t n,
                              const std::uint8_t *src);

    virtual void doFlush() {}

    std::uint64_t nSlots;
    std::uint64_t recBytes;
    IoStats stats;

  private:
    /**
     * Live metric handles for this backend's kind, bound lazily on
     * the first enabled update — name() is virtual, so binding in
     * the base constructor would dispatch to the wrong class.
     */
    BackendObs &boundObs();

    BackendObs *obs_ = nullptr; ///< points into a process-wide cache
};

/**
 * Build the backend described by @p cfg for a tree of @p slots
 * records of @p recordBytes each, reserving @p metaBytes of persisted
 * metadata capacity (persistent backends only).
 *
 * Fatal on an impossible configuration (MmapFile without a path);
 * throws std::runtime_error when a keepExisting reopen finds an
 * incompatible file.
 */
std::unique_ptr<SlotBackend> makeBackend(const StorageConfig &cfg,
                                         std::uint64_t slots,
                                         std::uint64_t recordBytes,
                                         std::uint64_t metaBytes);

} // namespace laoram::storage

#endif // LAORAM_STORAGE_SLOT_BACKEND_HH
