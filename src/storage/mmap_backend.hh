/**
 * @file
 * MmapFileBackend — a persistent, file-backed slot store.
 *
 * The tree lives in one flat file mapped MAP_SHARED:
 *
 *   [ header page ][ meta region ][ slot region ]
 *
 * The header records the geometry (slots, recordBytes, metaBytes) so
 * a keepExisting reopen can verify it is attaching to a compatible
 * tree; the meta region persists the owner's small metadata blob
 * (ServerStorage stores its encryption epoch table there); the slot
 * region is the record array.
 *
 * The mapping is addressable (mappedBase()), so ServerStorage runs
 * the same zero-copy encode/decode path as DRAM — the difference is
 * that page faults now pull bytes from the file, and those faults
 * happen inside the timed I/O windows, turning the serving thread's
 * reported stalls into genuine I/O waits. Durability is a flush()
 * policy (nothing / msync MS_ASYNC / msync MS_SYNC); MADV_RANDOM is
 * applied by default because ORAM slot traffic is uniformly random
 * by construction.
 */

#ifndef LAORAM_STORAGE_MMAP_BACKEND_HH
#define LAORAM_STORAGE_MMAP_BACKEND_HH

#include "storage/slot_backend.hh"

namespace laoram::storage {

/** File-backed mmap slot store; survives process restart. */
class MmapFileBackend final : public SlotBackend
{
  public:
    /**
     * Create (or, with cfg.keepExisting, reopen) cfg.path for a tree
     * of @p slots records of @p recordBytes, reserving @p metaBytes
     * of persisted metadata capacity.
     *
     * @throws std::runtime_error when keepExisting finds an existing
     *         file whose header does not match this geometry (never
     *         silently clobbers a tree).
     */
    MmapFileBackend(const StorageConfig &cfg, std::uint64_t slots,
                    std::uint64_t recordBytes, std::uint64_t metaBytes);
    ~MmapFileBackend() override;

    std::string name() const override { return "mmap"; }

    std::uint8_t *mappedBase() override { return slotBase; }

    void willNeed(const std::uint64_t *slots, std::size_t n) override;

    std::uint64_t residentBytes() const override;
    bool persistent() const override { return true; }
    bool openedExisting() const override { return reopened; }
    void dropPageCache() override;

    std::uint64_t metaCapacity() const override { return metaBytes; }
    void writeMeta(const std::uint8_t *src, std::uint64_t len) override;
    std::uint64_t readMeta(std::uint8_t *dst,
                           std::uint64_t len) const override;

    const std::string &path() const { return filePath; }

    /** Total file size (header + meta + slots), for reports. */
    std::uint64_t fileBytes() const { return totalBytes; }

  protected:
    void doReadSlot(std::uint64_t slot, std::uint8_t *dst) override;
    void doWriteSlot(std::uint64_t slot,
                     const std::uint8_t *src) override;
    void doFlush() override;

  private:
    std::string filePath;
    Durability durability;
    int fd = -1;
    std::uint8_t *map = nullptr;   ///< whole-file mapping
    std::uint8_t *metaBase = nullptr;
    std::uint8_t *slotBase = nullptr;
    std::uint64_t metaBytes = 0;   ///< caller-visible meta capacity
    std::uint64_t totalBytes = 0;  ///< mapped length
    std::uint64_t pageBytes = 4096;
    bool reopened = false;
};

} // namespace laoram::storage

#endif // LAORAM_STORAGE_MMAP_BACKEND_HH
