/**
 * @file
 * Analytic latency/bandwidth model of the LAORAM server path.
 *
 * The paper's measured access time covers: the client sending a path id
 * to the server, the server streaming every bucket on that path out of
 * DDR4, the transfer back over the host link (PCIe) into the trainer
 * GPU's stash, and client-side metadata work (position-map update,
 * stash bookkeeping) — and the same in reverse for the write-back
 * (§VIII-B). We model each leg with a fixed latency plus a
 * bytes/bandwidth term. Absolute numbers are approximations of the
 * paper's testbed; every reported result is a *ratio* between engines
 * run under the identical model, which is what the paper reports too.
 */

#ifndef LAORAM_MEM_COST_MODEL_HH
#define LAORAM_MEM_COST_MODEL_HH

#include <cstdint>

namespace laoram::mem {

/** Tunable latency/bandwidth parameters (defaults ≈ DDR4 + PCIe 3.0). */
struct CostModelParams
{
    double dramLatencyNs = 60.0;      ///< per server request
    double dramBandwidthGBps = 19.2;  ///< DDR4-2400, one channel
    double linkLatencyNs = 1200.0;    ///< client<->server round trip
    double linkBandwidthGBps = 12.0;  ///< effective PCIe 3.0 x16
    double clientPerBlockNs = 8.0;    ///< stash/posmap work per block
};

/**
 * Converts ORAM traffic events into simulated nanoseconds.
 *
 * All engines (PathORAM, PrORAM, RingORAM, LAORAM) charge their server
 * traffic through one of these, so engine comparisons are apples to
 * apples.
 */
class CostModel
{
  public:
    explicit CostModel(const CostModelParams &params = {});

    /**
     * Cost of reading one path (or a RingORAM slot set) of @p bytes
     * spread over @p blocks blocks.
     */
    double pathReadNs(std::uint64_t bytes, std::uint64_t blocks) const;

    /** Cost of writing a path back. Symmetric with reads on DDR4. */
    double pathWriteNs(std::uint64_t bytes, std::uint64_t blocks) const;

    /**
     * A dummy (background-eviction) access is a full read plus write of
     * one random path.
     */
    double dummyAccessNs(std::uint64_t bytes, std::uint64_t blocks) const;

    const CostModelParams &params() const { return p; }

  private:
    double transferNs(std::uint64_t bytes) const;

    CostModelParams p;
};

} // namespace laoram::mem

#endif // LAORAM_MEM_COST_MODEL_HH
