#include "mem/sim_clock.hh"

#include <cmath>

#include "util/logging.hh"

namespace laoram::mem {

void
SimClock::advanceNs(double ns)
{
    LAORAM_ASSERT(ns >= 0.0, "cannot advance clock backwards: ", ns);
    ticks += static_cast<std::uint64_t>(std::llround(ns * 1e3));
}

} // namespace laoram::mem
