#include "mem/cost_model.hh"

#include "util/logging.hh"

namespace laoram::mem {

CostModel::CostModel(const CostModelParams &params) : p(params)
{
    LAORAM_ASSERT(p.dramBandwidthGBps > 0.0, "DRAM bandwidth must be > 0");
    LAORAM_ASSERT(p.linkBandwidthGBps > 0.0, "link bandwidth must be > 0");
}

double
CostModel::transferNs(std::uint64_t bytes) const
{
    const double b = static_cast<double>(bytes);
    // GB/s == bytes/ns, so the division below is already in ns.
    return b / p.dramBandwidthGBps + b / p.linkBandwidthGBps;
}

double
CostModel::pathReadNs(std::uint64_t bytes, std::uint64_t blocks) const
{
    return p.dramLatencyNs + p.linkLatencyNs + transferNs(bytes)
        + p.clientPerBlockNs * static_cast<double>(blocks);
}

double
CostModel::pathWriteNs(std::uint64_t bytes, std::uint64_t blocks) const
{
    // Write-back overlaps no client round trip (the path id is already
    // known server-side), so it pays DRAM latency + transfer only.
    return p.dramLatencyNs + transferNs(bytes)
        + p.clientPerBlockNs * static_cast<double>(blocks);
}

double
CostModel::dummyAccessNs(std::uint64_t bytes, std::uint64_t blocks) const
{
    return pathReadNs(bytes, blocks) + pathWriteNs(bytes, blocks);
}

} // namespace laoram::mem
