#include "mem/traffic_meter.hh"

#include <ostream>

namespace laoram::mem {

MeterObs &
meterObs()
{
    auto &reg = obs::MetricsRegistry::instance();
    static MeterObs m{
        reg.counter("oram.logical_accesses",
                    "application block requests"),
        reg.counter("oram.path_reads", "real path fetches"),
        reg.counter("oram.path_writes", "path write-backs"),
        reg.counter("oram.dummy_reads",
                    "background-eviction accesses"),
        reg.counter("oram.bytes_read", "server bytes read"),
        reg.counter("oram.bytes_written", "server bytes written"),
        reg.counter("oram.stash_hits", "requests served from stash"),
        reg.counter("oram.reshuffles", "RingORAM bucket reshuffles"),
        reg.gauge("oram.stash_peak",
                  "stash high-water mark over all engines"),
    };
    return m;
}

double
TrafficCounters::dummyReadsPerAccess() const
{
    if (logicalAccesses == 0)
        return 0.0;
    return static_cast<double>(dummyReads)
        / static_cast<double>(logicalAccesses);
}

double
TrafficCounters::pathReadsPerAccess() const
{
    if (logicalAccesses == 0)
        return 0.0;
    return static_cast<double>(pathReads)
        / static_cast<double>(logicalAccesses);
}

TrafficCounters
TrafficCounters::since(const TrafficCounters &start) const
{
    TrafficCounters d;
    d.logicalAccesses = logicalAccesses - start.logicalAccesses;
    d.pathReads = pathReads - start.pathReads;
    d.pathWrites = pathWrites - start.pathWrites;
    d.dummyReads = dummyReads - start.dummyReads;
    d.blocksRead = blocksRead - start.blocksRead;
    d.blocksWritten = blocksWritten - start.blocksWritten;
    d.bytesRead = bytesRead - start.bytesRead;
    d.bytesWritten = bytesWritten - start.bytesWritten;
    d.stashPeak = stashPeak; // high-water mark is not interval-additive
    d.stashHits = stashHits - start.stashHits;
    d.reshuffles = reshuffles - start.reshuffles;
    return d;
}

TrafficCounters &
TrafficCounters::operator+=(const TrafficCounters &other)
{
    logicalAccesses += other.logicalAccesses;
    pathReads += other.pathReads;
    pathWrites += other.pathWrites;
    dummyReads += other.dummyReads;
    blocksRead += other.blocksRead;
    blocksWritten += other.blocksWritten;
    bytesRead += other.bytesRead;
    bytesWritten += other.bytesWritten;
    stashPeak += other.stashPeak;
    stashHits += other.stashHits;
    reshuffles += other.reshuffles;
    return *this;
}

TrafficMeter::TrafficMeter(const CostModel &model) : model(model) {}

void
TrafficMeter::recordPathRead(std::uint64_t bytes, std::uint64_t blocks)
{
    ++c.pathReads;
    c.blocksRead += blocks;
    c.bytesRead += bytes;
    clk.advanceNs(model.pathReadNs(bytes, blocks));
    if (obs::metricsEnabled()) {
        MeterObs &m = meterObs();
        m.pathReads.inc();
        m.bytesRead.add(bytes);
    }
}

void
TrafficMeter::recordPathWrite(std::uint64_t bytes, std::uint64_t blocks)
{
    ++c.pathWrites;
    c.blocksWritten += blocks;
    c.bytesWritten += bytes;
    clk.advanceNs(model.pathWriteNs(bytes, blocks));
    if (obs::metricsEnabled()) {
        MeterObs &m = meterObs();
        m.pathWrites.inc();
        m.bytesWritten.add(bytes);
    }
}

void
TrafficMeter::recordBatchedPathReads(std::uint64_t paths,
                                     std::uint64_t bytes,
                                     std::uint64_t blocks)
{
    c.pathReads += paths;
    c.blocksRead += blocks;
    c.bytesRead += bytes;
    clk.advanceNs(model.pathReadNs(bytes, blocks));
    if (obs::metricsEnabled()) {
        MeterObs &m = meterObs();
        m.pathReads.add(paths);
        m.bytesRead.add(bytes);
    }
}

void
TrafficMeter::recordBatchedPathWrites(std::uint64_t paths,
                                      std::uint64_t bytes,
                                      std::uint64_t blocks)
{
    c.pathWrites += paths;
    c.blocksWritten += blocks;
    c.bytesWritten += bytes;
    clk.advanceNs(model.pathWriteNs(bytes, blocks));
    if (obs::metricsEnabled()) {
        MeterObs &m = meterObs();
        m.pathWrites.add(paths);
        m.bytesWritten.add(bytes);
    }
}

void
TrafficMeter::recordDummyAccess(std::uint64_t bytes, std::uint64_t blocks)
{
    ++c.dummyReads;
    c.blocksRead += blocks;
    c.bytesRead += bytes;
    c.blocksWritten += blocks;
    c.bytesWritten += bytes;
    clk.advanceNs(model.dummyAccessNs(bytes, blocks));
    if (obs::metricsEnabled()) {
        MeterObs &m = meterObs();
        m.dummyReads.inc();
        m.bytesRead.add(bytes);
        m.bytesWritten.add(bytes);
    }
}

void
TrafficMeter::recordReshuffle(std::uint64_t bytesRead,
                              std::uint64_t blocksRead,
                              std::uint64_t bytesWritten,
                              std::uint64_t blocksWritten)
{
    ++c.reshuffles;
    c.blocksRead += blocksRead;
    c.bytesRead += bytesRead;
    c.blocksWritten += blocksWritten;
    c.bytesWritten += bytesWritten;
    clk.advanceNs(model.pathReadNs(bytesRead, blocksRead)
                  + model.pathWriteNs(bytesWritten, blocksWritten));
    if (obs::metricsEnabled()) {
        MeterObs &m = meterObs();
        m.reshuffles.inc();
        m.bytesRead.add(bytesRead);
        m.bytesWritten.add(bytesWritten);
    }
}

void
TrafficMeter::observeStashSize(std::uint64_t blocks)
{
    if (blocks > c.stashPeak)
        c.stashPeak = blocks;
    if (obs::metricsEnabled()) {
        meterObs().stashPeak.setMax(
            static_cast<std::int64_t>(blocks));
    }
}

void
TrafficMeter::reset()
{
    c = TrafficCounters{};
    clk.reset();
}

void
TrafficMeter::restoreState(const TrafficCounters &counters,
                           std::uint64_t clockPs)
{
    c = counters;
    clk.reset();
    clk.advancePs(clockPs);
}

void
TrafficMeter::registerStats(StatRegistry &registry,
                            const std::string &prefix) const
{
    auto formula = [&registry, this, &prefix](
                       const char *name, const char *desc,
                       auto getter) {
        registry.formula(prefix + name, desc,
                         [this, getter] { return getter(c); });
    };
    formula("logicalAccesses", "application block requests",
            [](const TrafficCounters &x) {
                return static_cast<double>(x.logicalAccesses);
            });
    formula("pathReads", "real path fetches",
            [](const TrafficCounters &x) {
                return static_cast<double>(x.pathReads);
            });
    formula("pathWrites", "path write-backs",
            [](const TrafficCounters &x) {
                return static_cast<double>(x.pathWrites);
            });
    formula("dummyReads", "background-eviction accesses",
            [](const TrafficCounters &x) {
                return static_cast<double>(x.dummyReads);
            });
    formula("bytesMoved", "total server bytes read+written",
            [](const TrafficCounters &x) {
                return static_cast<double>(x.totalBytes());
            });
    formula("stashPeak", "stash high-water mark",
            [](const TrafficCounters &x) {
                return static_cast<double>(x.stashPeak);
            });
    formula("dummyReadsPerAccess", "Table II metric",
            [](const TrafficCounters &x) {
                return x.dummyReadsPerAccess();
            });
    formula("pathReadsPerAccess", "look-ahead coalescing metric",
            [](const TrafficCounters &x) {
                return x.pathReadsPerAccess();
            });
    registry.formula(prefix + "simMs", "simulated milliseconds",
                     [this] { return clk.milliseconds(); });
}

void
TrafficMeter::printSummary(std::ostream &os, const char *label) const
{
    os << label << ": accesses=" << c.logicalAccesses
       << " pathReads=" << c.pathReads
       << " pathWrites=" << c.pathWrites
       << " dummyReads=" << c.dummyReads
       << " MBmoved=" << static_cast<double>(c.totalBytes()) / 1.0e6
       << " stashPeak=" << c.stashPeak
       << " simMs=" << clk.milliseconds() << "\n";
}

} // namespace laoram::mem
