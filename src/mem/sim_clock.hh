/**
 * @file
 * Simulated time base.
 *
 * The reproduction replaces the paper's wall-clock measurements on a
 * Xeon + RTX 1080 Ti testbed with deterministic simulated time: engines
 * advance a SimClock by cost-model nanoseconds for every server access.
 * Integer picoseconds are used internally so accumulation is exact and
 * runs are bit-reproducible.
 */

#ifndef LAORAM_MEM_SIM_CLOCK_HH
#define LAORAM_MEM_SIM_CLOCK_HH

#include <cstdint>

namespace laoram::mem {

/** Monotonic simulated clock with picosecond resolution. */
class SimClock
{
  public:
    /** Advance by @p ns nanoseconds (fractional ns are kept exactly). */
    void advanceNs(double ns);

    /** Advance by an exact picosecond count. */
    void advancePs(std::uint64_t ps) { ticks += ps; }

    std::uint64_t picoseconds() const { return ticks; }
    double nanoseconds() const { return static_cast<double>(ticks) / 1e3; }
    double microseconds() const { return static_cast<double>(ticks) / 1e6; }
    double milliseconds() const { return static_cast<double>(ticks) / 1e9; }
    double seconds() const { return static_cast<double>(ticks) / 1e12; }

    void reset() { ticks = 0; }

  private:
    std::uint64_t ticks = 0; ///< picoseconds
};

} // namespace laoram::mem

#endif // LAORAM_MEM_SIM_CLOCK_HH
