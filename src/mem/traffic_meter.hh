/**
 * @file
 * Traffic accounting shared by every ORAM engine.
 *
 * Each engine owns a TrafficMeter and reports every server interaction
 * through it; the meter feeds both the cost model (simulated time) and
 * the paper's traffic metrics (Fig. 9 bandwidth reduction, Table II
 * dummy reads per access, Fig. 8 stash growth).
 */

#ifndef LAORAM_MEM_TRAFFIC_METER_HH
#define LAORAM_MEM_TRAFFIC_METER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "mem/cost_model.hh"
#include "mem/sim_clock.hh"
#include "obs/metrics.hh"
#include "util/stats.hh"

namespace laoram::mem {

/**
 * Live mirror of the traffic counters, shared by every meter in the
 * process (shard engines register the same oram.* names), so the
 * metrics sampler sees process-wide ORAM traffic mid-run.
 */
struct MeterObs
{
    obs::Counter &logicalAccesses;
    obs::Counter &pathReads;
    obs::Counter &pathWrites;
    obs::Counter &dummyReads;
    obs::Counter &bytesRead;
    obs::Counter &bytesWritten;
    obs::Counter &stashHits;
    obs::Counter &reshuffles;
    obs::Gauge &stashPeak; ///< high-water mark across all stashes
};

/** The process-wide handle set (registered on first use). */
MeterObs &meterObs();

/** Snapshot of all traffic counters (value-type; freely copyable). */
struct TrafficCounters
{
    std::uint64_t logicalAccesses = 0; ///< application block requests
    std::uint64_t pathReads = 0;       ///< real path fetches
    std::uint64_t pathWrites = 0;      ///< path write-backs
    std::uint64_t dummyReads = 0;      ///< background-eviction accesses
    std::uint64_t blocksRead = 0;      ///< physical block slots read
    std::uint64_t blocksWritten = 0;   ///< physical block slots written
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t stashPeak = 0;       ///< max blocks resident in stash
    std::uint64_t stashHits = 0;       ///< requests served from stash
    std::uint64_t reshuffles = 0;      ///< RingORAM bucket reshuffles

    std::uint64_t totalBytes() const { return bytesRead + bytesWritten; }

    double dummyReadsPerAccess() const;
    double pathReadsPerAccess() const;

    /** Element-wise difference (this - start), for interval metrics. */
    TrafficCounters since(const TrafficCounters &start) const;

    /**
     * Element-wise accumulation (shard aggregation). stashPeak sums
     * too: concurrent shard stashes are resident simultaneously, so
     * the summed peaks bound total client stash memory.
     */
    TrafficCounters &operator+=(const TrafficCounters &other);
};

/**
 * Live meter: counters + simulated clock + cost model.
 *
 * Engines call the record*() methods; harnesses read counters() and
 * elapsed time.
 */
class TrafficMeter
{
  public:
    explicit TrafficMeter(const CostModel &model);

    void
    recordLogicalAccess()
    {
        ++c.logicalAccesses;
        if (obs::metricsEnabled())
            meterObs().logicalAccesses.inc();
    }

    /** Credit @p n logical accesses at once (superblock bins). */
    void
    recordLogicalAccesses(std::uint64_t n)
    {
        c.logicalAccesses += n;
        if (obs::metricsEnabled())
            meterObs().logicalAccesses.add(n);
    }

    void
    recordStashHit()
    {
        ++c.stashHits;
        if (obs::metricsEnabled())
            meterObs().stashHits.inc();
    }

    /** A real path read of @p blocks slots totalling @p bytes. */
    void recordPathRead(std::uint64_t bytes, std::uint64_t blocks);
    /** A path write-back. */
    void recordPathWrite(std::uint64_t bytes, std::uint64_t blocks);

    /**
     * A batched read of @p paths paths whose node-union totalled
     * @p blocks slots / @p bytes (shared prefixes fetched once). The
     * burst pays one request latency.
     */
    void recordBatchedPathReads(std::uint64_t paths, std::uint64_t bytes,
                                std::uint64_t blocks);
    /** Batched write-back of a path union. */
    void recordBatchedPathWrites(std::uint64_t paths,
                                 std::uint64_t bytes,
                                 std::uint64_t blocks);
    /** A dummy background-eviction access (full read + write). */
    void recordDummyAccess(std::uint64_t bytes, std::uint64_t blocks);
    /**
     * A RingORAM bucket reshuffle: @p blocksRead valid blocks read and
     * @p blocksWritten slots rewritten, charged without touching the
     * path-read/path-write counters.
     */
    void recordReshuffle(std::uint64_t bytesRead, std::uint64_t blocksRead,
                         std::uint64_t bytesWritten,
                         std::uint64_t blocksWritten);
    /** Track the stash high-water mark. */
    void observeStashSize(std::uint64_t blocks);

    const TrafficCounters &counters() const { return c; }
    const SimClock &clock() const { return clk; }
    const CostModel &costModel() const { return model; }

    void reset();

    /**
     * Checkpoint support: overwrite all counters and rewind the
     * simulated clock to @p clockPs picoseconds, so a restored
     * engine's meter continues exactly where the snapshot left off.
     */
    void restoreState(const TrafficCounters &counters,
                      std::uint64_t clockPs);

    /** Human-readable one-block summary. */
    void printSummary(std::ostream &os, const char *label) const;

    /**
     * Publish this meter into a StatRegistry under @p prefix (e.g.
     * "laoram."): counters are exported as formulas evaluated at dump
     * time, so one registration stays live for the whole run.
     */
    void registerStats(StatRegistry &registry,
                       const std::string &prefix) const;

  private:
    CostModel model;
    SimClock clk;
    TrafficCounters c;
};

} // namespace laoram::mem

#endif // LAORAM_MEM_TRAFFIC_METER_HH
