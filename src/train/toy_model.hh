/**
 * @file
 * A toy DLRM-style interaction model: each training sample selects t
 * embedding rows; the model scores sigmoid(w · mean(rows)) against a
 * binary label with logistic loss. Small enough to run inside the
 * examples, real enough that losses demonstrably decrease when the
 * oblivious access path round-trips rows correctly.
 */

#ifndef LAORAM_TRAIN_TOY_MODEL_HH
#define LAORAM_TRAIN_TOY_MODEL_HH

#include <cstdint>
#include "util/span.hh"
#include <vector>

namespace laoram::train {

/** One training sample: embedding rows used + binary label. */
struct Sample
{
    std::vector<std::uint64_t> rows;
    float label = 0.0f; ///< 0 or 1
};

/** Gradients produced by one training step. */
struct StepResult
{
    float loss = 0.0f;
    float prediction = 0.0f;
    /** dL/d(row) for each sample row, parallel to Sample::rows. */
    std::vector<std::vector<float>> rowGrads;
};

/** Logistic-regression-over-pooled-embeddings toy model. */
class ToyInteractionModel
{
  public:
    ToyInteractionModel(std::uint64_t dim, std::uint64_t seed);

    std::uint64_t dim() const { return nDim; }

    /**
     * Forward + backward for one sample.
     *
     * @param rowValues the embedding rows gathered for the sample
     *                  (each of length dim()), in sample-row order
     * @param label     binary target
     */
    StepResult step(const std::vector<std::vector<float>> &rowValues,
                    float label);

    /** Apply the step's top-weight gradient (done by the caller for
     *  embedding rows; the dense weight lives here). */
    void applyTopGradient(float lr);

    Span<const float> weights() const { return {w.data(),
                                                     w.size()}; }

  private:
    std::uint64_t nDim;
    std::vector<float> w;
    std::vector<float> lastTopGrad;
};

} // namespace laoram::train

#endif // LAORAM_TRAIN_TOY_MODEL_HH
