/**
 * @file
 * A minimal embedding table: dense float rows with byte-level
 * (de)serialisation so rows can live inside ORAM block payloads.
 *
 * The paper's system trains DLRM/XLM-R embedding rows on the GPU
 * while the rows themselves are stored obliviously; this substrate
 * provides real rows + gradients so examples exercise the full loop
 * rather than faking it.
 */

#ifndef LAORAM_TRAIN_EMBEDDING_TABLE_HH
#define LAORAM_TRAIN_EMBEDDING_TABLE_HH

#include <cstdint>
#include "util/span.hh"
#include <vector>

namespace laoram::train {

/** Dense table of float embedding rows. */
class EmbeddingTable
{
  public:
    /**
     * @param rows embedding entries
     * @param dim  floats per entry (128 B row == dim 32)
     * @param seed deterministic init seed (uniform in ±1/sqrt(dim))
     */
    EmbeddingTable(std::uint64_t rows, std::uint64_t dim,
                   std::uint64_t seed);

    std::uint64_t rows() const { return nRows; }
    std::uint64_t dim() const { return nDim; }
    std::uint64_t rowBytes() const { return nDim * sizeof(float); }

    Span<float> row(std::uint64_t r);
    Span<const float> row(std::uint64_t r) const;

    /** Copy row @p r into a byte buffer (an ORAM payload). */
    void serializeRow(std::uint64_t r, std::vector<std::uint8_t> &out)
        const;

    /** Overwrite row @p r from a byte buffer. */
    void deserializeRow(std::uint64_t r,
                        const std::vector<std::uint8_t> &in);

    /** In-place SGD step on row @p r: w -= lr * grad. */
    void applyGradient(std::uint64_t r, Span<const float> grad,
                       float lr);

    /** Squared L2 norm of row @p r (convergence diagnostics). */
    double rowNormSq(std::uint64_t r) const;

  private:
    std::uint64_t nRows;
    std::uint64_t nDim;
    std::vector<float> data;
};

} // namespace laoram::train

#endif // LAORAM_TRAIN_EMBEDDING_TABLE_HH
