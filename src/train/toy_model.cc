#include "train/toy_model.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::train {

ToyInteractionModel::ToyInteractionModel(std::uint64_t dim,
                                         std::uint64_t seed)
    : nDim(dim), w(dim), lastTopGrad(dim, 0.0f)
{
    LAORAM_ASSERT(dim > 0, "model dim must be positive");
    Rng rng(seed);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dim));
    for (auto &v : w)
        v = scale * static_cast<float>(2.0 * rng.nextDouble() - 1.0);
}

StepResult
ToyInteractionModel::step(
    const std::vector<std::vector<float>> &rowValues, float label)
{
    LAORAM_ASSERT(!rowValues.empty(), "sample selects no rows");
    StepResult res;

    // Mean-pool the sample's rows.
    std::vector<float> pooled(nDim, 0.0f);
    for (const auto &row : rowValues) {
        LAORAM_ASSERT(row.size() == nDim, "row dim mismatch");
        for (std::uint64_t i = 0; i < nDim; ++i)
            pooled[i] += row[i];
    }
    const float inv = 1.0f / static_cast<float>(rowValues.size());
    for (auto &v : pooled)
        v *= inv;

    // Score + logistic loss.
    float z = 0.0f;
    for (std::uint64_t i = 0; i < nDim; ++i)
        z += w[i] * pooled[i];
    const float p = 1.0f / (1.0f + std::exp(-z));
    res.prediction = p;
    const float eps = 1e-7f;
    res.loss = label > 0.5f
                   ? -std::log(p + eps)
                   : -std::log(1.0f - p + eps);

    // Backward: dL/dz = p - y.
    const float dz = p - label;
    for (std::uint64_t i = 0; i < nDim; ++i)
        lastTopGrad[i] = dz * pooled[i];

    // dL/d(row) = dz * w / t, identical for every pooled row.
    std::vector<float> rg(nDim);
    for (std::uint64_t i = 0; i < nDim; ++i)
        rg[i] = dz * w[i] * inv;
    res.rowGrads.assign(rowValues.size(), rg);
    return res;
}

void
ToyInteractionModel::applyTopGradient(float lr)
{
    for (std::uint64_t i = 0; i < nDim; ++i)
        w[i] -= lr * lastTopGrad[i];
}

} // namespace laoram::train
