#include "train/sgd.hh"

#include "util/logging.hh"

namespace laoram::train {

SgdOptimizer::SgdOptimizer(float lr, float momentum)
    : lr(lr), momentum(momentum)
{
    LAORAM_ASSERT(lr > 0.0f, "learning rate must be positive");
    LAORAM_ASSERT(momentum >= 0.0f && momentum < 1.0f,
                  "momentum must be in [0,1)");
}

void
SgdOptimizer::step(std::uint64_t key, Span<float> params,
                   Span<const float> grad)
{
    LAORAM_ASSERT(params.size() == grad.size(),
                  "param/grad size mismatch");
    if (momentum == 0.0f) {
        for (std::size_t i = 0; i < params.size(); ++i)
            params[i] -= lr * grad[i];
        return;
    }
    auto &v = velocity[key];
    if (v.size() != params.size())
        v.assign(params.size(), 0.0f);
    for (std::size_t i = 0; i < params.size(); ++i) {
        v[i] = momentum * v[i] + grad[i];
        params[i] -= lr * v[i];
    }
}

} // namespace laoram::train
