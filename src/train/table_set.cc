#include "train/table_set.hh"

#include <algorithm>

#include "util/logging.hh"

namespace laoram::train {

TableSet::TableSet(std::vector<std::uint64_t> tableRows)
    : rows(std::move(tableRows))
{
    LAORAM_ASSERT(!rows.empty(), "table set needs at least one table");
    base.reserve(rows.size());
    for (std::uint64_t r : rows) {
        LAORAM_ASSERT(r > 0, "empty table in table set");
        base.push_back(total);
        total += r;
    }
}

std::uint64_t
TableSet::tableRows(std::uint64_t table) const
{
    LAORAM_ASSERT(table < rows.size(), "table ", table,
                  " out of range");
    return rows[table];
}

std::uint64_t
TableSet::flatten(std::uint64_t table, std::uint64_t row) const
{
    LAORAM_ASSERT(table < rows.size(), "table ", table,
                  " out of range");
    LAORAM_ASSERT(row < rows[table], "row ", row,
                  " out of range for table ", table);
    return base[table] + row;
}

std::pair<std::uint64_t, std::uint64_t>
TableSet::unflatten(std::uint64_t block) const
{
    LAORAM_ASSERT(block < total, "block ", block, " out of range");
    // upper_bound on prefix sums, then step back one table.
    const auto it =
        std::upper_bound(base.begin(), base.end(), block);
    const auto table =
        static_cast<std::uint64_t>(it - base.begin()) - 1;
    return {table, block - base[table]};
}

void
TableSet::appendSample(const std::vector<std::uint64_t> &rowsPerSample,
                       std::vector<std::uint64_t> &trace) const
{
    LAORAM_ASSERT(rowsPerSample.size() == rows.size(),
                  "sample must look up one row per table");
    for (std::uint64_t t = 0; t < rows.size(); ++t)
        trace.push_back(flatten(t, rowsPerSample[t]));
}

std::vector<std::uint64_t>
TableSet::accessHistogram(const std::vector<std::uint64_t> &trace) const
{
    std::vector<std::uint64_t> counts(rows.size(), 0);
    for (std::uint64_t block : trace)
        ++counts[unflatten(block).first];
    return counts;
}

std::vector<std::uint32_t>
TableSet::shardPlan(std::uint32_t numShards) const
{
    LAORAM_ASSERT(numShards >= 1, "need at least one shard");
    std::vector<std::uint32_t> plan(rows.size(), 0);
    if (numShards == 1)
        return plan;

    // LPT greedy: visit tables biggest first, place each on the shard
    // with the fewest rows so far. Ties break on the lower table /
    // shard index, keeping the plan deterministic.
    std::vector<std::uint64_t> order(rows.size());
    for (std::uint64_t t = 0; t < rows.size(); ++t)
        order[t] = t;
    std::sort(order.begin(), order.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                  if (rows[a] != rows[b])
                      return rows[a] > rows[b];
                  return a < b;
              });

    std::vector<std::uint64_t> load(numShards, 0);
    for (std::uint64_t t : order) {
        std::uint32_t lightest = 0;
        for (std::uint32_t s = 1; s < numShards; ++s) {
            if (load[s] < load[lightest])
                lightest = s;
        }
        plan[t] = lightest;
        load[lightest] += rows[t];
    }
    return plan;
}

std::vector<std::uint32_t>
TableSet::blockShardAssignment(
    const std::vector<std::uint32_t> &plan) const
{
    LAORAM_ASSERT(plan.size() == rows.size(),
                  "plan must name one shard per table");
    std::vector<std::uint32_t> assignment;
    assignment.reserve(total);
    for (std::uint64_t t = 0; t < rows.size(); ++t)
        assignment.insert(assignment.end(), rows[t], plan[t]);
    return assignment;
}

TableSet
TableSet::criteoLike(std::uint64_t largest)
{
    LAORAM_ASSERT(largest >= 26, "largest table too small");
    // Size distribution modelled on the Criteo Kaggle categorical
    // features: one dominant table, a handful of large ones, the rest
    // tiny (hundreds of rows).
    std::vector<std::uint64_t> rows;
    rows.push_back(largest);               // the paper's table
    rows.push_back(largest / 2);
    rows.push_back(largest / 4);
    rows.push_back(largest / 8);
    rows.push_back(largest / 16);
    for (int i = 0; i < 6; ++i)
        rows.push_back(std::max<std::uint64_t>(largest / 64, 64));
    for (int i = 0; i < 15; ++i)
        rows.push_back(std::max<std::uint64_t>(largest / 1024, 16));
    return TableSet(std::move(rows));
}

} // namespace laoram::train
