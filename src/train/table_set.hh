/**
 * @file
 * Multi-table flattening for DLRM-style models.
 *
 * Real recommendation models train dozens of embedding tables (the
 * Criteo DLRM has 26 sparse features); the paper evaluates its
 * largest table, but a deployment must protect *all* of them —
 * otherwise which-table-was-touched still leaks the feature. TableSet
 * maps (table, row) pairs onto one flat block space so a single ORAM
 * tree covers every table, making cross-table access patterns
 * mutually indistinguishable by construction.
 */

#ifndef LAORAM_TRAIN_TABLE_SET_HH
#define LAORAM_TRAIN_TABLE_SET_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace laoram::train {

/** (table, row) <-> flat block id mapping over concatenated tables. */
class TableSet
{
  public:
    /** @param tableRows rows of each table, in table order */
    explicit TableSet(std::vector<std::uint64_t> tableRows);

    std::uint64_t numTables() const { return rows.size(); }
    std::uint64_t totalBlocks() const { return total; }
    std::uint64_t tableRows(std::uint64_t table) const;

    /** Flat block id of @p row in @p table. */
    std::uint64_t flatten(std::uint64_t table, std::uint64_t row)
        const;

    /** Inverse of flatten. */
    std::pair<std::uint64_t, std::uint64_t>
    unflatten(std::uint64_t block) const;

    /**
     * Flatten a sample-major multi-table gather into one trace: for
     * each sample, @p rowsPerSample[t] is the row looked up in table
     * t, appended in table order — the block stream a DLRM batch
     * pushes through one shared ORAM pipeline.
     */
    void appendSample(const std::vector<std::uint64_t> &rowsPerSample,
                      std::vector<std::uint64_t> &trace) const;

    /**
     * Per-table access counts of a flat trace (reporting: how one
     * pipeline's traffic distributes over the protected tables).
     */
    std::vector<std::uint64_t>
    accessHistogram(const std::vector<std::uint64_t> &trace) const;

    /**
     * Assign each table to one of @p numShards ORAM shards, balancing
     * total rows with longest-processing-time greedy placement (big
     * tables first, each to the currently lightest shard). Routing
     * whole tables keeps every table's rows in one tree — the
     * per-table analogue of hash-sharding the flat block space.
     *
     * @return shard index per table, in table order
     */
    std::vector<std::uint32_t> shardPlan(std::uint32_t numShards)
        const;

    /**
     * Expand a per-table plan (shardPlan or custom) into the
     * per-block assignment core::ShardSplitter::fromAssignment
     * consumes: block b of table t goes to plan[t].
     */
    std::vector<std::uint32_t>
    blockShardAssignment(const std::vector<std::uint32_t> &plan) const;

    /**
     * A 26-table configuration with the skewed size distribution of
     * Criteo-class models (a few huge tables, many small ones),
     * scaled so the largest table has @p largest rows.
     */
    static TableSet criteoLike(std::uint64_t largest);

  private:
    std::vector<std::uint64_t> rows;
    std::vector<std::uint64_t> base; ///< prefix sums
    std::uint64_t total = 0;
};

} // namespace laoram::train

#endif // LAORAM_TRAIN_TABLE_SET_HH
