#include "train/embedding_table.hh"

#include <cmath>
#include <cstring>

#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::train {

EmbeddingTable::EmbeddingTable(std::uint64_t rows, std::uint64_t dim,
                               std::uint64_t seed)
    : nRows(rows), nDim(dim), data(rows * dim)
{
    LAORAM_ASSERT(rows > 0 && dim > 0, "degenerate embedding table");
    Rng rng(seed);
    const float scale =
        1.0f / std::sqrt(static_cast<float>(dim));
    for (auto &v : data)
        v = scale * static_cast<float>(2.0 * rng.nextDouble() - 1.0);
}

Span<float>
EmbeddingTable::row(std::uint64_t r)
{
    LAORAM_ASSERT(r < nRows, "row ", r, " out of range");
    return {data.data() + r * nDim, nDim};
}

Span<const float>
EmbeddingTable::row(std::uint64_t r) const
{
    LAORAM_ASSERT(r < nRows, "row ", r, " out of range");
    return {data.data() + r * nDim, nDim};
}

void
EmbeddingTable::serializeRow(std::uint64_t r,
                             std::vector<std::uint8_t> &out) const
{
    const auto src = row(r);
    out.resize(rowBytes());
    std::memcpy(out.data(), src.data(), rowBytes());
}

void
EmbeddingTable::deserializeRow(std::uint64_t r,
                               const std::vector<std::uint8_t> &in)
{
    LAORAM_ASSERT(in.size() >= rowBytes(), "payload too small: ",
                  in.size(), " < ", rowBytes());
    auto dst = row(r);
    std::memcpy(dst.data(), in.data(), rowBytes());
}

void
EmbeddingTable::applyGradient(std::uint64_t r,
                              Span<const float> grad, float lr)
{
    LAORAM_ASSERT(grad.size() == nDim, "gradient dim mismatch");
    auto w = row(r);
    for (std::uint64_t i = 0; i < nDim; ++i)
        w[i] -= lr * grad[i];
}

double
EmbeddingTable::rowNormSq(std::uint64_t r) const
{
    double acc = 0.0;
    for (float v : row(r))
        acc += static_cast<double>(v) * v;
    return acc;
}

} // namespace laoram::train
