/**
 * @file
 * Plain SGD (optionally with momentum) over float parameter spans.
 */

#ifndef LAORAM_TRAIN_SGD_HH
#define LAORAM_TRAIN_SGD_HH

#include <cstdint>
#include "util/span.hh"
#include <unordered_map>
#include <vector>

namespace laoram::train {

/** Stochastic gradient descent with optional momentum. */
class SgdOptimizer
{
  public:
    /**
     * @param lr       learning rate
     * @param momentum 0 for vanilla SGD; velocity is tracked per
     *                 parameter-group key otherwise
     */
    explicit SgdOptimizer(float lr, float momentum = 0.0f);

    float learningRate() const { return lr; }

    /**
     * One update step on a parameter span.
     *
     * @param key    identifies the parameter group (e.g. embedding row
     *               id) so momentum state is tracked per group
     * @param params parameters, updated in place
     * @param grad   gradient, same length
     */
    void step(std::uint64_t key, Span<float> params,
              Span<const float> grad);

  private:
    float lr;
    float momentum;
    std::unordered_map<std::uint64_t, std::vector<float>> velocity;
};

} // namespace laoram::train

#endif // LAORAM_TRAIN_SGD_HH
