/**
 * @file
 * Superblock bins — the unit of LAORAM's look-ahead grouping.
 *
 * The preprocessor slices the future access stream into bins of (up to)
 * S *distinct* block ids, assigns each bin one uniform path, and
 * records for each member the path of the *next* bin that will access
 * it. At access time the whole bin is served and every member is
 * remapped to its recorded future path — which is how the next bin
 * ends up needing just one path read (paper §IV).
 */

#ifndef LAORAM_CORE_SUPERBLOCK_HH
#define LAORAM_CORE_SUPERBLOCK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "oram/types.hh"

namespace laoram::core {

using oram::BlockId;
using oram::Leaf;
using oram::kNoFuturePath;

/** One superblock bin produced by the preprocessor. */
struct SuperblockBin
{
    /** Distinct member block ids, in first-touch order. */
    std::vector<BlockId> members;

    /**
     * Future path per member (parallel to `members`): the path of the
     * next bin containing that block, or kNoFuturePath when the block
     * does not reappear inside the preprocessed window (the client
     * then draws a uniform path, preserving obliviousness).
     */
    std::vector<Leaf> nextPaths;

    /** The uniform path assigned to *this* bin. */
    Leaf path = 0;

    /** Stream positions collapsed into this bin (>= members.size()). */
    std::uint64_t rawAccesses = 0;

    /** Stream index of the bin's first access (diagnostics). */
    std::uint64_t firstIndex = 0;

    bool full(std::uint64_t superblockSize) const
    {
        return members.size() >= superblockSize;
    }
};

/**
 * Structural sanity check used by tests: members distinct, vectors
 * parallel, rawAccesses >= members.
 *
 * @return empty string when valid, else a description of the violation
 */
std::string validateBin(const SuperblockBin &bin);

} // namespace laoram::core

#endif // LAORAM_CORE_SUPERBLOCK_HH
