#include "core/pipeline.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/reorder_window.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/walltime.hh"

namespace laoram::core {

namespace {

/** Live pipeline metrics (process-wide; lanes share the handles). */
struct PipelineMetrics
{
    obs::Counter &windows;
    obs::Counter &fillNs;
    obs::Counter &stallNs;
    obs::Counter &reorderStallNs;
};

PipelineMetrics &
pipelineMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static PipelineMetrics m{
        reg.counter("pipeline.windows_served",
                    "windows drained through the serving stage"),
        reg.counter("pipeline.fill_ns",
                    "serve-thread wait for each run's first window"),
        reg.counter("pipeline.stall_ns",
                    "serve-thread waits after the pipeline fill"),
        reg.counter("pipeline.reorder_stall_ns",
                    "head-of-line share of the serve-thread stalls"),
    };
    return m;
}

/** What travels over the reorder window: a schedule + its prep cost. */
struct PreparedWindow
{
    WindowSchedule sched;
    std::int64_t prepWallNs = 0;
};

/** Per-prep-thread accounting, written only by its owner thread. */
struct PrepThreadLedger
{
    std::int64_t busyNs = 0;     ///< time inside runWindow
    std::int64_t lifetimeNs = 0; ///< thread start to exit
    std::uint64_t windows = 0;   ///< windows preprocessed
};

} // namespace

void
PipelineConfig::validate() const
{
    // User-facing config errors (LAORAM_FATAL, exit 1) — not library
    // invariants, so no LAORAM_ASSERT/abort here.
    if (windowAccesses < 1)
        LAORAM_FATAL("pipeline windowAccesses must be >= 1");
    if (queueDepth < 1)
        LAORAM_FATAL("pipeline queueDepth must be >= 1");
    if (prepThreads < 1)
        LAORAM_FATAL("pipeline prepThreads must be >= 1 (one thread "
                     "IS the minimal stage-1 pool)");
    if (preprocessNsPerAccess < 0.0)
        LAORAM_FATAL("preprocessNsPerAccess must be >= 0, got ",
                     preprocessNsPerAccess);
    if (prepLoadNsPerAccess < 0.0)
        LAORAM_FATAL("prepLoadNsPerAccess must be >= 0, got ",
                     prepLoadNsPerAccess);
    if (mode == PipelineMode::Simulated && prepThreads > 1) {
        LAORAM_FATAL("PipelineMode::Simulated runs both stages on the "
                     "calling thread; prepThreads=", prepThreads,
                     " would be silently ignored — use Concurrent "
                     "mode for a preprocessor pool");
    }
    if (mode == PipelineMode::Simulated && prepLoadNsPerAccess > 0.0) {
        LAORAM_FATAL("prepLoadNsPerAccess emulates wall-clock stage-1 "
                     "load on real preprocessor threads; Simulated "
                     "mode spawns none — use preprocessNsPerAccess "
                     "for the analytic model instead");
    }
}

BatchPipeline::BatchPipeline(Laoram &engine, const PipelineConfig &cfg)
    : engine(engine), cfg(cfg),
      prep(PreprocessorConfig{engine.laoramConfig().superblockSize,
                              engine.geometry().numLeaves()},
           engine.preprocessorSeed())
{
    cfg.validate();
}

PipelineReport
BatchPipeline::run(ServeSource &source)
{
    cache::CacheStats cacheStart;
    if (const cache::HotEmbeddingCache *c = engine.hotCache())
        cacheStart = c->stats();
    PipelineReport rep = cfg.mode == PipelineMode::Concurrent
                             ? runConcurrent(source)
                             : runSimulated(source);
    if (StreamingHistogram *hist = source.latencyHistogram())
        rep.latency = hist->report();
    if (const cache::HotEmbeddingCache *c = engine.hotCache())
        rep.cache = c->stats().deltaFrom(cacheStart);
    return rep;
}

PipelineReport
BatchPipeline::run(const std::vector<BlockId> &trace)
{
    if (trace.empty())
        return PipelineReport{};
    TraceSource source(trace, cfg.windowAccesses,
                       cfg.firstWindowIndex);
    return run(source);
}

void
BatchPipeline::finishModeledReport(PipelineReport &rep,
                                   const std::vector<double> &prepNs,
                                   const std::vector<double> &accessNs)
{
    if (prepNs.empty())
        return;
    rep.windows = prepNs.size();
    for (double ns : prepNs)
        rep.totalPrepNs += ns;
    for (double ns : accessNs)
        rep.totalAccessNs += ns;
    rep.serialNs = rep.totalPrepNs + rep.totalAccessNs;

    // Two-stage pipeline makespan: prep(w0), then each step overlaps
    // access(w_i) with prep(w_{i+1}).
    rep.pipelinedNs = prepNs.front();
    for (std::size_t i = 0; i < accessNs.size(); ++i) {
        const double next_prep =
            (i + 1 < prepNs.size()) ? prepNs[i + 1] : 0.0;
        rep.pipelinedNs += std::max(accessNs[i], next_prep);
    }

    // Hidden fraction is measured over the *hideable* preprocessing:
    // the first window's prep is unavoidable pipeline fill, every
    // later window can overlap with the previous window's training.
    // Clamped like the measured fraction: rounding in the makespan
    // accumulation must not report hidden work outside [0, 1].
    const double hideable = rep.totalPrepNs - prepNs.front();
    if (hideable > 0.0) {
        rep.prepHiddenFraction = std::clamp(
            (rep.serialNs - rep.pipelinedNs) / hideable, 0.0, 1.0);
    } else {
        // Single window: nothing can overlap by construction.
        rep.prepHiddenFraction = 0.0;
    }
}

PipelineReport
BatchPipeline::runSimulated(ServeSource &source)
{
    PipelineReport rep;
    std::vector<double> prepNs;
    std::vector<double> accessNs;

    const storage::IoStats ioBefore =
        engine.storageForAudit().ioStats();
    SourceWindow sw;
    while (source.nextWindow(sw)) {
        // Stage 1: preprocess the window (simulated cost; same
        // window-derived path stream as every other mode).
        const PreprocessResult res =
            prep.runWindow(sw.windowIndex, sw.traceOffset,
                           sw.accesses.data(),
                           sw.accesses.data() + sw.accesses.size())
                .result;
        prepNs.push_back(cfg.preprocessNsPerAccess
                         * static_cast<double>(res.totalAccesses));

        // Stage 2: serve it through the ORAM; measure via the meter's
        // simulated clock delta.
        source.windowServing(sw.windowIndex);
        const double before = engine.meter().clock().nanoseconds();
        {
            obs::TraceSpan span("serve-window", sw.windowIndex);
            engine.serveWindow(res);
        }
        accessNs.push_back(engine.meter().clock().nanoseconds()
                           - before);
        source.windowServed(sw.windowIndex);
        if (obs::metricsEnabled())
            pipelineMetrics().windows.inc();
        if (cfg.windowBoundaryHook)
            cfg.windowBoundaryHook(sw.windowIndex);
    }

    rep.wallIoNs = static_cast<double>(engine.storageForAudit()
                                           .ioStats()
                                           .since(ioBefore)
                                           .totalNs());
    finishModeledReport(rep, prepNs, accessNs);
    return rep;
}

PipelineReport
BatchPipeline::runConcurrent(ServeSource &source)
{
    PipelineReport rep;
    const std::size_t poolSize = cfg.prepThreads;

    ReorderWindow<PreparedWindow> reorder(cfg.queueDepth,
                                          cfg.firstWindowIndex);
    std::mutex errorMu;
    std::exception_ptr prepError;

    const storage::IoStats ioBefore =
        engine.storageForAudit().ioStats();

    const WallClock::time_point runStart = WallClock::now();

    // Stage 1 on a pool of poolSize threads: each worker claims the
    // next window from the source (an atomic ticket for trace replay,
    // a blocking pull from the session coalescer online), preprocesses
    // it with the window-derived path stream (order-independent by
    // construction), and pushes the schedule into the reorder window
    // under its window index. push() blocks once the window is
    // queueDepth ahead of serving — the backpressure that stops
    // preprocessing from running arbitrarily far ahead of training.
    // Deadlock freedom holds because the source hands out contiguous
    // indices only *with* their data: every claimed sequence number
    // is pushed (or the window is closed on error/shutdown).
    std::atomic<std::size_t> liveProducers{poolSize};
    std::vector<PrepThreadLedger> ledgers(poolSize);

    auto prepWorker = [&](std::size_t tid) {
        const WallClock::time_point threadStart = WallClock::now();
        obs::traceSetThreadName("prep-" + std::to_string(tid));
        PrepThreadLedger &ledger = ledgers[tid];
        try {
            SourceWindow sw;
            while (source.nextWindow(sw)) {
                PreparedWindow item;
                const WallClock::time_point t0 = WallClock::now();
                item.sched = prep.runWindow(
                    sw.windowIndex, sw.traceOffset, sw.accesses.data(),
                    sw.accesses.data() + sw.accesses.size());
                if (cfg.prepLoadNsPerAccess > 0.0) {
                    // Emulated sample-decrypt/parse cost (see
                    // PipelineConfig::prepLoadNsPerAccess): spin the
                    // window's share of stage-1 wall time without
                    // touching any served byte.
                    const std::int64_t target = static_cast<
                        std::int64_t>(
                        cfg.prepLoadNsPerAccess
                        * static_cast<double>(sw.accesses.size()));
                    while (elapsedNs(t0, WallClock::now()) < target) {
                    }
                }
                item.prepWallNs = elapsedNs(t0, WallClock::now());
                obs::traceRecordEndingNow("prep-window",
                                          item.prepWallNs,
                                          sw.windowIndex);
                ledger.busyNs += item.prepWallNs;
                ++ledger.windows;

                if (!reorder.push(sw.windowIndex, std::move(item)))
                    break; // serving side shut the pipeline down
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!prepError)
                    prepError = std::current_exception();
            }
            // This worker's claimed window will never arrive; the
            // consumer must not wait on the gap.
            reorder.close();
        }
        ledger.lifetimeNs = elapsedNs(threadStart, WallClock::now());
        // Last producer out ends the stream.
        if (liveProducers.fetch_sub(1, std::memory_order_acq_rel) == 1)
            reorder.close();
    };

    std::vector<std::thread> pool;
    pool.reserve(poolSize);
    for (std::size_t t = 0; t < poolSize; ++t)
        pool.emplace_back(prepWorker, t);
    auto joinPool = [&] {
        for (std::thread &t : pool)
            t.join();
    };

    // Stage 2 on the calling thread: drain prepared windows through
    // the engine strictly in window order — the reorder stage's
    // guarantee. Touch callbacks therefore keep running on the
    // caller's thread, exactly like the serial runTrace.
    std::vector<double> prepNsModeled;
    std::vector<double> accessNsModeled;
    std::vector<std::int64_t> prepWall;
    std::int64_t fillNs = 0;
    std::int64_t stallNs = 0;
    obs::traceSetThreadName("serve");
    try {
        PreparedWindow item;
        while (true) {
            ReorderWindow<PreparedWindow>::ReleaseToken slot;
            const WallClock::time_point waitStart = WallClock::now();
            if (!reorder.popDeferred(item, slot))
                break;
            const std::int64_t waited =
                elapsedNs(waitStart, WallClock::now());
            obs::traceRecordEndingNow("reorder-wait", waited,
                                      item.sched.windowIndex);
            if (prepWall.empty())
                fillNs = waited; // pipeline fill, not a stall
            else
                stallNs += waited;
            if (obs::metricsEnabled()) {
                PipelineMetrics &m = pipelineMetrics();
                (prepWall.empty() ? m.fillNs : m.stallNs)
                    .add(static_cast<std::uint64_t>(waited));
            }
            // Hand the freed slot back only now: stage 1's next burst
            // lands inside the serve interval, not inside the wait we
            // just measured. If serveWindow throws, the token's
            // destructor still wakes the pool on unwind.
            slot.release();

            prepWall.push_back(item.prepWallNs);
            prepNsModeled.push_back(
                cfg.preprocessNsPerAccess
                * static_cast<double>(item.sched.result.totalAccesses));

            source.windowServing(item.sched.windowIndex);
            const double simBefore =
                engine.meter().clock().nanoseconds();
            const WallClock::time_point serveStart = WallClock::now();
            engine.serveWindow(item.sched.result);
            const std::int64_t servedNs =
                elapsedNs(serveStart, WallClock::now());
            obs::traceRecordEndingNow("serve-window", servedNs,
                                      item.sched.windowIndex);
            if (obs::metricsEnabled())
                pipelineMetrics().windows.inc();
            rep.wallServeNs += static_cast<double>(servedNs);
            accessNsModeled.push_back(
                engine.meter().clock().nanoseconds() - simBefore);
            source.windowServed(item.sched.windowIndex);
            // Window boundary: the serving thread owns all engine
            // state here (stage 1 only builds schedules), so the
            // quiesce hook may checkpoint() safely.
            if (cfg.windowBoundaryHook)
                cfg.windowBoundaryHook(item.sched.windowIndex);
        }
    } catch (...) {
        reorder.close(); // unblock the pool, then re-raise
        joinPool();
        throw;
    }
    joinPool();
    if (prepError)
        std::rethrow_exception(prepError);

    rep.wallFillNs = static_cast<double>(fillNs);
    rep.wallStallNs = static_cast<double>(stallNs);
    rep.wallReorderStallNs =
        static_cast<double>(reorder.stats().headOfLineWaitNs);
    if (obs::metricsEnabled()) {
        pipelineMetrics().reorderStallNs.add(
            reorder.stats().headOfLineWaitNs);
    }

    rep.prepThreads = static_cast<std::uint32_t>(poolSize);
    rep.prepThreadBusyNs.reserve(poolSize);
    rep.prepThreadUtilization.reserve(poolSize);
    rep.prepThreadWindows.reserve(poolSize);
    for (const PrepThreadLedger &ledger : ledgers) {
        rep.prepThreadBusyNs.push_back(
            static_cast<double>(ledger.busyNs));
        rep.prepThreadUtilization.push_back(
            ledger.lifetimeNs > 0
                ? std::clamp(static_cast<double>(ledger.busyNs)
                                 / static_cast<double>(
                                     ledger.lifetimeNs),
                             0.0, 1.0)
                : 0.0);
        rep.prepThreadWindows.push_back(ledger.windows);
    }
    // Measured backend I/O during the serve stage: the serving thread
    // is the only storage client, so the delta over this run is its
    // genuine I/O component.
    rep.wallIoNs = static_cast<double>(engine.storageForAudit()
                                           .ioStats()
                                           .since(ioBefore)
                                           .totalNs());
    if (rep.wallServeNs > 0.0) {
        rep.ioServeFraction =
            std::clamp(rep.wallIoNs / rep.wallServeNs, 0.0, 1.0);
    }
    rep.wallTotalNs =
        static_cast<double>(elapsedNs(runStart, WallClock::now()));
    std::int64_t prepTotalNs = 0;
    for (std::int64_t ns : prepWall)
        prepTotalNs += ns;
    rep.wallPrepNs = static_cast<double>(prepTotalNs);

    // Measured overlap: of the preprocessing wall time that could hide
    // behind serving (everything after the first window's fill), the
    // share that never stalled the serving thread.
    const std::int64_t hideableWall =
        prepWall.empty() ? 0 : prepTotalNs - prepWall.front();
    if (hideableWall > 0) {
        rep.measuredPrepHiddenFraction = std::clamp(
            static_cast<double>(hideableWall - stallNs)
                / static_cast<double>(hideableWall),
            0.0, 1.0);
    }

    finishModeledReport(rep, prepNsModeled, accessNsModeled);
    return rep;
}

} // namespace laoram::core
