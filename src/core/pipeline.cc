#include "core/pipeline.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "util/bounded_queue.hh"
#include "util/logging.hh"

namespace laoram::core {

namespace {

/** Monotonic wall-clock timestamp in nanoseconds. */
double
nowNs()
{
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** What travels over the pipeline queue: a schedule + its prep cost. */
struct PreparedWindow
{
    WindowSchedule sched;
    double prepWallNs = 0.0;
};

} // namespace

BatchPipeline::BatchPipeline(Laoram &engine, const PipelineConfig &cfg)
    : engine(engine), cfg(cfg),
      prep(PreprocessorConfig{engine.laoramConfig().superblockSize,
                              engine.geometry().numLeaves()},
           engine.preprocessorSeed())
{
    LAORAM_ASSERT(cfg.windowAccesses >= 1,
                  "pipeline window must hold at least one access");
    LAORAM_ASSERT(cfg.queueDepth >= 1,
                  "pipeline queue depth must be at least 1");
}

PipelineReport
BatchPipeline::run(const std::vector<BlockId> &trace)
{
    if (trace.empty())
        return PipelineReport{};
    return cfg.mode == PipelineMode::Concurrent ? runConcurrent(trace)
                                                : runSimulated(trace);
}

void
BatchPipeline::finishModeledReport(PipelineReport &rep,
                                   const std::vector<double> &prepNs,
                                   const std::vector<double> &accessNs)
{
    if (prepNs.empty())
        return;
    rep.windows = prepNs.size();
    for (double ns : prepNs)
        rep.totalPrepNs += ns;
    for (double ns : accessNs)
        rep.totalAccessNs += ns;
    rep.serialNs = rep.totalPrepNs + rep.totalAccessNs;

    // Two-stage pipeline makespan: prep(w0), then each step overlaps
    // access(w_i) with prep(w_{i+1}).
    rep.pipelinedNs = prepNs.front();
    for (std::size_t i = 0; i < accessNs.size(); ++i) {
        const double next_prep =
            (i + 1 < prepNs.size()) ? prepNs[i + 1] : 0.0;
        rep.pipelinedNs += std::max(accessNs[i], next_prep);
    }

    // Hidden fraction is measured over the *hideable* preprocessing:
    // the first window's prep is unavoidable pipeline fill, every
    // later window can overlap with the previous window's training.
    const double hideable = rep.totalPrepNs - prepNs.front();
    if (hideable > 0.0) {
        rep.prepHiddenFraction =
            (rep.serialNs - rep.pipelinedNs) / hideable;
    } else {
        // Single window: nothing can overlap by construction.
        rep.prepHiddenFraction = 0.0;
    }
}

PipelineReport
BatchPipeline::runSimulated(const std::vector<BlockId> &trace)
{
    PipelineReport rep;
    std::vector<double> prepNs;
    std::vector<double> accessNs;

    for (std::uint64_t start = 0; start < trace.size();
         start += cfg.windowAccesses) {
        const std::uint64_t stop = std::min<std::uint64_t>(
            start + cfg.windowAccesses, trace.size());

        // Stage 1: preprocess the window (simulated cost).
        const PreprocessResult res =
            prep.run(trace.data() + start, trace.data() + stop);
        prepNs.push_back(cfg.preprocessNsPerAccess
                         * static_cast<double>(res.totalAccesses));

        // Stage 2: serve it through the ORAM; measure via the meter's
        // simulated clock delta.
        const double before = engine.meter().clock().nanoseconds();
        engine.serveWindow(res);
        accessNs.push_back(engine.meter().clock().nanoseconds()
                           - before);
    }

    finishModeledReport(rep, prepNs, accessNs);
    return rep;
}

PipelineReport
BatchPipeline::runConcurrent(const std::vector<BlockId> &trace)
{
    PipelineReport rep;
    BoundedQueue<PreparedWindow> queue(cfg.queueDepth);
    std::exception_ptr prepError;

    const double runStart = nowNs();

    // Stage 1 on its own thread: slice the trace into look-ahead
    // windows, build each schedule, and push it into the bounded
    // queue. push() blocks once queueDepth windows are waiting — the
    // backpressure that stops preprocessing from running arbitrarily
    // far ahead of training.
    std::thread prepThread([&] {
        try {
            std::uint64_t index = 0;
            for (std::uint64_t start = 0; start < trace.size();
                 start += cfg.windowAccesses, ++index) {
                const std::uint64_t stop = std::min<std::uint64_t>(
                    start + cfg.windowAccesses, trace.size());

                PreparedWindow item;
                const double t0 = nowNs();
                item.sched = prep.runWindow(index, start,
                                            trace.data() + start,
                                            trace.data() + stop);
                item.prepWallNs = nowNs() - t0;

                if (!queue.push(std::move(item)))
                    break; // serving side shut the pipeline down
            }
        } catch (...) {
            prepError = std::current_exception();
        }
        queue.close();
    });

    // Stage 2 on the calling thread: drain prepared windows through
    // the engine in order. Touch callbacks therefore keep running on
    // the caller's thread, exactly like the serial runTrace.
    std::vector<double> prepNsModeled;
    std::vector<double> accessNsModeled;
    std::vector<double> prepWall;
    try {
        PreparedWindow item;
        while (true) {
            const double waitStart = nowNs();
            if (!queue.popDeferred(item))
                break;
            const double waited = nowNs() - waitStart;
            if (prepWall.empty())
                rep.wallFillNs = waited; // pipeline fill, not a stall
            else
                rep.wallStallNs += waited;
            // Hand the freed slot back only now: stage 1's next burst
            // lands inside the serve interval, not inside the wait we
            // just measured (see BoundedQueue::popDeferred).
            queue.notifySlotFree();

            prepWall.push_back(item.prepWallNs);
            prepNsModeled.push_back(
                cfg.preprocessNsPerAccess
                * static_cast<double>(item.sched.result.totalAccesses));

            const double simBefore =
                engine.meter().clock().nanoseconds();
            const double serveStart = nowNs();
            engine.serveWindow(item.sched.result);
            rep.wallServeNs += nowNs() - serveStart;
            accessNsModeled.push_back(
                engine.meter().clock().nanoseconds() - simBefore);
        }
    } catch (...) {
        queue.close(); // unblock the preprocessor, then re-raise
        prepThread.join();
        throw;
    }
    prepThread.join();
    if (prepError)
        std::rethrow_exception(prepError);

    rep.wallTotalNs = nowNs() - runStart;
    for (double ns : prepWall)
        rep.wallPrepNs += ns;

    // Measured overlap: of the preprocessing wall time that could hide
    // behind serving (everything after the first window's fill), the
    // share that never stalled the serving thread.
    const double hideableWall =
        prepWall.empty() ? 0.0 : rep.wallPrepNs - prepWall.front();
    if (hideableWall > 0.0) {
        rep.measuredPrepHiddenFraction = std::clamp(
            (hideableWall - rep.wallStallNs) / hideableWall, 0.0, 1.0);
    }

    finishModeledReport(rep, prepNsModeled, accessNsModeled);
    return rep;
}

} // namespace laoram::core
