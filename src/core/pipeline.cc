#include "core/pipeline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace laoram::core {

BatchPipeline::BatchPipeline(Laoram &engine, const PipelineConfig &cfg)
    : engine(engine), cfg(cfg),
      prep(PreprocessorConfig{engine.laoramConfig().superblockSize,
                              engine.geometry().numLeaves()},
           engine.config().seed ^ 0xBEEF)
{
    LAORAM_ASSERT(cfg.windowAccesses >= 1,
                  "pipeline window must hold at least one access");
}

PipelineReport
BatchPipeline::run(const std::vector<BlockId> &trace)
{
    PipelineReport rep;
    if (trace.empty())
        return rep;

    std::vector<double> prepNs;
    std::vector<double> accessNs;

    for (std::uint64_t start = 0; start < trace.size();
         start += cfg.windowAccesses) {
        const std::uint64_t stop = std::min<std::uint64_t>(
            start + cfg.windowAccesses, trace.size());

        // Stage 1: preprocess the window (simulated cost).
        const PreprocessResult res =
            prep.run(trace.data() + start, trace.data() + stop);
        prepNs.push_back(cfg.preprocessNsPerAccess
                         * static_cast<double>(res.totalAccesses));

        // Stage 2: serve it through the ORAM; measure via the meter's
        // simulated clock delta.
        const double before = engine.meter().clock().nanoseconds();
        for (const SuperblockBin &bin : res.bins)
            engine.accessBin(bin);
        accessNs.push_back(engine.meter().clock().nanoseconds()
                           - before);
    }

    rep.windows = prepNs.size();
    for (double ns : prepNs)
        rep.totalPrepNs += ns;
    for (double ns : accessNs)
        rep.totalAccessNs += ns;
    rep.serialNs = rep.totalPrepNs + rep.totalAccessNs;

    // Two-stage pipeline makespan: prep(w0), then each step overlaps
    // access(w_i) with prep(w_{i+1}).
    rep.pipelinedNs = prepNs.front();
    for (std::size_t i = 0; i < accessNs.size(); ++i) {
        const double next_prep =
            (i + 1 < prepNs.size()) ? prepNs[i + 1] : 0.0;
        rep.pipelinedNs += std::max(accessNs[i], next_prep);
    }

    // Hidden fraction is measured over the *hideable* preprocessing:
    // the first window's prep is unavoidable pipeline fill, every
    // later window can overlap with the previous window's training.
    const double hideable = rep.totalPrepNs - prepNs.front();
    if (hideable > 0.0) {
        rep.prepHiddenFraction =
            (rep.serialNs - rep.pipelinedNs) / hideable;
    } else {
        // Single window: nothing can overlap by construction.
        rep.prepHiddenFraction = 0.0;
    }
    return rep;
}

} // namespace laoram::core
