#include "core/sharded_laoram.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace laoram::core {

namespace {

/** Lanes (shard pipelines) in flight right now across the pool. */
obs::Gauge &
lanesActiveGauge()
{
    static obs::Gauge &g = obs::MetricsRegistry::instance().gauge(
        "pipeline.lanes_active", "shard pipelines currently serving");
    return g;
}

/** runTrace's ShardedServeSource: one TraceSource per sub-trace. */
class TraceShardSource final : public ShardedServeSource
{
  public:
    TraceShardSource(std::vector<std::vector<BlockId>> subTraces,
                     std::uint64_t windowAccesses)
        : traces(std::move(subTraces))
    {
        // deque, not vector: TraceSource pins itself (reference +
        // atomic members), and the lane sources must never relocate
        // once handed out.
        for (const std::vector<BlockId> &t : traces)
            sources.emplace_back(t, windowAccesses);
    }

    ServeSource &
    shardSource(std::uint32_t shard) override
    {
        return sources[shard];
    }

  private:
    std::vector<std::vector<BlockId>> traces;
    std::deque<TraceSource> sources;
};

} // namespace

// ------------------------------------------------------- ShardSplitter

ShardSplitter::ShardSplitter(std::vector<std::uint32_t> shardOfBlock,
                             std::uint32_t numShards)
    : nShards(numShards), shardOf_(std::move(shardOfBlock))
{
    LAORAM_ASSERT(nShards >= 1, "need at least one shard");
    LAORAM_ASSERT(!shardOf_.empty(), "empty block space");

    localOf_.resize(shardOf_.size());
    globals_.resize(nShards);
    for (BlockId g = 0; g < shardOf_.size(); ++g) {
        const std::uint32_t s = shardOf_[g];
        LAORAM_ASSERT(s < nShards, "block ", g, " assigned to shard ",
                      s, " of ", nShards);
        localOf_[g] = globals_[s].size();
        globals_[s].push_back(g);
    }
}

ShardSplitter
ShardSplitter::hashed(std::uint64_t numBlocks, std::uint32_t numShards,
                      std::uint64_t salt)
{
    LAORAM_ASSERT(numShards >= 1, "need at least one shard");
    std::vector<std::uint32_t> assignment(numBlocks);
    for (BlockId g = 0; g < numBlocks; ++g) {
        // Stateless SplitMix64 finaliser: shard choice decorrelated
        // from id locality, stable across runs and platforms.
        std::uint64_t state = g ^ salt;
        assignment[g] =
            static_cast<std::uint32_t>(splitMix64(state) % numShards);
    }
    return ShardSplitter(std::move(assignment), numShards);
}

ShardSplitter
ShardSplitter::fromAssignment(std::vector<std::uint32_t> shardOfBlock,
                              std::uint32_t numShards)
{
    return ShardSplitter(std::move(shardOfBlock), numShards);
}

std::vector<std::vector<BlockId>>
ShardSplitter::splitTrace(const std::vector<BlockId> &trace) const
{
    std::vector<std::vector<BlockId>> sub(nShards);
    for (BlockId g : trace) {
        LAORAM_ASSERT(g < shardOf_.size(), "trace block ", g,
                      " outside the sharded space");
        sub[shardOf_[g]].push_back(localOf_[g]);
    }
    return sub;
}

void
ShardSplitter::save(serde::Serializer &s) const
{
    s.u32(nShards);
    s.u64(shardOf_.size());
    for (std::uint32_t shard : shardOf_)
        s.u32(shard);
}

ShardSplitter
ShardSplitter::restore(serde::Deserializer &d)
{
    const std::uint32_t shards = d.u32();
    const std::uint64_t blocks = d.u64();
    if (shards == 0)
        throw serde::SnapshotError(
            "shard manifest declares zero shards");
    if (blocks == 0)
        throw serde::SnapshotError(
            "shard manifest declares an empty block space");
    std::vector<std::uint32_t> assignment(blocks);
    for (std::uint64_t g = 0; g < blocks; ++g) {
        assignment[g] = d.u32();
        if (assignment[g] >= shards)
            throw serde::SnapshotError(
                "shard manifest assigns block " + std::to_string(g)
                + " to shard " + std::to_string(assignment[g])
                + " of " + std::to_string(shards));
    }
    return fromAssignment(std::move(assignment), shards);
}

// ------------------------------------------------------ ShardedLaoram

std::uint64_t
ShardedLaoram::shardSeed(std::uint64_t baseSeed, std::uint32_t shard)
{
    // Stable pure function of (base seed, shard): one SplitMix64 step
    // per shard index keeps the per-shard streams decorrelated while a
    // standalone reference engine can re-derive the exact seed.
    std::uint64_t state =
        baseSeed + 0x9E3779B97F4A7C15ULL * (shard + 1ULL);
    return splitMix64(state);
}

ShardedLaoram::ShardedLaoram(const ShardedLaoramConfig &cfg)
    : ShardedLaoram(cfg,
                    ShardSplitter::hashed(cfg.engine.base.numBlocks,
                                          cfg.numShards))
{
}

ShardedLaoram::ShardedLaoram(const ShardedLaoramConfig &cfg,
                             ShardSplitter splitter)
    : cfg(cfg), splitter_(std::move(splitter))
{
    LAORAM_ASSERT(cfg.numShards >= 1, "need at least one shard");
    LAORAM_ASSERT(splitter_.numShards() == cfg.numShards,
                  "splitter shard count ", splitter_.numShards(),
                  " != configured ", cfg.numShards);
    LAORAM_ASSERT(splitter_.numBlocks() == cfg.engine.base.numBlocks,
                  "splitter covers ", splitter_.numBlocks(),
                  " blocks, config expects ",
                  cfg.engine.base.numBlocks);
    if (!cfg.shardEndpoints.empty()
        && cfg.shardEndpoints.size() != cfg.numShards) {
        LAORAM_FATAL("shardEndpoints lists ",
                     cfg.shardEndpoints.size(), " node(s) for ",
                     cfg.numShards,
                     " shards; every shard tree needs its own "
                     "laoram_node");
    }
    // Restore-or-fresh: a configured restore replaces the splitter
    // with the manifest's recorded assignment *before* the engines
    // are built, so per-shard geometry derives from the restored
    // routing (which may be a custom or post-reshard table, not the
    // default hash split).
    if (cfg.engine.base.checkpoint.restore
        && !cfg.engine.base.checkpoint.path.empty())
        restoreManifest();
    buildEngines();
}

void
ShardedLaoram::restoreManifest()
{
    obs::TraceSpan span("restore", cfg.numShards);
    const std::string &path = cfg.engine.base.checkpoint.path;
    const std::vector<std::uint8_t> payload = serde::unseal(
        serde::SnapshotKind::ShardedManifest, serde::readFile(path));
    serde::Deserializer d(payload);
    ShardSplitter restored = ShardSplitter::restore(d);
    if (!d.atEnd())
        throw serde::SnapshotError(
            "shard manifest has trailing bytes after the assignment "
            "table");
    if (restored.numShards() != cfg.numShards)
        throw serde::SnapshotError(
            "shard manifest records " + std::to_string(restored.numShards())
            + " shards but this deployment is configured for "
            + std::to_string(cfg.numShards));
    if (restored.numBlocks() != cfg.engine.base.numBlocks)
        throw serde::SnapshotError(
            "shard manifest covers " + std::to_string(restored.numBlocks())
            + " blocks but this deployment is configured for "
            + std::to_string(cfg.engine.base.numBlocks));
    splitter_ = std::move(restored);
}

std::string
ShardedLaoram::shardCheckpointPath(const std::string &basePath,
                                   std::uint32_t shard) const
{
    // Mirror oram::shardEngineConfig's sidecar suffix so the engines
    // built from shardEngineConfigFor restore exactly these files.
    return basePath + ".shard-"
           + std::to_string(shardSeed(cfg.engine.base.seed, shard));
}

void
ShardedLaoram::checkpointToFile(const std::string &basePath)
{
    LAORAM_ASSERT(!basePath.empty(),
                  "sharded checkpoint needs a base path");
    obs::TraceSpan span("checkpoint", cfg.numShards);
    serde::Serializer body;
    splitter_.save(body);
    serde::writeFileAtomic(
        basePath,
        serde::seal(serde::SnapshotKind::ShardedManifest, body.take()));
    for (std::uint32_t s = 0; s < cfg.numShards; ++s)
        engines_[s]->checkpointToFile(shardCheckpointPath(basePath, s));
}

void
ShardedLaoram::reshard(std::uint32_t newShards)
{
    reshard(ShardSplitter::hashed(splitter_.numBlocks(), newShards));
}

void
ShardedLaoram::reshard(ShardSplitter newSplitter)
{
    LAORAM_ASSERT(newSplitter.numBlocks() == splitter_.numBlocks(),
                  "reshard must preserve the block space: new splitter "
                  "covers ",
                  newSplitter.numBlocks(), " blocks, engine has ",
                  splitter_.numBlocks());

    obs::TraceSpan span("reshard", newSplitter.numShards());
    const std::uint64_t numBlocks = splitter_.numBlocks();
    const bool hasPayloads = cfg.engine.base.payloadBytes > 0;

    // Drain: pull every logical block out through its source shard's
    // oblivious read path. The source engines are torn down right
    // after, so the drain's position-map churn is throwaway — only
    // the payload bytes migrate.
    std::vector<std::vector<std::uint8_t>> payloads;
    if (hasPayloads) {
        payloads.resize(numBlocks);
        for (BlockId g = 0; g < numBlocks; ++g)
            engines_[splitter_.shardOf(g)]->readBlock(
                splitter_.localId(g), payloads[g]);
    }

    // Tear down the source engines *before* building the targets:
    // shard seeds (and thus storage/sidecar paths) are pure functions
    // of (base seed, shard index), so source and target shard files
    // can collide on disk — destruction flushes and unmaps the old
    // trees first, and the fresh build below may then safely
    // re-initialise those paths.
    engines_.clear();
    splitter_ = std::move(newSplitter);
    cfg.numShards = splitter_.numShards();
    // The rebuilt engines' state comes from the migration, not from
    // stale artifacts: never reopen a pre-reshard tree (its geometry
    // is dead) and never restore a pre-reshard sidecar.
    cfg.engine.base.storage.keepExisting = false;
    cfg.engine.base.checkpoint.restore = false;
    buildEngines();

    // Re-insert in global-id order through the target engines' write
    // path, then re-install the user's touch callback on the new
    // engines.
    if (hasPayloads) {
        for (BlockId g = 0; g < numBlocks; ++g)
            engines_[splitter_.shardOf(g)]->writeBlock(
                splitter_.localId(g), payloads[g]);
    }
    if (touchFn_)
        setTouchCallback(touchFn_);
}

LaoramConfig
ShardedLaoram::shardEngineConfigFor(std::uint32_t shard) const
{
    LaoramConfig sc = cfg.engine;
    // Geometry shrinks to the shard's slice; the seed is the shard's
    // own. An empty shard still builds a minimal 1-block tree so the
    // engine array stays dense (its sub-trace is empty anyway).
    sc.base = oram::shardEngineConfig(
        cfg.engine.base,
        std::max<std::uint64_t>(splitter_.shardBlocks(shard), 1),
        shardSeed(cfg.engine.base.seed, shard));
    // One source of truth for window boundaries: the pipeline window.
    sc.lookaheadWindow = cfg.pipeline.windowAccesses;
    // The operator-facing cache budget is for the whole fleet; each
    // shard engine owns an equal slice (at least one row's worth so
    // an enabled cache never silently degrades to disabled).
    if (cfg.engine.cache.enabled())
        sc.cache.capacityBytes = std::max<std::uint64_t>(
            cfg.engine.cache.capacityBytes / cfg.numShards,
            cfg.engine.base.payloadBytes);
    // Multi-node serving: each shard's tree lives on its own
    // laoram_node. The endpoint replaces any local path — the node
    // owns the shard file, the client only dials.
    if (!cfg.shardEndpoints.empty()) {
        sc.base.storage.kind = storage::BackendKind::Remote;
        sc.base.storage.path.clear();
        sc.base.storage.remote.endpoint = cfg.shardEndpoints[shard];
    }
    return sc;
}

void
ShardedLaoram::buildEngines()
{
    engines_.reserve(cfg.numShards);
    for (std::uint32_t s = 0; s < cfg.numShards; ++s)
        engines_.push_back(
            std::make_unique<Laoram>(shardEngineConfigFor(s)));
}

void
ShardedLaoram::setTouchCallback(Laoram::TouchFn fn)
{
    touchFn_ = fn; // kept so reshard() can re-install on new engines
    for (std::uint32_t s = 0; s < cfg.numShards; ++s) {
        if (!fn) {
            engines_[s]->setTouchCallback(nullptr);
            continue;
        }
        // Each shard engine sees local ids; translate back to the
        // global id before handing the payload to the user callback.
        const ShardSplitter &split = splitter_;
        engines_[s]->setTouchCallback(
            [fn, s, &split](BlockId local,
                            std::vector<std::uint8_t> &payload) {
                fn(split.globalId(s, local), payload);
            });
    }
}

std::uint32_t
ShardedLaoram::servingPoolSize() const
{
    return std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(cfg.servingThreads == 0
                                       ? cfg.numShards
                                       : cfg.servingThreads,
                                   cfg.numShards));
}

PipelineConfig
ShardedLaoram::effectiveShardPipeline() const
{
    PipelineConfig pc = cfg.pipeline;
    if (cfg.prepThreadBudget > 0) {
        // Split the global budget over the lanes that run
        // concurrently; every pipeline keeps at least one prep
        // thread so no shard can starve.
        pc.prepThreads = std::max<std::size_t>(
            1, cfg.prepThreadBudget / servingPoolSize());
    }
    return pc;
}

ShardedPipelineReport
ShardedLaoram::runTrace(const std::vector<BlockId> &trace)
{
    TraceShardSource source(splitter_.splitTrace(trace),
                            cfg.pipeline.windowAccesses);
    return serve(source);
}

ShardedPipelineReport
ShardedLaoram::serve(ShardedServeSource &source)
{
    using WallClock = std::chrono::steady_clock;

    ShardedPipelineReport rep;
    rep.shards.resize(cfg.numShards);

    const std::uint32_t poolSize = servingPoolSize();
    const PipelineConfig shardPipeline = effectiveShardPipeline();

    // The pool: each worker claims the next unserved shard, runs that
    // shard's full two-stage pipeline on itself (serving stage on the
    // worker, preprocessing on the pipeline's own thread), and moves
    // on. Shard claiming is a single atomic ticket, so the pool stays
    // busy even when shard sub-traces are skewed.
    std::atomic<std::uint32_t> nextShard{0};
    std::mutex errorMu;
    std::exception_ptr firstError;

    const WallClock::time_point runStart = WallClock::now();
    auto worker = [&] {
        while (true) {
            const std::uint32_t s =
                nextShard.fetch_add(1, std::memory_order_relaxed);
            if (s >= cfg.numShards)
                return;
            try {
                // First-wins naming: the worker keeps the name of the
                // first lane it serves even as it claims more shards.
                obs::traceSetThreadName("lane-" + std::to_string(s));
                if (obs::metricsEnabled())
                    lanesActiveGauge().inc();
                obs::TraceSpan laneSpan("lane", s);
                ShardReport &sr = rep.shards[s];
                const std::uint64_t prepBefore =
                    engines_[s]->accessesPreprocessed();
                const mem::TrafficCounters before =
                    engines_[s]->meter().counters();
                const double simBefore =
                    engines_[s]->meter().clock().nanoseconds();
                BatchPipeline pipe(*engines_[s], shardPipeline);
                sr.pipeline = pipe.run(source.shardSource(s));
                sr.accesses = engines_[s]->accessesPreprocessed()
                              - prepBefore;
                sr.traffic =
                    engines_[s]->meter().counters().since(before);
                sr.simNs = engines_[s]->meter().clock().nanoseconds()
                           - simBefore;
                if (obs::metricsEnabled())
                    lanesActiveGauge().dec();
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!firstError)
                    firstError = std::current_exception();
                return;
            }
        }
    };

    if (poolSize == 1) {
        worker(); // serve inline: no pool threads for one lane
    } else {
        std::vector<std::thread> pool;
        pool.reserve(poolSize);
        for (std::uint32_t t = 0; t < poolSize; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    const double wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            WallClock::now() - runStart)
            .count());

    aggregateShardReports(
        rep, poolSize,
        static_cast<std::uint32_t>(shardPipeline.prepThreads), wallNs);

    // Request latency: merge every lane's histogram (online sources
    // record one per lane; trace replay has none and leaves it zero).
    StreamingHistogram merged;
    source.mergedLatency(merged);
    if (merged.count() > 0)
        rep.aggregate.latency = merged.report();
    return rep;
}

void
ShardedLaoram::aggregateShardReports(ShardedPipelineReport &rep,
                                     std::uint32_t concurrentLanes,
                                     std::uint32_t prepThreadsPerLane,
                                     double wallTotalNs)
{
    // ---- Sums for work/traffic, max for elapsed time. Serve-thread
    // waits (fill, stall, reorder head-of-line) are *elapsed* time on
    // concurrent lanes: they overlap on the wall clock, so the honest
    // aggregate is the slowest lane, not the sum — summing them used
    // to report more stall time than the whole run took.
    for (const ShardReport &sr : rep.shards) {
        rep.aggregate.windows += sr.pipeline.windows;
        rep.aggregate.totalPrepNs += sr.pipeline.totalPrepNs;
        rep.aggregate.totalAccessNs += sr.pipeline.totalAccessNs;
        rep.aggregate.serialNs += sr.pipeline.serialNs;
        rep.aggregate.pipelinedNs =
            std::max(rep.aggregate.pipelinedNs, sr.pipeline.pipelinedNs);
        rep.aggregate.wallPrepNs += sr.pipeline.wallPrepNs;
        rep.aggregate.wallServeNs += sr.pipeline.wallServeNs;
        rep.aggregate.wallFillNs =
            std::max(rep.aggregate.wallFillNs, sr.pipeline.wallFillNs);
        rep.aggregate.wallStallNs = std::max(rep.aggregate.wallStallNs,
                                             sr.pipeline.wallStallNs);
        rep.aggregate.wallReorderStallNs =
            std::max(rep.aggregate.wallReorderStallNs,
                     sr.pipeline.wallReorderStallNs);
        rep.aggregate.wallIoNs += sr.pipeline.wallIoNs;
        rep.aggregate.cache.accumulate(sr.pipeline.cache);
        rep.traffic += sr.traffic;
        rep.simNs = std::max(rep.simNs, sr.simNs);
        rep.simTotalNs += sr.simNs;
    }
    rep.aggregate.wallTotalNs = wallTotalNs;
    // Peak prep threads live at once: only concurrentLanes shard
    // pipelines are in flight concurrently (a summed per-shard count
    // would overstate usage when the pool is smaller than the shard
    // count). Per-thread vectors stay per-shard in rep.shards[i].
    rep.aggregate.prepThreads = concurrentLanes * prepThreadsPerLane;

    // Hidden fractions over the pooled run: the prep-weighted average
    // of the per-shard fractions (each already clamped to [0, 1]), so
    // the aggregate stays in range and big shards dominate.
    double prepWeight = 0.0, prepHidden = 0.0;
    double wallWeight = 0.0, wallHidden = 0.0;
    for (const ShardReport &sr : rep.shards) {
        prepWeight += sr.pipeline.totalPrepNs;
        prepHidden +=
            sr.pipeline.totalPrepNs * sr.pipeline.prepHiddenFraction;
        wallWeight += sr.pipeline.wallPrepNs;
        wallHidden += sr.pipeline.wallPrepNs
                      * sr.pipeline.measuredPrepHiddenFraction;
    }
    if (prepWeight > 0.0)
        rep.aggregate.prepHiddenFraction = prepHidden / prepWeight;
    if (wallWeight > 0.0)
        rep.aggregate.measuredPrepHiddenFraction =
            wallHidden / wallWeight;
    // Pool-wide I/O share of serve time: total backend I/O over total
    // serve wall time (equivalently the serve-weighted average of the
    // per-shard fractions).
    if (rep.aggregate.wallServeNs > 0.0) {
        rep.aggregate.ioServeFraction =
            std::clamp(rep.aggregate.wallIoNs
                           / rep.aggregate.wallServeNs,
                       0.0, 1.0);
    }
}

mem::TrafficCounters
ShardedLaoram::totalCounters() const
{
    mem::TrafficCounters total;
    for (const auto &engine : engines_)
        total += engine->meter().counters();
    return total;
}

double
ShardedLaoram::simNs() const
{
    double ns = 0.0;
    for (const auto &engine : engines_)
        ns = std::max(ns, engine->meter().clock().nanoseconds());
    return ns;
}

std::uint64_t
ShardedLaoram::serverBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &engine : engines_)
        bytes += engine->geometry().serverBytes();
    return bytes;
}

} // namespace laoram::core
