/**
 * @file
 * The LAORAM preprocessor (paper §IV-B).
 *
 * A trusted client-side component that scans upcoming training samples
 * and emits superblock metadata:
 *
 *   1. *Dataset scan* — walk the future access stream, packing the
 *      next S distinct embedding indices into a superblock bin
 *      (duplicates inside an open bin collapse, matching the paper's
 *      "identify unique indices" preprocessing).
 *   2. *Superblock path generation* — draw one uniform path per bin,
 *      then compute, for every bin member, the path of the next bin
 *      that contains it (a single backward sweep). This
 *      (superblock -> future path) metadata is what the trainer GPU
 *      consumes.
 *
 * Security note (paper §VI-C): the preprocessor reads only encrypted
 * training samples inside the trusted client; the entry values it
 * extracts never touch untrusted memory, and path choices are uniform
 * and independent of them.
 */

#ifndef LAORAM_CORE_PREPROCESSOR_HH
#define LAORAM_CORE_PREPROCESSOR_HH

#include <cstdint>
#include <vector>

#include "core/superblock.hh"
#include "util/rng.hh"

namespace laoram::core {

/** Preprocessor knobs. */
struct PreprocessorConfig
{
    std::uint64_t superblockSize = 4; ///< S: distinct ids per bin
    std::uint64_t numLeaves = 0;      ///< path-domain size (required)
};

/** Output of one preprocessing window. */
struct PreprocessResult
{
    std::vector<SuperblockBin> bins;  ///< in stream order
    std::uint64_t totalAccesses = 0;  ///< stream positions consumed
    std::uint64_t uniqueBlocks = 0;   ///< distinct ids in the window
    std::uint64_t futureLinked = 0;   ///< members with a known next path
};

/**
 * One fully preprocessed look-ahead window, ready to serve. Immutable
 * after construction: the preprocessor thread builds it, hands it over
 * the pipeline queue, and never touches it again — which is what makes
 * the two-stage hand-off race-free by construction.
 */
struct WindowSchedule
{
    std::uint64_t windowIndex = 0; ///< position in the window stream
    std::uint64_t traceOffset = 0; ///< first trace index of the window
    PreprocessResult result;       ///< bins + path metadata
};

/**
 * Pure preprocessing step: scan [begin, end) into superblock bins with
 * future-path metadata. All state is passed explicitly (@p rng carries
 * the path-draw stream), so concurrent calls with distinct Rng
 * instances are thread-safe.
 */
PreprocessResult preprocessWindow(const PreprocessorConfig &cfg,
                                  const BlockId *begin,
                                  const BlockId *end, Rng &rng);

/** Scans future access streams into superblock metadata. */
class Preprocessor
{
  public:
    Preprocessor(const PreprocessorConfig &cfg, std::uint64_t seed);

    /**
     * Preprocess one look-ahead window.
     *
     * @param stream future block accesses, in training order
     * @return bins with paths and per-member future paths
     */
    PreprocessResult run(const std::vector<BlockId> &stream) const;

    /** Same, over a sub-range [begin, end) of a larger trace. */
    PreprocessResult run(const BlockId *begin, const BlockId *end) const;

    /**
     * Preprocess one window of a larger trace into an immutable
     * schedule (advances this preprocessor's path-draw stream; calls
     * on one Preprocessor instance must stay single-threaded).
     */
    WindowSchedule runWindow(std::uint64_t windowIndex,
                             std::uint64_t traceOffset,
                             const BlockId *begin,
                             const BlockId *end) const;

    const PreprocessorConfig &config() const { return cfg; }

  private:
    PreprocessorConfig cfg;
    mutable Rng rng;
};

} // namespace laoram::core

#endif // LAORAM_CORE_PREPROCESSOR_HH
