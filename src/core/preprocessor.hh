/**
 * @file
 * The LAORAM preprocessor (paper §IV-B).
 *
 * A trusted client-side component that scans upcoming training samples
 * and emits superblock metadata:
 *
 *   1. *Dataset scan* — walk the future access stream, packing the
 *      next S distinct embedding indices into a superblock bin
 *      (duplicates inside an open bin collapse, matching the paper's
 *      "identify unique indices" preprocessing).
 *   2. *Superblock path generation* — draw one uniform path per bin,
 *      then compute, for every bin member, the path of the next bin
 *      that contains it (a single backward sweep). This
 *      (superblock -> future path) metadata is what the trainer GPU
 *      consumes.
 *
 * Security note (paper §VI-C): the preprocessor reads only encrypted
 * training samples inside the trusted client; the entry values it
 * extracts never touch untrusted memory, and path choices are uniform
 * and independent of them.
 */

#ifndef LAORAM_CORE_PREPROCESSOR_HH
#define LAORAM_CORE_PREPROCESSOR_HH

#include <cstdint>
#include <vector>

#include "core/superblock.hh"
#include "util/rng.hh"

namespace laoram::core {

/** Preprocessor knobs. */
struct PreprocessorConfig
{
    std::uint64_t superblockSize = 4; ///< S: distinct ids per bin
    std::uint64_t numLeaves = 0;      ///< path-domain size (required)
};

/** Output of one preprocessing window. */
struct PreprocessResult
{
    std::vector<SuperblockBin> bins;  ///< in stream order
    std::uint64_t totalAccesses = 0;  ///< stream positions consumed
    std::uint64_t uniqueBlocks = 0;   ///< distinct ids in the window
    std::uint64_t futureLinked = 0;   ///< members with a known next path
};

/**
 * One fully preprocessed look-ahead window, ready to serve. Immutable
 * after construction: the preprocessor thread builds it, hands it over
 * the pipeline queue, and never touches it again — which is what makes
 * the two-stage hand-off race-free by construction.
 */
struct WindowSchedule
{
    std::uint64_t windowIndex = 0; ///< position in the window stream
    std::uint64_t traceOffset = 0; ///< first trace index of the window
    PreprocessResult result;       ///< bins + path metadata
};

/**
 * Pure preprocessing step: scan [begin, end) into superblock bins with
 * future-path metadata. All state is passed explicitly (@p rng carries
 * the path-draw stream), so concurrent calls with distinct Rng
 * instances are thread-safe.
 */
PreprocessResult preprocessWindow(const PreprocessorConfig &cfg,
                                  const BlockId *begin,
                                  const BlockId *end, Rng &rng);

/**
 * Scans future access streams into superblock metadata.
 *
 * Path draws are keyed by *window index*, not by call order: window w
 * always draws from Rng(windowSeed(seed, w)), a pure function of the
 * construction seed. That makes runWindow safe to call concurrently
 * from a pool of preprocessor threads in any interleaving — window w
 * produces the same bytes whether it is preprocessed first, last, or
 * in parallel with its neighbours — which is the property the
 * multi-preprocessor pipeline's determinism contract rests on
 * (together with the serving-side reorder stage; see
 * core/reorder_window.hh).
 */
class Preprocessor
{
  public:
    Preprocessor(const PreprocessorConfig &cfg, std::uint64_t seed);

    /**
     * Stable per-window path-draw seed: a pure function of the
     * preprocessor seed and the window index (SplitMix64 over a
     * golden-ratio stride, matching the shard-seed idiom), so window
     * streams are decorrelated yet reproducible from (seed, w) alone.
     */
    static std::uint64_t windowSeed(std::uint64_t baseSeed,
                                    std::uint64_t windowIndex);

    /**
     * Preprocess one look-ahead window as *window index 0*. Repeated
     * calls replay the identical window-0 path stream — correct for
     * one-shot scans (tests, benches), but slicing a trace into
     * several windows this way would correlate their superblock
     * paths; use runWindow with distinct indices for that (as
     * Laoram::runTrace and the pipelines do).
     *
     * @param stream future block accesses, in training order
     * @return bins with paths and per-member future paths
     */
    PreprocessResult run(const std::vector<BlockId> &stream) const;

    /** Same, over a sub-range [begin, end) of a larger trace. */
    PreprocessResult run(const BlockId *begin, const BlockId *end) const;

    /**
     * Preprocess window @p windowIndex of a larger trace into an
     * immutable schedule. Thread-safe: concurrent calls with distinct
     * window indices never touch shared mutable state.
     */
    WindowSchedule runWindow(std::uint64_t windowIndex,
                             std::uint64_t traceOffset,
                             const BlockId *begin,
                             const BlockId *end) const;

    const PreprocessorConfig &config() const { return cfg; }

    /** The seed per-window streams derive from. */
    std::uint64_t seed() const { return baseSeed; }

  private:
    PreprocessorConfig cfg;
    std::uint64_t baseSeed;
};

} // namespace laoram::core

#endif // LAORAM_CORE_PREPROCESSOR_HH
