/**
 * @file
 * The LAORAM client — the paper's primary contribution (§IV).
 *
 * Runs over the same PathORAM storage tree (optionally fat, §V), but
 * serves *superblock bins* instead of single blocks: the preprocessor
 * guarantees that by the time a bin is trained, all of its members
 * were remapped onto the bin's path by their previous access, so one
 * path read feeds S blocks. Members are then remapped to their own
 * future-bin paths and the fetched paths are written back greedily.
 *
 * The engine still implements the single-access OramEngine interface
 * (degenerating to PathORAM behaviour) so it can be dropped anywhere a
 * generic ORAM is expected; runTrace() is where the look-ahead
 * machinery engages.
 */

#ifndef LAORAM_CORE_LAORAM_CLIENT_HH
#define LAORAM_CORE_LAORAM_CLIENT_HH

#include <functional>
#include <memory>

#include "cache/hot_cache.hh"
#include "core/preprocessor.hh"
#include "core/superblock.hh"
#include "oram/engine.hh"

namespace laoram::core {

/** LAORAM knobs layered on the shared EngineConfig. */
struct LaoramConfig
{
    oram::EngineConfig base;

    /** S: blocks fused per superblock (paper sweeps 2, 4, 8). */
    std::uint64_t superblockSize = 4;

    /**
     * Accesses preprocessed per look-ahead window; 0 means the whole
     * trace at once ("an entire epoch", §IV-B-2). Blocks that do not
     * reappear within a window get uniform random paths at their
     * access, exactly like PathORAM.
     */
    std::uint64_t lookaheadWindow = 0;

    /**
     * Accesses served per *training batch*: the client reads every
     * path the batch needs, trains, then writes the whole path union
     * back — the paper's deployment ("issues read requests to all the
     * paths associated with the entries in the upcoming training
     * batch", §IV-A). 0 serves each superblock bin individually.
     * Larger batches amortise client round trips AND relieve stash
     * pressure (the union write-back covers more nodes per write);
     * bin granularity is what reproduces the paper's Fig. 8 stash
     * growth regime.
     */
    std::uint64_t batchAccesses = 0;

    /**
     * Optional trusted-client hot-row cache (src/cache/). Purely a
     * payload-side accelerator: the access schedule, RNG streams and
     * server-visible trace are byte-identical with it on or off.
     */
    cache::CacheConfig cache{};
};

/** Look-ahead ORAM engine. */
class Laoram final : public oram::TreeOramBase
{
  public:
    /** Callback applied to each member payload at bin-access time. */
    using TouchFn =
        std::function<void(BlockId, std::vector<std::uint8_t> &)>;

    explicit Laoram(const LaoramConfig &cfg);

    std::string name() const override;

    /**
     * Single-block access without look-ahead metadata: identical to
     * PathORAM (a bin of size 1 with a random future path).
     */
    void access(BlockId id, oram::AccessOp op, const std::uint8_t *in,
                std::size_t len, std::vector<std::uint8_t> *out) override;

    /**
     * Preprocess @p trace in look-ahead windows and serve it bin by
     * bin — the paper's end-to-end flow. Adapter over the unified
     * ServeSource run loop: delegates to a Simulated-mode
     * BatchPipeline on the calling thread (see core/serve_source.hh),
     * which is byte-identical to the historical serial loop.
     */
    void runTrace(const std::vector<BlockId> &trace) override;

    /**
     * Serve pre-built window schedules (the output of
     * Preprocessor::runWindow), in order. This is the serving stage of
     * the two-stage pipeline: preprocessing already happened on
     * another thread, so this call only performs stage-2 ORAM work.
     */
    void runTrace(const std::vector<WindowSchedule> &schedules);

    /**
     * Serve one preprocessed window: every bin (or training batch,
     * when batchAccesses > 0) in stream order. Used both by the serial
     * runTrace and by the concurrent pipeline's serving thread.
     */
    void serveWindow(const PreprocessResult &window);

    /**
     * The seed the engine derives its internal preprocessor from. A
     * pipeline preprocessing on behalf of this engine must seed its
     * own Preprocessor identically to reproduce the serial runTrace
     * byte for byte.
     */
    std::uint64_t preprocessorSeed() const
    {
        return lcfg.base.seed ^ kPrepSeedSalt;
    }

    /** Salt folded into the engine seed for the preprocessor stream. */
    static constexpr std::uint64_t kPrepSeedSalt = 0x1AA0;

    /**
     * Serve one preprocessed bin: read the distinct current paths of
     * its members, touch every member, remap each to its future path,
     * write the fetched paths back, then background-evict.
     */
    void accessBin(const SuperblockBin &bin);

    /**
     * Serve a run of consecutive bins as one training batch: one
     * union read for every path the batch touches, all member touches
     * and remaps, one union write-back, then background eviction.
     */
    void accessBatch(const SuperblockBin *bins, std::size_t count);

    /** Install a payload hook (used by the training examples). */
    void setTouchCallback(TouchFn fn) { touchFn = std::move(fn); }

    /** The attached hot-row cache, or nullptr when disabled. */
    cache::HotEmbeddingCache *hotCache() { return cache_.get(); }
    const cache::HotEmbeddingCache *hotCache() const
    {
        return cache_.get();
    }

    const LaoramConfig &laoramConfig() const { return lcfg; }

    /** Aggregate preprocessing statistics over runTrace() calls. */
    std::uint64_t binsFormed() const { return nBins; }
    std::uint64_t accessesPreprocessed() const { return nPreprocessed; }
    std::uint64_t futureLinkedMembers() const { return nFutureLinked; }

    /**
     * Windows fully served so far (via serveWindow). After a
     * restoreFrom this tells the caller where to resume a trace:
     * replay the remaining windows with
     * PipelineConfig::firstWindowIndex = windowsServed() and the
     * per-window seed streams line up byte for byte.
     */
    std::uint64_t windowsServed() const { return nWindowsServed; }

    /** Adds superblock/look-ahead counters to the tree sections. */
    void saveClientState(serde::Serializer &s) const override;
    void restoreClientState(serde::Deserializer &d) override;

  private:
    /**
     * Serve the scheduled access of one bin/batch member: run the
     * cache protocol around touchFn so hot rows are authoritative in
     * client DRAM while the stash payload still carries the same
     * final bytes as a cache-off run.
     */
    void touchMember(BlockId id, std::vector<std::uint8_t> &payload);

    LaoramConfig lcfg;
    TouchFn touchFn;
    std::unique_ptr<cache::HotEmbeddingCache> cache_;

    std::uint64_t nBins = 0;
    std::uint64_t nPreprocessed = 0;
    std::uint64_t nFutureLinked = 0;
    std::uint64_t nWindowsServed = 0;

    std::vector<oram::Leaf> scratchLeaves;

    /** Per-bin/batch remap staging for PositionMap::setBatch. */
    std::vector<BlockId> scratchRemapIds;
    std::vector<oram::Leaf> scratchRemapLeaves;
};

} // namespace laoram::core

#endif // LAORAM_CORE_LAORAM_CLIENT_HH
