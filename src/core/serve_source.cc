#include "core/serve_source.hh"

#include <algorithm>

#include "util/logging.hh"

namespace laoram::core {

TraceSource::TraceSource(const std::vector<BlockId> &trace,
                         std::uint64_t windowAccesses,
                         std::uint64_t firstWindowIndex)
    : trace(trace),
      window(windowAccesses == 0
                 ? std::max<std::uint64_t>(trace.size(), 1)
                 : windowAccesses),
      firstWindow(firstWindowIndex)
{
}

std::uint64_t
TraceSource::numWindows() const
{
    return (trace.size() + window - 1) / window;
}

bool
TraceSource::nextWindow(SourceWindow &out)
{
    // A single atomic ticket keeps indices contiguous under any
    // number of claiming threads; the slice copy is what decouples
    // the window's lifetime from this source (a few KiB per window,
    // negligible next to the preprocessing it feeds).
    const std::uint64_t w =
        nextIndex.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t start = w * window;
    if (start >= trace.size())
        return false;
    const std::uint64_t stop =
        std::min<std::uint64_t>(start + window, trace.size());
    // Resumed streams continue the original numbering: window index
    // and trace offset are both rebased past the windows the engine
    // already served before its checkpoint.
    out.windowIndex = firstWindow + w;
    out.traceOffset = firstWindow * window + start;
    out.accesses.assign(trace.begin() + start, trace.begin() + stop);
    return true;
}

} // namespace laoram::core
