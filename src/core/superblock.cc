#include "core/superblock.hh"

#include <sstream>
#include <unordered_set>

namespace laoram::core {

std::string
validateBin(const SuperblockBin &bin)
{
    std::ostringstream err;
    if (bin.members.empty()) {
        err << "bin has no members";
        return err.str();
    }
    if (bin.members.size() != bin.nextPaths.size()) {
        err << "members/nextPaths size mismatch: " << bin.members.size()
            << " vs " << bin.nextPaths.size();
        return err.str();
    }
    if (bin.rawAccesses < bin.members.size()) {
        err << "rawAccesses " << bin.rawAccesses
            << " below member count " << bin.members.size();
        return err.str();
    }
    std::unordered_set<BlockId> seen;
    for (BlockId id : bin.members) {
        if (!seen.insert(id).second) {
            err << "duplicate member " << id;
            return err.str();
        }
    }
    return {};
}

} // namespace laoram::core
