/**
 * @file
 * ServeSource — the one abstraction behind every LAORAM run loop.
 *
 * Historically the repo grew three parallel entry points that all did
 * the same thing — chunk an access stream into look-ahead windows,
 * preprocess each window with its window-derived path stream, and
 * serve the windows in order: Laoram::runTrace, BatchPipeline's
 * runConcurrent/runSimulated, and ShardedLaoram::runTrace. The online
 * serving frontend (src/serve/) would have been a fourth. ServeSource
 * inverts the dependency: a source *produces* numbered windows of raw
 * accesses on demand, and BatchPipeline::run(ServeSource&) is the
 * single code path that preprocesses and serves them. The legacy
 * trace entry points are thin adapters over TraceSource; the session
 * ingress implements the same interface and inherits the whole
 * pipeline (preprocessor pool, reorder stage, backpressure,
 * determinism contract) for free.
 *
 * Contract (what keeps the pipeline deadlock-free and deterministic):
 *
 *  - nextWindow() is thread-safe and assigns window indices
 *    contiguously (0, 1, 2, ...), returning each index together with
 *    its data. An index is only ever handed out once, *with* its
 *    accesses — so every claimed reorder-window sequence number is
 *    eventually pushed, the invariant ReorderWindow's deadlock-freedom
 *    rests on (see core/reorder_window.hh).
 *  - nextWindow() may block until a window's worth of accesses exists
 *    (the online ingress does); it returns false only at permanent
 *    end of stream.
 *  - The window contents must be a pure function of the source's own
 *    state, never of pipeline scheduling: the pipeline calls
 *    nextWindow from preprocessor threads in arbitrary order, and the
 *    determinism contract (identical bytes for any prepThreads /
 *    queueDepth / pool size) holds only if window w holds the same
 *    accesses every time the same logical stream is replayed.
 *  - windowServing/windowServed fire on the serving thread, strictly
 *    in window order, around each window's stage-2 ORAM work. They
 *    are where an online source applies request payloads (via the
 *    engine touch callback) and completes futures.
 */

#ifndef LAORAM_CORE_SERVE_SOURCE_HH
#define LAORAM_CORE_SERVE_SOURCE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/superblock.hh"
#include "util/latency_histogram.hh"

namespace laoram::core {

/** One claimed look-ahead window of raw accesses, in stream order. */
struct SourceWindow
{
    std::uint64_t windowIndex = 0; ///< contiguous stream position
    std::uint64_t traceOffset = 0; ///< first access's stream offset
    std::vector<BlockId> accesses; ///< raw ids (duplicates allowed)
};

/** A producer of numbered look-ahead windows (see file comment). */
class ServeSource
{
  public:
    virtual ~ServeSource() = default;

    /**
     * Claim the next window: blocks until one is available, fills
     * @p out, and returns true; returns false at end of stream.
     * Thread-safe; indices are assigned contiguously per source.
     */
    virtual bool nextWindow(SourceWindow &out) = 0;

    /**
     * Serving-thread hook: window @p windowIndex is about to be
     * served (its bins will run through the engine next).
     */
    virtual void windowServing(std::uint64_t windowIndex)
    {
        (void)windowIndex;
    }

    /**
     * Serving-thread hook: window @p windowIndex finished serving —
     * every member was touched and the path unions written back.
     */
    virtual void windowServed(std::uint64_t windowIndex)
    {
        (void)windowIndex;
    }

    /**
     * Per-request latency sink, or nullptr when the source has no
     * request timestamps (trace replay). When non-null, the pipeline
     * publishes its report() as PipelineReport::latency after the
     * run. Recording happens on the source's own threads; the
     * pipeline only reads it after the serving loop finished.
     */
    virtual StreamingHistogram *latencyHistogram() { return nullptr; }
};

/**
 * The legacy offline path as a ServeSource: slices a pre-built trace
 * into fixed windows. Thread-safe claiming via an atomic ticket; the
 * trace must outlive the source.
 */
class TraceSource final : public ServeSource
{
  public:
    /**
     * @param windowAccesses accesses per window; 0 = whole trace.
     * @param firstWindowIndex stream position of the trace's first
     *        window: 0 for a fresh run; a restored engine resuming
     *        mid-stream passes its windowsServed() and hands this
     *        source only the *remaining* trace suffix, so emitted
     *        window indices (and trace offsets) continue the original
     *        stream's numbering.
     */
    TraceSource(const std::vector<BlockId> &trace,
                std::uint64_t windowAccesses,
                std::uint64_t firstWindowIndex = 0);

    bool nextWindow(SourceWindow &out) override;

    /** Total windows this source will emit. */
    std::uint64_t numWindows() const;

  private:
    const std::vector<BlockId> &trace;
    std::uint64_t window;
    std::uint64_t firstWindow;
    std::atomic<std::uint64_t> nextIndex{0};
};

/**
 * A per-shard bundle of ServeSources for ShardedLaoram::serve: lane s
 * of the serving pool drives shardSource(s) through its own
 * BatchPipeline. Implementations must keep each shard source
 * independently consumable — lanes run concurrently.
 */
class ShardedServeSource
{
  public:
    virtual ~ShardedServeSource() = default;

    /** Shard @p shard's window stream (engine-local block ids). */
    virtual ServeSource &shardSource(std::uint32_t shard) = 0;

    /**
     * Fold the request latencies of every lane into @p into (used for
     * ShardedPipelineReport::aggregate.latency). Only called after
     * all lanes finished. Default: no latency data, leave untouched.
     */
    virtual void mergedLatency(StreamingHistogram &into)
    {
        (void)into;
    }
};

} // namespace laoram::core

#endif // LAORAM_CORE_SERVE_SOURCE_HH
