#include "core/preprocessor.hh"

#include <unordered_map>
#include <unordered_set>

#include "util/logging.hh"

namespace laoram::core {

Preprocessor::Preprocessor(const PreprocessorConfig &cfg,
                           std::uint64_t seed)
    : cfg(cfg), baseSeed(seed)
{
    LAORAM_ASSERT(cfg.superblockSize >= 1,
                  "superblock size must be >= 1");
    LAORAM_ASSERT(cfg.numLeaves >= 1, "preprocessor needs numLeaves");
}

std::uint64_t
Preprocessor::windowSeed(std::uint64_t baseSeed,
                         std::uint64_t windowIndex)
{
    std::uint64_t state =
        baseSeed + 0x9E3779B97F4A7C15ULL * (windowIndex + 1);
    return splitMix64(state);
}

PreprocessResult
Preprocessor::run(const std::vector<BlockId> &stream) const
{
    return run(stream.data(), stream.data() + stream.size());
}

PreprocessResult
Preprocessor::run(const BlockId *begin, const BlockId *end) const
{
    Rng rng(windowSeed(baseSeed, 0));
    return preprocessWindow(cfg, begin, end, rng);
}

WindowSchedule
Preprocessor::runWindow(std::uint64_t windowIndex,
                        std::uint64_t traceOffset,
                        const BlockId *begin, const BlockId *end) const
{
    WindowSchedule sched;
    sched.windowIndex = windowIndex;
    sched.traceOffset = traceOffset;
    Rng rng(windowSeed(baseSeed, windowIndex));
    sched.result = preprocessWindow(cfg, begin, end, rng);
    return sched;
}

PreprocessResult
preprocessWindow(const PreprocessorConfig &cfg, const BlockId *begin,
                 const BlockId *end, Rng &rng)
{
    PreprocessResult res;
    res.totalAccesses = static_cast<std::uint64_t>(end - begin);

    // --- Step 1: dataset scan -> bins of S distinct ids. ---
    std::unordered_set<BlockId> window_unique;
    std::unordered_set<BlockId> open_members;
    SuperblockBin open;
    open.firstIndex = 0;

    auto close_bin = [&](SuperblockBin &&bin) {
        bin.path = rng.nextBounded(cfg.numLeaves);
        res.bins.push_back(std::move(bin));
        open_members.clear();
    };

    std::uint64_t index = 0;
    for (const BlockId *p = begin; p != end; ++p, ++index) {
        const BlockId id = *p;
        window_unique.insert(id);
        if (open.members.empty())
            open.firstIndex = index;
        ++open.rawAccesses;
        if (open_members.insert(id).second)
            open.members.push_back(id);
        if (open.full(cfg.superblockSize)) {
            close_bin(std::move(open));
            open = SuperblockBin{};
        }
    }
    if (!open.members.empty())
        close_bin(std::move(open));

    res.uniqueBlocks = window_unique.size();

    // --- Step 2: future-path metadata via one backward sweep. ---
    // nextPathOf[b] holds the path of the nearest *later* bin that
    // contains b (later relative to the bin being processed).
    std::unordered_map<BlockId, Leaf> nextPathOf;
    nextPathOf.reserve(res.uniqueBlocks);
    for (std::size_t i = res.bins.size(); i-- > 0;) {
        SuperblockBin &bin = res.bins[i];
        bin.nextPaths.resize(bin.members.size(), kNoFuturePath);
        for (std::size_t j = 0; j < bin.members.size(); ++j) {
            auto it = nextPathOf.find(bin.members[j]);
            if (it != nextPathOf.end()) {
                bin.nextPaths[j] = it->second;
                ++res.futureLinked;
            }
        }
        // Only now does this bin become "the next occurrence" for the
        // bins that precede it.
        for (BlockId id : bin.members)
            nextPathOf[id] = bin.path;
    }
    return res;
}

} // namespace laoram::core
