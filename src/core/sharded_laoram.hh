/**
 * @file
 * Hash-sharded multi-tree LAORAM with a serving-thread pool.
 *
 * The paper's client (§IV) serves one ORAM tree from one serving
 * thread; production embedding traffic wants many. ShardedLaoram
 * splits one logical block space across N independent Laoram engines
 * (one tree, stash, position map and traffic meter each) and serves
 * all shards concurrently: a pool of serving threads runs one
 * two-stage pipeline — preprocessor-thread pool + reorder window +
 * serving thread (§VIII-A) — per shard, with prepThreadBudget
 * splitting a global preprocessor-thread budget over the lanes.
 *
 * Sharding is deterministic and reproducible by construction: the
 * splitter is a pure function of (numBlocks, numShards, salt), every
 * shard engine is seeded by a stable pure function of (base seed,
 * shard index), and a shard's serve stream is byte-identical to
 * running that shard's sub-trace through a standalone Laoram with the
 * same derived config — the PR-1 determinism contract, now per shard.
 *
 * Security note: each shard is an independent ORAM over its slice of
 * the id space, so the adversary learns which *shard* a request hits
 * (as in any multi-server/disaggregated ORAM deployment) but nothing
 * about which block within the shard. The hash split keeps shard
 * choice independent of access popularity structure.
 */

#ifndef LAORAM_CORE_SHARDED_LAORAM_HH
#define LAORAM_CORE_SHARDED_LAORAM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "mem/traffic_meter.hh"
#include "util/serde.hh"

namespace laoram::core {

/**
 * Deterministic block-id -> (shard, local id) bijection.
 *
 * Global ids are assigned to shards either by a stateless mixing hash
 * (hashed()) or by an arbitrary caller-supplied assignment
 * (fromAssignment(); per-table sharding for TableSet routes whole
 * tables this way). Within a shard, local ids are dense — assigned by
 * scanning global ids in increasing order — so each shard engine runs
 * over a compact [0, shardBlocks) space with its own small tree.
 */
class ShardSplitter
{
  public:
    /** Salt folded into the shard hash (stable across versions). */
    static constexpr std::uint64_t kShardHashSalt = 0x5A4D5348;

    /**
     * Hash-shard [0, numBlocks): shard(id) = mix(id ^ salt) mod
     * numShards with a SplitMix64 finaliser, so shard choice is
     * uncorrelated with id locality (consecutive rows of one table
     * spread over all shards).
     */
    static ShardSplitter hashed(std::uint64_t numBlocks,
                                std::uint32_t numShards,
                                std::uint64_t salt = kShardHashSalt);

    /**
     * Shard by explicit per-block assignment: @p shardOfBlock[g] is
     * the shard of global id g; every value must be < @p numShards.
     */
    static ShardSplitter
    fromAssignment(std::vector<std::uint32_t> shardOfBlock,
                   std::uint32_t numShards);

    std::uint32_t numShards() const { return nShards; }
    std::uint64_t numBlocks() const { return shardOf_.size(); }

    std::uint32_t
    shardOf(BlockId global) const
    {
        return shardOf_[global];
    }

    /** Dense id of @p global inside its shard. */
    BlockId
    localId(BlockId global) const
    {
        return localOf_[global];
    }

    /** Inverse of (shardOf, localId). */
    BlockId
    globalId(std::uint32_t shard, BlockId local) const
    {
        return globals_[shard][local];
    }

    /** Blocks assigned to @p shard. */
    std::uint64_t
    shardBlocks(std::uint32_t shard) const
    {
        return globals_[shard].size();
    }

    /**
     * Split a global trace into per-shard local traces, preserving
     * per-shard access order (the projection of the logical stream
     * onto each shard).
     */
    std::vector<std::vector<BlockId>>
    splitTrace(const std::vector<BlockId> &trace) const;

    /**
     * Checkpoint support: serialize the assignment table (shard
     * count + per-block shard), the source of truth a restored or
     * resharded deployment rebuilds its routing from.
     */
    void save(serde::Serializer &s) const;

    /**
     * Rebuild a splitter from save()'s bytes. Throws SnapshotError
     * (not a fatal assert) on a malformed table so a corrupt manifest
     * is rejected loudly instead of aborting the process.
     */
    static ShardSplitter restore(serde::Deserializer &d);

  private:
    ShardSplitter(std::vector<std::uint32_t> shardOfBlock,
                  std::uint32_t numShards);

    std::uint32_t nShards = 1;
    std::vector<std::uint32_t> shardOf_; ///< global -> shard
    std::vector<BlockId> localOf_;       ///< global -> dense local id
    std::vector<std::vector<BlockId>> globals_; ///< inverse map
};

/** Sharded-engine knobs. */
struct ShardedLaoramConfig
{
    /**
     * Template for every shard engine: numBlocks is the *global*
     * block-space size (each shard covers its slice), seed is the
     * base seed the per-shard seeds derive from. lookaheadWindow is
     * overridden per shard by pipeline.windowAccesses, the single
     * source of truth for window boundaries.
     */
    LaoramConfig engine;

    /** Number of independent ORAM trees. */
    std::uint32_t numShards = 4;

    /**
     * Serving threads in the pool (0 = one per shard). Each busy
     * thread owns one shard's full two-stage pipeline, so the live
     * thread count is at most (1 + prepThreads) x this value.
     */
    std::uint32_t servingThreads = 0;

    /**
     * Total preprocessor-thread budget shared by the concurrently
     * served shard pipelines (0 = no budget: every shard pipeline
     * uses pipeline.prepThreads as-is). When set, each of the
     * poolSize in-flight pipelines runs max(1, budget / poolSize)
     * preprocessor threads, so the whole run keeps roughly
     * `budget` prep threads live regardless of the shard count —
     * the shards x preps split in one knob.
     */
    std::uint32_t prepThreadBudget = 0;

    /** Per-shard pipeline knobs (window size, queue depth, prep
     *  threads, mode). */
    PipelineConfig pipeline;

    /**
     * Per-shard laoram_node endpoints ("host:port" / "unix:PATH").
     * Empty = local/self-hosted storage, the default. When set, the
     * list must hold exactly numShards entries: shard s's engine
     * dials shardEndpoints[s] (storage kind forced to Remote), so
     * one trace is served over N real storage processes. Each node
     * serves one shard tree — a node accepts any number of client
     * connections, which is the per-node connection pool.
     */
    std::vector<std::string> shardEndpoints;
};

/** One shard's slice of a sharded run. */
struct ShardReport
{
    std::uint64_t accesses = 0;       ///< sub-trace length
    PipelineReport pipeline;          ///< that shard's pipeline run
    mem::TrafficCounters traffic;     ///< delta over the run
    double simNs = 0.0;               ///< simulated serve time delta
};

/**
 * Aggregated view of a sharded run: traffic and stash stats summed
 * over shards, wall/simulated times max-over-shards (shards run
 * concurrently), plus the per-shard breakdown.
 */
struct ShardedPipelineReport
{
    /**
     * Combined PipelineReport. Thread-*work* fields (windows,
     * prep/serve/IO totals) are summed over shards; *elapsed-time*
     * fields are not — lanes run concurrently, so wallTotalNs is the
     * measured end-to-end pool wall time, pipelinedNs and the
     * wallFill/wallStall/wallReorderStall waits are max-over-lanes
     * (summing concurrent waits would overstate elapsed time and make
     * aggregate throughput math dishonest), and the hidden fractions
     * are the prep-weighted averages of the per-shard fractions.
     * latency merges every lane's request histogram (online sources
     * only; all-zero for trace replay).
     */
    PipelineReport aggregate;

    /** Element-wise sum of every shard's traffic counters. */
    mem::TrafficCounters traffic;

    /** Max-over-shards simulated serve time (concurrent shards). */
    double simNs = 0.0;

    /** Sum-over-shards simulated serve time (total ORAM work). */
    double simTotalNs = 0.0;

    std::vector<ShardReport> shards;
};

/**
 * N independent Laoram engines behind one logical block space, served
 * by a pool of pipeline threads.
 *
 * Thread-safety: runTrace serves distinct shards from distinct pool
 * threads concurrently. An installed touch callback is invoked under
 * that concurrency — it receives the *global* block id and must be
 * safe to call from several threads at once for blocks of different
 * shards (per-block payload mutation, as in training, is safe).
 */
class ShardedLaoram
{
  public:
    /** Hash-sharded over cfg.engine.base.numBlocks. */
    explicit ShardedLaoram(const ShardedLaoramConfig &cfg);

    /** Custom split (e.g. per-table routing from TableSet). */
    ShardedLaoram(const ShardedLaoramConfig &cfg,
                  ShardSplitter splitter);

    // Pinned in place: installed touch-callback wrappers capture
    // this object's splitter by reference, so moving would leave
    // them dangling.
    ShardedLaoram(const ShardedLaoram &) = delete;
    ShardedLaoram &operator=(const ShardedLaoram &) = delete;
    ShardedLaoram(ShardedLaoram &&) = delete;
    ShardedLaoram &operator=(ShardedLaoram &&) = delete;

    /**
     * Stable per-shard engine seed: a pure function of the base seed
     * and the shard index. A standalone Laoram built over shard i's
     * block count with this seed reproduces shard i byte for byte.
     */
    static std::uint64_t shardSeed(std::uint64_t baseSeed,
                                   std::uint32_t shard);

    /**
     * The exact LaoramConfig shard @p i runs under (shrunken block
     * space, derived seed, pipeline-aligned look-ahead window) — what
     * a determinism test hands to a reference engine.
     */
    LaoramConfig shardEngineConfigFor(std::uint32_t shard) const;

    /**
     * THE sharded run loop: serve every shard's window stream
     * concurrently, one two-stage pipeline per shard lane, at most
     * servingPoolSize() lanes in flight. Lanes claim shards off an
     * atomic ticket, so a source whose shard streams only end on
     * explicit shutdown (the online frontend) needs
     * servingPoolSize() == numShards — otherwise a waiting lane
     * starves the unclaimed shards (the frontend enforces this).
     */
    ShardedPipelineReport serve(ShardedServeSource &source);

    /**
     * Legacy adapter over serve(): split @p trace across the shards
     * and serve each sub-trace as a TraceSource lane.
     */
    ShardedPipelineReport runTrace(const std::vector<BlockId> &trace);

    /**
     * Fold rep.shards into rep.aggregate / rep.traffic / rep.simNs /
     * rep.simTotalNs (expects those fields default-initialised).
     * Sums thread-work fields, maxes elapsed-time fields — the
     * wallFill/wallStall/wallReorderStall waits of concurrent lanes
     * overlap in time, so their aggregate is the slowest lane, not
     * the sum. Exposed for the aggregation regression tests.
     *
     * @param concurrentLanes shard pipelines in flight at once
     * @param prepThreadsPerLane stage-1 pool size of each lane
     * @param wallTotalNs measured end-to-end pool wall time
     */
    static void aggregateShardReports(ShardedPipelineReport &rep,
                                      std::uint32_t concurrentLanes,
                                      std::uint32_t prepThreadsPerLane,
                                      double wallTotalNs);

    /**
     * The pipeline knobs each shard actually runs under: cfg.pipeline
     * with prepThreads rewritten when prepThreadBudget is set (the
     * budget divided over the serving pool, at least 1 per shard).
     */
    PipelineConfig effectiveShardPipeline() const;

    /** Serving-pool size runTrace will use (lanes in flight). */
    std::uint32_t servingPoolSize() const;

    /**
     * Payload hook applied at bin-access time, called with the
     * *global* block id (see class comment for thread-safety). The
     * callback survives reshard(): it is re-installed on the rebuilt
     * shard engines.
     */
    void setTouchCallback(Laoram::TouchFn fn);

    /**
     * Snapshot the whole sharded deployment to client-side sidecar
     * files: a ShardedManifest frame at @p basePath holding the
     * splitter assignment table, plus each shard engine's own Engine
     * frame at shardCheckpointPath(basePath, shard). Call between
     * serve() runs only — serve() returning is the quiesce point
     * (every lane's serving thread has delivered its last window).
     *
     * Restore path: construct a ShardedLaoram whose
     * cfg.engine.base.checkpoint = {basePath, restore=true} over the
     * matching reopened shard trees; the manifest is validated and
     * replaces the splitter before the engines are built, and each
     * shard engine restores its own sidecar during construction.
     */
    void checkpointToFile(const std::string &basePath);

    /**
     * Shard @p shard's sidecar file for a manifest at @p basePath:
     * the same ".shard-<derived seed>" suffix rule
     * oram::shardEngineConfig applies to storage and checkpoint
     * paths, so manifest and engine frames restore consistently.
     */
    std::string shardCheckpointPath(const std::string &basePath,
                                    std::uint32_t shard) const;

    /**
     * Elastic reshard N -> M over the same logical block space, at a
     * window boundary (call between serve() runs, never while one is
     * in flight). Drains every source shard through its engine's
     * oblivious read path, tears the source engines down (flushing
     * and unmapping their storage), rebuilds M hash-sharded engines,
     * and re-inserts every payload through the target engine's write
     * path — so lookups after reshard return byte-identical payloads.
     * With payloadBytes == 0 (pattern-level simulation) there is no
     * payload state to migrate and reshard reduces to the rebuild.
     *
     * Storage note: rebuilt engines always initialise fresh trees
     * (keepExisting is cleared) — shard seeds are a pure function of
     * (base seed, shard index), so source and target shard files can
     * collide on disk and the old tree bytes are dead after the
     * drain. Checkpoint restore flags are likewise cleared: the
     * rebuilt engines' state comes from the migration, not from
     * pre-reshard sidecars (whose geometry no longer matches).
     */
    void reshard(std::uint32_t newShards);

    /** Reshard onto an explicit splitter (custom routing). */
    void reshard(ShardSplitter newSplitter);

    std::uint32_t numShards() const { return splitter_.numShards(); }
    const ShardSplitter &splitter() const { return splitter_; }
    Laoram &shard(std::uint32_t i) { return *engines_[i]; }
    const Laoram &shard(std::uint32_t i) const { return *engines_[i]; }

    /** Sum of every shard's live traffic counters. */
    mem::TrafficCounters totalCounters() const;

    /** Max-over-shards simulated clock (concurrent serve time). */
    double simNs() const;

    /** Server tree bytes summed over shards. */
    std::uint64_t serverBytes() const;

    const ShardedLaoramConfig &config() const { return cfg; }

  private:
    void buildEngines();

    /**
     * Construction-time restore: read + validate the manifest at
     * cfg.engine.base.checkpoint.path and replace splitter_ with the
     * recorded assignment (must agree with cfg on shard and block
     * counts). Runs before buildEngines so shard geometry derives
     * from the restored routing.
     */
    void restoreManifest();

    ShardedLaoramConfig cfg;
    ShardSplitter splitter_;
    std::vector<std::unique_ptr<Laoram>> engines_;
    Laoram::TouchFn touchFn_;
};

} // namespace laoram::core

#endif // LAORAM_CORE_SHARDED_LAORAM_HH
