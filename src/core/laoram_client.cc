#include "core/laoram_client.hh"

#include <algorithm>

#include "core/pipeline.hh"
#include "util/logging.hh"

namespace laoram::core {

Laoram::Laoram(const LaoramConfig &cfg)
    : TreeOramBase(cfg.base), lcfg(cfg)
{
    LAORAM_ASSERT(lcfg.superblockSize >= 1,
                  "superblock size must be >= 1");
    if (lcfg.cache.enabled()) {
        if (lcfg.base.payloadBytes == 0)
            LAORAM_FATAL("the hot-row cache caches payload bytes; "
                         "it cannot be enabled on a metadata-only "
                         "engine (payloadBytes == 0)");
        cache_ = std::make_unique<cache::HotEmbeddingCache>(
            lcfg.cache, lcfg.base.payloadBytes);
    }
    // Last: restore may replay a snapshot into the cache just built.
    restoreAtConstructionIfConfigured();
}

std::string
Laoram::name() const
{
    const char *tree = geom.profile().isUniform() ? "" : "-fat";
    return std::string("LAORAM") + tree + "/S"
        + std::to_string(lcfg.superblockSize);
}

void
Laoram::access(BlockId id, oram::AccessOp op, const std::uint8_t *in,
               std::size_t len, std::vector<std::uint8_t> *out)
{
    LAORAM_ASSERT(id < cfg.numBlocks, "block ", id, " out of range");
    mtr.recordLogicalAccess();

    const Leaf current = posmap_.get(id);
    if (stash_.contains(id))
        mtr.recordStashHit();
    readPathMetered(current);

    const Leaf next = randomLeaf();
    posmap_.set(id, next);
    oram::StashEntry &entry = stashEntryFor(id, next);
    if (!cache_) {
        applyOp(entry, op, in, len, out);
    } else {
        // The single-access path runs the same protocol as a
        // scheduled touch so a resident row — which may carry
        // deferred admission-time updates newer than the stash —
        // stays the authoritative copy. Unlike a scheduled touch the
        // caller's op is new, so Flushed still applies it: the
        // deferred value was folded into the payload and this
        // access's path write is its coalesced write-back.
        switch (cache_->beginScheduledAccess(id, entry.payload)) {
          case cache::AccessOutcome::Flushed:
          case cache::AccessOutcome::HitInPlace:
            applyOp(entry, op, in, len, out);
            cache_->completeScheduledAccess(id, entry.payload);
            break;
          case cache::AccessOutcome::Miss:
            applyOp(entry, op, in, len, out);
            cache_->fill(id, entry.payload);
            break;
        }
    }

    writePathMetered(current);
    backgroundEvict();
    mtr.observeStashSize(stash_.size());
}

void
Laoram::runTrace(const std::vector<BlockId> &trace)
{
    if (trace.empty())
        return;
    // Adapter over the unified run loop: a Simulated-mode pipeline on
    // the calling thread is exactly the serial flow (windows numbered
    // from 0, each preprocessed with its window-derived path stream,
    // served in order) — the determinism contract's reference leg.
    PipelineConfig pc;
    pc.mode = PipelineMode::Simulated;
    pc.windowAccesses =
        lcfg.lookaheadWindow == 0 ? trace.size() : lcfg.lookaheadWindow;
    BatchPipeline(*this, pc).run(trace);
}

void
Laoram::runTrace(const std::vector<WindowSchedule> &schedules)
{
    for (const WindowSchedule &sched : schedules)
        serveWindow(sched.result);
}

void
Laoram::serveWindow(const PreprocessResult &window)
{
    nBins += window.bins.size();
    nPreprocessed += window.totalAccesses;
    nFutureLinked += window.futureLinked;
    ++nWindowsServed;

    if (lcfg.batchAccesses == 0) {
        for (const SuperblockBin &bin : window.bins)
            accessBin(bin);
        return;
    }

    // Group consecutive bins into training batches by raw access
    // count and serve each batch with one union read/write.
    std::size_t first = 0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < window.bins.size(); ++i) {
        acc += window.bins[i].rawAccesses;
        if (acc >= lcfg.batchAccesses) {
            accessBatch(window.bins.data() + first, i - first + 1);
            first = i + 1;
            acc = 0;
        }
    }
    if (first < window.bins.size())
        accessBatch(window.bins.data() + first,
                    window.bins.size() - first);
}

void
Laoram::accessBatch(const SuperblockBin *bins, std::size_t count)
{
    LAORAM_ASSERT(count > 0, "empty training batch");

    // Gather the batch's distinct current paths.
    scratchLeaves.clear();
    std::uint64_t raw = 0;
    for (std::size_t b = 0; b < count; ++b) {
        const SuperblockBin &bin = bins[b];
        LAORAM_ASSERT(bin.members.size() == bin.nextPaths.size(),
                      "bin missing future-path metadata");
        raw += bin.rawAccesses;
        for (BlockId id : bin.members) {
            if (stash_.contains(id))
                mtr.recordStashHit();
            scratchLeaves.push_back(posmap_.get(id));
        }
    }
    mtr.recordLogicalAccesses(raw);
    std::sort(scratchLeaves.begin(), scratchLeaves.end());
    scratchLeaves.erase(
        std::unique(scratchLeaves.begin(), scratchLeaves.end()),
        scratchLeaves.end());

    readPathsBatchedMetered(scratchLeaves);

    // Resolve every member's future path first — random draws happen
    // in stream order, so the rng stream matches the per-member code
    // this replaces — then apply the whole batch's remaps in one
    // position-map pass. A block appearing in several bins ends up on
    // its final future path (setBatch applies in order, last wins) —
    // exactly as if the bins ran back-to-back.
    scratchRemapIds.clear();
    scratchRemapLeaves.clear();
    for (std::size_t b = 0; b < count; ++b) {
        const SuperblockBin &bin = bins[b];
        for (std::size_t j = 0; j < bin.members.size(); ++j) {
            scratchRemapIds.push_back(bin.members[j]);
            scratchRemapLeaves.push_back(
                bin.nextPaths[j] == kNoFuturePath ? randomLeaf()
                                                  : bin.nextPaths[j]);
        }
    }
    posmap_.setBatch(scratchRemapIds.data(), scratchRemapLeaves.data(),
                     scratchRemapIds.size());

    // Touch every member in stream order (repeated members keep
    // re-targeting their stash entry, so the final entry leaf matches
    // the per-member code path).
    for (std::size_t i = 0; i < scratchRemapIds.size(); ++i) {
        oram::StashEntry &entry =
            stashEntryFor(scratchRemapIds[i], scratchRemapLeaves[i]);
        touchMember(scratchRemapIds[i], entry.payload);
    }

    writePathsBatchedMetered(scratchLeaves);
    backgroundEvict();
    mtr.observeStashSize(stash_.size());
}

void
Laoram::accessBin(const SuperblockBin &bin)
{
    LAORAM_ASSERT(!bin.members.empty(), "empty superblock bin");
    LAORAM_ASSERT(bin.members.size() == bin.nextPaths.size(),
                  "bin missing future-path metadata");
    mtr.recordLogicalAccesses(bin.rawAccesses);

    // Collect the *distinct* current paths of the members. In steady
    // state every member was remapped onto this bin's path by its
    // previous access, so this collapses to a single leaf — the whole
    // point of the look-ahead (paper §IV).
    scratchLeaves.clear();
    for (BlockId id : bin.members) {
        if (stash_.contains(id))
            mtr.recordStashHit();
        scratchLeaves.push_back(posmap_.get(id));
    }
    std::sort(scratchLeaves.begin(), scratchLeaves.end());
    scratchLeaves.erase(
        std::unique(scratchLeaves.begin(), scratchLeaves.end()),
        scratchLeaves.end());

    // Union-batched read: shared prefix nodes are fetched once. In
    // steady state this degenerates to a single path read per bin —
    // the S-fold reduction the paper reports.
    readPathsBatchedMetered(scratchLeaves);

    // Remap every member to its future-bin path (uniform random when
    // the look-ahead window holds no further occurrence — either way
    // the new path is uniform and independent, §VI). Paths are
    // resolved first, in stream order so the rng stream is unchanged,
    // then applied as one batched position-map pass before the
    // member touches.
    scratchRemapLeaves.clear();
    for (std::size_t j = 0; j < bin.members.size(); ++j) {
        scratchRemapLeaves.push_back(
            bin.nextPaths[j] == kNoFuturePath ? randomLeaf()
                                              : bin.nextPaths[j]);
    }
    posmap_.setBatch(bin.members.data(), scratchRemapLeaves.data(),
                     bin.members.size());
    for (std::size_t j = 0; j < bin.members.size(); ++j) {
        oram::StashEntry &entry =
            stashEntryFor(bin.members[j], scratchRemapLeaves[j]);
        touchMember(bin.members[j], entry.payload);
    }

    // Write the fetched path union back (deepest-first greedy; each
    // union node is written exactly once).
    writePathsBatchedMetered(scratchLeaves);

    backgroundEvict();
    mtr.observeStashSize(stash_.size());
}

void
Laoram::touchMember(BlockId id, std::vector<std::uint8_t> &payload)
{
    if (!cache_) {
        if (touchFn)
            touchFn(id, payload);
        return;
    }
    switch (cache_->beginScheduledAccess(id, payload)) {
      case cache::AccessOutcome::Flushed:
        // Admission-time ops were already applied to the row; this
        // scheduled access is their coalesced write-back (the row was
        // copied into the stash payload above) and must NOT run
        // touchFn again.
        return;
      case cache::AccessOutcome::HitInPlace:
        if (touchFn)
            touchFn(id, payload);
        cache_->completeScheduledAccess(id, payload);
        return;
      case cache::AccessOutcome::Miss:
        if (touchFn)
            touchFn(id, payload);
        cache_->fill(id, payload);
        return;
    }
}

void
Laoram::saveClientState(serde::Serializer &s) const
{
    TreeOramBase::saveClientState(s);
    // superblockSize shapes bin formation, so it is part of the
    // geometry a snapshot must agree on.
    s.u64(lcfg.superblockSize);
    s.u64(nBins);
    s.u64(nPreprocessed);
    s.u64(nFutureLinked);
    s.u64(nWindowsServed);
    // Hot-cache contents are trusted client state (which ids are hot
    // is exactly the access pattern ORAM hides), so they ride in the
    // client snapshot and restore warm.
    s.u8(cache_ ? 1 : 0);
    if (cache_)
        cache_->save(s);
}

void
Laoram::restoreClientState(serde::Deserializer &d)
{
    TreeOramBase::restoreClientState(d);
    const std::uint64_t sbSize = d.u64();
    if (sbSize != lcfg.superblockSize)
        throw serde::SnapshotError(
            "snapshot superblock size " + std::to_string(sbSize)
            + " does not match this engine's "
            + std::to_string(lcfg.superblockSize));
    nBins = d.u64();
    nPreprocessed = d.u64();
    nFutureLinked = d.u64();
    nWindowsServed = d.u64();
    const std::uint8_t hasCache = d.u8();
    if (hasCache != 0 && !cache_)
        throw serde::SnapshotError(
            "snapshot carries a hot-cache section but this engine "
            "has no cache configured; re-enable the cache (or "
            "re-checkpoint without one) to restore");
    if (hasCache != 0) {
        cache_->restore(d);
    } else if (cache_) {
        // Snapshot predates the cache being enabled: start cold.
        cache_->clear();
    }
}

} // namespace laoram::core
