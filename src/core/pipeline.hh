/**
 * @file
 * The two-stage LAORAM pipeline (paper §VIII-A).
 *
 * Stage 1 (preprocessor) scans the *next* look-ahead window while
 * stage 2 (trainer GPU + ORAM) serves the current one. The paper
 * reports that preprocessing is orders of magnitude cheaper than
 * training and therefore falls off the critical path; BatchPipeline
 * reproduces that claim quantitatively by simulating both stage costs
 * and computing the pipelined makespan.
 */

#ifndef LAORAM_CORE_PIPELINE_HH
#define LAORAM_CORE_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "core/laoram_client.hh"

namespace laoram::core {

/** Pipeline knobs. */
struct PipelineConfig
{
    /** Accesses per pipeline window (one "several batches" chunk). */
    std::uint64_t windowAccesses = 4096;

    /**
     * Simulated preprocessing cost per scanned access (hash-set insert
     * + path draw on a CPU thread; deliberately generous).
     */
    double preprocessNsPerAccess = 25.0;
};

/** Result of a pipelined run. */
struct PipelineReport
{
    std::uint64_t windows = 0;
    double totalPrepNs = 0.0;     ///< stage-1 work, summed
    double totalAccessNs = 0.0;   ///< stage-2 (ORAM) work, summed
    double serialNs = 0.0;        ///< no overlap: prep + access
    double pipelinedNs = 0.0;     ///< two-stage overlapped makespan
    /**
     * Fraction of *hideable* preprocessing removed from the critical
     * path by the overlap (0..1). The first window's preprocessing is
     * pipeline fill and excluded; with ORAM access time dominating,
     * this reaches 1.0 — the paper's "preprocessing is not on the
     * critical training path".
     */
    double prepHiddenFraction = 0.0;
};

/**
 * Drives a Laoram engine window by window with overlapped
 * preprocessing, mirroring the paper's deployment.
 */
class BatchPipeline
{
  public:
    BatchPipeline(Laoram &engine, const PipelineConfig &cfg);

    /** Run the full trace; returns the pipeline timing report. */
    PipelineReport run(const std::vector<BlockId> &trace);

  private:
    Laoram &engine;
    PipelineConfig cfg;
    Preprocessor prep;
};

} // namespace laoram::core

#endif // LAORAM_CORE_PIPELINE_HH
