/**
 * @file
 * The two-stage LAORAM pipeline (paper §VIII-A), generalised to a
 * configurable pool of preprocessor threads.
 *
 * Stage 1 (preprocessor pool) scans *future* look-ahead windows while
 * stage 2 (trainer GPU + ORAM) serves the current one. The paper
 * reports that preprocessing is orders of magnitude cheaper than
 * training and therefore falls off the critical path; when it is not
 * (large superblocks, heavy windows), prepThreads > 1 preprocesses
 * several windows concurrently so stage 1 keeps up.
 *
 * Two modes reproduce the paper's claim:
 *
 *  - Concurrent (default): prepThreads real preprocessor threads
 *    claim window indices from a shared ticket, build WindowSchedules
 *    concurrently, and push them — tagged with their window index —
 *    into a bounded ReorderWindow. The serving thread pops windows
 *    strictly in stream order; the window bound is the backpressure
 *    that caps how far ahead preprocessing may run. The report
 *    carries *measured* wall-clock overlap numbers, per-prep-thread
 *    utilization, and the reorder (head-of-line) stall share.
 *  - Simulated: the original analytic cost model — stage costs are
 *    simulated and the pipelined makespan computed, so Fig.-style
 *    benches stay exactly reproducible.
 *
 * Determinism for any prepThreads: window w's bin paths come from a
 * per-window derived RNG stream (Preprocessor::windowSeed), never
 * from call order, and the reorder stage restores exact stream order
 * before serving — so every payload byte, position-map entry, and
 * stash state matches the serial Laoram::runTrace regardless of how
 * the pool's threads interleave.
 */

#ifndef LAORAM_CORE_PIPELINE_HH
#define LAORAM_CORE_PIPELINE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/laoram_client.hh"
#include "core/serve_source.hh"
#include "util/latency_histogram.hh"

namespace laoram::core {

/** How BatchPipeline::run executes the two stages. */
enum class PipelineMode
{
    Concurrent, ///< real threads + bounded queue, measured overlap
    Simulated,  ///< analytic cost model only (no threads spawned)
};

/** Pipeline knobs. */
struct PipelineConfig
{
    /** Accesses per pipeline window (one "several batches" chunk). */
    std::uint64_t windowAccesses = 4096;

    /**
     * Simulated preprocessing cost per scanned access (hash-set insert
     * + path draw on a CPU thread; deliberately generous). Feeds the
     * modeled report fields in both modes.
     */
    double preprocessNsPerAccess = 25.0;

    PipelineMode mode = PipelineMode::Concurrent;

    /**
     * Reorder-window depth for Concurrent mode: how many prepared
     * windows may wait between the stages. Depth 1 forces strict
     * lock-step hand-off; larger depths absorb stage jitter at the
     * cost of more prepared-schedule client memory. (Up to
     * prepThreads further windows can be mid-build on top of the
     * buffered ones, so peak prepared-state memory is bounded by
     * queueDepth + prepThreads windows.)
     */
    std::size_t queueDepth = 4;

    /**
     * Preprocessor threads in the stage-1 pool (Concurrent mode;
     * Simulated mode ignores it). Results are byte-identical for any
     * value — see the file comment — so this is purely a throughput
     * knob for prep-bound configurations.
     */
    std::size_t prepThreads = 1;

    /**
     * Emulated stage-1 wall-time floor per scanned access (Concurrent
     * mode): after building a window, the preprocessor thread
     * busy-spins until the window's stage-1 time reaches this many ns
     * per access. The paper's preprocessor decrypts and parses the
     * upcoming training samples inside the trusted client (§IV-B) — a
     * cost our synthetic in-memory traces do not pay — so this knob
     * recreates the prep-bound regime where the pool matters. Zero
     * (default) adds nothing, and no served byte changes either way.
     */
    double prepLoadNsPerAccess = 0.0;

    /**
     * Stream position of the first window this run serves. 0 (the
     * default) is a fresh trace; a restored engine resuming a trace
     * mid-stream passes its windowsServed() here, and the trace
     * overload of run() replays only the remaining windows — with the
     * original stream's window numbering, so every window-derived
     * preprocessor path stream (Preprocessor::windowSeed) matches the
     * uninterrupted run byte for byte. Callers handing run() a custom
     * ServeSource must make the source number its windows from this
     * same base.
     */
    std::uint64_t firstWindowIndex = 0;

    /**
     * Window-boundary quiesce hook, fired on the serving thread right
     * after window @p w finished serving (after the source's
     * windowServed). Between windows the serving thread owns every
     * piece of engine state — stage-1 preprocessor threads never
     * touch the engine — so this is the safe point to checkpoint():
     * the ReorderWindow sequencing guarantees no later window has
     * started. Null (default) fires nothing.
     */
    std::function<void(std::uint64_t w)> windowBoundaryHook;

    // ---- Named setter-style defaults: build a config by chaining
    // ---- only the knobs that differ from the defaults, e.g.
    // ----   PipelineConfig{}.withWindowAccesses(256).withPrepThreads(4)
    PipelineConfig &
    withWindowAccesses(std::uint64_t v)
    {
        windowAccesses = v;
        return *this;
    }

    PipelineConfig &
    withPreprocessCost(double nsPerAccess)
    {
        preprocessNsPerAccess = nsPerAccess;
        return *this;
    }

    PipelineConfig &
    withMode(PipelineMode m)
    {
        mode = m;
        return *this;
    }

    PipelineConfig &
    withQueueDepth(std::size_t v)
    {
        queueDepth = v;
        return *this;
    }

    PipelineConfig &
    withPrepThreads(std::size_t v)
    {
        prepThreads = v;
        return *this;
    }

    PipelineConfig &
    withPrepLoad(double nsPerAccess)
    {
        prepLoadNsPerAccess = nsPerAccess;
        return *this;
    }

    PipelineConfig &
    withFirstWindow(std::uint64_t v)
    {
        firstWindowIndex = v;
        return *this;
    }

    PipelineConfig &
    withWindowBoundaryHook(std::function<void(std::uint64_t)> hook)
    {
        windowBoundaryHook = std::move(hook);
        return *this;
    }

    /**
     * Reject incoherent knob combinations with a clear LAORAM_FATAL
     * (user error, exit 1) instead of a silent fallback: zero window
     * or queue sizes, negative cost models, and Simulated-mode
     * requests for machinery that only exists in Concurrent mode
     * (a preprocessor pool, an emulated prep load). Called by
     * BatchPipeline's constructor; callers building configs by hand
     * can invoke it early for fail-fast CLI validation.
     */
    void validate() const;
};

/** Result of a pipelined run. */
struct PipelineReport
{
    std::uint64_t windows = 0;

    // ---- Modeled (analytic cost model; identical in both modes). ----
    double totalPrepNs = 0.0;     ///< stage-1 work, summed
    double totalAccessNs = 0.0;   ///< stage-2 (ORAM) work, summed
    double serialNs = 0.0;        ///< no overlap: prep + access
    double pipelinedNs = 0.0;     ///< two-stage overlapped makespan
    /**
     * Fraction of *hideable* preprocessing removed from the critical
     * path by the overlap (0..1). The first window's preprocessing is
     * pipeline fill and excluded; with ORAM access time dominating,
     * this reaches 1.0 — the paper's "preprocessing is not on the
     * critical training path".
     */
    double prepHiddenFraction = 0.0;

    // ---- Measured (wall clock; Concurrent mode only, else zero). ----
    double wallPrepNs = 0.0;   ///< stage-1 thread work, summed
    double wallServeNs = 0.0;  ///< stage-2 thread work, summed
    double wallTotalNs = 0.0;  ///< end-to-end run() wall time
    double wallFillNs = 0.0;   ///< serve-thread wait for window 0
    double wallStallNs = 0.0;  ///< serve-thread waits after the fill

    /**
     * The head-of-line share of wallStallNs: serve-thread wait for
     * the next-in-sequence window while *later* windows were already
     * prepared and buffered. Zero with one preprocessor thread
     * (windows arrive in order); with a pool it is the price of the
     * determinism-preserving reorder stage.
     */
    double wallReorderStallNs = 0.0;

    // ---- Per-prep-thread breakdown (Concurrent mode only). ----
    std::uint32_t prepThreads = 0; ///< stage-1 pool size used

    /** Wall time thread t spent preprocessing windows, by thread. */
    std::vector<double> prepThreadBusyNs;

    /**
     * Busy share of each prep thread's lifetime (0..1). Low values
     * mean the thread mostly waited on reorder-window backpressure —
     * the pool is larger than the serving thread can consume.
     */
    std::vector<double> prepThreadUtilization;

    /** Windows preprocessed by each thread (sums to `windows`). */
    std::vector<std::uint64_t> prepThreadWindows;

    // ---- Measured backend I/O (real storage work; both modes). ----
    /**
     * Measured wall time the serving stage spent inside the storage
     * backend (slot reads/writes/flushes) over this run — the first
     * stall component that is *genuine I/O wait* rather than queue
     * wait. DRAM-backed runs report the in-memory encode/decode cost;
     * file-backed runs include the page faults that pull tree nodes
     * from disk.
     */
    double wallIoNs = 0.0;
    /**
     * Share of the serving thread's busy time spent in backend I/O
     * (wallIoNs / wallServeNs, Concurrent mode; 0 in Simulated mode
     * where no serve wall time is measured).
     */
    double ioServeFraction = 0.0;
    /**
     * Measured counterpart of prepHiddenFraction: of the wall-clock
     * preprocessing time that *could* overlap serving (everything
     * after the pipeline fill), the fraction that never stalled the
     * serving thread. 1.0 means the serving thread ran back-to-back —
     * preprocessing was entirely off the measured critical path.
     */
    double measuredPrepHiddenFraction = 0.0;

    // ---- Per-request latency (online sources only; see below). ----
    /**
     * Request-level latency percentiles, populated when the run's
     * ServeSource carries per-request timestamps (the session ingress
     * in src/serve/). All-zero for trace replay, which has no
     * requests to time.
     */
    LatencyReport latency;

    // ---- Hot-cache tier (zero when no cache is attached). ----
    /**
     * Hot-embedding-cache counter deltas over this run plus the
     * end-of-run occupancy levels. hits+misses equals the scheduled
     * member touches; the server-visible trace is unaffected either
     * way (dummy-access invariant).
     */
    cache::CacheStats cache;
};

/**
 * Drives a Laoram engine window by window with overlapped
 * preprocessing, mirroring the paper's deployment.
 *
 * The pipeline owns its own Preprocessor, seeded exactly like the
 * engine's internal one, so a pipelined run reproduces the serial
 * engine.runTrace byte for byte (same bins, same paths, same
 * traffic) — provided cfg.windowAccesses equals the engine's
 * effective look-ahead window (lookaheadWindow, or the whole trace
 * when that is 0), since window boundaries determine bin formation.
 */
class BatchPipeline
{
  public:
    BatchPipeline(Laoram &engine, const PipelineConfig &cfg);

    /**
     * THE run loop: drain @p source window by window through the
     * two-stage pipeline until it reports end of stream. Every other
     * entry point (the trace overload below, Laoram::runTrace,
     * ShardedLaoram's per-shard lanes, the serve/ frontend) funnels
     * into this method.
     */
    PipelineReport run(ServeSource &source);

    /**
     * Legacy adapter: run a pre-built trace by wrapping it in a
     * TraceSource sliced at cfg.windowAccesses.
     */
    PipelineReport run(const std::vector<BlockId> &trace);

  private:
    PipelineReport runConcurrent(ServeSource &source);
    PipelineReport runSimulated(ServeSource &source);

    /** Fill the modeled report fields from per-window stage costs. */
    static void finishModeledReport(PipelineReport &rep,
                                    const std::vector<double> &prepNs,
                                    const std::vector<double> &accessNs);

    Laoram &engine;
    PipelineConfig cfg;
    Preprocessor prep;
};

} // namespace laoram::core

#endif // LAORAM_CORE_PIPELINE_HH
