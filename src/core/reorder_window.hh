/**
 * @file
 * The pipeline's deterministic reorder stage: a bounded,
 * sequence-numbered hand-off between a pool of preprocessor threads
 * and one serving thread.
 *
 * With several preprocessor threads racing, prepared windows arrive
 * in scheduling order, not stream order — but the LAORAM determinism
 * contract (serial runTrace == pipelined run, byte for byte) requires
 * the serving thread to consume windows in exact stream order.
 * ReorderWindow restores that order: producers push items tagged with
 * a sequence number, the consumer pops them strictly in sequence, and
 * a bounded capacity window provides the backpressure that keeps
 * preprocessing from running arbitrarily far ahead.
 *
 * Deadlock freedom: provided sequence numbers are claimed
 * contiguously (0, 1, 2, ...) and every claimed number is eventually
 * pushed (or the window closed), the producer holding the *lowest*
 * outstanding sequence number is always admitted — its distance to
 * the consumer's cursor is zero, which is within any capacity — so
 * the stage cannot wedge no matter how producers interleave. This is
 * why the preprocessor pool pushes into the reorder window directly:
 * inserting another queue in front of it (one relay thread feeding
 * the window) breaks the invariant and can deadlock.
 */

#ifndef LAORAM_CORE_REORDER_WINDOW_HH
#define LAORAM_CORE_REORDER_WINDOW_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "util/logging.hh"
#include "util/walltime.hh"

namespace laoram::core {

namespace detail {

/** Live reorder metrics, shared by every ReorderWindow<T> instance. */
struct ReorderMetrics
{
    obs::Gauge &buffered;
    obs::Counter &holWaits;
    obs::Counter &holWaitNs;
};

inline ReorderMetrics &
reorderMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static ReorderMetrics m{
        reg.gauge("pipeline.reorder.buffered",
                  "prepared windows buffered in reorder stages"),
        reg.counter("pipeline.reorder.hol_waits",
                    "consumer waits with later windows buffered"),
        reg.counter("pipeline.reorder.hol_wait_ns",
                    "time spent in head-of-line waits"),
    };
    return m;
}

} // namespace detail

/**
 * Bounded blocking reorder buffer; safe for concurrent push/pop/close
 * (many producers, one consumer).
 */
template <typename T>
class ReorderWindow
{
  public:
    /** Consumer-side wait accounting (all fields monotonic). */
    struct Stats
    {
        /** Total consumer wait inside pop()/popDeferred(). */
        std::int64_t popWaitNs = 0;

        /**
         * The reorder-specific share of popWaitNs: time the consumer
         * waited for the next-in-sequence item while *later* items
         * were already buffered — the head-of-line stall that only
         * exists because preprocessing runs out of order.
         */
        std::int64_t headOfLineWaitNs = 0;

        std::uint64_t delivered = 0;    ///< items popped in sequence
        std::uint64_t maxOccupancy = 0; ///< peak buffered items
    };

    /**
     * RAII hand-off ticket mirroring BoundedQueue::SlotToken:
     * releasing it (or letting it unwind) wakes producers blocked on
     * the slot the pop vacated, so the consumer can timestamp its
     * hand-off before producers are re-admitted — and a consumer that
     * throws mid-window still cannot strand the pool.
     */
    class ReleaseToken
    {
      public:
        ReleaseToken() = default;
        ~ReleaseToken() { release(); }

        ReleaseToken(ReleaseToken &&other) noexcept
            : window(std::exchange(other.window, nullptr))
        {
        }

        ReleaseToken &
        operator=(ReleaseToken &&other) noexcept
        {
            if (this != &other) {
                release();
                window = std::exchange(other.window, nullptr);
            }
            return *this;
        }

        ReleaseToken(const ReleaseToken &) = delete;
        ReleaseToken &operator=(const ReleaseToken &) = delete;

        /** Wake blocked producers now instead of at destruction. */
        void
        release()
        {
            if (window != nullptr) {
                window->notFull.notify_all();
                window = nullptr;
            }
        }

        /** True while the token still owes the producer wakeup. */
        bool held() const { return window != nullptr; }

      private:
        friend class ReorderWindow<T>;
        explicit ReleaseToken(ReorderWindow<T> *w) : window(w) {}

        ReorderWindow<T> *window = nullptr;
    };

    /**
     * @param firstSeq the sequence number the consumer cursor starts
     *        at — 0 for fresh streams, the resume window index when a
     *        restored engine continues a trace mid-stream.
     */
    explicit ReorderWindow(std::size_t capacity,
                           std::uint64_t firstSeq = 0)
        : slots(capacity), cap(capacity), nextSeq(firstSeq)
    {
        LAORAM_ASSERT(capacity >= 1,
                      "reorder window needs capacity >= 1");
    }

    ReorderWindow(const ReorderWindow &) = delete;
    ReorderWindow &operator=(const ReorderWindow &) = delete;

    /**
     * Block until @p seq fits inside the window (seq < consumer
     * cursor + capacity), then buffer @p item under it.
     *
     * @return false iff the window was closed (item dropped)
     */
    bool
    push(std::uint64_t seq, T item)
    {
        std::unique_lock<std::mutex> lock(mu);
        LAORAM_ASSERT(seq >= nextSeq, "sequence ", seq,
                      " already delivered (cursor ", nextSeq, ")");
        notFull.wait(lock,
                     [&] { return closed || seq - nextSeq < cap; });
        if (closed)
            return false;
        Slot &slot = slots[seq % cap];
        LAORAM_ASSERT(!slot.occupied, "duplicate sequence ", seq);
        slot.item = std::move(item);
        slot.occupied = true;
        ++occupancy;
        st.maxOccupancy = std::max(st.maxOccupancy, occupancy);
        if (obs::metricsEnabled())
            detail::reorderMetrics().buffered.inc();
        const bool ready = seq == nextSeq;
        lock.unlock();
        if (ready)
            notReady.notify_one();
        return true;
    }

    /**
     * Block until the next-in-sequence item is available, or the
     * window is closed with that item missing.
     *
     * After close(), the contiguous run of already-buffered items is
     * still drained in order; the first sequence gap ends the stream
     * (out-of-order leftovers past a gap can never be delivered
     * deterministically and are dropped with the window).
     *
     * @return true with @p out filled, or false on exhaustion
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu);
        if (!waitForNext(lock))
            return false;
        takeNext(out);
        lock.unlock();
        notFull.notify_all();
        return true;
    }

    /**
     * Like pop(), but defers the producer wakeup to @p token (see
     * ReleaseToken; the rationale matches BoundedQueue::popDeferred).
     *
     * @return true with @p out and @p token filled, or false on
     *         exhaustion (token left empty)
     */
    bool
    popDeferred(T &out, ReleaseToken &token)
    {
        std::unique_lock<std::mutex> lock(mu);
        if (!waitForNext(lock)) {
            token = ReleaseToken(); // exhaustion leaves the token empty
            return false;
        }
        takeNext(out);
        lock.unlock();
        token = ReleaseToken(this);
        return true;
    }

    /** End-of-stream: wake all waiters; further push() calls fail. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            closed = true;
        }
        notFull.notify_all();
        notReady.notify_all();
    }

    std::size_t capacity() const { return cap; }

    /** Next sequence number the consumer will deliver. */
    std::uint64_t
    nextSequence() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return nextSeq;
    }

    /** Items currently buffered (in or out of order). */
    std::uint64_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return occupancy;
    }

    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return st;
    }

  private:
    struct Slot
    {
        T item;
        bool occupied = false;
    };

    /**
     * Wait (accumulating stats) until slots[nextSeq] is present;
     * false when the window closed without it. Caller holds @p lock.
     */
    bool
    waitForNext(std::unique_lock<std::mutex> &lock)
    {
        while (!slots[nextSeq % cap].occupied) {
            if (closed)
                return false;
            // Classify the coming wait: if anything is buffered, the
            // consumer is stalled purely by out-of-order arrival
            // (head-of-line), not by an empty pipeline. Sampled at
            // wait entry; a mid-wait arrival keeps the entry label —
            // a deliberate, documented approximation.
            const bool headOfLine = occupancy > 0;
            const WallClock::time_point t0 = WallClock::now();
            notReady.wait(lock);
            const std::int64_t waited = elapsedNs(t0, WallClock::now());
            st.popWaitNs += waited;
            if (headOfLine) {
                st.headOfLineWaitNs += waited;
                if (obs::metricsEnabled()) {
                    detail::ReorderMetrics &m =
                        detail::reorderMetrics();
                    m.holWaits.inc();
                    m.holWaitNs.add(
                        static_cast<std::uint64_t>(waited));
                }
            }
        }
        return true;
    }

    /** Move slots[nextSeq] into @p out and advance the cursor. */
    void
    takeNext(T &out)
    {
        Slot &slot = slots[nextSeq % cap];
        out = std::move(slot.item);
        slot.item = T{};
        slot.occupied = false;
        --occupancy;
        ++nextSeq;
        ++st.delivered;
        if (obs::metricsEnabled())
            detail::reorderMetrics().buffered.dec();
    }

    mutable std::mutex mu;
    std::condition_variable notFull;
    std::condition_variable notReady;
    std::vector<Slot> slots;
    std::size_t cap;
    std::uint64_t nextSeq = 0;
    std::uint64_t occupancy = 0;
    bool closed = false;
    Stats st;
};

} // namespace laoram::core

#endif // LAORAM_CORE_REORDER_WINDOW_HH
