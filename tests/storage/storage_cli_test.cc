/**
 * @file
 * storage_cli parsing tests: the shared --storage* option plumbing
 * was previously only exercised indirectly through the examples.
 * These cover the defaulted happy path, every rejection branch of
 * storageConfigFromArgsChecked (unknown backend, mmap without a
 * path, unknown durability, --storage-keep without a persistent
 * backing file, --remote-* knobs without --storage=remote, the
 * --checkpoint-path/--restore combination rules), the remote
 * link-knob parsing, and the durability-name round-trip.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/storage_cli.hh"
#include "util/cli.hh"

namespace laoram::storage {
namespace {

struct ParsedArgs
{
    ArgParser parser{"storage_cli_test", "parsing fixture"};
    StorageArgs storage;

    explicit ParsedArgs(const std::vector<std::string> &argv,
                        const std::string &defaultPath = "")
        : storage(addStorageArgs(parser, defaultPath))
    {
        std::string error;
        EXPECT_TRUE(parser.parseVector(argv, &error)) << error;
    }
};

TEST(StorageCli, DefaultsToFreshDramBufferedStore)
{
    ParsedArgs args({});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::Dram);
    EXPECT_EQ(cfg.durability, Durability::Buffered);
    EXPECT_FALSE(cfg.keepExisting);
}

TEST(StorageCli, MmapWithPathAndDurabilityParses)
{
    ParsedArgs args({"--storage", "mmap", "--storage-path", "t.tree",
                     "--storage-durability", "sync",
                     "--storage-keep"});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::MmapFile);
    EXPECT_EQ(cfg.path, "t.tree");
    EXPECT_EQ(cfg.durability, Durability::Sync);
    EXPECT_TRUE(cfg.keepExisting);
}

TEST(StorageCli, DefaultPathSeedsStoragePath)
{
    ParsedArgs args({"--storage", "mmap"}, "seeded.tree");
    StorageConfig cfg;
    ASSERT_TRUE(storageConfigFromArgsChecked(args.storage, &cfg));
    EXPECT_EQ(cfg.path, "seeded.tree");
}

TEST(StorageCli, UnknownBackendIsRejectedWithBothNames)
{
    ParsedArgs args({"--storage", "tape"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    // The message must name the offender and the accepted values.
    EXPECT_NE(error.find("tape"), std::string::npos) << error;
    EXPECT_NE(error.find("dram"), std::string::npos) << error;
    EXPECT_NE(error.find("mmap"), std::string::npos) << error;
}

TEST(StorageCli, MmapWithoutPathIsRejected)
{
    ParsedArgs args({"--storage", "mmap"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--storage-path"), std::string::npos)
        << error;
}

TEST(StorageCli, UnknownDurabilityIsRejected)
{
    ParsedArgs args({"--storage-durability", "eventually"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("eventually"), std::string::npos) << error;
    EXPECT_NE(error.find("buffered"), std::string::npos) << error;
}

TEST(StorageCli, KeepWithoutPersistentBackendIsRejected)
{
    // --storage-keep on the (default) DRAM backend would silently
    // hand the user a fresh store; it must be rejected, and the
    // message must point at the persistent alternative.
    ParsedArgs args({"--storage-keep"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--storage-keep"), std::string::npos)
        << error;
    EXPECT_NE(error.find("mmap"), std::string::npos) << error;
}

TEST(StorageCli, RejectionLeavesOutputUntouched)
{
    ParsedArgs args({"--storage", "tape"});
    StorageConfig cfg;
    cfg.kind = BackendKind::MmapFile;
    cfg.path = "sentinel";
    EXPECT_FALSE(storageConfigFromArgsChecked(args.storage, &cfg));
    EXPECT_EQ(cfg.kind, BackendKind::MmapFile);
    EXPECT_EQ(cfg.path, "sentinel");
}

TEST(StorageCli, RemoteBackendParsesWithLinkKnobs)
{
    ParsedArgs args({"--storage", "remote", "--remote-latency-us",
                     "50", "--remote-mbps", "200", "--remote-window",
                     "8"});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::Remote);
    EXPECT_EQ(cfg.remote.latencyNs, 50'000);
    EXPECT_EQ(cfg.remote.bytesPerSec, 200'000'000u);
    EXPECT_EQ(cfg.remote.windowDepth, 8u);
}

TEST(StorageCli, RemoteDefaultsToUnshapedLink)
{
    ParsedArgs args({"--storage", "remote"});
    StorageConfig cfg;
    ASSERT_TRUE(storageConfigFromArgsChecked(args.storage, &cfg));
    EXPECT_EQ(cfg.kind, BackendKind::Remote);
    EXPECT_EQ(cfg.remote.latencyNs, 0);
    EXPECT_EQ(cfg.remote.bytesPerSec, 0u);
    EXPECT_EQ(cfg.remote.windowDepth, 4u);
}

TEST(StorageCli, RemoteIgnoresSeededDefaultPath)
{
    // Examples seed --storage-path as an mmap convenience; a remote
    // node must not silently inherit it and start persisting to disk
    // — only an *explicit* --storage-path makes the node persistent.
    ParsedArgs seeded({"--storage", "remote"}, "demo.tree");
    StorageConfig cfg;
    ASSERT_TRUE(storageConfigFromArgsChecked(seeded.storage, &cfg));
    EXPECT_EQ(cfg.kind, BackendKind::Remote);
    EXPECT_TRUE(cfg.path.empty());

    // ...even when the explicit value equals the seeded default.
    ParsedArgs explicitPath(
        {"--storage", "remote", "--storage-path", "demo.tree"},
        "demo.tree");
    ASSERT_TRUE(
        storageConfigFromArgsChecked(explicitPath.storage, &cfg));
    EXPECT_EQ(cfg.path, "demo.tree");

    // mmap keeps the convenience default.
    ParsedArgs mmapSeeded({"--storage", "mmap"}, "demo.tree");
    ASSERT_TRUE(
        storageConfigFromArgsChecked(mmapSeeded.storage, &cfg));
    EXPECT_EQ(cfg.path, "demo.tree");
}

TEST(StorageCli, KeepOnRemoteWithSeededDefaultPathIsRejected)
{
    // Without an explicit path the remote node is DRAM-backed, so
    // --storage-keep is the same trap as on local DRAM — even when a
    // default path was seeded.
    ParsedArgs args({"--storage", "remote", "--storage-keep"},
                    "demo.tree");
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--storage-keep"), std::string::npos)
        << error;
}

TEST(StorageCli, RemoteFlagsOnNonRemoteBackendAreRejected)
{
    // A shaped link on a local backend measures nothing; silently
    // ignoring the flags would fake a slow-remote experiment. Every
    // --remote-* knob must be rejected unless --storage=remote.
    // The last two cases pass the *registered default* values
    // explicitly — presence tracking must reject those too, not just
    // non-default values.
    for (const std::vector<std::string> &argv :
         {std::vector<std::string>{"--remote-latency-us", "50"},
          std::vector<std::string>{"--remote-mbps", "100"},
          std::vector<std::string>{"--remote-window", "8"},
          std::vector<std::string>{"--storage", "mmap",
                                   "--storage-path", "t.tree",
                                   "--remote-latency-us", "50"},
          std::vector<std::string>{"--remote-window", "4"},
          std::vector<std::string>{"--remote-latency-us", "0"}}) {
        ParsedArgs args(argv);
        std::string error;
        EXPECT_FALSE(
            storageConfigFromArgsChecked(args.storage, nullptr,
                                         &error));
        EXPECT_NE(error.find("--storage=remote"), std::string::npos)
            << error;
    }
}

TEST(StorageCli, RemoteWindowZeroIsRejected)
{
    ParsedArgs args({"--storage", "remote", "--remote-window", "0"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--remote-window"), std::string::npos)
        << error;
}

TEST(StorageCli, KeepOnPathlessRemoteIsRejected)
{
    // A remote node without a backing path serves from its own DRAM
    // and dies with the process — same trap as --storage-keep on
    // local DRAM.
    ParsedArgs args({"--storage", "remote", "--storage-keep"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--storage-keep"), std::string::npos)
        << error;
}

TEST(StorageCli, KeepOnPersistentRemoteParses)
{
    ParsedArgs args({"--storage", "remote", "--storage-path",
                     "node.tree", "--storage-keep"});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::Remote);
    EXPECT_TRUE(cfg.keepExisting);
    EXPECT_EQ(cfg.path, "node.tree");
}

TEST(StorageCli, RemoteEndpointParsesWithRetryKnobs)
{
    ParsedArgs args({"--storage", "remote", "--remote-endpoint",
                     "node0:7070", "--remote-retries", "3",
                     "--remote-timeout-ms", "250"});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::Remote);
    EXPECT_EQ(cfg.remote.endpoint, "node0:7070");
    EXPECT_EQ(cfg.remote.maxRetries, 3u);
    EXPECT_EQ(cfg.remote.responseTimeoutMs, 250);
    EXPECT_TRUE(cfg.path.empty());

    ParsedArgs uds({"--storage", "remote", "--remote-endpoint",
                    "unix:/run/node.sock"});
    ASSERT_TRUE(storageConfigFromArgsChecked(uds.storage, &cfg,
                                             &error))
        << error;
    EXPECT_EQ(cfg.remote.endpoint, "unix:/run/node.sock");
}

TEST(StorageCli, RemoteEndpointRejectsExplicitStoragePath)
{
    // The node at the endpoint owns the tree file; a client-side
    // path would silently do nothing.
    ParsedArgs args({"--storage", "remote", "--remote-endpoint",
                     "node0:7070", "--storage-path", "t.tree"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("mutually exclusive"), std::string::npos)
        << error;
}

TEST(StorageCli, RemoteEndpointRejectsMalformedSpelling)
{
    ParsedArgs args({"--storage", "remote", "--remote-endpoint",
                     "not-an-endpoint"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--remote-endpoint"), std::string::npos)
        << error;
}

TEST(StorageCli, RetryKnobsWithoutEndpointAreRejected)
{
    // A self-hosted in-process node can never be redialled, so a
    // retry budget there would silently mean nothing.
    ParsedArgs args({"--storage", "remote", "--remote-retries", "3"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--remote-endpoint"), std::string::npos)
        << error;

    ParsedArgs timeout(
        {"--storage", "remote", "--remote-timeout-ms", "100"});
    EXPECT_FALSE(storageConfigFromArgsChecked(timeout.storage,
                                              nullptr, &error));
}

TEST(StorageCli, KeepAndCheckpointParseOnEndpointRemote)
{
    // The node at the endpoint may own a persistent tree, so keep +
    // checkpoint are allowed; the Hello handshake settles at connect
    // time whether the tree really survives.
    ParsedArgs args({"--storage", "remote", "--remote-endpoint",
                     "node0:7070", "--storage-keep",
                     "--checkpoint-path", "c.ckpt"});
    StorageConfig cfg;
    CheckpointConfig ckpt;
    std::string error;
    ASSERT_TRUE(storageConfigFromArgsChecked(args.storage, &cfg,
                                             &ckpt, &error))
        << error;
    EXPECT_TRUE(cfg.keepExisting);
    EXPECT_EQ(ckpt.path, "c.ckpt");
}

TEST(StorageCli, CheckpointPathOnPersistentBackendsParses)
{
    // mmap carries the sidecar next to its tree file...
    ParsedArgs mmapArgs({"--storage", "mmap", "--storage-path",
                         "t.tree", "--checkpoint-path", "t.ckpt"});
    StorageConfig cfg;
    CheckpointConfig ckpt;
    std::string error;
    ASSERT_TRUE(storageConfigFromArgsChecked(mmapArgs.storage, &cfg,
                                             &ckpt, &error))
        << error;
    EXPECT_EQ(ckpt.path, "t.ckpt");
    EXPECT_FALSE(ckpt.restore);

    // ...and so does a remote node with a persistent tree.
    ParsedArgs remoteArgs({"--storage", "remote", "--storage-path",
                           "node.tree", "--checkpoint-path",
                           "node.ckpt"});
    ASSERT_TRUE(storageConfigFromArgsChecked(remoteArgs.storage, &cfg,
                                             &ckpt, &error))
        << error;
    EXPECT_EQ(ckpt.path, "node.ckpt");
}

TEST(StorageCli, RestoreOverReopenedTreeParses)
{
    ParsedArgs args({"--storage", "mmap", "--storage-path", "t.tree",
                     "--storage-keep", "--checkpoint-path", "t.ckpt",
                     "--restore"});
    StorageConfig cfg;
    CheckpointConfig ckpt;
    std::string error;
    ASSERT_TRUE(storageConfigFromArgsChecked(args.storage, &cfg,
                                             &ckpt, &error))
        << error;
    EXPECT_TRUE(cfg.keepExisting);
    EXPECT_EQ(ckpt.path, "t.ckpt");
    EXPECT_TRUE(ckpt.restore);
}

TEST(StorageCli, RestoreWithoutCheckpointPathIsRejected)
{
    ParsedArgs args({"--storage", "mmap", "--storage-path", "t.tree",
                     "--storage-keep", "--restore"});
    StorageConfig cfg;
    CheckpointConfig ckpt;
    std::string error;
    EXPECT_FALSE(storageConfigFromArgsChecked(args.storage, &cfg,
                                              &ckpt, &error));
    EXPECT_NE(error.find("--checkpoint-path"), std::string::npos)
        << error;
}

TEST(StorageCli, CheckpointPathWithoutPersistentBackendIsRejected)
{
    // A trusted-state snapshot is only valid against the tree it was
    // taken with; on DRAM (local, or behind a pathless remote node)
    // the tree dies with the process, so a sidecar would restore over
    // garbage. Both must be rejected with a pointer at the
    // persistent alternatives.
    for (const std::vector<std::string> &argv :
         {std::vector<std::string>{"--checkpoint-path", "t.ckpt"},
          std::vector<std::string>{"--storage", "remote",
                                   "--checkpoint-path", "t.ckpt"}}) {
        ParsedArgs args(argv);
        StorageConfig cfg;
        CheckpointConfig ckpt;
        std::string error;
        EXPECT_FALSE(storageConfigFromArgsChecked(args.storage, &cfg,
                                                  &ckpt, &error));
        EXPECT_NE(error.find("--checkpoint-path"), std::string::npos)
            << error;
        EXPECT_NE(error.find("mmap"), std::string::npos) << error;
    }
}

TEST(StorageCli, RestoreWithoutKeepIsRejected)
{
    // Without --storage-keep the tree file is re-initialised at
    // startup, so restored client state would point into a wiped
    // store.
    ParsedArgs args({"--storage", "mmap", "--storage-path", "t.tree",
                     "--checkpoint-path", "t.ckpt", "--restore"});
    StorageConfig cfg;
    CheckpointConfig ckpt;
    std::string error;
    EXPECT_FALSE(storageConfigFromArgsChecked(args.storage, &cfg,
                                              &ckpt, &error));
    EXPECT_NE(error.find("--storage-keep"), std::string::npos)
        << error;
}

TEST(StorageCli, CheckpointFlagsWithoutConsumerAreRejected)
{
    // The storage-only overload is used by tools with no checkpoint
    // support; silently ignoring --checkpoint-path there would fake
    // durability the tool does not provide.
    ParsedArgs args({"--storage", "mmap", "--storage-path", "t.tree",
                     "--checkpoint-path", "t.ckpt"});
    StorageConfig cfg;
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error));
    EXPECT_NE(error.find("does not support"), std::string::npos)
        << error;
}

TEST(StorageCli, DurabilityModeRoundTripsThroughItsName)
{
    for (const Durability mode :
         {Durability::Buffered, Durability::Async, Durability::Sync}) {
        const std::string name = durabilityName(mode);
        ParsedArgs args({"--storage", "mmap", "--storage-path", "x",
                         "--storage-durability", name});
        StorageConfig cfg;
        std::string error;
        ASSERT_TRUE(
            storageConfigFromArgsChecked(args.storage, &cfg, &error))
            << name << ": " << error;
        EXPECT_EQ(cfg.durability, mode) << name;
        EXPECT_STREQ(durabilityName(cfg.durability), name.c_str());
    }
}

} // namespace
} // namespace laoram::storage
