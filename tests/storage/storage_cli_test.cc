/**
 * @file
 * storage_cli parsing tests: the shared --storage* option plumbing
 * was previously only exercised indirectly through the examples.
 * These cover the defaulted happy path, every rejection branch of
 * storageConfigFromArgsChecked (unknown backend, mmap without a
 * path, unknown durability, --storage-keep without a persistent
 * backing file), and the durability-name round-trip.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/storage_cli.hh"
#include "util/cli.hh"

namespace laoram::storage {
namespace {

struct ParsedArgs
{
    ArgParser parser{"storage_cli_test", "parsing fixture"};
    StorageArgs storage;

    explicit ParsedArgs(const std::vector<std::string> &argv,
                        const std::string &defaultPath = "")
        : storage(addStorageArgs(parser, defaultPath))
    {
        std::string error;
        EXPECT_TRUE(parser.parseVector(argv, &error)) << error;
    }
};

TEST(StorageCli, DefaultsToFreshDramBufferedStore)
{
    ParsedArgs args({});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::Dram);
    EXPECT_EQ(cfg.durability, Durability::Buffered);
    EXPECT_FALSE(cfg.keepExisting);
}

TEST(StorageCli, MmapWithPathAndDurabilityParses)
{
    ParsedArgs args({"--storage", "mmap", "--storage-path", "t.tree",
                     "--storage-durability", "sync",
                     "--storage-keep"});
    StorageConfig cfg;
    std::string error;
    ASSERT_TRUE(
        storageConfigFromArgsChecked(args.storage, &cfg, &error))
        << error;
    EXPECT_EQ(cfg.kind, BackendKind::MmapFile);
    EXPECT_EQ(cfg.path, "t.tree");
    EXPECT_EQ(cfg.durability, Durability::Sync);
    EXPECT_TRUE(cfg.keepExisting);
}

TEST(StorageCli, DefaultPathSeedsStoragePath)
{
    ParsedArgs args({"--storage", "mmap"}, "seeded.tree");
    StorageConfig cfg;
    ASSERT_TRUE(storageConfigFromArgsChecked(args.storage, &cfg));
    EXPECT_EQ(cfg.path, "seeded.tree");
}

TEST(StorageCli, UnknownBackendIsRejectedWithBothNames)
{
    ParsedArgs args({"--storage", "tape"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    // The message must name the offender and the accepted values.
    EXPECT_NE(error.find("tape"), std::string::npos) << error;
    EXPECT_NE(error.find("dram"), std::string::npos) << error;
    EXPECT_NE(error.find("mmap"), std::string::npos) << error;
}

TEST(StorageCli, MmapWithoutPathIsRejected)
{
    ParsedArgs args({"--storage", "mmap"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--storage-path"), std::string::npos)
        << error;
}

TEST(StorageCli, UnknownDurabilityIsRejected)
{
    ParsedArgs args({"--storage-durability", "eventually"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("eventually"), std::string::npos) << error;
    EXPECT_NE(error.find("buffered"), std::string::npos) << error;
}

TEST(StorageCli, KeepWithoutPersistentBackendIsRejected)
{
    // --storage-keep on the (default) DRAM backend would silently
    // hand the user a fresh store; it must be rejected, and the
    // message must point at the persistent alternative.
    ParsedArgs args({"--storage-keep"});
    std::string error;
    EXPECT_FALSE(
        storageConfigFromArgsChecked(args.storage, nullptr, &error));
    EXPECT_NE(error.find("--storage-keep"), std::string::npos)
        << error;
    EXPECT_NE(error.find("mmap"), std::string::npos) << error;
}

TEST(StorageCli, RejectionLeavesOutputUntouched)
{
    ParsedArgs args({"--storage", "tape"});
    StorageConfig cfg;
    cfg.kind = BackendKind::MmapFile;
    cfg.path = "sentinel";
    EXPECT_FALSE(storageConfigFromArgsChecked(args.storage, &cfg));
    EXPECT_EQ(cfg.kind, BackendKind::MmapFile);
    EXPECT_EQ(cfg.path, "sentinel");
}

TEST(StorageCli, DurabilityModeRoundTripsThroughItsName)
{
    for (const Durability mode :
         {Durability::Buffered, Durability::Async, Durability::Sync}) {
        const std::string name = durabilityName(mode);
        ParsedArgs args({"--storage", "mmap", "--storage-path", "x",
                         "--storage-durability", name});
        StorageConfig cfg;
        std::string error;
        ASSERT_TRUE(
            storageConfigFromArgsChecked(args.storage, &cfg, &error))
            << name << ": " << error;
        EXPECT_EQ(cfg.durability, mode) << name;
        EXPECT_STREQ(durabilityName(cfg.durability), name.c_str());
    }
}

} // namespace
} // namespace laoram::storage
