/**
 * @file
 * Backend conformance suite: one parameterized fixture run against
 * every SlotBackend flavour (DRAM, mmap file, a staged/
 * non-addressable reference backend, the remote-KV RPC backend over
 * an in-process server, and the same RPC backend dialled through a
 * fault-injecting TCP relay that drops the connection mid-suite),
 * crossed with encryption on/off and payloadBytes 0 / >0. Every
 * backend must be observationally identical through the
 * ServerStorage API — same records, same sink trace, same
 * vectored/single-slot semantics — reconnect-and-replay included.
 *
 * Plus mmap-specific persistence tests (byte-identical reads after
 * close/reopen, incompatible-file rejection) and an engine-level
 * test that backend choice does not change ORAM behaviour.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "../net/flaky_proxy.hh"
#include "oram/path_oram.hh"
#include "oram/server_storage.hh"
#include "storage/dram_backend.hh"
#include "storage/mmap_backend.hh"
#include "storage/remote_backend.hh"
#include "util/rng.hh"

namespace laoram::oram {
namespace {

using storage::BackendKind;
using storage::SlotBackend;
using storage::StorageConfig;

/**
 * Staged reference backend: DRAM semantics but *not* addressable
 * (mappedBase() == null), so ServerStorage exercises the generic
 * vectored staging path — the shape a remote-KV backend will use.
 */
class StagedBackend final : public SlotBackend
{
  public:
    StagedBackend(std::uint64_t slots, std::uint64_t recordBytes)
        : SlotBackend(slots, recordBytes), raw(slots * recordBytes, 0)
    {
    }

    std::string name() const override { return "staged"; }
    std::uint64_t residentBytes() const override { return raw.size(); }

  protected:
    void
    doReadSlot(std::uint64_t slot, std::uint8_t *dst) override
    {
        std::memcpy(dst, raw.data() + slot * recBytes, recBytes);
    }
    void
    doWriteSlot(std::uint64_t slot, const std::uint8_t *src) override
    {
        std::memcpy(raw.data() + slot * recBytes, src, recBytes);
    }

  private:
    std::vector<std::uint8_t> raw;
};

enum class Flavor
{
    Dram,
    Mmap,
    Staged,
    Remote,
    Proxied,
};

const char *
flavorName(Flavor f)
{
    switch (f) {
      case Flavor::Dram:
        return "Dram";
      case Flavor::Mmap:
        return "Mmap";
      case Flavor::Staged:
        return "Staged";
      case Flavor::Remote:
        return "Remote";
      case Flavor::Proxied:
        return "Proxied";
    }
    return "?";
}

using Param = std::tuple<Flavor, bool /*encrypt*/, std::uint64_t
                         /*payloadBytes*/>;

std::string
paramName(const ::testing::TestParamInfo<Param> &info)
{
    const auto [flavor, encrypt, payload] = info.param;
    return std::string(flavorName(flavor))
        + (encrypt ? "Enc" : "Plain") + "P"
        + std::to_string(payload);
}

TreeGeometry
smallGeom()
{
    return TreeGeometry(64, 64, BucketProfile::uniform(4));
}

std::string
tempPath(const std::string &tag)
{
    return ::testing::TempDir() + "laoram_conformance_" + tag + ".tree";
}

class BackendConformance : public ::testing::TestWithParam<Param>
{
  protected:
    std::unique_ptr<ServerStorage>
    makeStorage(const TreeGeometry &geom, bool keepExisting = false)
    {
        const auto [flavor, encrypt, payload] = GetParam();
        switch (flavor) {
          case Flavor::Dram: {
            StorageConfig scfg;
            return std::make_unique<ServerStorage>(geom, payload,
                                                   encrypt, kSeed,
                                                   scfg);
          }
          case Flavor::Mmap: {
            StorageConfig scfg;
            scfg.kind = BackendKind::MmapFile;
            scfg.path = path;
            scfg.keepExisting = keepExisting;
            return std::make_unique<ServerStorage>(geom, payload,
                                                   encrypt, kSeed,
                                                   scfg);
          }
          case Flavor::Staged: {
            auto backend = std::make_unique<StagedBackend>(
                geom.totalSlots(), 16 + payload);
            return std::make_unique<ServerStorage>(
                geom, payload, encrypt, kSeed, std::move(backend));
          }
          case Flavor::Remote: {
            // Self-hosted RPC node over DRAM; a tiny shaped latency
            // keeps the async-write window genuinely in flight.
            StorageConfig scfg;
            scfg.kind = BackendKind::Remote;
            scfg.remote.latencyNs = 2000;
            scfg.remote.windowDepth = 2;
            auto backend = std::make_unique<storage::RemoteKvBackend>(
                scfg, geom.totalSlots(), 16 + payload, 0);
            return std::make_unique<ServerStorage>(
                geom, payload, encrypt, kSeed, std::move(backend));
          }
          case Flavor::Proxied: {
            // Endpoint-mode client dialled through a relay that cuts
            // the link after a handful of requests: every test in the
            // suite must pass across at least one reconnect + replay.
            proxiedNode = std::make_unique<storage::RemoteKvServer>(
                storage::makeBackend(StorageConfig{},
                                     geom.totalSlots(), 16 + payload,
                                     0),
                storage::RemoteKvConfig{});
            net::FaultPlan plan;
            plan.dropAfterRequests = 4;
            proxy = std::make_unique<net::FlakyProxy>(*proxiedNode,
                                                      plan);
            StorageConfig scfg;
            scfg.kind = BackendKind::Remote;
            scfg.remote.endpoint = proxy->endpoint();
            scfg.remote.maxRetries = 6;
            scfg.remote.backoffBaseMs = 2;
            scfg.remote.backoffMaxMs = 40;
            auto backend = std::make_unique<storage::RemoteKvBackend>(
                scfg, geom.totalSlots(), 16 + payload, 0);
            return std::make_unique<ServerStorage>(
                geom, payload, encrypt, kSeed, std::move(backend));
          }
        }
        return nullptr;
    }

    void
    SetUp() override
    {
        path = tempPath(paramName(
            ::testing::TestParamInfo<Param>(GetParam(), 0)));
        std::remove(path.c_str());
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::vector<std::uint8_t>
    somePayload(std::uint8_t fill) const
    {
        const auto payload = std::get<2>(GetParam());
        return std::vector<std::uint8_t>(payload, fill);
    }

    static constexpr std::uint64_t kSeed = 77;
    std::string path;

    // Proxied flavour only; declared on the fixture so they outlive
    // the test body's ServerStorage (whose teardown still talks to
    // the node through the relay).
    std::unique_ptr<storage::RemoteKvServer> proxiedNode;
    std::unique_ptr<net::FlakyProxy> proxy;
};

TEST_P(BackendConformance, StartsAllDummies)
{
    auto g = smallGeom();
    auto s = makeStorage(g);
    StoredBlock b;
    for (std::uint64_t slot = 0; slot < s->slots(); slot += 17) {
        s->readSlot(slot, b);
        EXPECT_TRUE(b.isDummy());
    }
}

TEST_P(BackendConformance, SingleSlotRoundTrip)
{
    auto g = smallGeom();
    auto s = makeStorage(g);
    const auto payload = somePayload(0x3C);
    s->writeSlot(10, 1234, 7, payload.data(), payload.size());
    StoredBlock b;
    s->readSlot(10, b);
    EXPECT_EQ(b.id, 1234u);
    EXPECT_EQ(b.leaf, 7u);
    EXPECT_EQ(b.payload, payload);
    s->writeDummy(10);
    s->readSlot(10, b);
    EXPECT_TRUE(b.isDummy());
}

TEST_P(BackendConformance, VectoredMatchesSingleSlot)
{
    auto g = smallGeom();
    auto s = makeStorage(g);

    // Vectored write of a real/dummy mix...
    const auto p1 = somePayload(0x11);
    const auto p2 = somePayload(0x22);
    const std::vector<ServerStorage::SlotWriteOp> ops = {
        {3, 100, 5, p1.data(), p1.size()},
        {4, kInvalidBlock, 0, nullptr, 0},
        {9, 200, 9, p2.data(), p2.size()},
    };
    s->writeSlots(ops.data(), ops.size());

    // ...reads back identically through both APIs.
    const std::vector<std::uint64_t> slots = {3, 4, 9};
    std::vector<StoredBlock> vec;
    s->readSlots(slots.data(), slots.size(), vec);
    ASSERT_EQ(vec.size(), 3u);
    for (std::size_t i = 0; i < slots.size(); ++i) {
        StoredBlock single;
        s->readSlot(slots[i], single);
        EXPECT_EQ(vec[i].id, single.id);
        EXPECT_EQ(vec[i].leaf, single.leaf);
        EXPECT_EQ(vec[i].payload, single.payload);
    }
    EXPECT_EQ(vec[0].id, 100u);
    EXPECT_TRUE(vec[1].isDummy());
    EXPECT_EQ(vec[2].id, 200u);
    EXPECT_EQ(vec[2].payload, p2);
}

TEST_P(BackendConformance, SinkSeesVectoredOpsPerSlotInOrder)
{
    auto g = smallGeom();
    auto s = makeStorage(g);
    std::vector<std::pair<std::uint64_t, bool>> log;
    s->setAccessSink([&](std::uint64_t slot, bool write) {
        log.emplace_back(slot, write);
    });

    const std::vector<ServerStorage::SlotWriteOp> ops = {
        {8, 1, 0, nullptr, 0},
        {2, kInvalidBlock, 0, nullptr, 0},
    };
    s->writeSlots(ops.data(), ops.size());
    const std::vector<std::uint64_t> slots = {5, 8, 2};
    std::vector<StoredBlock> vec;
    s->readSlots(slots.data(), slots.size(), vec);

    ASSERT_EQ(log.size(), 5u);
    EXPECT_EQ(log[0], std::make_pair(std::uint64_t{8}, true));
    EXPECT_EQ(log[1], std::make_pair(std::uint64_t{2}, true));
    EXPECT_EQ(log[2], std::make_pair(std::uint64_t{5}, false));
    EXPECT_EQ(log[3], std::make_pair(std::uint64_t{8}, false));
    EXPECT_EQ(log[4], std::make_pair(std::uint64_t{2}, false));
}

TEST_P(BackendConformance, IoStatsCountSlotsAndBytes)
{
    auto g = smallGeom();
    auto s = makeStorage(g);
    const storage::IoStats before = s->ioStats();

    const std::vector<std::uint64_t> slots = {1, 2, 3, 4, 5};
    std::vector<StoredBlock> vec;
    s->readSlots(slots.data(), slots.size(), vec);
    const std::vector<ServerStorage::SlotWriteOp> ops = {
        {1, 42, 0, nullptr, 0},
        {2, kInvalidBlock, 0, nullptr, 0},
    };
    s->writeSlots(ops.data(), ops.size());

    const storage::IoStats d = s->ioStats().since(before);
    EXPECT_EQ(d.readOps, 1u);  // vectored: one op per path
    EXPECT_EQ(d.slotsRead, 5u);
    EXPECT_EQ(d.bytesRead, 5 * s->recordBytes());
    EXPECT_EQ(d.writeOps, 1u);
    EXPECT_EQ(d.slotsWritten, 2u);
    EXPECT_EQ(d.bytesWritten, 2 * s->recordBytes());
    EXPECT_GE(d.readNs, 0);
    EXPECT_GE(d.writeNs, 0);
}

TEST_P(BackendConformance, ResidentBytesReported)
{
    auto g = smallGeom();
    auto s = makeStorage(g);
    // Every slot was dummy-initialised (written), so a DRAM-like
    // backend reports the full array and an mmap tree at least one
    // resident page.
    EXPECT_GT(s->residentBytes(), 0u);
    if (std::get<0>(GetParam()) != Flavor::Mmap) {
        EXPECT_EQ(s->residentBytes(),
                  g.totalSlots() * s->recordBytes());
    }
}

TEST_P(BackendConformance, FlushSucceeds)
{
    auto g = smallGeom();
    auto s = makeStorage(g);
    const storage::IoStats before = s->ioStats();
    s->flush();
    EXPECT_EQ(s->ioStats().since(before).flushes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendConformance,
    ::testing::Combine(::testing::Values(Flavor::Dram, Flavor::Mmap,
                                         Flavor::Staged,
                                         Flavor::Remote,
                                         Flavor::Proxied),
                       ::testing::Bool(),
                       ::testing::Values(std::uint64_t{0},
                                         std::uint64_t{32})),
    paramName);

// ---------------------------------------------------- mmap persistence

class MmapReopen : public ::testing::TestWithParam<bool /*encrypt*/>
{
  protected:
    void
    SetUp() override
    {
        path = tempPath(GetParam() ? "reopen_enc" : "reopen_plain");
        std::remove(path.c_str());
    }
    void TearDown() override { std::remove(path.c_str()); }

    StorageConfig
    mmapConfig(bool keepExisting) const
    {
        StorageConfig scfg;
        scfg.kind = BackendKind::MmapFile;
        scfg.path = path;
        scfg.keepExisting = keepExisting;
        return scfg;
    }

    std::string path;
};

TEST_P(MmapReopen, ByteIdenticalAfterCloseAndReopen)
{
    const bool encrypt = GetParam();
    auto g = smallGeom();
    constexpr std::uint64_t kPayload = 24;
    constexpr std::uint64_t kSeed = 99;

    // Populate a pseudo-random mix of real and dummy slots, some
    // rewritten several times so encryption epochs diverge per slot.
    Rng rng(123);
    std::vector<StoredBlock> expect(g.totalSlots());
    {
        ServerStorage s(g, kPayload, encrypt, kSeed,
                        mmapConfig(false));
        EXPECT_FALSE(s.reopened());
        for (int round = 0; round < 3; ++round) {
            for (std::uint64_t slot = 0; slot < s.slots(); ++slot) {
                if (rng.nextBounded(3) == 0) {
                    s.writeDummy(slot);
                } else {
                    std::vector<std::uint8_t> payload(kPayload);
                    for (auto &b : payload)
                        b = static_cast<std::uint8_t>(
                            rng.nextBounded(256));
                    s.writeSlot(slot, rng.nextBounded(1 << 20),
                                rng.nextBounded(64), payload.data(),
                                payload.size());
                }
            }
        }
        for (std::uint64_t slot = 0; slot < s.slots(); ++slot)
            s.readSlot(slot, expect[slot]);
        s.flush();
    } // destructor persists epochs + schedules write-back

    // Reopen from disk: every record must decode byte-identically.
    ServerStorage s(g, kPayload, encrypt, kSeed, mmapConfig(true));
    EXPECT_TRUE(s.reopened());
    StoredBlock b;
    for (std::uint64_t slot = 0; slot < s.slots(); ++slot) {
        s.readSlot(slot, b);
        EXPECT_EQ(b.id, expect[slot].id) << "slot " << slot;
        EXPECT_EQ(b.leaf, expect[slot].leaf) << "slot " << slot;
        EXPECT_EQ(b.payload, expect[slot].payload) << "slot " << slot;
    }
}

INSTANTIATE_TEST_SUITE_P(EncryptOnOff, MmapReopen, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool> &i) {
                             return i.param ? "Encrypted" : "Plain";
                         });

TEST(MmapBackend, ReopenRejectsIncompatibleGeometry)
{
    const std::string path = tempPath("incompatible");
    std::remove(path.c_str());
    auto g = smallGeom();
    {
        ServerStorage s(g, 16, false, 0,
                        [&] {
                            StorageConfig c;
                            c.kind = BackendKind::MmapFile;
                            c.path = path;
                            return c;
                        }());
    }
    // Same file, different record size: must refuse, not clobber.
    StorageConfig c;
    c.kind = BackendKind::MmapFile;
    c.path = path;
    c.keepExisting = true;
    EXPECT_THROW(ServerStorage(g, 48, false, 0, c),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(MmapBackend, ReopenRejectsWrongEncryptionKey)
{
    const std::string path = tempPath("wrongkey");
    std::remove(path.c_str());
    auto g = smallGeom();
    StorageConfig c;
    c.kind = BackendKind::MmapFile;
    c.path = path;
    {
        ServerStorage s(g, 16, true, /*keySeed=*/1, c);
        std::vector<std::uint8_t> payload(16, 0x42);
        s.writeSlot(0, 7, 1, payload.data(), payload.size());
    }
    // Same geometry, different key: the key-check canary must reject
    // the reopen instead of silently decoding garbage records.
    c.keepExisting = true;
    EXPECT_THROW(ServerStorage(g, 16, true, /*keySeed=*/2, c),
                 std::runtime_error);
    // The right key still reopens fine.
    ServerStorage s(g, 16, true, 1, c);
    EXPECT_TRUE(s.reopened());
    StoredBlock b;
    s.readSlot(0, b);
    EXPECT_EQ(b.id, 7u);
    std::remove(path.c_str());
}

TEST(MmapBackend, KeepExistingOnMissingFileInitialisesFresh)
{
    const std::string path = tempPath("fresh");
    std::remove(path.c_str());
    auto g = smallGeom();
    StorageConfig c;
    c.kind = BackendKind::MmapFile;
    c.path = path;
    c.keepExisting = true;
    ServerStorage s(g, 8, true, 1, c);
    EXPECT_FALSE(s.reopened());
    StoredBlock b;
    s.readSlot(0, b);
    EXPECT_TRUE(b.isDummy());
    std::remove(path.c_str());
}

TEST(MmapBackend, DropPageCacheKeepsDataReadable)
{
    const std::string path = tempPath("coldcache");
    std::remove(path.c_str());
    auto g = smallGeom();
    StorageConfig c;
    c.kind = BackendKind::MmapFile;
    c.path = path;
    c.durability = storage::Durability::Sync;
    ServerStorage s(g, 32, false, 0, c);
    std::vector<std::uint8_t> payload(32, 0x77);
    s.writeSlot(5, 42, 3, payload.data(), payload.size());
    s.flush();

    const std::uint64_t before = s.residentBytes();
    s.dropPageCache();
    EXPECT_LE(s.residentBytes(), before);

    StoredBlock b;
    s.readSlot(5, b); // faults back in from the file
    EXPECT_EQ(b.id, 42u);
    EXPECT_EQ(b.payload, payload);
    std::remove(path.c_str());
}

// ------------------------------------------- engine-level equivalence

/**
 * Backend choice must be invisible to the ORAM: the same engine over
 * DRAM and over an mmap file produces identical payloads AND an
 * identical physical access trace (the adversary's view).
 */
TEST(BackendEquivalence, PathOramIdenticalAcrossBackends)
{
    const std::string path = tempPath("equivalence");
    std::remove(path.c_str());

    auto run = [](const StorageConfig &scfg) {
        EngineConfig cfg;
        cfg.numBlocks = 128;
        cfg.blockBytes = 64;
        cfg.payloadBytes = 32;
        cfg.encrypt = true;
        cfg.seed = 2024;
        cfg.storage = scfg;
        PathOram oram(cfg);

        std::vector<std::pair<std::uint64_t, bool>> trace;
        oram.storageForTest().setAccessSink(
            [&](std::uint64_t slot, bool write) {
                trace.emplace_back(slot, write);
            });

        Rng rng(5);
        std::vector<std::uint8_t> payloads;
        for (int i = 0; i < 400; ++i) {
            const BlockId id = rng.nextBounded(128);
            if (rng.nextBounded(2) == 0) {
                std::vector<std::uint8_t> data(
                    32, static_cast<std::uint8_t>(i));
                oram.writeBlock(id, data);
            } else {
                std::vector<std::uint8_t> out;
                oram.readBlock(id, out);
                payloads.insert(payloads.end(), out.begin(),
                                out.end());
            }
        }
        return std::make_pair(std::move(trace), std::move(payloads));
    };

    StorageConfig dram;
    StorageConfig mmap;
    mmap.kind = BackendKind::MmapFile;
    mmap.path = path;

    const auto [dramTrace, dramPayloads] = run(dram);
    const auto [mmapTrace, mmapPayloads] = run(mmap);
    EXPECT_EQ(dramTrace, mmapTrace);
    EXPECT_EQ(dramPayloads, mmapPayloads);
    std::remove(path.c_str());
}

} // namespace
} // namespace laoram::oram
