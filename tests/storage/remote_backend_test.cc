/**
 * @file
 * Remote-KV backend tests beyond the shared conformance suite: the
 * async write window, shaper determinism (same seed + latency config
 * => identical IoStats counts), handshake validation, persistent
 * (mmap-inner) node reopen over RPC, engine-level equivalence against
 * DRAM, and the kill-server-mid-trace error path (clean fatal, no
 * hang).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "oram/path_oram.hh"
#include "oram/server_storage.hh"
#include "storage/dram_backend.hh"
#include "storage/remote_backend.hh"
#include "util/rng.hh"

namespace laoram::storage {
namespace {

constexpr std::uint64_t kSlots = 256;
constexpr std::uint64_t kRecBytes = 48;

std::unique_ptr<RemoteKvServer>
dramServer(const RemoteKvConfig &shaping = {})
{
    return std::make_unique<RemoteKvServer>(
        std::make_unique<DramBackend>(kSlots, kRecBytes), shaping);
}

std::vector<std::uint8_t>
pattern(std::uint8_t fill)
{
    std::vector<std::uint8_t> rec(kRecBytes);
    for (std::size_t i = 0; i < rec.size(); ++i)
        rec[i] = static_cast<std::uint8_t>(fill + i);
    return rec;
}

TEST(RemoteBackend, RoundTripsThroughAttachedServer)
{
    auto server = dramServer();
    RemoteKvBackend client(server->connectClient(), kSlots, kRecBytes,
                           RemoteKvConfig{});

    const auto recA = pattern(0x10);
    const auto recB = pattern(0x60);
    const std::uint64_t slots[2] = {3, 200};
    std::vector<std::uint8_t> out(2 * kRecBytes, 0);
    std::vector<std::uint8_t> in(recA);
    in.insert(in.end(), recB.begin(), recB.end());

    client.writeSlots(slots, 2, in.data());
    client.readSlots(slots, 2, out.data());
    EXPECT_EQ(std::memcmp(out.data(), recA.data(), kRecBytes), 0);
    EXPECT_EQ(std::memcmp(out.data() + kRecBytes, recB.data(),
                          kRecBytes),
              0);

    // The write really landed on the server's inner store.
    client.flush();
    EXPECT_EQ(server->inner().ioStats().slotsWritten, 2u);
}

TEST(RemoteBackend, AsyncWriteWindowStaysBoundedAndFlushDrains)
{
    RemoteKvConfig cfg;
    cfg.windowDepth = 3;
    // Slow the node down so writes genuinely pile up in flight.
    cfg.latencyNs = 2'000'000; // 2 ms per RPC
    auto server = dramServer(cfg);
    RemoteKvBackend client(server->connectClient(), kSlots, kRecBytes,
                           cfg);

    const auto rec = pattern(0x42);
    for (std::uint64_t slot = 0; slot < 10; ++slot) {
        client.writeSlot(slot, rec.data());
        EXPECT_LE(client.inFlightWrites(), cfg.windowDepth);
    }
    EXPECT_GE(client.inFlightWrites(), 1u);

    client.flush();
    EXPECT_EQ(client.inFlightWrites(), 0u);

    // Every write is visible after the flush barrier.
    std::vector<std::uint8_t> out(kRecBytes);
    for (std::uint64_t slot = 0; slot < 10; ++slot) {
        client.readSlot(slot, out.data());
        EXPECT_EQ(out, rec) << "slot " << slot;
    }
}

TEST(RemoteBackend, ReadObservesAllPendingWrites)
{
    RemoteKvConfig cfg;
    cfg.windowDepth = 8;
    cfg.latencyNs = 1'000'000;
    auto server = dramServer(cfg);
    RemoteKvBackend client(server->connectClient(), kSlots, kRecBytes,
                           cfg);

    // Several async writes to the same slot, then an immediate read:
    // the ordered stream must deliver the *last* write's bytes even
    // though none of the writes was awaited explicitly.
    for (std::uint8_t round = 0; round < 5; ++round) {
        const auto rec = pattern(round);
        const std::uint64_t slot = 7;
        client.writeSlots(&slot, 1, rec.data());
    }
    std::vector<std::uint8_t> out(kRecBytes);
    client.readSlot(7, out.data());
    EXPECT_EQ(out, pattern(4));
}

TEST(RemoteBackend, ServerDropsConnectionOnOutOfRangeSlot)
{
    auto server = dramServer();
    const int fd = server->connectClient();

    // Hand-crafted ReadSlots frame asking for slot kSlots (one past
    // the end): wire input is untrusted, so the node must drop the
    // connection — not crash, not serve out-of-bounds bytes.
    std::vector<std::uint8_t> body;
    auto putU64 = [&body](std::uint64_t v) {
        const std::size_t at = body.size();
        body.resize(at + sizeof(v));
        std::memcpy(body.data() + at, &v, sizeof(v));
    };
    body.push_back(2); // RemoteOp::ReadSlots
    putU64(1);         // seq
    putU64(1);         // n = 1 slot
    putU64(kSlots);    // out of range
    const std::uint32_t len = static_cast<std::uint32_t>(body.size());
    ASSERT_EQ(::send(fd, &len, sizeof(len), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(len)));
    ASSERT_EQ(::send(fd, body.data(), body.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(body.size()));

    // No response frame: the next read observes EOF.
    std::uint8_t byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    ::close(fd);

    // The node survives and still serves well-behaved clients.
    RemoteKvBackend ok(server->connectClient(), kSlots, kRecBytes,
                       RemoteKvConfig{});
    const auto rec = pattern(0x05);
    ok.writeSlot(0, rec.data());
    ok.flush();
}

TEST(RemoteBackend, HandshakeRejectsGeometryMismatch)
{
    auto server = dramServer();
    EXPECT_THROW(RemoteKvBackend(server->connectClient(), kSlots + 1,
                                 kRecBytes, RemoteKvConfig{}),
                 std::runtime_error);
    EXPECT_THROW(RemoteKvBackend(server->connectClient(), kSlots,
                                 kRecBytes + 8, RemoteKvConfig{}),
                 std::runtime_error);
    // The node survives rejected clients and still serves good ones.
    RemoteKvBackend ok(server->connectClient(), kSlots, kRecBytes,
                       RemoteKvConfig{});
    const auto rec = pattern(0x01);
    ok.writeSlot(0, rec.data());
    ok.flush();
}

/**
 * Same seed + same shaper config => identical IoStats *counts*; and a
 * different shaper setting changes only measured nanoseconds, never a
 * count. This is what makes shaped-remote bench runs comparable
 * across hosts.
 */
TEST(RemoteBackend, ShaperChangesOnlyMeasuredTimeNeverCounts)
{
    auto countsOf = [](const RemoteKvConfig &shaping) {
        oram::EngineConfig cfg;
        cfg.numBlocks = 128;
        cfg.blockBytes = 64;
        cfg.payloadBytes = 16;
        cfg.encrypt = true;
        cfg.seed = 11;
        cfg.storage.kind = BackendKind::Remote;
        cfg.storage.remote = shaping;
        oram::PathOram oram(cfg);
        Rng rng(23);
        std::vector<std::uint8_t> buf;
        for (int i = 0; i < 300; ++i) {
            const oram::BlockId id = rng.nextBounded(128);
            if (rng.nextBool(0.5)) {
                std::vector<std::uint8_t> data(
                    16, static_cast<std::uint8_t>(i));
                oram.writeBlock(id, data);
            } else {
                oram.readBlock(id, buf);
            }
        }
        return oram.storageForAudit().ioStats();
    };

    RemoteKvConfig unshaped;
    RemoteKvConfig shaped;
    shaped.latencyNs = 30'000;
    shaped.bytesPerSec = 200'000'000;
    shaped.windowDepth = 2;

    const IoStats a = countsOf(unshaped);
    const IoStats b = countsOf(unshaped);
    const IoStats c = countsOf(shaped);

    // Determinism: byte-for-byte identical ledger counts per config.
    EXPECT_EQ(a.readOps, b.readOps);
    EXPECT_EQ(a.writeOps, b.writeOps);
    EXPECT_EQ(a.slotsRead, b.slotsRead);
    EXPECT_EQ(a.slotsWritten, b.slotsWritten);
    EXPECT_EQ(a.bytesRead, b.bytesRead);
    EXPECT_EQ(a.bytesWritten, b.bytesWritten);
    EXPECT_EQ(a.flushes, b.flushes);

    // Shaping invariance: counts match the unshaped run exactly.
    EXPECT_EQ(a.readOps, c.readOps);
    EXPECT_EQ(a.writeOps, c.writeOps);
    EXPECT_EQ(a.slotsRead, c.slotsRead);
    EXPECT_EQ(a.slotsWritten, c.slotsWritten);
    EXPECT_EQ(a.bytesRead, c.bytesRead);
    EXPECT_EQ(a.bytesWritten, c.bytesWritten);
    EXPECT_EQ(a.flushes, c.flushes);

    // Every synchronous read waited at least the shaped latency.
    EXPECT_GE(c.readNs,
              static_cast<std::int64_t>(c.readOps) * shaped.latencyNs);
}

TEST(RemoteBackend, PersistentNodeReopensByteIdentically)
{
    const std::string path =
        ::testing::TempDir() + "laoram_remote_reopen.tree";
    std::remove(path.c_str());

    StorageConfig scfg;
    scfg.kind = BackendKind::Remote;
    scfg.path = path; // mmap-inner node: the tree survives the server
    constexpr std::uint64_t kPayload = 24;
    constexpr std::uint64_t kSeed = 5;
    oram::TreeGeometry geom(64, 64, oram::BucketProfile::uniform(4));

    Rng rng(9);
    std::vector<oram::StoredBlock> expect(geom.totalSlots());
    {
        oram::ServerStorage s(geom, kPayload, /*encrypt=*/true, kSeed,
                              scfg);
        for (std::uint64_t slot = 0; slot < s.slots(); ++slot) {
            std::vector<std::uint8_t> payload(kPayload);
            for (auto &b : payload)
                b = static_cast<std::uint8_t>(rng.nextBounded(256));
            s.writeSlot(slot, rng.nextBounded(1 << 20),
                        rng.nextBounded(64), payload.data(),
                        payload.size());
        }
        for (std::uint64_t slot = 0; slot < s.slots(); ++slot)
            s.readSlot(slot, expect[slot]);
        s.flush();
    } // epochs persisted over WriteMeta, node torn down

    scfg.keepExisting = true;
    oram::ServerStorage s(geom, kPayload, true, kSeed, scfg);
    EXPECT_TRUE(s.reopened());
    oram::StoredBlock b;
    for (std::uint64_t slot = 0; slot < s.slots(); ++slot) {
        s.readSlot(slot, b);
        EXPECT_EQ(b.id, expect[slot].id) << "slot " << slot;
        EXPECT_EQ(b.leaf, expect[slot].leaf) << "slot " << slot;
        EXPECT_EQ(b.payload, expect[slot].payload) << "slot " << slot;
    }
    std::remove(path.c_str());
}

/**
 * Backend choice must be invisible to the ORAM: the same engine over
 * DRAM and over the RPC link produces identical payloads AND an
 * identical physical access trace.
 */
TEST(RemoteBackend, PathOramIdenticalToDramBackend)
{
    auto run = [](const StorageConfig &scfg) {
        oram::EngineConfig cfg;
        cfg.numBlocks = 128;
        cfg.blockBytes = 64;
        cfg.payloadBytes = 32;
        cfg.encrypt = true;
        cfg.seed = 2026;
        cfg.storage = scfg;
        oram::PathOram oram(cfg);

        std::vector<std::pair<std::uint64_t, bool>> trace;
        oram.storageForTest().setAccessSink(
            [&](std::uint64_t slot, bool write) {
                trace.emplace_back(slot, write);
            });

        Rng rng(3);
        std::vector<std::uint8_t> payloads;
        for (int i = 0; i < 300; ++i) {
            const oram::BlockId id = rng.nextBounded(128);
            if (rng.nextBounded(2) == 0) {
                std::vector<std::uint8_t> data(
                    32, static_cast<std::uint8_t>(i));
                oram.writeBlock(id, data);
            } else {
                std::vector<std::uint8_t> out;
                oram.readBlock(id, out);
                payloads.insert(payloads.end(), out.begin(),
                                out.end());
            }
        }
        return std::make_pair(std::move(trace), std::move(payloads));
    };

    StorageConfig dram;
    StorageConfig remote;
    remote.kind = BackendKind::Remote;
    remote.remote.latencyNs = 1000;

    const auto [dramTrace, dramPayloads] = run(dram);
    const auto [remoteTrace, remotePayloads] = run(remote);
    EXPECT_EQ(dramTrace, remoteTrace);
    EXPECT_EQ(dramPayloads, remotePayloads);
}

/**
 * A server that dies mid-trace must end the run with a clean fatal
 * (exit 1 + a pointed message), never a hang or silent corruption.
 * Threadsafe death-test style: the statement re-executes in a fresh
 * process, so the server threads never mix with the fork.
 */
TEST(RemoteServerLoss, KillServerMidTraceFailsFastNotHangs)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            auto server = dramServer();
            RemoteKvBackend client(server->connectClient(), kSlots,
                                   kRecBytes, RemoteKvConfig{});
            const auto rec = pattern(0x33);
            client.writeSlot(1, rec.data());
            client.flush(); // healthy so far

            server->shutdown(); // the node dies mid-trace

            std::vector<std::uint8_t> out(kRecBytes);
            client.readSlot(1, out.data()); // must fatal, not hang
        },
        ::testing::ExitedWithCode(1), "remote-KV connection lost");
}

} // namespace
} // namespace laoram::storage
