/**
 * @file
 * Workload-generator tests: each synthetic dataset must exhibit the
 * structural property the paper relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "workload/gaussian_gen.hh"
#include "workload/generator.hh"
#include "workload/kaggle_synth.hh"
#include "workload/permutation_gen.hh"
#include "workload/xnli_synth.hh"
#include "workload/zipf_gen.hh"

namespace laoram::workload {
namespace {

TEST(PermutationGen, FirstEpochCoversAllExactlyOnce)
{
    PermutationParams p;
    p.numBlocks = 1000;
    p.accesses = 1000;
    p.seed = 1;
    const Trace t = makePermutationTrace(p);
    ASSERT_EQ(t.size(), 1000u);
    std::set<BlockId> seen(t.accesses.begin(), t.accesses.end());
    EXPECT_EQ(seen.size(), 1000u) << "epoch must be a permutation";
    EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(PermutationGen, NoRepeatWithinEpochAcrossEpochs)
{
    PermutationParams p;
    p.numBlocks = 64;
    p.accesses = 64 * 3;
    p.seed = 2;
    const Trace t = makePermutationTrace(p);
    for (int epoch = 0; epoch < 3; ++epoch) {
        std::set<BlockId> seen;
        for (int i = 0; i < 64; ++i)
            EXPECT_TRUE(seen.insert(t.accesses[epoch * 64 + i]).second);
    }
}

TEST(PermutationGen, EpochsDiffer)
{
    PermutationParams p;
    p.numBlocks = 256;
    p.accesses = 512;
    p.seed = 3;
    const Trace t = makePermutationTrace(p);
    bool any_diff = false;
    for (int i = 0; i < 256; ++i)
        any_diff |= (t.accesses[i] != t.accesses[256 + i]);
    EXPECT_TRUE(any_diff);
}

TEST(PermutationGen, PartialEpochTail)
{
    PermutationParams p;
    p.numBlocks = 100;
    p.accesses = 150;
    const Trace t = makePermutationTrace(p);
    EXPECT_EQ(t.size(), 150u);
    std::set<BlockId> tail(t.accesses.begin() + 100,
                           t.accesses.end());
    EXPECT_EQ(tail.size(), 50u) << "tail is a prefix of a permutation";
}

TEST(GaussianGen, InRangeAndCentered)
{
    GaussianParams p;
    p.numBlocks = 100000;
    p.accesses = 50000;
    p.seed = 4;
    const Trace t = makeGaussianTrace(p);
    double sum = 0;
    for (BlockId id : t.accesses) {
        ASSERT_LT(id, p.numBlocks);
        sum += static_cast<double>(id);
    }
    EXPECT_NEAR(sum / static_cast<double>(t.size()), 50000.0, 500.0);
}

TEST(GaussianGen, HasDuplicates)
{
    GaussianParams p;
    p.numBlocks = 10000;
    p.accesses = 20000;
    const Trace t = makeGaussianTrace(p);
    EXPECT_LT(t.uniqueCount(), t.size());
}

TEST(ZipfGen, ScatterRankIsBijection)
{
    for (std::uint64_t n : {16ULL, 100ULL, 262144ULL, 10131227ULL}) {
        std::unordered_set<BlockId> seen;
        // Sample the first 1000 ranks; all images must be distinct.
        const std::uint64_t probe = std::min<std::uint64_t>(n, 1000);
        for (std::uint64_t r = 0; r < probe; ++r) {
            const BlockId id = scatterRank(r, n);
            ASSERT_LT(id, n);
            EXPECT_TRUE(seen.insert(id).second)
                << "collision at rank " << r << " n=" << n;
        }
    }
}

TEST(ZipfGen, RankScattererMatchesScatterRank)
{
    // The hoisted per-trace scatterer must reproduce the one-shot
    // scatterRank exactly, including sizes where the coprime search
    // has to step off the golden-ratio constant.
    for (std::uint64_t n :
         {1ULL, 2ULL, 16ULL, 100ULL, 255ULL, 262144ULL, 999983ULL}) {
        const RankScatterer scatter(n);
        const std::uint64_t probe = std::min<std::uint64_t>(n, 500);
        for (std::uint64_t r = 0; r < probe; ++r)
            ASSERT_EQ(scatter(r), scatterRank(r, n)) << "n=" << n;
    }
}

TEST(ZipfGen, ScatterHoistLeavesTraceUnchanged)
{
    // Regression for the per-access coprime-search hoist: the
    // scattered trace must stay the element-wise scatterRank image of
    // the unscattered trace (scattering consumes no rng draws, so
    // both runs sample identical ranks).
    ZipfParams p;
    p.numBlocks = 75000; // not a power of two: gcd search engages
    p.accesses = 20000;
    p.skew = 1.0;
    p.seed = 42;
    p.scatterRanks = true;
    const Trace scattered = makeZipfTrace(p);

    p.scatterRanks = false;
    const Trace ranks = makeZipfTrace(p);

    ASSERT_EQ(scattered.size(), ranks.size());
    for (std::uint64_t i = 0; i < ranks.size(); ++i)
        ASSERT_EQ(scattered.accesses[i],
                  scatterRank(ranks.accesses[i], p.numBlocks))
            << "trace diverges at access " << i;
}

TEST(ZipfGen, HeadIsHot)
{
    ZipfParams p;
    p.numBlocks = 100000;
    p.accesses = 50000;
    p.skew = 1.0;
    p.scatterRanks = false;
    const Trace t = makeZipfTrace(p);
    std::unordered_map<BlockId, int> freq;
    for (BlockId id : t.accesses)
        ++freq[id];
    EXPECT_GT(freq[0], 500); // rank 0 ~ 8% of harmonic mass
    EXPECT_GT(t.hotMass(10), 0.15);
}

TEST(KaggleSynth, MatchesFigure2Structure)
{
    // Fig. 2: mostly uniform scatter + thin hot band. Check (a) high
    // unique fraction, (b) hot mass concentrated in a tiny top set,
    // (c) hot ids are low indices.
    KaggleParams p;
    p.numBlocks = 1 << 20;
    p.accesses = 10000;
    p.seed = 5;
    const Trace t = makeKaggleTrace(p);

    const double unique_frac = static_cast<double>(t.uniqueCount())
        / static_cast<double>(t.size());
    EXPECT_GT(unique_frac, 0.75) << "most accesses should be cold";

    // Band mass: accesses landing inside the hot index band should
    // track hotProbability (plus a negligible uniform contribution).
    std::uint64_t in_band = 0;
    for (BlockId id : t.accesses)
        in_band += (id < p.hotSetSize);
    const double band_mass = static_cast<double>(in_band)
        / static_cast<double>(t.size());
    EXPECT_GT(band_mass, 0.10);
    EXPECT_LT(band_mass, 0.22);

    // And the head of the band is strongly reused (Zipf inside).
    EXPECT_GT(t.hotMass(64), 0.05);

    // The repeated ids live in the low-index band.
    std::unordered_map<BlockId, int> freq;
    for (BlockId id : t.accesses)
        ++freq[id];
    for (const auto &[id, n] : freq) {
        if (n >= 5) {
            EXPECT_LT(id, p.hotSetSize) << "hot id outside band";
        }
    }
}

TEST(KaggleSynth, RespectsTableSize)
{
    KaggleParams p;
    p.numBlocks = 12345;
    p.accesses = 5000;
    const Trace t = makeKaggleTrace(p);
    for (BlockId id : t.accesses)
        ASSERT_LT(id, p.numBlocks);
}

TEST(XnliSynth, HeavyDuplicates)
{
    // Zipfian token streams re-use tokens constantly (paper: XNLI has
    // near-zero dummy reads because repeats relieve the stash).
    XnliParams p;
    p.vocabSize = 262144;
    p.accesses = 50000;
    const Trace t = makeXnliTrace(p);
    const double unique_frac = static_cast<double>(t.uniqueCount())
        / static_cast<double>(t.size());
    EXPECT_LT(unique_frac, 0.5);
    EXPECT_EQ(t.numBlocks, 262144u);
    EXPECT_EQ(t.name, "xnli");
}

TEST(XnliSynth, HotTokensScatteredOverIdSpace)
{
    XnliParams p;
    p.vocabSize = 262144;
    p.accesses = 30000;
    const Trace t = makeXnliTrace(p);
    std::unordered_map<BlockId, int> freq;
    for (BlockId id : t.accesses)
        ++freq[id];
    // The most frequent id should NOT be id 0 (ranks are scattered).
    BlockId hottest = 0;
    int best = -1;
    for (const auto &[id, n] : freq) {
        if (n > best) {
            best = n;
            hottest = id;
        }
    }
    EXPECT_NE(hottest, 0u);
}

TEST(GeneratorFactory, NamesRoundTrip)
{
    for (auto kind : {DatasetKind::Permutation, DatasetKind::Gaussian,
                      DatasetKind::Kaggle, DatasetKind::Xnli}) {
        EXPECT_EQ(datasetFromName(datasetName(kind)), kind);
    }
}

TEST(GeneratorFactory, UnknownNameIsFatal)
{
    EXPECT_DEATH(datasetFromName("bogus"), "unknown dataset");
}

TEST(GeneratorFactory, PaperScalesMatchTableOne)
{
    EXPECT_EQ(paperNumBlocks(DatasetKind::Kaggle), 10131227u);
    EXPECT_EQ(paperBlockBytes(DatasetKind::Kaggle), 128u);
    EXPECT_EQ(paperNumBlocks(DatasetKind::Xnli), 262144u);
    EXPECT_EQ(paperBlockBytes(DatasetKind::Xnli), 4096u);
    EXPECT_EQ(paperNumBlocks(DatasetKind::Permutation), 8ULL << 20);
}

TEST(GeneratorFactory, ProducesRequestedShape)
{
    for (auto kind : {DatasetKind::Permutation, DatasetKind::Gaussian,
                      DatasetKind::Kaggle, DatasetKind::Xnli}) {
        const Trace t = makeTrace(kind, 4096, 1000, 7);
        EXPECT_EQ(t.size(), 1000u) << datasetName(kind);
        EXPECT_EQ(t.numBlocks, 4096u);
        for (BlockId id : t.accesses)
            ASSERT_LT(id, 4096u);
    }
}

TEST(GeneratorFactory, DeterministicBySeed)
{
    const Trace a = makeTrace(DatasetKind::Kaggle, 1 << 16, 500, 11);
    const Trace b = makeTrace(DatasetKind::Kaggle, 1 << 16, 500, 11);
    const Trace c = makeTrace(DatasetKind::Kaggle, 1 << 16, 500, 12);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_NE(a.accesses, c.accesses);
}

} // namespace
} // namespace laoram::workload
