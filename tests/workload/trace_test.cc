/**
 * @file
 * Trace container + serialisation tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.hh"

namespace laoram::workload {
namespace {

TEST(Trace, UniqueCount)
{
    Trace t;
    t.numBlocks = 10;
    t.accesses = {1, 2, 2, 3, 1};
    EXPECT_EQ(t.uniqueCount(), 3u);
}

TEST(Trace, HotMass)
{
    Trace t;
    t.numBlocks = 10;
    // id 5 appears 6x, id 1 3x, id 2 1x.
    t.accesses = {5, 5, 5, 5, 5, 5, 1, 1, 1, 2};
    EXPECT_DOUBLE_EQ(t.hotMass(1), 0.6);
    EXPECT_DOUBLE_EQ(t.hotMass(2), 0.9);
    EXPECT_DOUBLE_EQ(t.hotMass(100), 1.0);
    EXPECT_DOUBLE_EQ(t.hotMass(0), 0.0);
}

TEST(Trace, SaveLoadRoundTrip)
{
    Trace t;
    t.name = "unittest";
    t.numBlocks = 1000;
    for (int i = 0; i < 100; ++i)
        t.accesses.push_back((i * 37) % 1000);

    std::stringstream ss;
    t.save(ss);
    const Trace back = Trace::load(ss);
    EXPECT_EQ(back.name, "unittest");
    EXPECT_EQ(back.numBlocks, 1000u);
    EXPECT_EQ(back.accesses, t.accesses);
}

TEST(Trace, EmptyRoundTrip)
{
    Trace t;
    t.name = "empty";
    t.numBlocks = 5;
    std::stringstream ss;
    t.save(ss);
    const Trace back = Trace::load(ss);
    EXPECT_TRUE(back.accesses.empty());
}

TEST(Trace, LoadRejectsBadMagic)
{
    std::stringstream ss("not-a-trace 1 x 10 0\n");
    EXPECT_DEATH(Trace::load(ss), "not a laoram-trace");
}

TEST(Trace, LoadRejectsOutOfRangeIds)
{
    std::stringstream ss("laoram-trace 1 bad 10 2\n3 99\n");
    EXPECT_DEATH(Trace::load(ss), "out of range");
}

TEST(Trace, LoadRejectsTruncation)
{
    std::stringstream ss("laoram-trace 1 short 10 5\n1 2\n");
    EXPECT_DEATH(Trace::load(ss), "truncated");
}

} // namespace
} // namespace laoram::workload
