/**
 * @file
 * ShardedLaoram tests: the splitter must be a deterministic bijection
 * and a sharded run must be an exact behavioural twin of serving each
 * shard's sub-trace through a standalone Laoram — the PR-1
 * determinism contract, extended per shard.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/sharded_laoram.hh"
#include "train/table_set.hh"
#include "util/rng.hh"

namespace laoram::core {
namespace {

std::vector<oram::BlockId>
randomTrace(std::uint64_t n, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t;
    t.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        t.push_back(rng.nextBounded(blocks));
    return t;
}

ShardedLaoramConfig
shardedConfig(std::uint32_t shards, std::uint64_t blocks = 512,
              std::uint64_t window = 128)
{
    ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = blocks;
    cfg.engine.base.blockBytes = 64;
    cfg.engine.base.seed = 21;
    cfg.engine.superblockSize = 4;
    cfg.numShards = shards;
    cfg.pipeline.windowAccesses = window;
    return cfg;
}

TEST(ShardSplitter, HashedIsABijection)
{
    const std::uint64_t blocks = 4096;
    const auto split = ShardSplitter::hashed(blocks, 4);

    std::vector<std::uint64_t> perShard(4, 0);
    for (oram::BlockId g = 0; g < blocks; ++g) {
        const std::uint32_t s = split.shardOf(g);
        ASSERT_LT(s, 4u);
        const oram::BlockId local = split.localId(g);
        ASSERT_LT(local, split.shardBlocks(s));
        ASSERT_EQ(split.globalId(s, local), g);
        ++perShard[s];
    }

    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(perShard[s], split.shardBlocks(s));
        total += perShard[s];
        // The mixing hash keeps shards balanced well within 2x of
        // even for thousands of blocks.
        EXPECT_GT(perShard[s], blocks / 8);
        EXPECT_LT(perShard[s], blocks / 2);
    }
    EXPECT_EQ(total, blocks);
}

TEST(ShardSplitter, LocalIdsAreDenseAndOrderPreserving)
{
    const auto split = ShardSplitter::hashed(1000, 3);
    // Scanning globals in increasing order must yield each shard's
    // locals as 0, 1, 2, ... (dense, monotone).
    std::vector<oram::BlockId> nextLocal(3, 0);
    for (oram::BlockId g = 0; g < 1000; ++g) {
        const std::uint32_t s = split.shardOf(g);
        ASSERT_EQ(split.localId(g), nextLocal[s]);
        ++nextLocal[s];
    }
}

TEST(ShardSplitter, SplitTracePreservesPerShardOrder)
{
    const auto split = ShardSplitter::hashed(256, 4);
    const auto trace = randomTrace(2000, 256, 5);
    const auto sub = split.splitTrace(trace);

    ASSERT_EQ(sub.size(), 4u);
    std::uint64_t total = 0;
    for (const auto &s : sub)
        total += s.size();
    EXPECT_EQ(total, trace.size());

    // Replaying the logical trace and popping each access from its
    // shard's stream must consume every sub-trace in order.
    std::vector<std::size_t> cursor(4, 0);
    for (oram::BlockId g : trace) {
        const std::uint32_t s = split.shardOf(g);
        ASSERT_LT(cursor[s], sub[s].size());
        ASSERT_EQ(sub[s][cursor[s]], split.localId(g));
        ++cursor[s];
    }
}

TEST(ShardSplitter, FromAssignmentRoutesBlocksVerbatim)
{
    std::vector<std::uint32_t> assignment = {0, 0, 1, 1, 2, 2, 0, 1};
    const auto split =
        ShardSplitter::fromAssignment(assignment, 3);
    for (oram::BlockId g = 0; g < assignment.size(); ++g)
        EXPECT_EQ(split.shardOf(g), assignment[g]);
    EXPECT_EQ(split.shardBlocks(0), 3u);
    EXPECT_EQ(split.shardBlocks(1), 3u);
    EXPECT_EQ(split.shardBlocks(2), 2u);
}

/** Full observable engine state must match between two engines. */
void
expectEnginesIdentical(const Laoram &a, const Laoram &b)
{
    const auto &ca = a.meter().counters();
    const auto &cb = b.meter().counters();
    EXPECT_EQ(ca.logicalAccesses, cb.logicalAccesses);
    EXPECT_EQ(ca.pathReads, cb.pathReads);
    EXPECT_EQ(ca.pathWrites, cb.pathWrites);
    EXPECT_EQ(ca.dummyReads, cb.dummyReads);
    EXPECT_EQ(ca.bytesRead, cb.bytesRead);
    EXPECT_EQ(ca.bytesWritten, cb.bytesWritten);
    EXPECT_EQ(ca.stashPeak, cb.stashPeak);
    EXPECT_DOUBLE_EQ(a.meter().clock().nanoseconds(),
                     b.meter().clock().nanoseconds());
    EXPECT_EQ(a.stashSize(), b.stashSize());
    ASSERT_EQ(a.posmapForAudit().size(), b.posmapForAudit().size());
    for (oram::BlockId id = 0; id < a.posmapForAudit().size(); ++id)
        ASSERT_EQ(a.posmapForAudit().get(id),
                  b.posmapForAudit().get(id))
            << "posmap diverges at block " << id;
}

TEST(ShardedLaoram, FourShardsMatchStandalonePerShardEngines)
{
    // The acceptance contract: an N=4 sharded run leaves every block
    // payload byte-identical to serving each shard's sub-trace
    // through a standalone Laoram with the shard's derived config.
    const std::uint64_t blocks = 512;
    const auto trace = randomTrace(4000, blocks, 9);

    ShardedLaoramConfig cfg = shardedConfig(4, blocks);
    cfg.engine.base.payloadBytes = 32;
    ShardedLaoram sharded(cfg);
    sharded.setTouchCallback(
        [](oram::BlockId global, std::vector<std::uint8_t> &payload) {
            payload[0] = static_cast<std::uint8_t>(global * 5 + 3);
            payload[1] =
                static_cast<std::uint8_t>((global >> 8) ^ 0xA5);
        });
    sharded.runTrace(trace);
    sharded.setTouchCallback(nullptr);

    const ShardSplitter &split = sharded.splitter();
    const auto sub = split.splitTrace(trace);
    for (std::uint32_t s = 0; s < 4; ++s) {
        // Standalone reference over the shard's own config: serial
        // runTrace with lookaheadWindow == the pipeline window is the
        // PR-1 equivalence baseline.
        Laoram reference(sharded.shardEngineConfigFor(s));
        reference.setTouchCallback(
            [&split, s](oram::BlockId local,
                        std::vector<std::uint8_t> &payload) {
                const oram::BlockId global = split.globalId(s, local);
                payload[0] = static_cast<std::uint8_t>(global * 5 + 3);
                payload[1] =
                    static_cast<std::uint8_t>((global >> 8) ^ 0xA5);
            });
        reference.runTrace(sub[s]);
        reference.setTouchCallback(nullptr);

        expectEnginesIdentical(reference, sharded.shard(s));

        // Byte-identical payload readback for every block of the
        // shard (both engines keep evolving identically during the
        // readback itself).
        std::vector<std::uint8_t> bufA, bufB;
        for (oram::BlockId local = 0; local < split.shardBlocks(s);
             ++local) {
            reference.readBlock(local, bufA);
            sharded.shard(s).readBlock(local, bufB);
            ASSERT_EQ(bufA, bufB)
                << "payload diverges at shard " << s << " block "
                << local;
        }
    }
}

TEST(ShardedLaoram, DeterministicAcrossPoolInterleavings)
{
    // Pool scheduling varies run to run; per-shard ORAM state must
    // not. Also pins down that a capped pool (2 threads for 4
    // shards) serves every shard.
    const auto trace = randomTrace(2000, 512, 13);

    ShardedLaoramConfig cfg = shardedConfig(4);
    ShardedLaoram reference(cfg);
    reference.runTrace(trace);

    for (const std::uint32_t poolThreads : {1u, 2u, 0u}) {
        ShardedLaoramConfig capped = cfg;
        capped.servingThreads = poolThreads;
        ShardedLaoram engine(capped);
        engine.runTrace(trace);
        for (std::uint32_t s = 0; s < 4; ++s)
            expectEnginesIdentical(reference.shard(s),
                                   engine.shard(s));
    }
}

TEST(ShardedLaoram, AggregateReportSumsShards)
{
    const auto trace = randomTrace(3000, 512, 17);

    ShardedLaoram sharded(shardedConfig(4));
    const auto rep = sharded.runTrace(trace);

    ASSERT_EQ(rep.shards.size(), 4u);
    std::uint64_t windows = 0, accesses = 0, pathReads = 0;
    double maxSim = 0.0;
    for (const auto &sr : rep.shards) {
        windows += sr.pipeline.windows;
        accesses += sr.accesses;
        pathReads += sr.traffic.pathReads;
        maxSim = std::max(maxSim, sr.simNs);
    }
    EXPECT_EQ(rep.aggregate.windows, windows);
    EXPECT_EQ(accesses, trace.size());
    EXPECT_EQ(rep.traffic.pathReads, pathReads);
    EXPECT_EQ(rep.traffic.logicalAccesses, trace.size());
    EXPECT_DOUBLE_EQ(rep.simNs, maxSim);
    EXPECT_GT(rep.simTotalNs, rep.simNs);
    EXPECT_GT(rep.aggregate.wallTotalNs, 0.0);
    EXPECT_GE(rep.aggregate.prepHiddenFraction, 0.0);
    EXPECT_LE(rep.aggregate.prepHiddenFraction, 1.0);
    EXPECT_GE(rep.aggregate.measuredPrepHiddenFraction, 0.0);
    EXPECT_LE(rep.aggregate.measuredPrepHiddenFraction, 1.0);

    // Live aggregate counters match the run deltas (fresh engines).
    const auto total = sharded.totalCounters();
    EXPECT_EQ(total.logicalAccesses, rep.traffic.logicalAccesses);
    EXPECT_EQ(total.pathReads, rep.traffic.pathReads);
}

TEST(ShardedLaoram, ShardingReducesConcurrentServeTime)
{
    // The scaling claim behind bench_shard_scaling, in miniature:
    // four shards split the stream four ways over shallower trees,
    // so the max-over-shards simulated serve time drops well below
    // the single-tree time.
    const std::uint64_t blocks = 2048;
    const auto trace = randomTrace(8000, blocks, 19);

    ShardedLaoram one(shardedConfig(1, blocks, 512));
    const auto repOne = one.runTrace(trace);
    ShardedLaoram four(shardedConfig(4, blocks, 512));
    const auto repFour = four.runTrace(trace);

    EXPECT_LT(repFour.simNs, repOne.simNs);
}

TEST(ShardedLaoram, TableSetPlanRoutesWholeTables)
{
    const train::TableSet tables({1000, 600, 400, 50, 50});
    const auto plan = tables.shardPlan(2);
    ASSERT_EQ(plan.size(), 5u);

    // LPT: 1000+50 vs 600+400+50 — loads balance to 1050/1050.
    std::vector<std::uint64_t> load(2, 0);
    for (std::uint64_t t = 0; t < plan.size(); ++t) {
        ASSERT_LT(plan[t], 2u);
        load[plan[t]] += tables.tableRows(t);
    }
    EXPECT_EQ(load[0], 1050u);
    EXPECT_EQ(load[1], 1050u);

    const auto assignment = tables.blockShardAssignment(plan);
    ASSERT_EQ(assignment.size(), tables.totalBlocks());
    const auto split = ShardSplitter::fromAssignment(assignment, 2);
    for (std::uint64_t t = 0; t < tables.numTables(); ++t) {
        for (std::uint64_t row : {std::uint64_t{0},
                                  tables.tableRows(t) - 1}) {
            EXPECT_EQ(split.shardOf(tables.flatten(t, row)), plan[t])
                << "table " << t << " row " << row
                << " not routed with its table";
        }
    }
}

TEST(ShardedLaoram, ShardSeedsAreStableAndDistinct)
{
    const std::uint64_t base = 21;
    EXPECT_EQ(ShardedLaoram::shardSeed(base, 0),
              ShardedLaoram::shardSeed(base, 0));
    EXPECT_NE(ShardedLaoram::shardSeed(base, 0),
              ShardedLaoram::shardSeed(base, 1));
    EXPECT_NE(ShardedLaoram::shardSeed(base, 0),
              ShardedLaoram::shardSeed(base + 1, 0));
}

} // namespace
} // namespace laoram::core
