/**
 * @file
 * Concurrent two-stage pipeline tests: the threaded pipeline must be
 * an *exact* behavioural twin of the serial paths — same bins, same
 * path choices, same traffic, same payload bytes — with the only
 * difference being wall-clock overlap.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/pipeline.hh"
#include "util/rng.hh"

namespace laoram::core {
namespace {

LaoramConfig
engineConfig()
{
    LaoramConfig cfg;
    cfg.base.numBlocks = 256;
    cfg.base.blockBytes = 64;
    cfg.base.seed = 21;
    cfg.superblockSize = 4;
    return cfg;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t n, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t;
    t.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        t.push_back(rng.nextBounded(blocks));
    return t;
}

/** Full observable engine state: traffic, sim time, posmap, stash. */
void
expectEnginesIdentical(const Laoram &a, const Laoram &b)
{
    const auto &ca = a.meter().counters();
    const auto &cb = b.meter().counters();
    EXPECT_EQ(ca.logicalAccesses, cb.logicalAccesses);
    EXPECT_EQ(ca.pathReads, cb.pathReads);
    EXPECT_EQ(ca.pathWrites, cb.pathWrites);
    EXPECT_EQ(ca.dummyReads, cb.dummyReads);
    EXPECT_EQ(ca.blocksRead, cb.blocksRead);
    EXPECT_EQ(ca.blocksWritten, cb.blocksWritten);
    EXPECT_EQ(ca.bytesRead, cb.bytesRead);
    EXPECT_EQ(ca.bytesWritten, cb.bytesWritten);
    EXPECT_EQ(ca.stashPeak, cb.stashPeak);
    EXPECT_EQ(ca.stashHits, cb.stashHits);
    EXPECT_DOUBLE_EQ(a.meter().clock().nanoseconds(),
                     b.meter().clock().nanoseconds());

    EXPECT_EQ(a.stashSize(), b.stashSize());
    ASSERT_EQ(a.posmapForAudit().size(), b.posmapForAudit().size());
    for (oram::BlockId id = 0; id < a.posmapForAudit().size(); ++id)
        ASSERT_EQ(a.posmapForAudit().get(id), b.posmapForAudit().get(id))
            << "posmap diverges at block " << id;

    EXPECT_EQ(a.binsFormed(), b.binsFormed());
    EXPECT_EQ(a.accessesPreprocessed(), b.accessesPreprocessed());
    EXPECT_EQ(a.futureLinkedMembers(), b.futureLinkedMembers());
}

PipelineConfig
pipelineConfig(PipelineMode mode, std::uint64_t window = 128,
               std::size_t depth = 4, std::size_t prepThreads = 1)
{
    PipelineConfig pc;
    pc.windowAccesses = window;
    pc.mode = mode;
    pc.queueDepth = depth;
    pc.prepThreads = prepThreads;
    return pc;
}

TEST(ConcurrentPipeline, MatchesSimulatedModeExactly)
{
    const auto trace = randomTrace(2000, 256, 7);

    Laoram simEngine(engineConfig());
    BatchPipeline simPipe(simEngine,
                          pipelineConfig(PipelineMode::Simulated));
    const auto simRep = simPipe.run(trace);

    Laoram conEngine(engineConfig());
    BatchPipeline conPipe(conEngine,
                          pipelineConfig(PipelineMode::Concurrent));
    const auto conRep = conPipe.run(trace);

    expectEnginesIdentical(simEngine, conEngine);
    EXPECT_EQ(simRep.windows, conRep.windows);
    EXPECT_DOUBLE_EQ(simRep.totalPrepNs, conRep.totalPrepNs);
    EXPECT_DOUBLE_EQ(simRep.totalAccessNs, conRep.totalAccessNs);
    EXPECT_DOUBLE_EQ(simRep.pipelinedNs, conRep.pipelinedNs);
}

TEST(ConcurrentPipeline, MatchesSerialRunTraceByteForByte)
{
    // The pipeline seeds its preprocessor exactly like the engine's
    // internal one, so pipelined serving must reproduce the serial
    // engine.runTrace — including the payload bytes each touch sees.
    const auto trace = randomTrace(1500, 256, 9);
    const std::uint64_t window = 200;

    LaoramConfig serialCfg = engineConfig();
    serialCfg.base.payloadBytes = 32;
    serialCfg.lookaheadWindow = window;
    Laoram serial(serialCfg);
    serial.setTouchCallback(
        [](oram::BlockId id, std::vector<std::uint8_t> &payload) {
            payload[0] = static_cast<std::uint8_t>(id * 3 + 1);
        });
    serial.runTrace(trace);
    serial.setTouchCallback(nullptr);

    LaoramConfig pipedCfg = serialCfg;
    Laoram piped(pipedCfg);
    piped.setTouchCallback(
        [](oram::BlockId id, std::vector<std::uint8_t> &payload) {
            payload[0] = static_cast<std::uint8_t>(id * 3 + 1);
        });
    BatchPipeline pipe(piped,
                       pipelineConfig(PipelineMode::Concurrent, window));
    pipe.run(trace);
    piped.setTouchCallback(nullptr);

    expectEnginesIdentical(serial, piped);

    // Payload readback must be byte-identical. (Both engines keep
    // evolving identically during the readback itself.)
    std::vector<std::uint8_t> bufA, bufB;
    for (oram::BlockId id = 0; id < serialCfg.base.numBlocks; ++id) {
        serial.readBlock(id, bufA);
        piped.readBlock(id, bufB);
        ASSERT_EQ(bufA, bufB) << "payload diverges at block " << id;
    }
}

TEST(ConcurrentPipeline, QueueDepthOneStillCompletes)
{
    // Depth 1 is maximal backpressure: strict lock-step hand-off
    // between the stages. Results must not change.
    const auto trace = randomTrace(1200, 256, 11);

    Laoram deep(engineConfig());
    BatchPipeline deepPipe(
        deep, pipelineConfig(PipelineMode::Concurrent, 64, 8));
    const auto deepRep = deepPipe.run(trace);

    Laoram shallow(engineConfig());
    BatchPipeline shallowPipe(
        shallow, pipelineConfig(PipelineMode::Concurrent, 64, 1));
    const auto shallowRep = shallowPipe.run(trace);

    EXPECT_EQ(deepRep.windows, shallowRep.windows);
    EXPECT_EQ(deepRep.windows, (trace.size() + 63) / 64);
    expectEnginesIdentical(deep, shallow);
}

TEST(ConcurrentPipeline, DeterministicAcrossInterleavings)
{
    // Thread scheduling varies run to run; the ORAM-visible outcome
    // must not. Repeat the same seeded run several times and require
    // identical end states.
    const auto trace = randomTrace(800, 256, 13);

    Laoram reference(engineConfig());
    BatchPipeline refPipe(
        reference, pipelineConfig(PipelineMode::Concurrent, 96, 2));
    refPipe.run(trace);

    for (int round = 0; round < 5; ++round) {
        Laoram engine(engineConfig());
        BatchPipeline pipe(
            engine, pipelineConfig(PipelineMode::Concurrent, 96, 2));
        pipe.run(trace);
        expectEnginesIdentical(reference, engine);
    }
}

TEST(ConcurrentPipeline, MeasuredFieldsPopulated)
{
    Laoram engine(engineConfig());
    BatchPipeline pipe(engine,
                       pipelineConfig(PipelineMode::Concurrent, 512));
    const auto rep = pipe.run(randomTrace(8192, 256, 17));

    EXPECT_GT(rep.wallTotalNs, 0.0);
    EXPECT_GT(rep.wallPrepNs, 0.0);
    EXPECT_GT(rep.wallServeNs, 0.0);
    EXPECT_GE(rep.measuredPrepHiddenFraction, 0.0);
    EXPECT_LE(rep.measuredPrepHiddenFraction, 1.0);
    // Serving did real storage work, so the measured backend I/O
    // stall must be populated and bounded by the serve wall time's
    // fraction invariant.
    EXPECT_GT(rep.wallIoNs, 0.0);
    EXPECT_GE(rep.ioServeFraction, 0.0);
    EXPECT_LE(rep.ioServeFraction, 1.0);
    // No lower bound asserted: the achieved overlap depends on how
    // loaded the machine is (parallel ctest shards this very suite).
    // bench_pipeline_overlap demonstrates >90% hidden on an unloaded
    // host with serving-dominated windows.
}

TEST(SimulatedPipeline, ReportsNoMeasuredThreadNumbers)
{
    // Simulated mode spawns no threads, so every wall-clock *stage*
    // field stays zero...
    Laoram engine(engineConfig());
    BatchPipeline pipe(engine,
                       pipelineConfig(PipelineMode::Simulated));
    const auto rep = pipe.run(randomTrace(500, 256, 19));
    EXPECT_DOUBLE_EQ(rep.wallTotalNs, 0.0);
    EXPECT_DOUBLE_EQ(rep.wallPrepNs, 0.0);
    EXPECT_DOUBLE_EQ(rep.measuredPrepHiddenFraction, 0.0);
    // ...but the storage backend did real work in both modes, so its
    // measured I/O time is populated (only the serve-time *fraction*
    // needs a measured serve denominator and stays zero).
    EXPECT_GT(rep.wallIoNs, 0.0);
    EXPECT_DOUBLE_EQ(rep.ioServeFraction, 0.0);
}

TEST(ConcurrentPipeline, PreprocessorPoolMatchesSerialByteForByte)
{
    // The tentpole contract: any preprocessor-thread count serves the
    // exact bytes of the serial engine — the per-window path streams
    // plus the reorder stage make scheduling invisible.
    const auto trace = randomTrace(2400, 256, 29);
    const std::uint64_t window = 96;

    LaoramConfig cfg = engineConfig();
    cfg.base.payloadBytes = 32;
    cfg.lookaheadWindow = window;
    const auto touch = [](oram::BlockId id,
                          std::vector<std::uint8_t> &payload) {
        payload[0] = static_cast<std::uint8_t>(id * 5 + 2);
    };

    for (const std::size_t preps : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
        // Fresh reference per pool size: the payload readback below
        // advances engine state, so a shared reference would drift
        // ahead of the next round's pipelined engine.
        Laoram serial(cfg);
        serial.setTouchCallback(touch);
        serial.runTrace(trace);
        serial.setTouchCallback(nullptr);

        Laoram piped(cfg);
        piped.setTouchCallback(touch);
        BatchPipeline pipe(
            piped, pipelineConfig(PipelineMode::Concurrent, window, 3,
                                  preps));
        const auto rep = pipe.run(trace);
        piped.setTouchCallback(nullptr);

        expectEnginesIdentical(serial, piped);
        EXPECT_EQ(rep.prepThreads, preps);

        std::vector<std::uint8_t> bufA, bufB;
        for (oram::BlockId id = 0; id < cfg.base.numBlocks; ++id) {
            serial.readBlock(id, bufA);
            piped.readBlock(id, bufB);
            ASSERT_EQ(bufA, bufB)
                << "P=" << preps << " diverges at block " << id;
        }
    }
}

TEST(ConcurrentPipeline, PreprocessorPoolReportFieldsConsistent)
{
    const auto trace = randomTrace(4096, 256, 31);
    Laoram engine(engineConfig());
    BatchPipeline pipe(
        engine,
        pipelineConfig(PipelineMode::Concurrent, 256, 4, 3));
    const auto rep = pipe.run(trace);

    EXPECT_EQ(rep.prepThreads, 3u);
    ASSERT_EQ(rep.prepThreadBusyNs.size(), 3u);
    ASSERT_EQ(rep.prepThreadUtilization.size(), 3u);
    ASSERT_EQ(rep.prepThreadWindows.size(), 3u);

    std::uint64_t windows = 0;
    double busy = 0.0;
    for (std::size_t t = 0; t < 3; ++t) {
        windows += rep.prepThreadWindows[t];
        busy += rep.prepThreadBusyNs[t];
        EXPECT_GE(rep.prepThreadUtilization[t], 0.0);
        EXPECT_LE(rep.prepThreadUtilization[t], 1.0);
    }
    EXPECT_EQ(windows, rep.windows);
    EXPECT_DOUBLE_EQ(busy, rep.wallPrepNs);

    // Reorder stall is the head-of-line share of the measured serve
    // stalls; it can never exceed total waiting (fill + stalls).
    EXPECT_GE(rep.wallReorderStallNs, 0.0);
    EXPECT_LE(rep.wallReorderStallNs,
              rep.wallFillNs + rep.wallStallNs + 1.0);
}

TEST(ConcurrentPipeline, SinglePrepThreadHasNoReorderStall)
{
    // With one producer windows arrive in order, so no consumer wait
    // can ever be classified as head-of-line.
    Laoram engine(engineConfig());
    BatchPipeline pipe(engine,
                       pipelineConfig(PipelineMode::Concurrent, 128));
    const auto rep = pipe.run(randomTrace(2000, 256, 37));
    EXPECT_EQ(rep.prepThreads, 1u);
    EXPECT_DOUBLE_EQ(rep.wallReorderStallNs, 0.0);
}

TEST(ConcurrentPipeline, PrebuiltSchedulesServeIdentically)
{
    // Laoram::runTrace(schedules) — the pipeline's serving stage used
    // standalone — must match the one-shot serial runTrace.
    const auto trace = randomTrace(1000, 256, 23);
    const std::uint64_t window = 250;

    LaoramConfig cfg = engineConfig();
    cfg.lookaheadWindow = window;
    Laoram serial(cfg);
    serial.runTrace(trace);

    Laoram staged(cfg);
    Preprocessor prep(
        PreprocessorConfig{cfg.superblockSize,
                           staged.geometry().numLeaves()},
        staged.preprocessorSeed());
    std::vector<WindowSchedule> schedules;
    std::uint64_t index = 0;
    for (std::uint64_t start = 0; start < trace.size();
         start += window, ++index) {
        const std::uint64_t stop =
            std::min<std::uint64_t>(start + window, trace.size());
        schedules.push_back(prep.runWindow(index, start,
                                           trace.data() + start,
                                           trace.data() + stop));
    }
    staged.runTrace(schedules);

    expectEnginesIdentical(serial, staged);
}

} // namespace
} // namespace laoram::core
