/**
 * @file
 * Two-stage pipeline tests (paper §VIII-A: preprocessing off the
 * critical path).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.hh"
#include "util/rng.hh"

namespace laoram::core {
namespace {

LaoramConfig
engineConfig()
{
    LaoramConfig cfg;
    cfg.base.numBlocks = 256;
    cfg.base.blockBytes = 64;
    cfg.base.seed = 21;
    cfg.superblockSize = 4;
    return cfg;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t n, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t;
    t.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        t.push_back(rng.nextBounded(blocks));
    return t;
}

TEST(BatchPipeline, EmptyTrace)
{
    Laoram engine(engineConfig());
    BatchPipeline pipe(engine, PipelineConfig{});
    const auto rep = pipe.run({});
    EXPECT_EQ(rep.windows, 0u);
    EXPECT_DOUBLE_EQ(rep.pipelinedNs, 0.0);
}

TEST(BatchPipeline, WindowCount)
{
    Laoram engine(engineConfig());
    PipelineConfig pc;
    pc.windowAccesses = 100;
    BatchPipeline pipe(engine, pc);
    const auto rep = pipe.run(randomTrace(950, 256, 1));
    EXPECT_EQ(rep.windows, 10u); // 9 full + 1 partial
}

TEST(BatchPipeline, PipelinedNeverExceedsSerial)
{
    Laoram engine(engineConfig());
    PipelineConfig pc;
    pc.windowAccesses = 128;
    BatchPipeline pipe(engine, pc);
    const auto rep = pipe.run(randomTrace(2000, 256, 2));
    EXPECT_LE(rep.pipelinedNs, rep.serialNs + 1e-6);
    EXPECT_GE(rep.pipelinedNs, rep.totalAccessNs - 1e-6);
}

TEST(BatchPipeline, PreprocessingIsHidden)
{
    // ORAM path accesses are microseconds; preprocessing is tens of
    // nanoseconds per access — the overlap must hide almost all of it
    // (the paper reports it entirely off the critical path).
    Laoram engine(engineConfig());
    PipelineConfig pc;
    pc.windowAccesses = 256;
    BatchPipeline pipe(engine, pc);
    const auto rep = pipe.run(randomTrace(4096, 256, 3));
    EXPECT_GT(rep.prepHiddenFraction, 0.95);
    EXPECT_LE(rep.prepHiddenFraction, 1.0 + 1e-9);
}

TEST(BatchPipeline, AccessesStillServedCorrectly)
{
    Laoram engine(engineConfig());
    PipelineConfig pc;
    pc.windowAccesses = 64;
    BatchPipeline pipe(engine, pc);
    const auto trace = randomTrace(1000, 256, 4);
    pipe.run(trace);
    EXPECT_EQ(engine.meter().counters().logicalAccesses, trace.size());
}

TEST(BatchPipeline, ReportTotalsConsistent)
{
    Laoram engine(engineConfig());
    BatchPipeline pipe(engine, PipelineConfig{});
    const auto rep = pipe.run(randomTrace(500, 256, 5));
    EXPECT_NEAR(rep.serialNs, rep.totalPrepNs + rep.totalAccessNs,
                1e-6);
    EXPECT_GT(rep.totalPrepNs, 0.0);
    EXPECT_GT(rep.totalAccessNs, 0.0);
}

} // namespace
} // namespace laoram::core
