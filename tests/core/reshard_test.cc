/**
 * @file
 * Elastic reshard + sharded checkpoint tests: reshard(N -> M) for
 * N, M in {1, 2, 4} must preserve the logical block store exactly
 * (every payload readable at its global id through the new shard
 * layout) and keep serving afterwards; a ShardedLaoram checkpoint
 * (manifest + per-shard sidecars) must restore into an equivalent
 * store; damaged or mismatched manifests must be refused at
 * construction. Randomized and seeded via LAORAM_DIFF_SEED.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/sharded_laoram.hh"
#include "util/rng.hh"
#include "util/serde.hh"

// Engine-snapshot helpers (diffSeed) live with the integration suite.
#include "../integration/engine_snapshot.hh"

namespace laoram::core {
namespace {

constexpr std::uint64_t kBlocks = 96;
constexpr std::uint64_t kPayloadBytes = 32;

std::string
tempPath(const std::string &tag)
{
    return ::testing::TempDir() + "laoram_reshard_" + tag;
}

ShardedLaoramConfig
dramConfig(std::uint32_t numShards, std::uint64_t seed)
{
    ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = kBlocks;
    cfg.engine.base.blockBytes = 64;
    cfg.engine.base.payloadBytes = kPayloadBytes;
    cfg.engine.base.seed = seed;
    cfg.engine.superblockSize = 4;
    cfg.engine.lookaheadWindow = 16;
    cfg.numShards = numShards;
    cfg.pipeline.windowAccesses = 16;
    cfg.pipeline.prepThreads = 1;
    return cfg;
}

std::vector<std::uint8_t>
payloadFor(oram::BlockId id)
{
    std::vector<std::uint8_t> buf(kPayloadBytes);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(id * 37 + i * 11 + 5);
    return buf;
}

void
fillPayloads(ShardedLaoram &laoram)
{
    for (oram::BlockId g = 0; g < kBlocks; ++g) {
        const std::uint32_t sh = laoram.splitter().shardOf(g);
        laoram.shard(sh).writeBlock(laoram.splitter().localId(g),
                                    payloadFor(g));
    }
}

void
expectAllPayloads(ShardedLaoram &laoram, const std::string &what)
{
    std::vector<std::uint8_t> buf;
    for (oram::BlockId g = 0; g < kBlocks; ++g) {
        const std::uint32_t sh = laoram.splitter().shardOf(g);
        laoram.shard(sh).readBlock(laoram.splitter().localId(g), buf);
        EXPECT_EQ(buf, payloadFor(g))
            << what << ": payload of global block " << g;
    }
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t accesses, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> trace;
    trace.reserve(accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        trace.push_back(rng.nextBounded(kBlocks));
    return trace;
}

TEST(Reshard, EveryShardCountPairPreservesTheLogicalStore)
{
    const std::uint32_t counts[] = {1, 2, 4};
    std::uint64_t leg = 0;
    for (std::uint32_t n : counts) {
        for (std::uint32_t m : counts) {
            const std::uint64_t seed = diffSeed() + 100 * leg++;
            const std::string what = std::to_string(n) + " -> "
                                     + std::to_string(m) + " shards";
            ShardedLaoram laoram(dramConfig(n, seed));
            fillPayloads(laoram);
            laoram.runTrace(randomTrace(96, seed + 1));

            laoram.reshard(m);
            ASSERT_EQ(laoram.numShards(), m) << what;
            expectAllPayloads(laoram, what);

            // The resharded store keeps serving obliviously.
            const auto rep = laoram.runTrace(randomTrace(64, seed + 2));
            std::uint64_t served = 0;
            for (const auto &shardRep : rep.shards)
                served += shardRep.accesses;
            EXPECT_EQ(served, 64u) << what;
            expectAllPayloads(laoram, what + " after serving");
        }
    }
}

TEST(Reshard, ArbitraryAssignmentTablesAreHonoured)
{
    // Beyond the hashed default: reshard onto a randomized explicit
    // assignment (the shape a load balancer would hand over).
    const std::uint64_t seed = diffSeed() + 7;
    ShardedLaoram laoram(dramConfig(2, seed));
    fillPayloads(laoram);
    laoram.runTrace(randomTrace(96, seed + 1));

    Rng rng(seed + 2);
    std::vector<std::uint32_t> assignment(kBlocks);
    for (auto &a : assignment)
        a = static_cast<std::uint32_t>(rng.nextBounded(3));
    laoram.reshard(ShardSplitter::fromAssignment(assignment, 3));

    ASSERT_EQ(laoram.numShards(), 3u);
    for (oram::BlockId g = 0; g < kBlocks; ++g)
        EXPECT_EQ(laoram.splitter().shardOf(g), assignment[g]);
    expectAllPayloads(laoram, "explicit assignment");
}

TEST(Reshard, TouchCallbackSurvivesReshard)
{
    const std::uint64_t seed = diffSeed() + 13;
    ShardedLaoram laoram(dramConfig(2, seed));
    std::atomic<std::uint64_t> touches{0};
    laoram.setTouchCallback(
        [&](oram::BlockId, std::vector<std::uint8_t> &) {
            touches.fetch_add(1, std::memory_order_relaxed);
        });
    fillPayloads(laoram);
    laoram.reshard(4);
    touches.store(0);
    laoram.runTrace(randomTrace(64, seed + 1));
    EXPECT_GT(touches.load(), 0u)
        << "touch callback was dropped by reshard";
}

class ShardedCheckpoint : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base = tempPath("ckpt");
        cleanup();
    }

    void TearDown() override { cleanup(); }

    void
    cleanup()
    {
        std::remove(base.c_str());
        // Shard-suffixed tree + sidecar files for every shard count a
        // test might have used.
        for (std::uint32_t s = 0; s < 4; ++s) {
            const std::string suffix =
                ".shard-"
                + std::to_string(ShardedLaoram::shardSeed(kSeed, s));
            std::remove((treeBase() + suffix).c_str());
            std::remove((base + suffix).c_str());
        }
    }

    std::string
    treeBase() const
    {
        return base + ".tree";
    }

    ShardedLaoramConfig
    mmapConfig(std::uint32_t numShards) const
    {
        ShardedLaoramConfig cfg = dramConfig(numShards, kSeed);
        cfg.engine.base.storage.kind = storage::BackendKind::MmapFile;
        cfg.engine.base.storage.path = treeBase();
        return cfg;
    }

    static constexpr std::uint64_t kSeed = 23;
    std::string base;
};

TEST_F(ShardedCheckpoint, ManifestAndShardSidecarsRoundTrip)
{
    std::vector<std::uint32_t> assignment;
    double simBefore = 0.0;
    {
        ShardedLaoram laoram(mmapConfig(2));
        fillPayloads(laoram);
        laoram.runTrace(randomTrace(96, kSeed + 1));
        for (oram::BlockId g = 0; g < kBlocks; ++g)
            assignment.push_back(laoram.splitter().shardOf(g));
        laoram.checkpointToFile(base);
        simBefore = laoram.simNs();
    } // shard trees flushed + unmapped at checkpoint state

    ShardedLaoramConfig rcfg = mmapConfig(2);
    rcfg.engine.base.storage.keepExisting = true;
    rcfg.engine.base.checkpoint.path = base;
    rcfg.engine.base.checkpoint.restore = true;
    ShardedLaoram restored(rcfg);

    for (oram::BlockId g = 0; g < kBlocks; ++g)
        EXPECT_EQ(restored.splitter().shardOf(g), assignment[g])
            << "restored manifest assignment of block " << g;
    EXPECT_EQ(restored.simNs(), simBefore);
    expectAllPayloads(restored, "restored sharded store");

    // The restored store serves and can even reshard afterwards.
    restored.runTrace(randomTrace(32, kSeed + 2));
    restored.reshard(4);
    expectAllPayloads(restored, "restored then resharded");
}

TEST_F(ShardedCheckpoint, CorruptManifestIsRefused)
{
    {
        ShardedLaoram laoram(mmapConfig(2));
        fillPayloads(laoram);
        laoram.checkpointToFile(base);
    }
    auto manifest = serde::readFile(base);
    manifest[manifest.size() / 2] ^= 0x10;
    serde::writeFileAtomic(base, manifest);

    ShardedLaoramConfig rcfg = mmapConfig(2);
    rcfg.engine.base.storage.keepExisting = true;
    rcfg.engine.base.checkpoint.path = base;
    rcfg.engine.base.checkpoint.restore = true;
    EXPECT_THROW(ShardedLaoram dead(rcfg), serde::SnapshotError);
}

TEST_F(ShardedCheckpoint, ShardCountMismatchIsRefused)
{
    {
        ShardedLaoram laoram(mmapConfig(2));
        fillPayloads(laoram);
        laoram.checkpointToFile(base);
    }
    // The manifest says 2 shards; a 4-shard deployment must not
    // silently adopt it — reshard() is the supported migration.
    ShardedLaoramConfig rcfg = mmapConfig(4);
    rcfg.engine.base.storage.keepExisting = true;
    rcfg.engine.base.checkpoint.path = base;
    rcfg.engine.base.checkpoint.restore = true;
    EXPECT_THROW(ShardedLaoram dead(rcfg), serde::SnapshotError);
}

TEST_F(ShardedCheckpoint, PersistentTreesReshardInPlace)
{
    // Reshard over mmap-backed shard trees: the seed-derived file
    // suffixes collide between the old and new layout, so the rebuild
    // must tear down (flush + unmap) before recreating.
    ShardedLaoram laoram(mmapConfig(4));
    fillPayloads(laoram);
    laoram.runTrace(randomTrace(96, kSeed + 1));
    laoram.reshard(2);
    ASSERT_EQ(laoram.numShards(), 2u);
    expectAllPayloads(laoram, "persistent 4 -> 2");
    laoram.reshard(4);
    expectAllPayloads(laoram, "persistent 2 -> 4");
}

} // namespace
} // namespace laoram::core
