/**
 * @file
 * LAORAM engine tests: functional correctness, the steady-state
 * path-coalescing property that produces the paper's speedups, stash
 * behaviour with superblocks, and the fat tree's effect on dummy
 * reads (paper §IV, §V, Table II).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/laoram_client.hh"
#include "oram/evictor.hh"
#include "oram/path_oram.hh"
#include "util/rng.hh"
#include "workload/permutation_gen.hh"

namespace laoram::core {
namespace {

LaoramConfig
laoramConfig(std::uint64_t blocks, std::uint64_t sb,
             bool fat = false, std::uint64_t payload = 0)
{
    LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = payload;
    cfg.base.profile =
        fat ? oram::BucketProfile::fat(4) : oram::BucketProfile::uniform(4);
    cfg.base.seed = 1234;
    cfg.superblockSize = sb;
    return cfg;
}

TEST(Laoram, NameReflectsConfig)
{
    Laoram normal(laoramConfig(64, 4));
    EXPECT_EQ(normal.name(), "LAORAM/S4");
    Laoram fat(laoramConfig(64, 8, true));
    EXPECT_EQ(fat.name(), "LAORAM-fat/S8");
}

TEST(Laoram, SingleAccessReadYourWrites)
{
    Laoram oram(laoramConfig(64, 4, false, 16));
    std::vector<std::uint8_t> data(16, 0x7E);
    oram.writeBlock(9, data);
    std::vector<std::uint8_t> out;
    oram.readBlock(9, out);
    EXPECT_EQ(out, data);
}

TEST(Laoram, SingleAccessServesAndFlushesDeferredCacheUpdates)
{
    LaoramConfig cfg = laoramConfig(64, 4, false, 16);
    cfg.cache.capacityBytes = 8 * 16;
    Laoram oram(cfg);

    // writeBlock admits the row, then a frontend-style fast path
    // defers an acknowledged update into it (pinning the row).
    oram.writeBlock(9, std::vector<std::uint8_t>(16, 0xAA));
    ASSERT_TRUE(oram.hotCache()->tryServeAtAdmission(
        9, [](std::vector<std::uint8_t> &row) {
            row.assign(row.size(), 0xBB);
        }));

    // The single-access read must return the deferred value — not the
    // stale stash bytes — and double as its coalesced write-back.
    std::vector<std::uint8_t> out;
    oram.readBlock(9, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0xBB));
    EXPECT_EQ(oram.hotCache()->stats().writebackCoalesced, 1u);

    // The pin is released and the update reached the stash/tree:
    // evict the cache and re-read from ORAM alone.
    oram.hotCache()->clear();
    oram.readBlock(9, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0xBB));
}

TEST(Laoram, RunTraceCountsAllAccesses)
{
    Laoram oram(laoramConfig(64, 4));
    std::vector<oram::BlockId> trace{1, 2, 3, 4, 5, 6, 7, 1};
    oram.runTrace(trace);
    EXPECT_EQ(oram.meter().counters().logicalAccesses, trace.size());
    EXPECT_EQ(oram.accessesPreprocessed(), trace.size());
    EXPECT_GE(oram.binsFormed(), 2u);
}

TEST(Laoram, InvariantAuditAfterTrace)
{
    Laoram oram(laoramConfig(128, 4, false, 8));
    Rng rng(3);
    std::vector<oram::BlockId> trace;
    for (int i = 0; i < 600; ++i)
        trace.push_back(rng.nextBounded(128));
    oram.runTrace(trace);
    EXPECT_EQ(oram::auditTree(oram.geometry(), oram.storageForAudit(),
                              oram.stashForAudit(),
                              oram.posmapForAudit()),
              "");
}

TEST(Laoram, TouchCallbackSeesEveryMember)
{
    Laoram oram(laoramConfig(64, 4, false, 8));
    std::map<oram::BlockId, int> touched;
    oram.setTouchCallback(
        [&](oram::BlockId id, std::vector<std::uint8_t> &) {
            ++touched[id];
        });
    std::vector<oram::BlockId> trace{1, 2, 3, 4, 5, 6, 7, 8};
    oram.runTrace(trace);
    EXPECT_EQ(touched.size(), 8u);
    for (const auto &[id, n] : touched)
        EXPECT_EQ(n, 1) << "block " << id;
}

TEST(Laoram, TouchCallbackPayloadPersists)
{
    // Mutations made by the touch callback must round-trip through the
    // (encrypted) tree to later reads.
    LaoramConfig cfg = laoramConfig(32, 2, false, 8);
    cfg.base.encrypt = true;
    Laoram oram(cfg);
    oram.setTouchCallback(
        [](oram::BlockId id, std::vector<std::uint8_t> &payload) {
            payload.assign(8, static_cast<std::uint8_t>(0xA0 + id));
        });
    oram.runTrace({1, 2, 3, 4});
    oram.setTouchCallback(nullptr);
    std::vector<std::uint8_t> out;
    oram.readBlock(3, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(8, 0xA3));
}

TEST(Laoram, SteadyStateCoalescesPathReads)
{
    // The core claim (paper §IV): once every member of a bin was
    // remapped onto the bin's path by its previous access, the bin is
    // served by ONE path read. Epoch 1 is cold (random initial
    // positions); epoch 2+ must approach 1 read per bin = 1/S per
    // access.
    constexpr std::uint64_t kBlocks = 512;
    constexpr std::uint64_t kS = 4;
    Laoram oram(laoramConfig(kBlocks, kS));

    workload::PermutationParams pp;
    pp.numBlocks = kBlocks;
    pp.accesses = kBlocks * 7; // seven epochs
    pp.seed = 5;
    const auto trace = workload::makePermutationTrace(pp).accesses;

    // Epoch 1 (cold): preprocessed alone, so every block's future is
    // unknown and positions stay random.
    std::vector<oram::BlockId> epoch1(trace.begin(),
                                      trace.begin() + kBlocks);
    oram.runTrace(epoch1);
    const auto cold = oram.meter().counters();
    // Cold: virtually every member sits on a distinct random path.
    EXPECT_GT(cold.pathReadsPerAccess(), 0.8);

    // Epochs 2-7 preprocessed as ONE look-ahead window: epoch 2 is
    // still cold (epoch 1 couldn't see ahead), but epochs 3-7 find
    // every bin member pre-placed on the bin's path, collapsing reads
    // ~S-fold (expected ~ (1 + 5/S) / 6 ≈ 0.375 reads/access here).
    std::vector<oram::BlockId> warm(trace.begin() + kBlocks,
                                    trace.end());
    oram.runTrace(warm);
    const auto total = oram.meter().counters();
    const auto warm_delta = total.since(cold);
    const double warm_rpa = static_cast<double>(warm_delta.pathReads)
        / static_cast<double>(warm_delta.logicalAccesses);
    EXPECT_LT(warm_rpa, 0.5); // far below cold's ~1.0
}

TEST(Laoram, LookaheadWindowBoundariesStillCorrect)
{
    LaoramConfig cfg = laoramConfig(64, 4, false, 8);
    cfg.lookaheadWindow = 7; // deliberately awkward
    Laoram oram(cfg);
    std::map<oram::BlockId, std::uint8_t> shadow;
    oram.setTouchCallback(
        [&](oram::BlockId id, std::vector<std::uint8_t> &payload) {
            payload.assign(8, static_cast<std::uint8_t>(id));
            shadow[id] = static_cast<std::uint8_t>(id);
        });
    Rng rng(6);
    std::vector<oram::BlockId> trace;
    for (int i = 0; i < 100; ++i)
        trace.push_back(rng.nextBounded(64));
    oram.runTrace(trace);
    oram.setTouchCallback(nullptr);
    for (const auto &[id, val] : shadow) {
        std::vector<std::uint8_t> out;
        oram.readBlock(id, out);
        EXPECT_EQ(out, std::vector<std::uint8_t>(8, val));
    }
}

TEST(Laoram, BiggerSuperblocksRaiseStashPressure)
{
    // Paper §V: superblocks above ~2 blocks grow the stash quickly.
    auto run = [](std::uint64_t s) {
        LaoramConfig cfg = laoramConfig(1024, s);
        cfg.base.stashHighWater = 100000; // disable background evict
        cfg.base.stashLowWater = 0;
        Laoram oram(cfg);
        workload::PermutationParams pp;
        pp.numBlocks = 1024;
        pp.accesses = 4096;
        pp.seed = 7;
        oram.runTrace(workload::makePermutationTrace(pp).accesses);
        return oram.meter().counters().stashPeak;
    };
    const auto peak2 = run(2);
    const auto peak8 = run(8);
    EXPECT_GT(peak8, peak2);
}

TEST(Laoram, FatTreeCutsDummyReads)
{
    // Paper Table II: at equal superblock size the fat tree needs far
    // fewer background evictions.
    auto run = [](bool fat) {
        LaoramConfig cfg = laoramConfig(1024, 8, fat);
        cfg.base.stashHighWater = 100;
        cfg.base.stashLowWater = 20;
        Laoram oram(cfg);
        workload::PermutationParams pp;
        pp.numBlocks = 1024;
        pp.accesses = 6144;
        pp.seed = 8;
        oram.runTrace(workload::makePermutationTrace(pp).accesses);
        return oram.meter().counters().dummyReads;
    };
    const auto normal_dummies = run(false);
    const auto fat_dummies = run(true);
    EXPECT_LT(fat_dummies, normal_dummies);
}

TEST(Laoram, NewPathAssignmentUniform)
{
    // §VI obliviousness: the leaf a block is remapped to is uniform,
    // whether it came from preprocessor metadata or the random
    // fallback.
    Laoram oram(laoramConfig(256, 4));
    const std::uint64_t leaves = oram.geometry().numLeaves();
    Rng rng(9);
    std::vector<oram::BlockId> trace;
    for (int i = 0; i < 8192; ++i)
        trace.push_back(rng.nextBounded(256));
    oram.runTrace(trace);
    std::vector<std::uint64_t> hist(leaves, 0);
    for (oram::BlockId id = 0; id < 256; ++id)
        ++hist[oram.posmapForAudit().get(id)];
    const double expected = 256.0 / static_cast<double>(leaves);
    double chi2 = 0;
    for (auto c : hist) {
        chi2 += (static_cast<double>(c) - expected)
            * (static_cast<double>(c) - expected) / expected;
    }
    // df = leaves-1 = 255; generous cutoff.
    EXPECT_LT(chi2, 340.0);
}

TEST(Laoram, AccessBinValidatesMetadata)
{
    Laoram oram(laoramConfig(16, 2));
    SuperblockBin bin;
    bin.members = {1, 2};
    bin.rawAccesses = 2;
    // nextPaths missing -> hard failure, not silent corruption.
    EXPECT_DEATH(oram.accessBin(bin), "future-path");
}

TEST(Laoram, SuperblockSizeOneMatchesPathOramTraffic)
{
    LaoramConfig cfg = laoramConfig(256, 1);
    Laoram laoram(cfg);
    oram::EngineConfig pcfg = cfg.base;
    oram::PathOram path(pcfg);

    Rng rng(10);
    std::vector<oram::BlockId> trace;
    for (int i = 0; i < 1000; ++i)
        trace.push_back(rng.nextBounded(256));
    laoram.runTrace(trace);
    path.runTrace(trace);

    EXPECT_EQ(laoram.meter().counters().pathReads,
              path.meter().counters().pathReads);
    EXPECT_EQ(laoram.meter().counters().bytesRead,
              path.meter().counters().bytesRead);
}

/** Sweep correctness across superblock sizes and tree profiles. */
struct LaoramCase
{
    std::uint64_t superblock;
    bool fat;
};

class LaoramSweep : public ::testing::TestWithParam<LaoramCase>
{
};

TEST_P(LaoramSweep, ShadowTableMatches)
{
    const auto p = GetParam();
    LaoramConfig cfg = laoramConfig(128, p.superblock, p.fat, 4);
    Laoram oram(cfg);
    std::map<oram::BlockId, std::uint8_t> shadow;
    oram.setTouchCallback(
        [&](oram::BlockId id, std::vector<std::uint8_t> &payload) {
            const std::uint8_t v =
                static_cast<std::uint8_t>(shadow[id] + 1);
            shadow[id] = v;
            payload.assign(4, v);
        });
    Rng rng(p.superblock * 7 + p.fat);
    std::vector<oram::BlockId> trace;
    for (int i = 0; i < 400; ++i)
        trace.push_back(rng.nextBounded(128));
    oram.runTrace(trace);
    oram.setTouchCallback(nullptr);

    for (const auto &[id, v] : shadow) {
        std::vector<std::uint8_t> out;
        oram.readBlock(id, out);
        EXPECT_EQ(out, std::vector<std::uint8_t>(4, v))
            << "block " << id;
    }
    EXPECT_EQ(oram::auditTree(oram.geometry(), oram.storageForAudit(),
                              oram.stashForAudit(),
                              oram.posmapForAudit()),
              "");
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LaoramSweep,
    ::testing::Values(LaoramCase{1, false}, LaoramCase{2, false},
                      LaoramCase{4, false}, LaoramCase{8, false},
                      LaoramCase{2, true}, LaoramCase{4, true},
                      LaoramCase{8, true}));

} // namespace
} // namespace laoram::core
