/**
 * @file
 * Parameterized property sweeps over the preprocessor: the bin
 * invariants must hold for every (superblock size, stream shape)
 * combination, and the future-link rate must track stream reuse.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "core/preprocessor.hh"
#include "util/rng.hh"
#include "workload/generator.hh"

namespace laoram::core {
namespace {

struct SweepCase
{
    std::uint64_t superblock;
    workload::DatasetKind kind;
    std::uint64_t numBlocks;
};

class PrepSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(PrepSweep, BinInvariantsHold)
{
    const auto p = GetParam();
    const auto trace =
        workload::makeTrace(p.kind, p.numBlocks, 3000, 11);
    Preprocessor prep(PreprocessorConfig{p.superblock, 256}, 7);
    const auto res = prep.run(trace.accesses);

    std::uint64_t raw_total = 0;
    std::unordered_map<BlockId, Leaf> next_path_of;
    for (std::size_t i = res.bins.size(); i-- > 0;) {
        const auto &bin = res.bins[i];
        ASSERT_EQ(validateBin(bin), "") << "bin " << i;
        EXPECT_LE(bin.members.size(), p.superblock);
        raw_total += bin.rawAccesses;
        // Future-path metadata must equal the backward-scan oracle.
        for (std::size_t j = 0; j < bin.members.size(); ++j) {
            auto it = next_path_of.find(bin.members[j]);
            const Leaf expect = it == next_path_of.end()
                                    ? kNoFuturePath
                                    : it->second;
            ASSERT_EQ(bin.nextPaths[j], expect)
                << "bin " << i << " member " << j;
        }
        for (BlockId id : bin.members)
            next_path_of[id] = bin.path;
    }
    EXPECT_EQ(raw_total, trace.accesses.size());
}

TEST_P(PrepSweep, AllBinsButLastAreFull)
{
    const auto p = GetParam();
    const auto trace =
        workload::makeTrace(p.kind, p.numBlocks, 3000, 13);
    Preprocessor prep(PreprocessorConfig{p.superblock, 256}, 9);
    const auto res = prep.run(trace.accesses);
    for (std::size_t i = 0; i + 1 < res.bins.size(); ++i) {
        EXPECT_EQ(res.bins[i].members.size(), p.superblock)
            << "bin " << i;
    }
}

TEST_P(PrepSweep, FutureLinkRateTracksReuse)
{
    // High-reuse streams (xnli) must future-link a far larger member
    // fraction than no-reuse streams (permutation within one epoch).
    const auto p = GetParam();
    if (p.kind != workload::DatasetKind::Xnli)
        GTEST_SKIP() << "comparison anchored at the xnli case";
    Preprocessor prep(PreprocessorConfig{p.superblock, 256}, 3);

    const auto hot =
        workload::makeTrace(p.kind, p.numBlocks, 3000, 17);
    const auto res_hot = prep.run(hot.accesses);

    const auto cold = workload::makeTrace(
        workload::DatasetKind::Permutation, 60000, 3000, 17);
    const auto res_cold = prep.run(cold.accesses);

    std::uint64_t hot_members = 0, cold_members = 0;
    for (const auto &b : res_hot.bins)
        hot_members += b.members.size();
    for (const auto &b : res_cold.bins)
        cold_members += b.members.size();
    const double hot_rate = static_cast<double>(res_hot.futureLinked)
        / static_cast<double>(hot_members);
    const double cold_rate =
        static_cast<double>(res_cold.futureLinked)
        / static_cast<double>(cold_members);
    EXPECT_GT(hot_rate, cold_rate + 0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PrepSweep,
    ::testing::Values(
        SweepCase{1, workload::DatasetKind::Kaggle, 1 << 14},
        SweepCase{2, workload::DatasetKind::Kaggle, 1 << 14},
        SweepCase{4, workload::DatasetKind::Kaggle, 1 << 14},
        SweepCase{8, workload::DatasetKind::Kaggle, 1 << 14},
        SweepCase{16, workload::DatasetKind::Kaggle, 1 << 14},
        SweepCase{4, workload::DatasetKind::Permutation, 1 << 12},
        SweepCase{4, workload::DatasetKind::Gaussian, 1 << 12},
        SweepCase{4, workload::DatasetKind::Xnli, 1 << 12},
        SweepCase{8, workload::DatasetKind::Xnli, 1 << 12}));

} // namespace
} // namespace laoram::core
