/**
 * @file
 * Regression tests for ShardedLaoram::aggregateShardReports.
 *
 * The bug being pinned down: concurrent lanes' serve-thread waits
 * (wallFillNs / wallStallNs / wallReorderStallNs) are *elapsed* time
 * that overlaps on the wall clock, so the aggregate must be the
 * slowest lane (max), not the sum — summing used to report more stall
 * time than the whole run took. Thread-*work* fields (wallPrepNs,
 * wallServeNs, wallIoNs) stay summed: distinct threads really did
 * burn that much CPU.
 */

#include <gtest/gtest.h>

#include "core/sharded_laoram.hh"

namespace laoram::core {
namespace {

ShardReport
syntheticShard(double scale)
{
    ShardReport sr;
    sr.pipeline.windows = static_cast<std::uint64_t>(10 * scale);
    sr.pipeline.totalPrepNs = 1000.0 * scale;
    sr.pipeline.totalAccessNs = 4000.0 * scale;
    sr.pipeline.serialNs = 5000.0 * scale;
    sr.pipeline.pipelinedNs = 4200.0 * scale;
    sr.pipeline.wallPrepNs = 900.0 * scale;
    sr.pipeline.wallServeNs = 3800.0 * scale;
    sr.pipeline.wallFillNs = 100.0 * scale;
    sr.pipeline.wallStallNs = 250.0 * scale;
    sr.pipeline.wallReorderStallNs = 60.0 * scale;
    sr.pipeline.wallIoNs = 500.0 * scale;
    sr.pipeline.prepHiddenFraction = 1.0;
    sr.pipeline.measuredPrepHiddenFraction = 1.0;
    sr.simNs = 4000.0 * scale;
    return sr;
}

TEST(ShardedAggregate, ElapsedWaitsAreMaxOverLanes)
{
    ShardedPipelineReport rep;
    rep.shards.push_back(syntheticShard(1.0));
    rep.shards.push_back(syntheticShard(3.0)); // the slow lane
    rep.shards.push_back(syntheticShard(2.0));

    ShardedLaoram::aggregateShardReports(rep, /*concurrentLanes=*/3,
                                         /*prepThreadsPerLane=*/2,
                                         /*wallTotalNs=*/20000.0);

    // Elapsed-time waits: slowest lane, never the sum. The sums would
    // be 600 / 1500 / 360 — more stall than some lanes even ran.
    EXPECT_DOUBLE_EQ(rep.aggregate.wallFillNs, 300.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallStallNs, 750.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallReorderStallNs, 180.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.pipelinedNs, 4200.0 * 3.0);

    // Thread-work fields: genuinely parallel CPU time, summed.
    EXPECT_DOUBLE_EQ(rep.aggregate.wallPrepNs, 900.0 * 6.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallServeNs, 3800.0 * 6.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallIoNs, 500.0 * 6.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.totalPrepNs, 1000.0 * 6.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.totalAccessNs, 4000.0 * 6.0);
    EXPECT_EQ(rep.aggregate.windows, 60u);

    // Simulated clock keeps both views: concurrent (max) and total.
    EXPECT_DOUBLE_EQ(rep.simNs, 12000.0);
    EXPECT_DOUBLE_EQ(rep.simTotalNs, 24000.0);

    EXPECT_DOUBLE_EQ(rep.aggregate.wallTotalNs, 20000.0);
    EXPECT_EQ(rep.aggregate.prepThreads, 6u);
}

TEST(ShardedAggregate, StallNeverExceedsRunWallTime)
{
    // The shape of the original bug: many lanes, each mostly stalled.
    // After the fix the aggregate stall is bounded by one lane's run.
    ShardedPipelineReport rep;
    for (int s = 0; s < 16; ++s) {
        ShardReport sr;
        sr.pipeline.wallStallNs = 9000.0;
        sr.pipeline.wallFillNs = 500.0;
        sr.pipeline.wallServeNs = 1000.0;
        rep.shards.push_back(sr);
    }
    const double wallTotalNs = 10000.0;
    ShardedLaoram::aggregateShardReports(rep, 16, 1, wallTotalNs);

    EXPECT_LE(rep.aggregate.wallStallNs + rep.aggregate.wallFillNs,
              wallTotalNs);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallStallNs, 9000.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallFillNs, 500.0);
    // Serve work is real per-thread CPU and still sums past wall time.
    EXPECT_DOUBLE_EQ(rep.aggregate.wallServeNs, 16000.0);
}

TEST(ShardedAggregate, HiddenFractionsArePrepWeightedAverages)
{
    ShardedPipelineReport rep;
    ShardReport a;
    a.pipeline.totalPrepNs = 1000.0;
    a.pipeline.prepHiddenFraction = 1.0;
    a.pipeline.wallPrepNs = 1000.0;
    a.pipeline.measuredPrepHiddenFraction = 0.5;
    ShardReport b;
    b.pipeline.totalPrepNs = 3000.0;
    b.pipeline.prepHiddenFraction = 0.5;
    b.pipeline.wallPrepNs = 1000.0;
    b.pipeline.measuredPrepHiddenFraction = 1.0;
    rep.shards.push_back(a);
    rep.shards.push_back(b);

    ShardedLaoram::aggregateShardReports(rep, 2, 1, 1.0);

    EXPECT_DOUBLE_EQ(rep.aggregate.prepHiddenFraction,
                     (1000.0 * 1.0 + 3000.0 * 0.5) / 4000.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.measuredPrepHiddenFraction, 0.75);
    EXPECT_GE(rep.aggregate.prepHiddenFraction, 0.0);
    EXPECT_LE(rep.aggregate.prepHiddenFraction, 1.0);
}

TEST(ShardedAggregate, EmptyShardListLeavesDefaults)
{
    ShardedPipelineReport rep;
    ShardedLaoram::aggregateShardReports(rep, 1, 1, 0.0);
    EXPECT_EQ(rep.aggregate.windows, 0u);
    EXPECT_DOUBLE_EQ(rep.aggregate.wallStallNs, 0.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.prepHiddenFraction, 0.0);
    EXPECT_DOUBLE_EQ(rep.aggregate.ioServeFraction, 0.0);
}

TEST(ShardedAggregate, EndToEndShardedStallBoundedByWallTime)
{
    // Same invariant on a real concurrent sharded run: aggregate
    // fill+stall (elapsed waits of the slowest lane) cannot exceed
    // the measured end-to-end wall time.
    ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = 1 << 10;
    cfg.engine.base.seed = 77;
    cfg.engine.superblockSize = 4;
    cfg.numShards = 4;
    cfg.pipeline.windowAccesses = 128;
    cfg.pipeline.mode = PipelineMode::Concurrent;
    ShardedLaoram engine(cfg);

    std::vector<BlockId> trace;
    trace.reserve(4096);
    for (std::uint64_t i = 0; i < 4096; ++i)
        trace.push_back((i * 2654435761u) % cfg.engine.base.numBlocks);

    const ShardedPipelineReport rep = engine.runTrace(trace);
    ASSERT_GT(rep.aggregate.wallTotalNs, 0.0);
    // Each aggregate wait is one lane's elapsed wait, so it fits in
    // the end-to-end wall time (the summed form could not).
    EXPECT_LE(rep.aggregate.wallFillNs, rep.aggregate.wallTotalNs);
    EXPECT_LE(rep.aggregate.wallStallNs, rep.aggregate.wallTotalNs);
    EXPECT_LE(rep.aggregate.wallReorderStallNs,
              rep.aggregate.wallStallNs + 1.0);
}

} // namespace
} // namespace laoram::core
