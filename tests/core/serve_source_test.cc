/**
 * @file
 * ServeSource tests: TraceSource window slicing, the contiguity
 * contract under concurrent claiming, and the unified
 * BatchPipeline::run(ServeSource&) path matching the trace adapter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/pipeline.hh"
#include "core/serve_source.hh"
#include "util/rng.hh"

namespace laoram::core {
namespace {

std::vector<oram::BlockId>
randomTrace(std::uint64_t n, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t;
    t.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        t.push_back(rng.nextBounded(blocks));
    return t;
}

TEST(TraceSource, SlicesTraceIntoNumberedWindows)
{
    const auto trace = randomTrace(1000, 64, 5);
    TraceSource src(trace, 300);
    EXPECT_EQ(src.numWindows(), 4u);

    SourceWindow sw;
    std::uint64_t offset = 0;
    for (std::uint64_t w = 0; w < 4; ++w) {
        ASSERT_TRUE(src.nextWindow(sw));
        EXPECT_EQ(sw.windowIndex, w);
        EXPECT_EQ(sw.traceOffset, offset);
        const std::uint64_t expect = w < 3 ? 300 : 100;
        ASSERT_EQ(sw.accesses.size(), expect);
        for (std::size_t i = 0; i < sw.accesses.size(); ++i)
            EXPECT_EQ(sw.accesses[i], trace[offset + i]);
        offset += expect;
    }
    EXPECT_FALSE(src.nextWindow(sw));
    EXPECT_FALSE(src.nextWindow(sw)); // exhaustion is permanent
}

TEST(TraceSource, ZeroWindowMeansWholeTrace)
{
    const auto trace = randomTrace(123, 16, 7);
    TraceSource src(trace, 0);
    EXPECT_EQ(src.numWindows(), 1u);
    SourceWindow sw;
    ASSERT_TRUE(src.nextWindow(sw));
    EXPECT_EQ(sw.windowIndex, 0u);
    EXPECT_EQ(sw.accesses.size(), trace.size());
    EXPECT_FALSE(src.nextWindow(sw));
}

TEST(TraceSource, EmptyTraceEmitsNothing)
{
    const std::vector<oram::BlockId> empty;
    TraceSource src(empty, 64);
    EXPECT_EQ(src.numWindows(), 0u);
    SourceWindow sw;
    EXPECT_FALSE(src.nextWindow(sw));
}

TEST(TraceSource, ConcurrentClaimingStaysContiguousAndComplete)
{
    // The ServeSource contract the reorder stage rests on: under any
    // number of claiming threads, every window index in [0, N) is
    // handed out exactly once, with its data.
    const auto trace = randomTrace(4096, 64, 9);
    TraceSource src(trace, 64);
    const std::uint64_t numWindows = src.numWindows();

    std::mutex mu;
    std::set<std::uint64_t> seen;
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&] {
            SourceWindow sw;
            while (src.nextWindow(sw)) {
                ASSERT_FALSE(sw.accesses.empty());
                std::lock_guard<std::mutex> lock(mu);
                const bool fresh = seen.insert(sw.windowIndex).second;
                ASSERT_TRUE(fresh)
                    << "window " << sw.windowIndex << " claimed twice";
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    ASSERT_EQ(seen.size(), numWindows);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), numWindows - 1);
}

TEST(ServeSource, UnifiedRunMatchesTraceAdapter)
{
    // run(ServeSource&) and the legacy run(trace) adapter are the
    // same code path; prove it end to end on engine state.
    const auto trace = randomTrace(1500, 128, 11);

    LaoramConfig cfg;
    cfg.base.numBlocks = 128;
    cfg.base.seed = 31;
    cfg.superblockSize = 4;

    const PipelineConfig pc = PipelineConfig{}.withWindowAccesses(200);

    Laoram viaTrace(cfg);
    BatchPipeline(viaTrace, pc).run(trace);

    Laoram viaSource(cfg);
    TraceSource src(trace, pc.windowAccesses);
    const PipelineReport rep = BatchPipeline(viaSource, pc).run(src);

    EXPECT_EQ(rep.windows, (trace.size() + 199) / 200);
    EXPECT_EQ(viaTrace.stashSize(), viaSource.stashSize());
    EXPECT_EQ(viaTrace.binsFormed(), viaSource.binsFormed());
    ASSERT_EQ(viaTrace.posmapForAudit().size(),
              viaSource.posmapForAudit().size());
    for (oram::BlockId id = 0; id < viaTrace.posmapForAudit().size();
         ++id)
        ASSERT_EQ(viaTrace.posmapForAudit().get(id),
                  viaSource.posmapForAudit().get(id));

    // Trace replay carries no request timestamps: latency stays zero.
    EXPECT_EQ(rep.latency.requests, 0u);
    EXPECT_DOUBLE_EQ(rep.latency.p99Ns, 0.0);
}

} // namespace
} // namespace laoram::core
