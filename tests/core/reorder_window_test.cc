/**
 * @file
 * ReorderWindow tests: strict in-sequence delivery under out-of-order
 * arrival, window-full backpressure, shutdown-while-pending drain
 * semantics, release-token unwind, and the consumer stall accounting
 * the pipeline report surfaces.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/reorder_window.hh"

namespace laoram::core {
namespace {

TEST(ReorderWindow, OutOfOrderArrivalDeliversInSequence)
{
    ReorderWindow<int> window(4);
    // Arrivals scrambled within the capacity bound.
    EXPECT_TRUE(window.push(2, 102));
    EXPECT_TRUE(window.push(0, 100));
    EXPECT_TRUE(window.push(3, 103));
    EXPECT_TRUE(window.push(1, 101));

    int out = 0;
    for (int seq = 0; seq < 4; ++seq) {
        ASSERT_TRUE(window.pop(out));
        EXPECT_EQ(out, 100 + seq);
    }
    EXPECT_EQ(window.size(), 0u);
    EXPECT_EQ(window.nextSequence(), 4u);
    EXPECT_EQ(window.stats().delivered, 4u);
}

TEST(ReorderWindow, ConsumerBlocksOnSequenceGapUntilItArrives)
{
    ReorderWindow<int> window(4);
    ASSERT_TRUE(window.push(1, 11));
    ASSERT_TRUE(window.push(2, 12));

    std::atomic<bool> popping{false};
    std::atomic<int> delivered{0};
    std::thread consumer([&] {
        int out = 0;
        for (int seq = 0; seq < 3; ++seq) {
            popping.store(true, std::memory_order_release);
            ASSERT_TRUE(window.pop(out));
            EXPECT_EQ(out, 10 + seq);
            delivered.fetch_add(1, std::memory_order_relaxed);
        }
    });

    // Handshake: wait for the consumer to reach pop(), then give it
    // time to enter the gap wait (nothing is deliverable while 0 is
    // missing — that part is deterministic regardless of timing).
    while (!popping.load(std::memory_order_acquire))
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(delivered.load(), 0);

    ASSERT_TRUE(window.push(0, 10));
    consumer.join();
    EXPECT_EQ(delivered.load(), 3);

    // The gap wait happened while items 1 and 2 sat buffered, so it
    // must be classified as head-of-line (reorder) stall.
    const auto st = window.stats();
    EXPECT_GT(st.popWaitNs, 0);
    EXPECT_GT(st.headOfLineWaitNs, 0);
    EXPECT_LE(st.headOfLineWaitNs, st.popWaitNs);
    EXPECT_EQ(st.maxOccupancy, 3u);
}

TEST(ReorderWindow, FullWindowExertsBackpressure)
{
    ReorderWindow<int> window(2);
    ASSERT_TRUE(window.push(0, 0));
    ASSERT_TRUE(window.push(1, 1));

    // Sequence 2 is capacity ahead of the cursor: the producer must
    // block until the consumer vacates sequence 0.
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(window.push(2, 2));
        pushed.store(true, std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load(std::memory_order_acquire));

    int out = -1;
    ASSERT_TRUE(window.pop(out));
    EXPECT_EQ(out, 0);
    producer.join();
    EXPECT_TRUE(pushed.load());

    ASSERT_TRUE(window.pop(out));
    EXPECT_EQ(out, 1);
    ASSERT_TRUE(window.pop(out));
    EXPECT_EQ(out, 2);
}

TEST(ReorderWindow, LowestOutstandingSequenceIsAlwaysAdmitted)
{
    // The deadlock-freedom invariant: the producer holding the
    // consumer's cursor sequence never blocks, even on a window
    // whose later slots are all taken.
    ReorderWindow<int> window(3);
    ASSERT_TRUE(window.push(1, 1));
    ASSERT_TRUE(window.push(2, 2));
    ASSERT_TRUE(window.push(0, 0)); // must not block
    int out = -1;
    for (int seq = 0; seq < 3; ++seq) {
        ASSERT_TRUE(window.pop(out));
        EXPECT_EQ(out, seq);
    }
}

TEST(ReorderWindow, ShutdownDrainsContiguousPrefixThenStops)
{
    ReorderWindow<int> window(8);
    // Contiguous 0..2 buffered, then a gap at 3, then 4 and 5.
    ASSERT_TRUE(window.push(0, 0));
    ASSERT_TRUE(window.push(1, 1));
    ASSERT_TRUE(window.push(2, 2));
    ASSERT_TRUE(window.push(4, 4));
    ASSERT_TRUE(window.push(5, 5));
    window.close();

    // Push after close fails.
    EXPECT_FALSE(window.push(3, 3));

    // The in-order prefix drains; the first gap ends the stream even
    // though later items sit buffered (they can never be delivered
    // deterministically).
    int out = -1;
    for (int seq = 0; seq < 3; ++seq) {
        ASSERT_TRUE(window.pop(out));
        EXPECT_EQ(out, seq);
    }
    EXPECT_FALSE(window.pop(out));
    EXPECT_EQ(window.stats().delivered, 3u);
}

TEST(ReorderWindow, CloseWakesBlockedProducerAndConsumer)
{
    ReorderWindow<int> window(1);
    ASSERT_TRUE(window.push(0, 0));

    std::thread producer([&] {
        // Blocked: sequence 1 is capacity ahead.
        EXPECT_FALSE(window.push(1, 1));
    });
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        window.close();
    });
    producer.join();
    closer.join();

    // Buffered sequence 0 still drains after close.
    int out = -1;
    EXPECT_TRUE(window.pop(out));
    EXPECT_EQ(out, 0);
    EXPECT_FALSE(window.pop(out));
}

TEST(ReorderWindow, ReleaseTokenWakesProducerOnUnwind)
{
    ReorderWindow<int> window(1);
    ASSERT_TRUE(window.push(0, 10));

    std::thread producer([&] { EXPECT_TRUE(window.push(1, 11)); });

    auto consumeAndThrow = [&] {
        int out = 0;
        ReorderWindow<int>::ReleaseToken token;
        ASSERT_TRUE(window.popDeferred(out, token));
        EXPECT_EQ(out, 10);
        EXPECT_TRUE(token.held());
        throw std::runtime_error("consumer died mid-window");
    };
    EXPECT_THROW(consumeAndThrow(), std::runtime_error);

    // Producer unblocks only if the unwound token freed the slot.
    producer.join();
    int out = 0;
    EXPECT_TRUE(window.pop(out));
    EXPECT_EQ(out, 11);
}

TEST(ReorderWindow, ReleaseTokenMoveTransfersTheWakeup)
{
    ReorderWindow<int> window(1);
    ASSERT_TRUE(window.push(0, 7));

    int out = 0;
    ReorderWindow<int>::ReleaseToken token;
    ASSERT_TRUE(window.popDeferred(out, token));
    EXPECT_TRUE(token.held());

    ReorderWindow<int>::ReleaseToken moved(std::move(token));
    EXPECT_FALSE(token.held());
    EXPECT_TRUE(moved.held());
    moved.release();
    EXPECT_FALSE(moved.held());

    ASSERT_TRUE(window.push(1, 8));
    EXPECT_TRUE(window.pop(out));
    EXPECT_EQ(out, 8);

    // Exhaustion leaves a popDeferred token empty.
    window.close();
    ReorderWindow<int>::ReleaseToken empty;
    EXPECT_FALSE(window.popDeferred(out, empty));
    EXPECT_FALSE(empty.held());
}

TEST(ReorderWindow, ManyProducersContendedDeliveryStaysOrdered)
{
    // The pipeline shape: producers claim sequence numbers
    // contiguously off an atomic ticket and push directly into the
    // window; the consumer must see 0, 1, 2, ... regardless of
    // scheduling.
    constexpr std::uint64_t kProducers = 8;
    constexpr std::uint64_t kTotal = 4000;

    ReorderWindow<std::uint64_t> window(4);
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::uint64_t> live{kProducers};

    std::vector<std::thread> producers;
    for (std::uint64_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            while (true) {
                const std::uint64_t seq =
                    ticket.fetch_add(1, std::memory_order_relaxed);
                if (seq >= kTotal)
                    break;
                ASSERT_TRUE(window.push(seq, seq * 3));
            }
            if (live.fetch_sub(1, std::memory_order_acq_rel) == 1)
                window.close();
        });
    }

    std::uint64_t expect = 0;
    std::uint64_t out = 0;
    while (window.pop(out)) {
        ASSERT_EQ(out, expect * 3) << "out of order at " << expect;
        ++expect;
    }
    EXPECT_EQ(expect, kTotal);

    for (auto &t : producers)
        t.join();
    EXPECT_LE(window.stats().maxOccupancy, window.capacity());
}

} // namespace
} // namespace laoram::core
