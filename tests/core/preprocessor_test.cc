/**
 * @file
 * Preprocessor tests: bin formation, dedup, future-path metadata
 * correctness (checked against a brute-force reference), and path
 * uniformity.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/preprocessor.hh"
#include "util/rng.hh"

namespace laoram::core {
namespace {

Preprocessor
makePrep(std::uint64_t s, std::uint64_t leaves = 64,
         std::uint64_t seed = 9)
{
    return Preprocessor(PreprocessorConfig{s, leaves}, seed);
}

TEST(Preprocessor, EmptyStream)
{
    auto prep = makePrep(4);
    const auto res = prep.run(std::vector<BlockId>{});
    EXPECT_TRUE(res.bins.empty());
    EXPECT_EQ(res.totalAccesses, 0u);
}

TEST(Preprocessor, ExactBins)
{
    auto prep = makePrep(2);
    const auto res = prep.run({1, 2, 3, 4, 5, 6});
    ASSERT_EQ(res.bins.size(), 3u);
    EXPECT_EQ(res.bins[0].members, (std::vector<BlockId>{1, 2}));
    EXPECT_EQ(res.bins[1].members, (std::vector<BlockId>{3, 4}));
    EXPECT_EQ(res.bins[2].members, (std::vector<BlockId>{5, 6}));
    for (const auto &bin : res.bins)
        EXPECT_EQ(validateBin(bin), "");
}

TEST(Preprocessor, TrailingPartialBin)
{
    auto prep = makePrep(4);
    const auto res = prep.run({1, 2, 3, 4, 5});
    ASSERT_EQ(res.bins.size(), 2u);
    EXPECT_EQ(res.bins[1].members, (std::vector<BlockId>{5}));
    EXPECT_EQ(res.bins[1].rawAccesses, 1u);
}

TEST(Preprocessor, DuplicatesCollapseWithinOpenBin)
{
    auto prep = makePrep(3);
    const auto res = prep.run({7, 7, 7, 8, 9, 1, 1, 2});
    ASSERT_EQ(res.bins.size(), 2u);
    EXPECT_EQ(res.bins[0].members, (std::vector<BlockId>{7, 8, 9}));
    EXPECT_EQ(res.bins[0].rawAccesses, 5u);
    EXPECT_EQ(res.bins[1].members, (std::vector<BlockId>{1, 1 + 1}));
    EXPECT_EQ(res.bins[1].rawAccesses, 3u);
}

TEST(Preprocessor, RawAccessesSumToStreamLength)
{
    auto prep = makePrep(4);
    Rng rng(1);
    std::vector<BlockId> stream;
    for (int i = 0; i < 997; ++i)
        stream.push_back(rng.nextBounded(50));
    const auto res = prep.run(stream);
    std::uint64_t total = 0;
    for (const auto &bin : res.bins)
        total += bin.rawAccesses;
    EXPECT_EQ(total, stream.size());
    EXPECT_EQ(res.totalAccesses, stream.size());
}

TEST(Preprocessor, PathsInRange)
{
    auto prep = makePrep(4, 32);
    Rng rng(2);
    std::vector<BlockId> stream;
    for (int i = 0; i < 500; ++i)
        stream.push_back(rng.nextBounded(100));
    const auto res = prep.run(stream);
    for (const auto &bin : res.bins) {
        EXPECT_LT(bin.path, 32u);
        for (Leaf p : bin.nextPaths)
            EXPECT_TRUE(p == kNoFuturePath || p < 32);
    }
}

TEST(Preprocessor, NextPathsMatchBruteForce)
{
    // Reference: for bin i member b, the next path is the path of the
    // first bin j > i with b among its members.
    auto prep = makePrep(3, 128);
    Rng rng(3);
    std::vector<BlockId> stream;
    for (int i = 0; i < 600; ++i)
        stream.push_back(rng.nextBounded(20)); // heavy repetition
    const auto res = prep.run(stream);

    for (std::size_t i = 0; i < res.bins.size(); ++i) {
        const auto &bin = res.bins[i];
        for (std::size_t j = 0; j < bin.members.size(); ++j) {
            Leaf expected = kNoFuturePath;
            for (std::size_t k = i + 1; k < res.bins.size(); ++k) {
                const auto &later = res.bins[k];
                bool contains = false;
                for (BlockId m : later.members)
                    contains |= (m == bin.members[j]);
                if (contains) {
                    expected = later.path;
                    break;
                }
            }
            EXPECT_EQ(bin.nextPaths[j], expected)
                << "bin " << i << " member " << j;
        }
    }
}

TEST(Preprocessor, FutureLinkedCountsRepeats)
{
    auto prep = makePrep(2);
    // Block 1 appears in bins {1,2}, {1,3}: first occurrence links
    // forward, second does not.
    const auto res = prep.run({1, 2, 1, 3});
    ASSERT_EQ(res.bins.size(), 2u);
    EXPECT_EQ(res.futureLinked, 1u);
    EXPECT_EQ(res.bins[0].nextPaths[0], res.bins[1].path);
    EXPECT_EQ(res.bins[0].nextPaths[1], kNoFuturePath);
}

TEST(Preprocessor, UniqueBlocksCounted)
{
    auto prep = makePrep(4);
    const auto res = prep.run({1, 2, 1, 2, 3});
    EXPECT_EQ(res.uniqueBlocks, 3u);
}

TEST(Preprocessor, DeterministicBySeed)
{
    auto prep1 = makePrep(4, 64, 42);
    auto prep2 = makePrep(4, 64, 42);
    std::vector<BlockId> stream{5, 9, 2, 7, 5, 1, 0, 4, 3};
    const auto r1 = prep1.run(stream);
    const auto r2 = prep2.run(stream);
    ASSERT_EQ(r1.bins.size(), r2.bins.size());
    for (std::size_t i = 0; i < r1.bins.size(); ++i) {
        EXPECT_EQ(r1.bins[i].path, r2.bins[i].path);
        EXPECT_EQ(r1.bins[i].members, r2.bins[i].members);
    }
}

TEST(Preprocessor, BinPathsAreUniform)
{
    // §IV-B-3: superblock paths come from U(leaves); coarse chi-square.
    constexpr std::uint64_t kLeaves = 16;
    auto prep = makePrep(1, kLeaves, 11);
    std::vector<BlockId> stream(16000);
    for (std::size_t i = 0; i < stream.size(); ++i)
        stream[i] = static_cast<BlockId>(i); // all distinct
    const auto res = prep.run(stream);
    std::vector<std::uint64_t> hist(kLeaves, 0);
    for (const auto &bin : res.bins)
        ++hist[bin.path];
    const double expected =
        static_cast<double>(res.bins.size()) / kLeaves;
    double chi2 = 0;
    for (auto c : hist) {
        chi2 += (static_cast<double>(c) - expected)
            * (static_cast<double>(c) - expected) / expected;
    }
    EXPECT_LT(chi2, 45.0); // df=15
}

TEST(Preprocessor, SuperblockSizeOne)
{
    auto prep = makePrep(1);
    const auto res = prep.run({4, 4, 4});
    // S=1: every access (even repeats) closes a bin immediately.
    ASSERT_EQ(res.bins.size(), 3u);
    for (const auto &bin : res.bins)
        EXPECT_EQ(bin.members.size(), 1u);
}

TEST(ValidateBin, CatchesBadBins)
{
    SuperblockBin bin;
    EXPECT_NE(validateBin(bin), ""); // empty

    bin.members = {1, 2};
    bin.nextPaths = {0};
    bin.rawAccesses = 2;
    EXPECT_NE(validateBin(bin), ""); // parallel mismatch

    bin.nextPaths = {0, 0};
    bin.rawAccesses = 1;
    EXPECT_NE(validateBin(bin), ""); // raw < members

    bin.rawAccesses = 2;
    EXPECT_EQ(validateBin(bin), "");

    bin.members = {3, 3};
    EXPECT_NE(validateBin(bin), ""); // duplicate member
}

} // namespace
} // namespace laoram::core
