/**
 * @file
 * Analytic-bound property tests (paper §VIII-F): measured LAORAM
 * traffic reduction over PathORAM can never exceed the paper's upper
 * bounds — superblockSize for a normal tree and
 * 2(Z+1)/(3Z+1) * superblockSize for the fat tree — and the warm
 * steady state approaches 1/S path reads per access.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/laoram_client.hh"
#include "oram/path_oram.hh"
#include "workload/permutation_gen.hh"
#include "workload/zipf_gen.hh"

namespace laoram::core {
namespace {

struct BoundCase
{
    std::uint64_t superblock;
    bool fat;
};

class TrafficBounds : public ::testing::TestWithParam<BoundCase>
{
};

TEST_P(TrafficBounds, ReductionRespectsPaperBound)
{
    const auto p = GetParam();
    constexpr std::uint64_t kBlocks = 2048;
    constexpr double kZ = 4.0;

    // High-reuse stream: the most favourable case for LAORAM, i.e.
    // the one that approaches (and must not exceed) the bound.
    workload::ZipfParams zp;
    zp.numBlocks = kBlocks;
    zp.accesses = 20000;
    zp.skew = 1.1;
    zp.seed = 3;
    const auto trace = workload::makeZipfTrace(zp).accesses;

    oram::EngineConfig base;
    base.numBlocks = kBlocks;
    base.blockBytes = 64;
    base.seed = 9;
    base.profile = oram::BucketProfile::uniform(4);
    oram::PathOram path(base);
    path.runTrace(trace);

    LaoramConfig lcfg;
    lcfg.base = base;
    lcfg.base.profile = p.fat ? oram::BucketProfile::fat(4)
                              : oram::BucketProfile::uniform(4);
    lcfg.superblockSize = p.superblock;
    Laoram laoram(lcfg);
    laoram.runTrace(trace);

    const double reduction =
        static_cast<double>(path.meter().counters().totalBytes())
        / static_cast<double>(
              laoram.meter().counters().totalBytes());

    const double s = static_cast<double>(p.superblock);
    const double bound =
        p.fat ? 2.0 * (kZ + 1.0) / (3.0 * kZ + 1.0) * s : s;
    EXPECT_LE(reduction, bound * 1.02)
        << "measured reduction exceeds the paper's analytic bound";
    if (p.superblock >= 2) {
        EXPECT_GT(reduction, 1.0)
            << "superblocks should beat PathORAM on a reuse-heavy "
               "stream";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TrafficBounds,
    ::testing::Values(BoundCase{1, false}, BoundCase{2, false},
                      BoundCase{4, false}, BoundCase{8, false},
                      BoundCase{2, true}, BoundCase{4, true},
                      BoundCase{8, true}));

TEST(TrafficBounds, WarmSteadyStateApproachesOneOverS)
{
    // Fully re-used stream (repeated epochs, whole-trace look-ahead):
    // path reads per access must converge toward 1/S.
    constexpr std::uint64_t kBlocks = 1024;
    constexpr std::uint64_t kS = 4;

    LaoramConfig cfg;
    cfg.base.numBlocks = kBlocks;
    cfg.base.blockBytes = 64;
    cfg.base.seed = 4;
    cfg.superblockSize = kS;
    Laoram oram(cfg);

    workload::PermutationParams pp;
    pp.numBlocks = kBlocks;
    pp.accesses = kBlocks * 12; // long run, one look-ahead window
    pp.seed = 5;
    oram.runTrace(workload::makePermutationTrace(pp).accesses);

    // Overall rate = (1 cold epoch + 11 warm epochs) / 12; warm rate
    // is 1/S, so expect ~(1 + 11/4)/12 = 0.3125, and certainly below
    // 0.4.
    const double rpa =
        oram.meter().counters().pathReadsPerAccess();
    EXPECT_LT(rpa, 0.40);
    EXPECT_GT(rpa, 1.0 / static_cast<double>(kS) - 0.02);
}

} // namespace
} // namespace laoram::core
