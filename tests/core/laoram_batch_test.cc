/**
 * @file
 * Tests for LAORAM's training-batch granularity (accessBatch): the
 * paper's deployment reads every path a batch needs before training
 * (§IV-A). Batch mode must be functionally identical to bin mode and
 * reproduce its distinctive traffic/stash trade-off.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/laoram_client.hh"
#include "oram/evictor.hh"
#include "util/rng.hh"
#include "workload/permutation_gen.hh"

namespace laoram::core {
namespace {

LaoramConfig
batchConfig(std::uint64_t blocks, std::uint64_t sb,
            std::uint64_t batch, std::uint64_t payload = 0)
{
    LaoramConfig cfg;
    cfg.base.numBlocks = blocks;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = payload;
    cfg.base.seed = 777;
    cfg.superblockSize = sb;
    cfg.batchAccesses = batch;
    return cfg;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t n, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t(n);
    for (auto &id : t)
        id = rng.nextBounded(blocks);
    return t;
}

TEST(LaoramBatch, CountsAllAccesses)
{
    Laoram oram(batchConfig(128, 4, 64));
    const auto trace = randomTrace(1000, 128, 1);
    oram.runTrace(trace);
    EXPECT_EQ(oram.meter().counters().logicalAccesses, trace.size());
}

TEST(LaoramBatch, ShadowTableMatchesBinMode)
{
    // Batch mode and bin mode must leave identical block contents.
    auto run = [](std::uint64_t batch) {
        Laoram oram(batchConfig(96, 4, batch, 4));
        std::map<oram::BlockId, std::uint8_t> shadow;
        oram.setTouchCallback(
            [&](oram::BlockId id, std::vector<std::uint8_t> &payload) {
                const auto v =
                    static_cast<std::uint8_t>(shadow[id] + 1);
                shadow[id] = v;
                payload.assign(4, v);
            });
        oram.runTrace(randomTrace(500, 96, 2));
        oram.setTouchCallback(nullptr);
        std::map<oram::BlockId, std::vector<std::uint8_t>> contents;
        for (oram::BlockId id = 0; id < 96; ++id) {
            std::vector<std::uint8_t> out;
            oram.readBlock(id, out);
            contents[id] = out;
        }
        return std::make_pair(shadow, contents);
    };
    const auto [shadow_bin, contents_bin] = run(0);
    const auto [shadow_b64, contents_b64] = run(64);
    EXPECT_EQ(shadow_bin, shadow_b64)
        << "same trace must touch the same blocks equally";
    EXPECT_EQ(contents_bin, contents_b64);
}

TEST(LaoramBatch, InvariantAuditAfterBatchedTrace)
{
    Laoram oram(batchConfig(256, 8, 128, 8));
    oram.runTrace(randomTrace(1500, 256, 3));
    EXPECT_EQ(oram::auditTree(oram.geometry(), oram.storageForAudit(),
                              oram.stashForAudit(),
                              oram.posmapForAudit()),
              "");
}

TEST(LaoramBatch, BatchReadsFewerTimesThanBins)
{
    // One union read per batch vs one per bin: pathReads counts the
    // logical paths either way, but the read *operations* (clock
    // round trips) shrink. Compare total simulated time instead:
    // batching amortises the link latency.
    const auto trace = randomTrace(4096, 512, 4);
    Laoram per_bin(batchConfig(512, 4, 0));
    per_bin.runTrace(trace);
    Laoram batched(batchConfig(512, 4, 512));
    batched.runTrace(trace);
    EXPECT_LT(batched.meter().clock().nanoseconds(),
              per_bin.meter().clock().nanoseconds());
}

TEST(LaoramBatch, DuplicateAcrossBinsInsideBatchEndsOnFinalPath)
{
    // A block appearing in two bins of the same batch must end up
    // positioned for its LAST occurrence's future, and be touched
    // twice (once per bin).
    Laoram oram(batchConfig(64, 2, 8, 4));
    std::map<oram::BlockId, int> touches;
    oram.setTouchCallback(
        [&](oram::BlockId id, std::vector<std::uint8_t> &) {
            ++touches[id];
        });
    // S=2, batch of 8 accesses: block 5 lands in two bins.
    oram.runTrace({5, 1, 5, 2, 3, 4, 6, 7});
    EXPECT_EQ(touches[5], 2);
    EXPECT_EQ(oram::auditTree(oram.geometry(), oram.storageForAudit(),
                              oram.stashForAudit(),
                              oram.posmapForAudit()),
              "");
}

TEST(LaoramBatch, UnionWriteBackRelievesStashPressure)
{
    // With union write-back, a big batch covers far more tree nodes
    // per write than bin-granularity accesses do, so remapped blocks
    // find placement and the stash stays LOW — batching is strictly
    // beneficial in this implementation (per-bin mode is what
    // reproduces the paper's Fig. 8 growth regime).
    auto peak = [](std::uint64_t batch) {
        LaoramConfig cfg = batchConfig(2048, 4, batch);
        cfg.base.stashHighWater = ~std::uint64_t{0}; // no eviction
        cfg.base.stashLowWater = 0;
        Laoram oram(cfg);
        // Warm multi-epoch permutation: coalesced bins + future links.
        workload::PermutationParams pp;
        pp.numBlocks = 2048;
        pp.accesses = 2048 * 3;
        pp.seed = 5;
        oram.runTrace(workload::makePermutationTrace(pp).accesses);
        return oram.meter().counters().stashPeak;
    };
    EXPECT_LE(peak(1024), peak(0));
}

TEST(LaoramBatch, SecurityReadsEqualWrites)
{
    // Union write-back must cover exactly the union read (slot-for-
    // slot), batched or not.
    Laoram oram(batchConfig(128, 4, 256));
    std::uint64_t reads = 0, writes = 0;
    oram.storageForTest().setAccessSink(
        [&](std::uint64_t, bool write) {
            (write ? writes : reads) += 1;
        });
    oram.runTrace(randomTrace(1000, 128, 6));
    EXPECT_EQ(reads, writes);
    EXPECT_GT(reads, 0u);
}

} // namespace
} // namespace laoram::core
