/**
 * @file
 * PipelineConfig construction and validation: the named setter-style
 * builders and the validate() pass that rejects incoherent knob
 * combinations with a clear fatal error instead of silent fallback.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"

namespace laoram::core {
namespace {

TEST(PipelineConfig, SetterChainingBuildsExpectedConfig)
{
    const PipelineConfig pc = PipelineConfig{}
                                  .withWindowAccesses(256)
                                  .withQueueDepth(8)
                                  .withPrepThreads(3)
                                  .withPreprocessCost(40.0)
                                  .withPrepLoad(5.0)
                                  .withMode(PipelineMode::Concurrent);
    EXPECT_EQ(pc.windowAccesses, 256u);
    EXPECT_EQ(pc.queueDepth, 8u);
    EXPECT_EQ(pc.prepThreads, 3u);
    EXPECT_DOUBLE_EQ(pc.preprocessNsPerAccess, 40.0);
    EXPECT_DOUBLE_EQ(pc.prepLoadNsPerAccess, 5.0);
    EXPECT_EQ(pc.mode, PipelineMode::Concurrent);
}

TEST(PipelineConfig, DefaultsValidate)
{
    PipelineConfig{}.validate(); // must not exit
    PipelineConfig{}.withMode(PipelineMode::Simulated).validate();
    PipelineConfig{}.withPrepThreads(8).withQueueDepth(1).validate();
}

TEST(PipelineConfigDeathTest, RejectsZeroWindow)
{
    EXPECT_EXIT(PipelineConfig{}.withWindowAccesses(0).validate(),
                ::testing::ExitedWithCode(1), "windowAccesses");
}

TEST(PipelineConfigDeathTest, RejectsZeroQueueDepth)
{
    EXPECT_EXIT(PipelineConfig{}.withQueueDepth(0).validate(),
                ::testing::ExitedWithCode(1), "queueDepth");
}

TEST(PipelineConfigDeathTest, RejectsZeroPrepThreads)
{
    EXPECT_EXIT(PipelineConfig{}.withPrepThreads(0).validate(),
                ::testing::ExitedWithCode(1), "prepThreads");
}

TEST(PipelineConfigDeathTest, RejectsNegativeCosts)
{
    EXPECT_EXIT(PipelineConfig{}.withPreprocessCost(-1.0).validate(),
                ::testing::ExitedWithCode(1),
                "preprocessNsPerAccess");
    EXPECT_EXIT(PipelineConfig{}.withPrepLoad(-1.0).validate(),
                ::testing::ExitedWithCode(1), "prepLoadNsPerAccess");
}

TEST(PipelineConfigDeathTest, RejectsSimulatedWithPrepPool)
{
    // Simulated mode spawns no threads; a pool request would be
    // silently ignored — exactly the fallback validate() forbids.
    EXPECT_EXIT(PipelineConfig{}
                    .withMode(PipelineMode::Simulated)
                    .withPrepThreads(4)
                    .validate(),
                ::testing::ExitedWithCode(1), "Simulated");
}

TEST(PipelineConfigDeathTest, RejectsSimulatedWithPrepLoad)
{
    EXPECT_EXIT(PipelineConfig{}
                    .withMode(PipelineMode::Simulated)
                    .withPrepLoad(10.0)
                    .validate(),
                ::testing::ExitedWithCode(1), "prepLoadNsPerAccess");
}

TEST(PipelineConfigDeathTest, BatchPipelineValidatesOnConstruction)
{
    LaoramConfig cfg;
    cfg.base.numBlocks = 64;
    cfg.base.seed = 3;
    Laoram engine(cfg);
    EXPECT_EXIT(
        {
            BatchPipeline pipe(engine, PipelineConfig{}
                                           .withMode(
                                               PipelineMode::Simulated)
                                           .withPrepThreads(2));
            (void)pipe;
        },
        ::testing::ExitedWithCode(1), "Simulated");
}

} // namespace
} // namespace laoram::core
