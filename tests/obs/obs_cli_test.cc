/**
 * @file
 * Observability CLI tests: the shared metrics/trace/log-level/
 * report-json option bundle resolves and rejects exactly as
 * documented, and log-level parsing accepts names and digits.
 */

#include <gtest/gtest.h>

#include "obs/obs_cli.hh"
#include "util/cli.hh"

namespace laoram::obs {
namespace {

struct ParsedObs
{
    ArgParser args{"obs_test", "test"};
    ObsArgs oa;

    ParsedObs() : oa(addObsArgs(args)) {}

    bool
    parse(std::vector<std::string> argv)
    {
        return args.parseVector(std::move(argv));
    }
};

TEST(ObsCli, DefaultsResolveToDisabledSurface)
{
    ParsedObs p;
    ASSERT_TRUE(p.parse({}));
    ObsConfig cfg;
    ASSERT_TRUE(obsConfigFromArgsChecked(p.oa, &cfg));
    EXPECT_TRUE(cfg.metricsOut.empty());
    EXPECT_TRUE(cfg.metricsProm.empty());
    EXPECT_TRUE(cfg.traceOut.empty());
    EXPECT_TRUE(cfg.reportJson.empty());
    EXPECT_FALSE(cfg.logLevelSet);
    EXPECT_EQ(cfg.metricsIntervalMs, 100u);
}

TEST(ObsCli, FullSurfaceParses)
{
    ParsedObs p;
    ASSERT_TRUE(p.parse({"--metrics-out", "m.jsonl",
                         "--metrics-interval-ms", "10",
                         "--metrics-prom", "m.prom", "--trace-out",
                         "t.json", "--trace-buffer", "1024",
                         "--log-level", "debug", "--report-json",
                         "r.json"}));
    ObsConfig cfg;
    std::string error;
    ASSERT_TRUE(obsConfigFromArgsChecked(p.oa, &cfg, &error)) << error;
    EXPECT_EQ(cfg.metricsOut, "m.jsonl");
    EXPECT_EQ(cfg.metricsIntervalMs, 10u);
    EXPECT_EQ(cfg.metricsProm, "m.prom");
    EXPECT_EQ(cfg.traceOut, "t.json");
    EXPECT_EQ(cfg.traceBufferEvents, 1024u);
    EXPECT_EQ(cfg.reportJson, "r.json");
    EXPECT_TRUE(cfg.logLevelSet);
    EXPECT_EQ(cfg.logLevel, LogLevel::Debug);
}

TEST(ObsCli, IntervalWithoutMetricsOutRejected)
{
    ParsedObs p;
    ASSERT_TRUE(p.parse({"--metrics-interval-ms", "50"}));
    ObsConfig cfg;
    std::string error;
    EXPECT_FALSE(obsConfigFromArgsChecked(p.oa, &cfg, &error));
    EXPECT_NE(error.find("--metrics-out"), std::string::npos);
}

TEST(ObsCli, ZeroIntervalRejected)
{
    ParsedObs p;
    ASSERT_TRUE(p.parse(
        {"--metrics-out", "m.jsonl", "--metrics-interval-ms", "0"}));
    ObsConfig cfg;
    EXPECT_FALSE(obsConfigFromArgsChecked(p.oa, &cfg));
}

TEST(ObsCli, TraceBufferWithoutTraceOutRejected)
{
    ParsedObs p;
    ASSERT_TRUE(p.parse({"--trace-buffer", "512"}));
    ObsConfig cfg;
    std::string error;
    EXPECT_FALSE(obsConfigFromArgsChecked(p.oa, &cfg, &error));
    EXPECT_NE(error.find("--trace-out"), std::string::npos);
}

TEST(ObsCli, ZeroTraceBufferRejected)
{
    ParsedObs p;
    ASSERT_TRUE(
        p.parse({"--trace-out", "t.json", "--trace-buffer", "0"}));
    ObsConfig cfg;
    EXPECT_FALSE(obsConfigFromArgsChecked(p.oa, &cfg));
}

TEST(ObsCli, BadLogLevelRejected)
{
    ParsedObs p;
    ASSERT_TRUE(p.parse({"--log-level", "chatty"}));
    ObsConfig cfg;
    std::string error;
    EXPECT_FALSE(obsConfigFromArgsChecked(p.oa, &cfg, &error));
    EXPECT_NE(error.find("chatty"), std::string::npos);
}

TEST(ObsCli, ExplicitDefaultIntervalStillNeedsMetricsOut)
{
    // The seen-tracker catches an explicitly passed default value.
    ParsedObs p;
    ASSERT_TRUE(p.parse({"--metrics-interval-ms", "100"}));
    ObsConfig cfg;
    EXPECT_FALSE(obsConfigFromArgsChecked(p.oa, &cfg));
}

TEST(ParseLogLevel, AcceptsNamesAndDigits)
{
    LogLevel level = LogLevel::Info;
    EXPECT_TRUE(parseLogLevel("quiet", &level));
    EXPECT_EQ(level, LogLevel::Quiet);
    EXPECT_TRUE(parseLogLevel("WARN", &level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("info", &level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("Debug", &level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("0", &level));
    EXPECT_EQ(level, LogLevel::Quiet);
    EXPECT_TRUE(parseLogLevel("3", &level));
    EXPECT_EQ(level, LogLevel::Debug);
}

TEST(ParseLogLevel, RejectsUnknownLeavingOutputUntouched)
{
    LogLevel level = LogLevel::Warn;
    EXPECT_FALSE(parseLogLevel("verbose", &level));
    EXPECT_FALSE(parseLogLevel("7", &level));
    EXPECT_FALSE(parseLogLevel("", &level));
    EXPECT_EQ(level, LogLevel::Warn);
}

TEST(ParseLogLevel, NameRoundTrips)
{
    for (LogLevel l : {LogLevel::Quiet, LogLevel::Warn, LogLevel::Info,
                       LogLevel::Debug}) {
        LogLevel parsed = LogLevel::Quiet;
        EXPECT_TRUE(parseLogLevel(logLevelName(l), &parsed));
        EXPECT_EQ(parsed, l);
    }
}

} // namespace
} // namespace laoram::obs
