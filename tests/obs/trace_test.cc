/**
 * @file
 * Span tracer tests: ring overflow counts drops without blocking, the
 * emitted JSON is structurally valid Chrome-trace (checked with the
 * in-tree validator), and a traced concurrent run shows spans from
 * more than one thread.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "core/pipeline.hh"
#include "core/serve_source.hh"
#include "obs/trace.hh"
#include "util/rng.hh"

namespace laoram::obs {
namespace {

class ObsTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Tracer::instance().disable();
        Tracer::instance().reset();
    }

    void
    TearDown() override
    {
        Tracer::instance().disable();
        Tracer::instance().reset();
    }
};

std::string
dumpTrace()
{
    std::ostringstream os;
    Tracer::instance().writeTo(os);
    return os.str();
}

TEST_F(ObsTraceTest, DisabledRecordsNothing)
{
    EXPECT_FALSE(tracingEnabled());
    traceRecord("never", 0, 10);
    {
        TraceSpan span("never-span");
    }
    EXPECT_EQ(Tracer::instance().recorded(), 0u);
    EXPECT_EQ(Tracer::instance().threadsSeen(), 0u);
}

TEST_F(ObsTraceTest, RecordsSpansAndThreadNames)
{
    Tracer &tracer = Tracer::instance();
    tracer.enable(64);
    traceSetThreadName("test-main");
    {
        TraceSpan span("unit-span", 7);
    }
    traceRecordEndingNow("back-dated", 1000, 3);
    tracer.disable();

    EXPECT_EQ(tracer.recorded(), 2u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_EQ(tracer.threadsSeen(), 1u);

    const std::string json = dumpTrace();
    EXPECT_NE(json.find("\"unit-span\""), std::string::npos);
    EXPECT_NE(json.find("\"back-dated\""), std::string::npos);
    EXPECT_NE(json.find("\"test-main\""), std::string::npos);

    std::string error;
    std::uint64_t events = 0;
    ASSERT_TRUE(validateChromeTrace(json, &error, &events)) << error;
    EXPECT_EQ(events, 2u);
}

TEST_F(ObsTraceTest, FirstThreadNameWins)
{
    Tracer &tracer = Tracer::instance();
    tracer.enable(16);
    traceSetThreadName("outer");
    traceSetThreadName("inner");
    traceRecord("x", 0, 1);
    tracer.disable();

    const std::string json = dumpTrace();
    EXPECT_NE(json.find("\"outer\""), std::string::npos);
    EXPECT_EQ(json.find("\"inner\""), std::string::npos);
}

TEST_F(ObsTraceTest, RingOverflowCountsDropsWithoutBlocking)
{
    Tracer &tracer = Tracer::instance();
    constexpr std::size_t kCapacity = 32;
    constexpr std::size_t kRecorded = 100;
    tracer.enable(kCapacity);
    for (std::size_t i = 0; i < kRecorded; ++i)
        traceRecord("spin", static_cast<std::int64_t>(i), 1, i);
    tracer.disable();

    EXPECT_EQ(tracer.recorded(), kCapacity);
    EXPECT_EQ(tracer.dropped(), kRecorded - kCapacity);

    // The ring keeps the newest events and the dump stays valid JSON
    // with the drop count reported.
    const std::string json = dumpTrace();
    std::string error;
    std::uint64_t events = 0;
    ASSERT_TRUE(validateChromeTrace(json, &error, &events)) << error;
    EXPECT_EQ(events, kCapacity);
    EXPECT_NE(json.find("\"dropped\""), std::string::npos);
}

TEST_F(ObsTraceTest, ResetForgetsRingsAndDrops)
{
    Tracer &tracer = Tracer::instance();
    tracer.enable(4);
    for (int i = 0; i < 10; ++i)
        traceRecord("x", i, 1);
    tracer.disable();
    EXPECT_GT(tracer.recorded(), 0u);
    EXPECT_GT(tracer.dropped(), 0u);

    tracer.reset();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_EQ(tracer.threadsSeen(), 0u);
}

TEST_F(ObsTraceTest, MultipleThreadsGetDistinctTids)
{
    Tracer &tracer = Tracer::instance();
    tracer.enable(256);
    std::thread other([] {
        traceSetThreadName("worker");
        TraceSpan span("other-thread-span");
    });
    other.join();
    {
        TraceSpan span("main-thread-span");
    }
    tracer.disable();

    std::string error;
    std::uint64_t events = 0;
    std::size_t threads = 0;
    ASSERT_TRUE(
        validateChromeTrace(dumpTrace(), &error, &events, &threads))
        << error;
    EXPECT_EQ(events, 2u);
    EXPECT_EQ(threads, 2u);
}

/**
 * Schema smoke: a traced concurrent pipeline run (prep workers + the
 * serving thread) emits parseable Chrome-trace JSON with spans from
 * at least two threads — the load-in-Perfetto acceptance check,
 * automated.
 */
TEST_F(ObsTraceTest, TracedPipelineRunEmitsValidMultiThreadTrace)
{
    Tracer &tracer = Tracer::instance();
    tracer.enable(1 << 12);

    {
        core::LaoramConfig cfg;
        cfg.base.numBlocks = 256;
        cfg.base.blockBytes = 64;
        cfg.base.seed = 33;
        cfg.superblockSize = 4;
        cfg.lookaheadWindow = 64;
        core::Laoram engine(cfg);

        Rng rng(99);
        std::vector<oram::BlockId> trace;
        for (int i = 0; i < 512; ++i)
            trace.push_back(rng.nextBounded(cfg.base.numBlocks));

        core::BatchPipeline pipe(engine,
                                 core::PipelineConfig{}
                                     .withWindowAccesses(64)
                                     .withPrepThreads(2)
                                     .withMode(
                                         core::PipelineMode::Concurrent));
        core::TraceSource source(trace, 64);
        pipe.run(source);
    }
    tracer.disable();

    const std::string json = dumpTrace();
    std::string error;
    std::uint64_t events = 0;
    std::size_t threads = 0;
    ASSERT_TRUE(validateChromeTrace(json, &error, &events, &threads))
        << error;
    EXPECT_GT(events, 0u);
    EXPECT_GE(threads, 2u);
    EXPECT_NE(json.find("\"serve-window\""), std::string::npos);
    EXPECT_NE(json.find("\"prep-window\""), std::string::npos);
}

} // namespace
} // namespace laoram::obs
