/**
 * @file
 * MetricsRegistry tests: handle identity, snapshot/exposition shape,
 * and the concurrent increment-while-sampling contract the background
 * sampler relies on (runs under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace laoram::obs {
namespace {

class ObsMetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        MetricsRegistry::instance().resetForTest();
        setMetricsEnabled(false);
    }

    void
    TearDown() override
    {
        MetricsRegistry::instance().resetForTest();
        setMetricsEnabled(false);
    }
};

TEST_F(ObsMetricsTest, SameNameReturnsSameHandle)
{
    auto &reg = MetricsRegistry::instance();
    Counter &a = reg.counter("test.same_name");
    Counter &b = reg.counter("test.same_name");
    EXPECT_EQ(&a, &b);
    a.inc();
    b.add(2);
    EXPECT_EQ(a.get(), 3u);
}

TEST_F(ObsMetricsTest, GaugeSetMaxIsMonotonic)
{
    Gauge &g = MetricsRegistry::instance().gauge("test.peak");
    g.setMax(10);
    g.setMax(4);
    EXPECT_EQ(g.get(), 10);
    g.setMax(12);
    EXPECT_EQ(g.get(), 12);
}

TEST_F(ObsMetricsTest, HistogramTracksCountSumMaxAndQuantiles)
{
    Histogram &h = MetricsRegistry::instance().histogram("test.sizes");
    for (std::uint64_t v : {1u, 2u, 4u, 8u, 1024u})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1039u);
    EXPECT_EQ(h.max(), 1024u);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.99));
}

TEST_F(ObsMetricsTest, SnapshotExpandsHistograms)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("test.c").add(7);
    reg.gauge("test.g").set(-3);
    reg.histogram("test.h").record(16);

    const MetricsSnapshot snap = reg.snapshot();
    bool sawCounter = false, sawGauge = false, sawHistCount = false,
         sawHistP99 = false;
    for (const auto &v : snap.values) {
        if (v.name == "test.c") {
            sawCounter = true;
            EXPECT_DOUBLE_EQ(v.value, 7.0);
        } else if (v.name == "test.g") {
            sawGauge = true;
            EXPECT_DOUBLE_EQ(v.value, -3.0);
        } else if (v.name == "test.h.count") {
            sawHistCount = true;
            EXPECT_DOUBLE_EQ(v.value, 1.0);
        } else if (v.name == "test.h.p99") {
            sawHistP99 = true;
        }
    }
    EXPECT_TRUE(sawCounter);
    EXPECT_TRUE(sawGauge);
    EXPECT_TRUE(sawHistCount);
    EXPECT_TRUE(sawHistP99);
}

TEST_F(ObsMetricsTest, PrometheusTextMapsNames)
{
    auto &reg = MetricsRegistry::instance();
    reg.counter("test.prom.reads", "read ops").add(5);
    const std::string text = reg.prometheusText();
    EXPECT_NE(text.find("laoram_test_prom_reads 5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE laoram_test_prom_reads counter"),
              std::string::npos);
}

TEST_F(ObsMetricsTest, EnabledGateFlips)
{
    EXPECT_FALSE(metricsEnabled());
    setMetricsEnabled(true);
    EXPECT_TRUE(metricsEnabled());
    setMetricsEnabled(false);
    EXPECT_FALSE(metricsEnabled());
}

/**
 * The sampler contract: snapshot() runs concurrently with hot-path
 * updates and must stay race-free (this is the suite CI runs under
 * TSan) and never lose a counted increment by the time the writers
 * have joined.
 */
TEST_F(ObsMetricsTest, ConcurrentIncrementsSurviveSampling)
{
    auto &reg = MetricsRegistry::instance();
    Counter &c = reg.counter("test.race.counter");
    Histogram &h = reg.histogram("test.race.hist");

    constexpr int kThreads = 4;
    constexpr std::uint64_t kPerThread = 50000;

    std::atomic<bool> stop{false};
    std::thread sampler([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const MetricsSnapshot snap = reg.snapshot();
            for (const auto &v : snap.values)
                EXPECT_GE(v.value, 0.0);
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                c.inc();
                h.record(i & 0xFF);
            }
        });
    }
    for (std::thread &t : writers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    sampler.join();

    EXPECT_EQ(c.get(), kThreads * kPerThread);
    EXPECT_EQ(h.count(), kThreads * kPerThread);
}

} // namespace
} // namespace laoram::obs
