/**
 * @file
 * Training-substrate tests: embedding table serialisation, SGD
 * mechanics, and that the toy model actually learns.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "train/embedding_table.hh"
#include "train/sgd.hh"
#include "train/toy_model.hh"
#include "util/rng.hh"

namespace laoram::train {
namespace {

TEST(EmbeddingTable, ShapeAndInit)
{
    EmbeddingTable t(100, 32, 1);
    EXPECT_EQ(t.rows(), 100u);
    EXPECT_EQ(t.dim(), 32u);
    EXPECT_EQ(t.rowBytes(), 128u); // the paper's DLRM row size
    // Init bounded by 1/sqrt(dim).
    for (float v : t.row(0))
        EXPECT_LE(std::abs(v), 1.0f / std::sqrt(32.0f) + 1e-6f);
}

TEST(EmbeddingTable, DeterministicInit)
{
    EmbeddingTable a(10, 8, 7), b(10, 8, 7), c(10, 8, 8);
    for (int r = 0; r < 10; ++r) {
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(a.row(r)[i], b.row(r)[i]);
    }
    bool differ = false;
    for (int i = 0; i < 8; ++i)
        differ |= (a.row(0)[i] != c.row(0)[i]);
    EXPECT_TRUE(differ);
}

TEST(EmbeddingTable, SerializeRoundTrip)
{
    EmbeddingTable t(4, 16, 2);
    std::vector<std::uint8_t> buf;
    t.serializeRow(2, buf);
    EXPECT_EQ(buf.size(), 64u);

    EmbeddingTable other(4, 16, 3);
    other.deserializeRow(0, buf);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(other.row(0)[i], t.row(2)[i]);
}

TEST(EmbeddingTable, ApplyGradientMovesWeights)
{
    EmbeddingTable t(2, 4, 4);
    const float before = t.row(1)[0];
    std::vector<float> grad{1.0f, 0.0f, 0.0f, 0.0f};
    t.applyGradient(1, grad, 0.5f);
    EXPECT_FLOAT_EQ(t.row(1)[0], before - 0.5f);
}

TEST(EmbeddingTable, RowNorm)
{
    EmbeddingTable t(1, 2, 5);
    auto r = t.row(0);
    r[0] = 3.0f;
    r[1] = 4.0f;
    EXPECT_DOUBLE_EQ(t.rowNormSq(0), 25.0);
}

TEST(Sgd, VanillaStep)
{
    SgdOptimizer opt(0.1f);
    std::vector<float> w{1.0f, 2.0f};
    std::vector<float> g{10.0f, -10.0f};
    opt.step(0, w, g);
    EXPECT_FLOAT_EQ(w[0], 0.0f);
    EXPECT_FLOAT_EQ(w[1], 3.0f);
}

TEST(Sgd, MomentumAccumulates)
{
    SgdOptimizer opt(1.0f, 0.5f);
    std::vector<float> w{0.0f};
    std::vector<float> g{1.0f};
    opt.step(7, w, g); // v=1, w=-1
    EXPECT_FLOAT_EQ(w[0], -1.0f);
    opt.step(7, w, g); // v=1.5, w=-2.5
    EXPECT_FLOAT_EQ(w[0], -2.5f);
}

TEST(Sgd, MomentumIsPerKey)
{
    SgdOptimizer opt(1.0f, 0.9f);
    std::vector<float> w1{0.0f}, w2{0.0f};
    std::vector<float> g{1.0f};
    opt.step(1, w1, g);
    opt.step(1, w1, g);
    opt.step(2, w2, g); // fresh velocity
    EXPECT_FLOAT_EQ(w2[0], -1.0f);
    EXPECT_LT(w1[0], -2.0f + 1e-6f);
}

TEST(ToyModel, PredictsInUnitInterval)
{
    ToyInteractionModel model(8, 1);
    std::vector<std::vector<float>> rows{std::vector<float>(8, 0.3f)};
    const auto res = model.step(rows, 1.0f);
    EXPECT_GT(res.prediction, 0.0f);
    EXPECT_LT(res.prediction, 1.0f);
    EXPECT_GT(res.loss, 0.0f);
    ASSERT_EQ(res.rowGrads.size(), 1u);
    EXPECT_EQ(res.rowGrads[0].size(), 8u);
}

TEST(ToyModel, LearnsSeparableTask)
{
    // Two "users": one always labelled 1 via row A, one labelled 0 via
    // row B. Training embeddings + top weight must drive the loss
    // down.
    constexpr std::uint64_t kDim = 16;
    ToyInteractionModel model(kDim, 2);
    EmbeddingTable table(2, kDim, 3);
    SgdOptimizer opt(0.5f);

    auto run_epoch = [&]() {
        double loss = 0;
        for (int s = 0; s < 2; ++s) {
            const std::uint64_t row = s;
            const float label = s == 0 ? 1.0f : 0.0f;
            std::vector<std::vector<float>> rows{
                std::vector<float>(table.row(row).begin(),
                                   table.row(row).end())};
            const auto res = model.step(rows, label);
            loss += res.loss;
            table.applyGradient(row, res.rowGrads[0],
                                opt.learningRate());
            model.applyTopGradient(opt.learningRate());
        }
        return loss / 2;
    };

    const double first = run_epoch();
    double last = first;
    for (int e = 0; e < 200; ++e)
        last = run_epoch();
    EXPECT_LT(last, first * 0.5)
        << "loss should halve on a separable toy task";
    EXPECT_LT(last, 0.2);
}

TEST(ToyModel, GradientsPointDownhill)
{
    ToyInteractionModel model(4, 5);
    std::vector<std::vector<float>> rows{{0.5f, -0.2f, 0.1f, 0.9f}};
    const auto r1 = model.step(rows, 1.0f);
    // Apply the row gradient manually and re-evaluate: loss must drop.
    auto moved = rows;
    for (int i = 0; i < 4; ++i)
        moved[0][i] -= 0.5f * r1.rowGrads[0][i];
    const auto r2 = model.step(moved, 1.0f);
    EXPECT_LT(r2.loss, r1.loss);
}

} // namespace
} // namespace laoram::train
