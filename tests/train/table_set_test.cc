/**
 * @file
 * Multi-table flattening + multi-table DLRM trace tests.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "core/laoram_client.hh"
#include "train/table_set.hh"
#include "workload/dlrm_multi.hh"

namespace laoram::train {
namespace {

TEST(TableSet, FlattenUnflattenRoundTrip)
{
    TableSet ts({100, 50, 7});
    EXPECT_EQ(ts.numTables(), 3u);
    EXPECT_EQ(ts.totalBlocks(), 157u);
    for (std::uint64_t tab = 0; tab < 3; ++tab) {
        for (std::uint64_t row = 0; row < ts.tableRows(tab);
             row += 3) {
            const auto flat = ts.flatten(tab, row);
            ASSERT_LT(flat, ts.totalBlocks());
            const auto [t2, r2] = ts.unflatten(flat);
            EXPECT_EQ(t2, tab);
            EXPECT_EQ(r2, row);
        }
    }
}

TEST(TableSet, FlatIdsAreDisjointAcrossTables)
{
    TableSet ts({10, 10, 10});
    std::set<std::uint64_t> seen;
    for (std::uint64_t tab = 0; tab < 3; ++tab)
        for (std::uint64_t row = 0; row < 10; ++row)
            EXPECT_TRUE(seen.insert(ts.flatten(tab, row)).second);
    EXPECT_EQ(seen.size(), 30u);
}

TEST(TableSet, BoundaryBlocks)
{
    TableSet ts({4, 4});
    EXPECT_EQ(ts.unflatten(3),
              (std::pair<std::uint64_t, std::uint64_t>{0, 3}));
    EXPECT_EQ(ts.unflatten(4),
              (std::pair<std::uint64_t, std::uint64_t>{1, 0}));
    EXPECT_DEATH(ts.unflatten(8), "out of range");
    EXPECT_DEATH(ts.flatten(0, 4), "out of range");
    EXPECT_DEATH(ts.flatten(2, 0), "out of range");
}

TEST(TableSet, CriteoLikeShape)
{
    const TableSet ts = TableSet::criteoLike(1 << 16);
    EXPECT_EQ(ts.numTables(), 26u);
    EXPECT_EQ(ts.tableRows(0), 1u << 16);
    // Dominant table holds most of the rows, like Criteo.
    EXPECT_GT(static_cast<double>(ts.tableRows(0))
                  / static_cast<double>(ts.totalBlocks()),
              0.4);
    for (std::uint64_t t = 1; t < ts.numTables(); ++t)
        EXPECT_LE(ts.tableRows(t), ts.tableRows(0));
}

TEST(DlrmMulti, OneLookupPerTablePerSample)
{
    const TableSet ts = TableSet::criteoLike(4096);
    workload::DlrmMultiParams p;
    p.samples = 100;
    const auto trace = workload::makeDlrmMultiTrace(ts, p);
    ASSERT_EQ(trace.size(), 100 * ts.numTables());
    EXPECT_EQ(trace.numBlocks, ts.totalBlocks());

    // Sample s's accesses hit table 0, 1, ..., 25 in order.
    for (std::uint64_t s = 0; s < 100; ++s) {
        for (std::uint64_t tab = 0; tab < ts.numTables(); ++tab) {
            const auto block =
                trace.accesses[s * ts.numTables() + tab];
            EXPECT_EQ(ts.unflatten(block).first, tab);
        }
    }
}

TEST(DlrmMulti, PerTableSkewPresent)
{
    const TableSet ts = TableSet::criteoLike(1 << 14);
    workload::DlrmMultiParams p;
    p.samples = 4000;
    p.skew = 1.2;
    const auto trace = workload::makeDlrmMultiTrace(ts, p);
    // Table 0's accesses should concentrate on a hot subset.
    std::unordered_map<std::uint64_t, int> freq;
    for (auto block : trace.accesses) {
        const auto [tab, row] = ts.unflatten(block);
        if (tab == 0)
            ++freq[row];
    }
    int hot = 0;
    for (const auto &[row, n] : freq)
        hot += (n >= 10) ? n : 0;
    EXPECT_GT(hot, 400) << "expected a reused head in the big table";
}

TEST(DlrmMulti, TrainsThroughLaoram)
{
    // End-to-end: all 26 tables behind one LAORAM; every row touch
    // lands in the right table.
    const TableSet ts = TableSet::criteoLike(2048);
    workload::DlrmMultiParams p;
    p.samples = 200;
    const auto trace = workload::makeDlrmMultiTrace(ts, p);

    core::LaoramConfig cfg;
    cfg.base.numBlocks = ts.totalBlocks();
    cfg.base.blockBytes = 128;
    cfg.base.seed = 5;
    cfg.superblockSize = 4;
    core::Laoram oram(cfg);

    std::vector<std::uint64_t> touches_per_table(ts.numTables(), 0);
    oram.setTouchCallback(
        [&](oram::BlockId id, std::vector<std::uint8_t> &) {
            ++touches_per_table[ts.unflatten(id).first];
        });
    oram.runTrace(trace.accesses);

    for (std::uint64_t tab = 0; tab < ts.numTables(); ++tab)
        EXPECT_GT(touches_per_table[tab], 0u) << "table " << tab;
    EXPECT_EQ(oram.meter().counters().logicalAccesses, trace.size());
}

} // namespace
} // namespace laoram::train
