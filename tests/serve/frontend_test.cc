/**
 * @file
 * Online serving frontend: session submission, cross-session
 * coalescing into look-ahead windows, read-your-writes, admission
 * policies, latency reporting, and lifecycle errors.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "serve/frontend.hh"
#include "serve/serve.hh"

namespace laoram::serve {
namespace {

constexpr std::uint64_t kBlocks = 1 << 9;
constexpr std::uint64_t kPayload = 16;

core::ShardedLaoramConfig
engineConfig(std::uint32_t numShards, std::uint64_t windowAccesses)
{
    core::ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = kBlocks;
    cfg.engine.base.payloadBytes = kPayload;
    cfg.engine.base.seed = 99;
    cfg.engine.superblockSize = 4;
    cfg.numShards = numShards;
    cfg.pipeline.windowAccesses = windowAccesses;
    cfg.pipeline.mode = core::PipelineMode::Concurrent;
    return cfg;
}

std::vector<std::uint8_t>
bytesFor(std::uint8_t tag)
{
    std::vector<std::uint8_t> b(kPayload);
    std::iota(b.begin(), b.end(), tag);
    return b;
}

TEST(ServeFrontend, UpdateThenLookupInOneBatchReadsOwnWrite)
{
    core::ShardedLaoram engine(engineConfig(2, 8));
    ServeFrontend frontend(engine);
    Session session = frontend.session();

    Batch batch;
    batch.ops.push_back(Op::update(7, bytesFor(11)));
    batch.ops.push_back(Op::lookup(7));
    std::future<BatchResult> fut = session.submit(std::move(batch));

    frontend.start();
    frontend.flush();
    const BatchResult res = fut.get();
    ASSERT_EQ(res.results.size(), 2u);
    EXPECT_EQ(res.results[0].id, 7u);
    EXPECT_TRUE(res.results[0].payload.empty()); // updates carry none
    EXPECT_EQ(res.results[1].payload, bytesFor(11));
    frontend.stop();
}

TEST(ServeFrontend, LaterBatchSeesEarlierUpdateAndStatePersists)
{
    core::ShardedLaoram engine(engineConfig(2, 8));
    ServeFrontend frontend(engine);
    Session session = frontend.session();
    frontend.start();

    Batch upd;
    for (BlockId id = 0; id < 6; ++id)
        upd.ops.push_back(
            Op::update(id, bytesFor(static_cast<std::uint8_t>(id))));
    std::future<BatchResult> ufut = session.submit(std::move(upd));
    frontend.flush();
    ufut.get();

    Batch look;
    for (BlockId id = 0; id < 6; ++id)
        look.ops.push_back(Op::lookup(id));
    std::future<BatchResult> lfut = session.submit(std::move(look));
    frontend.flush();
    const BatchResult res = lfut.get();
    for (BlockId id = 0; id < 6; ++id)
        EXPECT_EQ(res.results[id].payload,
                  bytesFor(static_cast<std::uint8_t>(id)))
            << "block " << id;
    frontend.stop();

    // The writes are durable engine state, visible to offline reads.
    for (BlockId id = 0; id < 6; ++id) {
        std::vector<std::uint8_t> out;
        engine.shard(engine.splitter().shardOf(id))
            .readBlock(engine.splitter().localId(id), out);
        EXPECT_EQ(out, bytesFor(static_cast<std::uint8_t>(id)));
    }
}

TEST(ServeFrontend, ConcurrentSessionsAllCompleteWithLatencyReport)
{
    constexpr int kSessions = 4;
    constexpr int kBatches = 8;
    constexpr int kOpsPerBatch = 16;

    core::ShardedLaoram engine(engineConfig(2, 32));
    ServeFrontend frontend(engine);
    frontend.start();

    std::vector<std::thread> clients;
    std::atomic<std::uint64_t> completedOps{0};
    for (int c = 0; c < kSessions; ++c) {
        clients.emplace_back([&, c] {
            Session session = frontend.session();
            for (int b = 0; b < kBatches; ++b) {
                Batch batch;
                for (int i = 0; i < kOpsPerBatch; ++i) {
                    const BlockId id =
                        (c * 131 + b * 17 + i * 7) % kBlocks;
                    if (i % 3 == 0)
                        batch.ops.push_back(Op::update(
                            id, bytesFor(static_cast<std::uint8_t>(c))));
                    else
                        batch.ops.push_back(Op::lookup(id));
                }
                std::future<BatchResult> fut =
                    session.submit(std::move(batch));
                if (b % 2 == 1) {
                    // Wait for half the batches in-line: coalescing
                    // must make progress without an explicit flush
                    // once enough traffic fills windows — but this
                    // client's pending ops may sit in a partial
                    // window, so cut it.
                    frontend.flush();
                    const BatchResult res = fut.get();
                    completedOps += res.results.size();
                } else {
                    fut.wait_for(std::chrono::seconds(0));
                }
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    frontend.flush();
    const core::ShardedPipelineReport rep = frontend.stop();

    constexpr std::uint64_t kTotalOps =
        kSessions * kBatches * kOpsPerBatch;
    EXPECT_GE(completedOps.load(), kTotalOps / 2);
    EXPECT_EQ(rep.aggregate.latency.requests, kTotalOps);
    EXPECT_GT(rep.aggregate.latency.p50Ns, 0.0);
    EXPECT_LE(rep.aggregate.latency.p50Ns, rep.aggregate.latency.p99Ns);
    EXPECT_LE(rep.aggregate.latency.p99Ns,
              rep.aggregate.latency.p999Ns);
    EXPECT_LE(rep.aggregate.latency.p999Ns,
              rep.aggregate.latency.maxNs);
    EXPECT_GT(rep.aggregate.windows, 0u);
}

TEST(ServeFrontend, RejectPolicyFailsBatchDeterministically)
{
    FrontendConfig fcfg;
    fcfg.admissionOps = 2;
    fcfg.queueFullPolicy = QueueFullPolicy::Reject;

    core::ShardedLaoram engine(engineConfig(1, 8));
    ServeFrontend frontend(engine, fcfg);
    Session session = frontend.session();

    // Before start() nothing drains the lane, so the third operation
    // finds the queue full — a deterministic rejection.
    Batch batch;
    for (BlockId id = 0; id < 5; ++id)
        batch.ops.push_back(Op::lookup(id));
    std::future<BatchResult> fut = session.submit(std::move(batch));

    frontend.start();
    frontend.stop();
    EXPECT_THROW(fut.get(), RejectedError);
}

TEST(ServeFrontend, SubmitAfterStopRejects)
{
    core::ShardedLaoram engine(engineConfig(2, 8));
    ServeFrontend frontend(engine);
    Session session = frontend.session();
    frontend.start();
    frontend.stop();

    std::future<BatchResult> fut =
        session.submit(Batch{{Op::lookup(1)}});
    EXPECT_THROW(fut.get(), RejectedError);
}

TEST(ServeFrontend, EmptyBatchResolvesImmediately)
{
    core::ShardedLaoram engine(engineConfig(2, 8));
    ServeFrontend frontend(engine);
    Session session = frontend.session();
    std::future<BatchResult> fut = session.submit(Batch{});
    EXPECT_TRUE(fut.get().results.empty());
    // Never started: destructor has nothing to tear down.
}

TEST(ServeFrontend, SessionsGetDistinctIds)
{
    core::ShardedLaoram engine(engineConfig(2, 8));
    ServeFrontend frontend(engine);
    EXPECT_NE(frontend.session().id(), frontend.session().id());
}

TEST(ServeFrontendDeathTest, OutOfRangeBlockIdIsFatal)
{
    EXPECT_EXIT(
        {
            core::ShardedLaoram engine(engineConfig(2, 8));
            ServeFrontend frontend(engine);
            Session session = frontend.session();
            (void)session.submit(Batch{{Op::lookup(kBlocks)}});
        },
        ::testing::ExitedWithCode(1), "block space");
}

TEST(ServeFrontendDeathTest, PoolSmallerThanShardsIsFatal)
{
    EXPECT_EXIT(
        {
            core::ShardedLaoramConfig cfg = engineConfig(4, 8);
            cfg.servingThreads = 2;
            core::ShardedLaoram engine(cfg);
            ServeFrontend frontend(engine);
            (void)frontend;
        },
        ::testing::ExitedWithCode(1), "starve");
}

} // namespace
} // namespace laoram::serve
