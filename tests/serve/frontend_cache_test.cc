/**
 * @file
 * Serving frontend with the trusted-client hot cache enabled: the
 * admission fast path must preserve read-your-writes within a
 * session, keep the latency report complete, and stay correct under
 * concurrent sessions hammering a shared hot set (the cache mutex,
 * the plannedPending gate and the pin lifecycle are the TSan targets
 * here — this suite runs under the sanitizer jobs).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <numeric>
#include <thread>
#include <vector>

#include "serve/frontend.hh"

namespace laoram::serve {
namespace {

constexpr std::uint64_t kBlocks = 1 << 9;
constexpr std::uint64_t kPayload = 16;

core::ShardedLaoramConfig
cachedConfig(std::uint32_t numShards, std::uint64_t windowAccesses,
             std::uint64_t cacheRows)
{
    core::ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = kBlocks;
    cfg.engine.base.payloadBytes = kPayload;
    cfg.engine.base.seed = 77;
    cfg.engine.superblockSize = 4;
    cfg.engine.cache.capacityBytes = cacheRows * kPayload;
    cfg.numShards = numShards;
    cfg.pipeline.windowAccesses = windowAccesses;
    cfg.pipeline.mode = core::PipelineMode::Concurrent;
    return cfg;
}

std::vector<std::uint8_t>
bytesFor(std::uint8_t tag)
{
    std::vector<std::uint8_t> b(kPayload);
    std::iota(b.begin(), b.end(), tag);
    return b;
}

TEST(ServeFrontendCache, ReadYourWritesAcrossCachedBatches)
{
    core::ShardedLaoram engine(cachedConfig(2, 8, 64));
    ServeFrontend frontend(engine);
    Session session = frontend.session();
    frontend.start();

    // Warm the cache: first round of updates misses and fills.
    Batch warm;
    for (BlockId id = 0; id < 8; ++id)
        warm.ops.push_back(
            Op::update(id, bytesFor(static_cast<std::uint8_t>(id))));
    std::future<BatchResult> wfut = session.submit(std::move(warm));
    frontend.flush();
    wfut.get();

    // Second round hits resident rows: updates may complete at
    // admission, and the immediately following lookups must still
    // observe them (same session, later batch).
    Batch upd;
    for (BlockId id = 0; id < 8; ++id)
        upd.ops.push_back(Op::update(
            id, bytesFor(static_cast<std::uint8_t>(id + 100))));
    std::future<BatchResult> ufut = session.submit(std::move(upd));
    frontend.flush();
    ufut.get();

    Batch look;
    for (BlockId id = 0; id < 8; ++id)
        look.ops.push_back(Op::lookup(id));
    std::future<BatchResult> lfut = session.submit(std::move(look));
    frontend.flush();
    const BatchResult res = lfut.get();
    for (BlockId id = 0; id < 8; ++id)
        EXPECT_EQ(res.results[id].payload,
                  bytesFor(static_cast<std::uint8_t>(id + 100)))
            << "block " << id;
    frontend.stop();

    // The admitted updates are durable engine state too: offline
    // reads (which bypass the frontend) see the same bytes.
    for (BlockId id = 0; id < 8; ++id) {
        std::vector<std::uint8_t> out;
        engine.shard(engine.splitter().shardOf(id))
            .readBlock(engine.splitter().localId(id), out);
        EXPECT_EQ(out, bytesFor(static_cast<std::uint8_t>(id + 100)))
            << "block " << id;
    }
}

TEST(ServeFrontendCache, UpdateThenLookupInOneBatchOnWarmRow)
{
    core::ShardedLaoram engine(cachedConfig(2, 8, 64));
    ServeFrontend frontend(engine);
    Session session = frontend.session();
    frontend.start();

    Batch warm;
    warm.ops.push_back(Op::update(7, bytesFor(1)));
    std::future<BatchResult> wfut = session.submit(std::move(warm));
    frontend.flush();
    wfut.get();

    // Update + lookup of the same (now resident) id in one batch: the
    // lookup must observe the in-batch update whether either op took
    // the fast path or the planned path.
    Batch batch;
    batch.ops.push_back(Op::update(7, bytesFor(42)));
    batch.ops.push_back(Op::lookup(7));
    std::future<BatchResult> fut = session.submit(std::move(batch));
    frontend.flush();
    const BatchResult res = fut.get();
    EXPECT_EQ(res.results[1].payload, bytesFor(42));
    frontend.stop();
}

TEST(ServeFrontendCache, ConcurrentSessionsOnSharedHotSet)
{
    constexpr int kSessions = 4;
    constexpr int kBatches = 12;
    constexpr int kOpsPerBatch = 16;
    // Hot set much smaller than the cache: nearly all traffic is
    // resident after warmup, so fast path, pinning and flushes race
    // against planned ops from other sessions continuously.
    constexpr std::uint64_t kHotSet = 32;

    core::ShardedLaoram engine(cachedConfig(2, 32, 128));
    ServeFrontend frontend(engine);
    frontend.start();

    std::atomic<bool> running{true};
    std::thread flusher([&] {
        while (running.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
            frontend.flush();
        }
    });

    std::vector<std::thread> clients;
    for (int c = 0; c < kSessions; ++c) {
        clients.emplace_back([&, c] {
            Session session = frontend.session();
            for (int b = 0; b < kBatches; ++b) {
                Batch batch;
                for (int i = 0; i < kOpsPerBatch; ++i) {
                    const BlockId id =
                        (c * 131 + b * 17 + i * 7) % kHotSet;
                    if (i % 2 == 0)
                        batch.ops.push_back(Op::update(
                            id,
                            bytesFor(static_cast<std::uint8_t>(c))));
                    else
                        batch.ops.push_back(Op::lookup(id));
                }
                // Closed loop: every batch awaited, so read-your-
                // writes is continuously exercised on hot rows.
                const BatchResult res =
                    session.submit(std::move(batch)).get();
                ASSERT_EQ(res.results.size(),
                          static_cast<std::size_t>(kOpsPerBatch));
                for (int i = 1; i < kOpsPerBatch; i += 2) {
                    // Rows are written whole under the cache/stash
                    // protocol, so every lookup sees either the
                    // pristine zero row or *some* session's complete
                    // tag row — never interleaved bytes (sessions
                    // race on the hot set, so which tag is open).
                    const auto &p = res.results[i].payload;
                    ASSERT_EQ(p.size(), kPayload);
                    const bool pristine =
                        p == std::vector<std::uint8_t>(kPayload, 0);
                    EXPECT_TRUE(pristine || p == bytesFor(p[0]))
                        << "torn row at batch " << b << " op " << i;
                }
            }
        });
    }
    for (std::thread &t : clients)
        t.join();
    running.store(false, std::memory_order_relaxed);
    flusher.join();

    const core::ShardedPipelineReport rep = frontend.stop();
    constexpr std::uint64_t kTotalOps =
        std::uint64_t{kSessions} * kBatches * kOpsPerBatch;
    EXPECT_EQ(rep.aggregate.latency.requests, kTotalOps);
    EXPECT_EQ(rep.aggregate.latency.droppedNegative, 0u);

    // The hot set is cache-sized, so the run must actually have hit,
    // and every deferred admission-time op must have flushed.
    const cache::CacheStats cs = rep.aggregate.cache;
    EXPECT_GT(cs.hits, 0u);
    EXPECT_EQ(cs.admissionHits, cs.writebackCoalesced);
}

TEST(ServeFrontendCache, StopDrainsAllPinnedWritebacks)
{
    core::ShardedLaoram engine(cachedConfig(2, 64, 64));
    ServeFrontend frontend(engine);
    Session session = frontend.session();
    frontend.start();

    // Two rounds on the same ids without manual flushes: round two
    // rides the fast path while round one may still be in flight;
    // stop() must drain every deferred write-back before returning.
    std::vector<std::future<BatchResult>> futures;
    for (int round = 0; round < 2; ++round) {
        Batch batch;
        for (BlockId id = 0; id < 16; ++id)
            batch.ops.push_back(Op::update(
                id, bytesFor(static_cast<std::uint8_t>(round))));
        futures.push_back(session.submit(std::move(batch)));
    }
    frontend.stop();
    for (auto &f : futures)
        f.get();

    std::uint64_t admissionHits = 0, coalesced = 0;
    for (std::uint32_t s = 0; s < engine.numShards(); ++s) {
        const cache::CacheStats st = engine.shard(s).hotCache()->stats();
        admissionHits += st.admissionHits;
        coalesced += st.writebackCoalesced;
    }
    EXPECT_EQ(admissionHits, coalesced)
        << "stop() returned with deferred write-backs still pinned";

    // Post-stop offline reads see round-two values.
    for (BlockId id = 0; id < 16; ++id) {
        std::vector<std::uint8_t> out;
        engine.shard(engine.splitter().shardOf(id))
            .readBlock(engine.splitter().localId(id), out);
        EXPECT_EQ(out, bytesFor(1)) << "block " << id;
    }
}

} // namespace
} // namespace laoram::serve
