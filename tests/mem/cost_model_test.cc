/**
 * @file
 * Unit tests for the latency/bandwidth cost model.
 */

#include <gtest/gtest.h>

#include "mem/cost_model.hh"

namespace laoram::mem {
namespace {

TEST(CostModel, ZeroTrafficStillPaysLatency)
{
    CostModel m;
    EXPECT_GT(m.pathReadNs(0, 0), 0.0);
    EXPECT_GT(m.pathWriteNs(0, 0), 0.0);
}

TEST(CostModel, MonotoneInBytes)
{
    CostModel m;
    EXPECT_LT(m.pathReadNs(1024, 4), m.pathReadNs(4096, 4));
    EXPECT_LT(m.pathWriteNs(1024, 4), m.pathWriteNs(4096, 4));
}

TEST(CostModel, MonotoneInBlocks)
{
    CostModel m;
    EXPECT_LT(m.pathReadNs(1024, 4), m.pathReadNs(1024, 40));
}

TEST(CostModel, DummyIsReadPlusWrite)
{
    CostModel m;
    EXPECT_DOUBLE_EQ(m.dummyAccessNs(2048, 16),
                     m.pathReadNs(2048, 16) + m.pathWriteNs(2048, 16));
}

TEST(CostModel, ReadIncludesLinkRoundTrip)
{
    CostModelParams p;
    p.linkLatencyNs = 5000.0;
    CostModel m(p);
    // Reads pay the client link round trip; write-backs do not.
    EXPECT_GT(m.pathReadNs(0, 0), m.pathWriteNs(0, 0) + 4000.0);
}

TEST(CostModel, BandwidthScalesTransferTerm)
{
    CostModelParams slow;
    slow.dramBandwidthGBps = 1.0;
    CostModelParams fast = slow;
    fast.dramBandwidthGBps = 100.0;
    CostModel ms(slow), mf(fast);
    const double ds = ms.pathReadNs(1 << 20, 0) - ms.pathReadNs(0, 0);
    const double df = mf.pathReadNs(1 << 20, 0) - mf.pathReadNs(0, 0);
    EXPECT_GT(ds, df * 10);
}

TEST(CostModel, GBpsEqualsBytesPerNs)
{
    CostModelParams p;
    p.dramLatencyNs = 0;
    p.linkLatencyNs = 0;
    p.clientPerBlockNs = 0;
    p.dramBandwidthGBps = 2.0;
    p.linkBandwidthGBps = 2.0;
    CostModel m(p);
    // 2000 bytes over 2 GB/s DRAM + 2 GB/s link = 1000 + 1000 ns... no:
    // each leg moves the same bytes, so 2000/2 + 2000/2 = 2000 ns.
    EXPECT_DOUBLE_EQ(m.pathReadNs(2000, 0), 2000.0);
}

} // namespace
} // namespace laoram::mem
