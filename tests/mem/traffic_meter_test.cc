/**
 * @file
 * Unit tests for traffic accounting + simulated clock.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/traffic_meter.hh"

namespace laoram::mem {
namespace {

TEST(SimClock, AdvancesAndConverts)
{
    SimClock clk;
    EXPECT_EQ(clk.picoseconds(), 0u);
    clk.advanceNs(1.5);
    EXPECT_EQ(clk.picoseconds(), 1500u);
    clk.advancePs(500);
    EXPECT_DOUBLE_EQ(clk.nanoseconds(), 2.0);
    EXPECT_DOUBLE_EQ(clk.microseconds(), 0.002);
    clk.reset();
    EXPECT_EQ(clk.picoseconds(), 0u);
}

TEST(SimClock, FractionalAccumulationIsExact)
{
    SimClock clk;
    for (int i = 0; i < 1000; ++i)
        clk.advanceNs(0.001); // 1 ps each
    EXPECT_EQ(clk.picoseconds(), 1000u);
}

TEST(TrafficMeter, PathReadAccounting)
{
    TrafficMeter m{CostModel{}};
    m.recordPathRead(1024, 8);
    m.recordPathRead(1024, 8);
    EXPECT_EQ(m.counters().pathReads, 2u);
    EXPECT_EQ(m.counters().blocksRead, 16u);
    EXPECT_EQ(m.counters().bytesRead, 2048u);
    EXPECT_EQ(m.counters().bytesWritten, 0u);
    EXPECT_GT(m.clock().nanoseconds(), 0.0);
}

TEST(TrafficMeter, DummyAccountsBothDirections)
{
    TrafficMeter m{CostModel{}};
    m.recordDummyAccess(100, 4);
    EXPECT_EQ(m.counters().dummyReads, 1u);
    EXPECT_EQ(m.counters().bytesRead, 100u);
    EXPECT_EQ(m.counters().bytesWritten, 100u);
    EXPECT_EQ(m.counters().totalBytes(), 200u);
}

TEST(TrafficMeter, PerAccessRatios)
{
    TrafficMeter m{CostModel{}};
    m.recordLogicalAccesses(4);
    m.recordDummyAccess(10, 1);
    m.recordPathRead(10, 1);
    EXPECT_DOUBLE_EQ(m.counters().dummyReadsPerAccess(), 0.25);
    EXPECT_DOUBLE_EQ(m.counters().pathReadsPerAccess(), 0.25);
}

TEST(TrafficMeter, RatiosWithZeroAccesses)
{
    TrafficMeter m{CostModel{}};
    EXPECT_DOUBLE_EQ(m.counters().dummyReadsPerAccess(), 0.0);
}

TEST(TrafficMeter, StashPeakIsHighWater)
{
    TrafficMeter m{CostModel{}};
    m.observeStashSize(10);
    m.observeStashSize(4);
    m.observeStashSize(25);
    m.observeStashSize(7);
    EXPECT_EQ(m.counters().stashPeak, 25u);
}

TEST(TrafficMeter, SinceComputesInterval)
{
    TrafficMeter m{CostModel{}};
    m.recordPathRead(100, 2);
    const TrafficCounters start = m.counters();
    m.recordPathRead(100, 2);
    m.recordPathWrite(50, 1);
    const TrafficCounters d = m.counters().since(start);
    EXPECT_EQ(d.pathReads, 1u);
    EXPECT_EQ(d.pathWrites, 1u);
    EXPECT_EQ(d.bytesRead, 100u);
    EXPECT_EQ(d.bytesWritten, 50u);
}

TEST(TrafficMeter, ReshuffleBypassesPathCounters)
{
    TrafficMeter m{CostModel{}};
    m.recordReshuffle(64, 2, 256, 8);
    EXPECT_EQ(m.counters().reshuffles, 1u);
    EXPECT_EQ(m.counters().pathReads, 0u);
    EXPECT_EQ(m.counters().pathWrites, 0u);
    EXPECT_EQ(m.counters().blocksRead, 2u);
    EXPECT_EQ(m.counters().blocksWritten, 8u);
}

TEST(TrafficMeter, ResetClearsEverything)
{
    TrafficMeter m{CostModel{}};
    m.recordPathRead(100, 2);
    m.observeStashSize(99);
    m.reset();
    EXPECT_EQ(m.counters().pathReads, 0u);
    EXPECT_EQ(m.counters().stashPeak, 0u);
    EXPECT_EQ(m.clock().picoseconds(), 0u);
}

TEST(TrafficMeter, RegisterStatsPublishesLiveFormulas)
{
    TrafficMeter m{CostModel{}};
    StatRegistry reg;
    m.registerStats(reg, "engine.");
    EXPECT_DOUBLE_EQ(reg.formulaAt("engine.pathReads"), 0.0);
    m.recordLogicalAccesses(4);
    m.recordPathRead(100, 2);
    m.recordDummyAccess(100, 2);
    // Formulas see post-registration updates (live view).
    EXPECT_DOUBLE_EQ(reg.formulaAt("engine.pathReads"), 1.0);
    EXPECT_DOUBLE_EQ(reg.formulaAt("engine.dummyReads"), 1.0);
    EXPECT_DOUBLE_EQ(reg.formulaAt("engine.dummyReadsPerAccess"),
                     0.25);
    EXPECT_DOUBLE_EQ(reg.formulaAt("engine.bytesMoved"), 300.0);
    EXPECT_GT(reg.formulaAt("engine.simMs"), 0.0);
}

TEST(TrafficMeter, SummaryMentionsLabel)
{
    TrafficMeter m{CostModel{}};
    std::ostringstream os;
    m.printSummary(os, "testlabel");
    EXPECT_NE(os.str().find("testlabel"), std::string::npos);
}

} // namespace
} // namespace laoram::mem
