/**
 * @file
 * Fault-injection proxy for the remote-KV wire protocol: an
 * in-process TCP relay that sits between an endpoint-mode
 * RemoteKvBackend and a RemoteKvServer and misbehaves on cue —
 * dropping the connection after N forwarded requests, truncating a
 * response frame mid-payload, delaying responses, or black-holing a
 * specific request (swallowing it so the client's response deadline
 * is the only way out).
 *
 * The relay is frame-aware in both directions (it reads whole
 * length-prefixed frames before forwarding), so faults land on clean
 * protocol boundaries ("after request #7", "halfway through response
 * #3") and tests are reproducible. Each armed fault fires exactly
 * once per proxy lifetime and then disarms, so a client that
 * reconnects through the same proxy finds a healthy link — which is
 * precisely the recovery path under test.
 *
 * The upstream server outlives every relayed connection (each inbound
 * accept opens a fresh RemoteKvServer::connectClient() stream), so
 * the node's per-session replay high-water marks persist across the
 * client's reconnects, exactly like a laoram_node that stayed up
 * while the network flaked.
 */

#ifndef LAORAM_TESTS_NET_FLAKY_PROXY_HH
#define LAORAM_TESTS_NET_FLAKY_PROXY_HH

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/endpoint.hh"
#include "storage/remote_backend.hh"

namespace laoram::net {

/**
 * What the proxy does to the stream. Counts are 1-based positions in
 * the proxy-lifetime frame stream of that direction (Hello frames
 * count), 0 = fault disabled. Every positional fault is one-shot.
 */
struct FaultPlan
{
    /** Close both sides right after forwarding this many requests. */
    std::uint64_t dropAfterRequests = 0;

    /**
     * Forward only the length prefix and half the body of response
     * #N, then kill the connection: the client observes EOF mid-frame
     * and must treat the partial response as lost, not decode it.
     */
    std::uint64_t truncateResponse = 0;

    /**
     * Swallow request #N and everything after it on that connection
     * (the link looks alive but nothing answers). Only the client's
     * response deadline gets it out of this one.
     */
    std::uint64_t blackholeRequest = 0;

    /** Fixed extra delay before forwarding every response frame. */
    std::int64_t delayResponsesMs = 0;
};

/**
 * The relay itself: listens on an ephemeral loopback TCP port, and
 * for every accepted connection dials a fresh stream into @p upstream
 * and pumps frames both ways, applying the FaultPlan.
 */
class FlakyProxy
{
  public:
    FlakyProxy(storage::RemoteKvServer &upstream, const FaultPlan &plan)
        : upstream(upstream), plan(plan)
    {
        Endpoint want;
        std::string error;
        if (!parseEndpoint("127.0.0.1:0", &want, &error))
            throw std::runtime_error(error);
        listenFd = listenEndpoint(want, &error);
        if (listenFd < 0)
            throw std::runtime_error("flaky proxy: " + error);
        bound = boundEndpoint(listenFd, want);
        if (::pipe(wakePipe) != 0) {
            ::close(listenFd);
            throw std::runtime_error("flaky proxy: pipe failed");
        }
        acceptor = std::thread([this] { acceptLoop(); });
    }

    ~FlakyProxy() { stop(); }

    FlakyProxy(const FlakyProxy &) = delete;
    FlakyProxy &operator=(const FlakyProxy &) = delete;

    /** Dialable "127.0.0.1:port" spelling of the relay's listener. */
    std::string endpoint() const { return bound.str(); }

    /** Inbound connections accepted so far (>= 2 after a reconnect). */
    std::uint64_t connectionsServed() const { return connections.load(); }

    /** Armed faults that actually fired. */
    std::uint64_t faultsFired() const { return faults.load(); }

    /** Stop accepting, sever every relayed connection, join threads. */
    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(linkMu);
            if (stopped)
                return;
            stopped = true;
        }
        const char byte = 1;
        (void)!::write(wakePipe[1], &byte, 1);
        acceptor.join();
        ::close(listenFd);
        ::close(wakePipe[0]);
        ::close(wakePipe[1]);
        {
            std::lock_guard<std::mutex> lock(linkMu);
            for (auto &link : links) {
                if (link->clientFd >= 0)
                    ::shutdown(link->clientFd, SHUT_RDWR);
                if (link->serverFd >= 0)
                    ::shutdown(link->serverFd, SHUT_RDWR);
            }
        }
        for (auto &link : links)
            if (link->thread.joinable())
                link->thread.join();
    }

  private:
    struct Link
    {
        int clientFd = -1;
        int serverFd = -1;
        std::thread thread;
    };

    // ---- Frame plumbing (mirrors the protocol's u32-length framing;
    // ---- reimplemented here because the library keeps its helpers
    // ---- private to remote_backend.cc).

    static bool
    recvAll(int fd, void *data, std::size_t len)
    {
        auto *p = static_cast<std::uint8_t *>(data);
        while (len > 0) {
            const ssize_t got = ::recv(fd, p, len, 0);
            if (got == 0)
                return false;
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += got;
            len -= static_cast<std::size_t>(got);
        }
        return true;
    }

    static bool
    sendAll(int fd, const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        while (len > 0) {
            const ssize_t put = ::send(fd, p, len, MSG_NOSIGNAL);
            if (put <= 0) {
                if (put < 0 && errno == EINTR)
                    continue;
                return false;
            }
            p += put;
            len -= static_cast<std::size_t>(put);
        }
        return true;
    }

    static bool
    recvFrame(int fd, std::vector<std::uint8_t> &body)
    {
        std::uint32_t len = 0;
        if (!recvAll(fd, &len, sizeof(len)))
            return false;
        if (len > (1u << 30)) // matches the protocol's frame cap
            return false;
        body.resize(len);
        return recvAll(fd, body.data(), len);
    }

    static bool
    sendFrame(int fd, const std::vector<std::uint8_t> &body)
    {
        const std::uint32_t len =
            static_cast<std::uint32_t>(body.size());
        return sendAll(fd, &len, sizeof(len))
               && sendAll(fd, body.data(), body.size());
    }

    void
    acceptLoop()
    {
        for (;;) {
            pollfd fds[2] = {{listenFd, POLLIN, 0},
                             {wakePipe[0], POLLIN, 0}};
            const int ready = ::poll(fds, 2, -1);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                return;
            }
            if (fds[1].revents != 0)
                return;
            const int conn = ::accept(listenFd, nullptr, nullptr);
            if (conn < 0) {
                if (errno == EINTR || errno == ECONNABORTED)
                    continue;
                return;
            }
            connections.fetch_add(1);
            // Same latency rule as the real listener: no Nagle on the
            // relayed leg, faults should be the only added delay.
            const int one = 1;
            ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            auto link = std::make_unique<Link>();
            Link *raw = link.get();
            raw->clientFd = conn;
            raw->serverFd = upstream.connectClient();
            {
                std::lock_guard<std::mutex> lock(linkMu);
                if (stopped) {
                    ::close(raw->clientFd);
                    ::close(raw->serverFd);
                    continue;
                }
                links.push_back(std::move(link));
            }
            raw->thread = std::thread([this, raw] { relay(raw); });
        }
    }

    void
    relay(Link *link)
    {
        // Responses pump on a side thread; requests pump here. When
        // either direction ends (EOF, fault, stop), shutting both
        // sockets down unblocks the other.
        std::thread down(
            [this, link] { pumpResponses(link->serverFd, link->clientFd); });
        pumpRequests(link->clientFd, link->serverFd);
        ::shutdown(link->serverFd, SHUT_RDWR);
        ::shutdown(link->clientFd, SHUT_RDWR);
        down.join();
        std::lock_guard<std::mutex> lock(linkMu);
        ::close(link->clientFd);
        ::close(link->serverFd);
        link->clientFd = -1;
        link->serverFd = -1;
    }

    void
    pumpRequests(int from, int to)
    {
        std::vector<std::uint8_t> frame;
        bool swallowing = false;
        for (;;) {
            if (!recvFrame(from, frame))
                return;
            const std::uint64_t n = requestsSeen.fetch_add(1) + 1;
            if (plan.blackholeRequest != 0 && n >= plan.blackholeRequest
                && !blackholeFired.exchange(true)) {
                // From here on this connection is a black hole: the
                // request (and any pipelined successors) vanish while
                // the socket stays open and silent.
                swallowing = true;
                faults.fetch_add(1);
            }
            if (swallowing)
                continue;
            if (!sendFrame(to, frame))
                return;
            if (plan.dropAfterRequests != 0
                && n >= plan.dropAfterRequests
                && !dropFired.exchange(true)) {
                faults.fetch_add(1);
                return; // relay() severs both directions
            }
        }
    }

    void
    pumpResponses(int from, int to)
    {
        std::vector<std::uint8_t> frame;
        for (;;) {
            if (!recvFrame(from, frame)) {
                // Upstream is done; stop feeding the client so its
                // next wait observes the loss promptly.
                ::shutdown(to, SHUT_RDWR);
                return;
            }
            if (plan.delayResponsesMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(plan.delayResponsesMs));
            const std::uint64_t n = responsesSeen.fetch_add(1) + 1;
            if (plan.truncateResponse != 0 && n >= plan.truncateResponse
                && !truncateFired.exchange(true)) {
                faults.fetch_add(1);
                // Promise the whole body, deliver half, die: the
                // client must see a mid-frame EOF, never a short
                // frame parsed as complete.
                const std::uint32_t len =
                    static_cast<std::uint32_t>(frame.size());
                sendAll(to, &len, sizeof(len));
                sendAll(to, frame.data(), frame.size() / 2);
                ::shutdown(to, SHUT_RDWR);
                ::shutdown(from, SHUT_RDWR);
                return;
            }
            if (!sendFrame(to, frame))
                return;
        }
    }

    storage::RemoteKvServer &upstream;
    FaultPlan plan;

    Endpoint bound;
    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    std::thread acceptor;

    std::mutex linkMu;
    std::vector<std::unique_ptr<Link>> links;
    bool stopped = false;

    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::uint64_t> requestsSeen{0};
    std::atomic<std::uint64_t> responsesSeen{0};
    std::atomic<bool> dropFired{false};
    std::atomic<bool> truncateFired{false};
    std::atomic<bool> blackholeFired{false};
};

} // namespace laoram::net

#endif // LAORAM_TESTS_NET_FLAKY_PROXY_HH
