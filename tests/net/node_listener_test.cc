/**
 * @file
 * In-process NodeListener tests: a RemoteKvServer behind a real
 * TCP/UDS listener serves many concurrent endpoint-mode clients (one
 * service thread per accepted connection, shared inner backend), an
 * ephemeral-port bind reports the dialable address, a stale UDS
 * socket file is reclaimed (the SIGKILL-restart path), and stop()
 * unblocks the accept loop so new dials are refused.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/node_server.hh"
#include "storage/remote_backend.hh"
#include "storage/slot_backend.hh"

namespace laoram::net {
namespace {

using storage::BackendKind;
using storage::RemoteKvBackend;
using storage::RemoteKvServer;
using storage::StorageConfig;

constexpr std::uint64_t kSlots = 256;
constexpr std::uint64_t kRecBytes = 48;

std::unique_ptr<RemoteKvServer>
dramServer()
{
    return std::make_unique<RemoteKvServer>(
        storage::makeBackend(StorageConfig{}, kSlots, kRecBytes, 0),
        storage::RemoteKvConfig{});
}

Endpoint
loopback()
{
    Endpoint ep;
    EXPECT_TRUE(parseEndpoint("127.0.0.1:0", &ep));
    return ep;
}

StorageConfig
dialConfig(const std::string &endpoint)
{
    StorageConfig scfg;
    scfg.kind = BackendKind::Remote;
    scfg.remote.endpoint = endpoint;
    scfg.remote.maxRetries = 4;
    scfg.remote.backoffBaseMs = 2;
    scfg.remote.backoffMaxMs = 40;
    return scfg;
}

TEST(NodeListener, EphemeralBindReportsDialablePort)
{
    auto server = dramServer();
    NodeListener listener(*server, loopback());
    EXPECT_EQ(listener.endpoint().kind, Endpoint::Kind::Tcp);
    EXPECT_NE(listener.endpoint().port, 0);
}

TEST(NodeListener, ServesManyConcurrentClients)
{
    auto server = dramServer();
    NodeListener listener(*server, loopback());
    const std::string ep = listener.endpoint().str();

    // Each client owns a disjoint slot range; all dial, write, and
    // read back concurrently against the one shared inner backend.
    constexpr int kClients = 4;
    constexpr std::uint64_t kPerClient = 16;
    std::vector<std::thread> threads;
    std::vector<bool> ok(kClients, false);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            RemoteKvBackend client(dialConfig(ep), kSlots, kRecBytes,
                                   0);
            std::vector<std::uint8_t> rec(kRecBytes);
            std::vector<std::uint8_t> out(kRecBytes);
            bool good = true;
            for (std::uint64_t i = 0; i < kPerClient; ++i) {
                const std::uint64_t slot = c * kPerClient + i;
                for (std::size_t b = 0; b < rec.size(); ++b)
                    rec[b] = static_cast<std::uint8_t>(slot * 3 + b);
                client.writeSlot(slot, rec.data());
                client.readSlot(slot, out.data());
                good = good && out == rec;
            }
            client.flush();
            ok[c] = good;
        });
    }
    for (auto &t : threads)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_TRUE(ok[c]) << "client " << c;
    EXPECT_EQ(server->inner().ioStats().slotsWritten,
              std::uint64_t{kClients} * kPerClient);
}

TEST(NodeListener, ReclaimsStaleUdsSocketFile)
{
    const std::string sock =
        ::testing::TempDir() + "laoram_listener_stale.sock";
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint("unix:" + sock, &ep));

    // Simulate a SIGKILLed node: bind the path, then close the fd
    // without unlinking, leaving a stale socket file behind.
    std::string error;
    const int stale = listenEndpoint(ep, &error);
    ASSERT_GE(stale, 0) << error;
    ::close(stale);

    // A restarted node must reclaim the path, and serve.
    auto server = dramServer();
    NodeListener listener(*server, ep);
    RemoteKvBackend client(dialConfig("unix:" + sock), kSlots,
                           kRecBytes, 0);
    std::vector<std::uint8_t> rec(kRecBytes, 0x5A);
    client.writeSlot(0, rec.data());
    client.flush();
    EXPECT_EQ(server->inner().ioStats().slotsWritten, 1u);

    listener.stop();
    // A clean stop removes the socket file.
    EXPECT_NE(::access(sock.c_str(), F_OK), 0);
}

TEST(NodeListener, StopRefusesNewDialsAndIsIdempotent)
{
    auto server = dramServer();
    NodeListener listener(*server, loopback());
    const Endpoint ep = listener.endpoint();

    listener.stop();
    listener.stop(); // second stop is a no-op, not a crash

    std::string error;
    EXPECT_LT(dialEndpoint(ep, &error), 0);
}

} // namespace
} // namespace laoram::net
