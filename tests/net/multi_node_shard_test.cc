/**
 * @file
 * Multi-node sharding test: a ShardedLaoram whose shards dial real
 * TCP listeners (one RemoteKvServer + NodeListener per shard — the
 * paper's one-tree-per-storage-node deployment) must be an exact
 * behavioural twin of the same sharded run over local DRAM: same
 * meters, same simulated clock, same position maps, byte-identical
 * payloads. Plus the config guard: an endpoint list that does not
 * match numShards is a startup fatal, not a silent partial dial.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/sharded_laoram.hh"
#include "net/node_server.hh"
#include "storage/remote_backend.hh"
#include "storage/slot_backend.hh"
#include "util/rng.hh"

namespace laoram::net {
namespace {

constexpr std::uint32_t kShards = 2;
constexpr std::uint64_t kBlocks = 256;

std::vector<oram::BlockId>
randomTrace(std::uint64_t n, std::uint64_t blocks, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> t;
    t.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        t.push_back(rng.nextBounded(blocks));
    return t;
}

core::ShardedLaoramConfig
shardedConfig()
{
    core::ShardedLaoramConfig cfg;
    cfg.engine.base.numBlocks = kBlocks;
    cfg.engine.base.blockBytes = 64;
    cfg.engine.base.payloadBytes = 32;
    cfg.engine.base.seed = 21;
    cfg.engine.superblockSize = 4;
    cfg.numShards = kShards;
    cfg.pipeline.windowAccesses = 64;
    return cfg;
}

/** One DRAM-inner node serving the geometry shard @p sc runs under. */
std::unique_ptr<storage::RemoteKvServer>
nodeFor(const core::LaoramConfig &sc)
{
    const oram::TreeGeometry geom(sc.base.numBlocks,
                                  sc.base.blockBytes,
                                  sc.base.profile);
    return std::make_unique<storage::RemoteKvServer>(
        storage::makeBackend(storage::StorageConfig{},
                             geom.totalSlots(),
                             16 + sc.base.payloadBytes, 0),
        storage::RemoteKvConfig{});
}

TEST(MultiNodeShard, TwoNodeRunMatchesLocalRunExactly)
{
    const auto trace = randomTrace(1000, kBlocks, 31);
    const core::ShardedLaoramConfig cfg = shardedConfig();

    // Local reference: every shard over in-process DRAM.
    core::ShardedLaoram local(cfg);
    local.runTrace(trace);

    // One real listener-backed storage node per shard. Geometry per
    // node comes from the reference's derived shard configs (the
    // splitter is deterministic, so the remote run derives the same).
    std::vector<std::unique_ptr<storage::RemoteKvServer>> nodes;
    std::vector<std::unique_ptr<NodeListener>> listeners;
    core::ShardedLaoramConfig rcfg = cfg;
    for (std::uint32_t s = 0; s < kShards; ++s) {
        nodes.push_back(nodeFor(local.shardEngineConfigFor(s)));
        Endpoint ep;
        ASSERT_TRUE(parseEndpoint("127.0.0.1:0", &ep));
        listeners.push_back(
            std::make_unique<NodeListener>(*nodes.back(), ep));
        rcfg.shardEndpoints.push_back(
            listeners.back()->endpoint().str());
    }

    {
        core::ShardedLaoram remote(rcfg);
        remote.runTrace(trace);

        for (std::uint32_t s = 0; s < kShards; ++s) {
            const core::Laoram &a = local.shard(s);
            const core::Laoram &b = remote.shard(s);
            const auto &ca = a.meter().counters();
            const auto &cb = b.meter().counters();
            EXPECT_EQ(ca.logicalAccesses, cb.logicalAccesses);
            EXPECT_EQ(ca.pathReads, cb.pathReads);
            EXPECT_EQ(ca.pathWrites, cb.pathWrites);
            EXPECT_EQ(ca.dummyReads, cb.dummyReads);
            EXPECT_EQ(ca.bytesRead, cb.bytesRead);
            EXPECT_EQ(ca.bytesWritten, cb.bytesWritten);
            EXPECT_EQ(ca.stashPeak, cb.stashPeak);
            EXPECT_DOUBLE_EQ(a.meter().clock().nanoseconds(),
                             b.meter().clock().nanoseconds());
            EXPECT_EQ(a.stashSize(), b.stashSize());
            ASSERT_EQ(a.posmapForAudit().size(),
                      b.posmapForAudit().size());
            for (oram::BlockId id = 0; id < a.posmapForAudit().size();
                 ++id)
                ASSERT_EQ(a.posmapForAudit().get(id),
                          b.posmapForAudit().get(id))
                    << "shard " << s << " posmap block " << id;

            std::vector<std::uint8_t> bufA, bufB;
            const auto &split = local.splitter();
            for (oram::BlockId l = 0; l < split.shardBlocks(s); ++l) {
                local.shard(s).readBlock(l, bufA);
                remote.shard(s).readBlock(l, bufB);
                ASSERT_EQ(bufA, bufB)
                    << "shard " << s << " block " << l;
            }
        }
    } // remote engines hang up before listeners/nodes tear down

    // Every node genuinely served its shard's tree.
    for (std::uint32_t s = 0; s < kShards; ++s)
        EXPECT_GT(nodes[s]->inner().ioStats().slotsWritten, 0u)
            << "node " << s;
}

TEST(MultiNodeShardDeath, EndpointCountMismatchIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            core::ShardedLaoramConfig cfg = shardedConfig();
            cfg.shardEndpoints = {"127.0.0.1:1"}; // 1 endpoint, 2 shards
            core::ShardedLaoram bad(cfg);
        },
        ::testing::ExitedWithCode(1), "laoram_node");
}

} // namespace
} // namespace laoram::net
