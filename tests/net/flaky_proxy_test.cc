/**
 * @file
 * Wire-protocol fault-injection tests: an endpoint-mode
 * RemoteKvBackend driven through the FlakyProxy relay must survive
 * dropped connections, truncated response frames, black-holed
 * requests (via the response deadline) and delayed responses — and
 * finish byte-identically to an unfaulted run, because reconnect
 * replays the un-acked request tail and the node idempotently
 * discards already-applied mutations.
 *
 * Covers both layers: raw backend-level read-your-writes across a
 * reconnect (including the no-double-apply check against the server's
 * inner IoStats), and a full pipelined Laoram engine whose post-trace
 * payloads/posmap/stash are compared against a DRAM reference via the
 * shared EngineSnapshot helpers. Plus the bounded-retry fatal: when
 * the endpoint is truly gone, retries exhaust into the same clean
 * exit-1 as the non-recovering client.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../integration/engine_snapshot.hh"
#include "core/pipeline.hh"
#include "flaky_proxy.hh"
#include "storage/remote_backend.hh"
#include "storage/slot_backend.hh"
#include "util/rng.hh"

namespace laoram::net {
namespace {

using storage::BackendKind;
using storage::RemoteKvBackend;
using storage::RemoteKvServer;
using storage::StorageConfig;

constexpr std::uint64_t kSlots = 256;
constexpr std::uint64_t kRecBytes = 48;

std::unique_ptr<RemoteKvServer>
dramServer(std::uint64_t slots = kSlots,
           std::uint64_t recBytes = kRecBytes)
{
    return std::make_unique<RemoteKvServer>(
        storage::makeBackend(StorageConfig{}, slots, recBytes, 0),
        storage::RemoteKvConfig{});
}

/** Endpoint-mode client config with test-fast retry pacing. */
StorageConfig
dialConfig(const std::string &endpoint, std::int64_t timeoutMs = 0)
{
    StorageConfig scfg;
    scfg.kind = BackendKind::Remote;
    scfg.remote.endpoint = endpoint;
    scfg.remote.maxRetries = 6;
    scfg.remote.backoffBaseMs = 2;
    scfg.remote.backoffMaxMs = 40;
    scfg.remote.responseTimeoutMs = timeoutMs;
    return scfg;
}

std::vector<std::uint8_t>
record(std::uint8_t fill)
{
    std::vector<std::uint8_t> rec(kRecBytes);
    for (std::size_t i = 0; i < rec.size(); ++i)
        rec[i] = static_cast<std::uint8_t>(fill + i);
    return rec;
}

// --------------------------------------------- backend-level recovery

TEST(FlakyProxy, ReconnectPreservesReadYourWrites)
{
    auto server = dramServer();
    FaultPlan plan;
    plan.dropAfterRequests = 5; // mid-burst: Hello + a few writes
    FlakyProxy proxy(*server, plan);

    RemoteKvBackend client(dialConfig(proxy.endpoint()), kSlots,
                           kRecBytes, 0);
    for (std::uint64_t slot = 0; slot < 10; ++slot) {
        const auto rec = record(static_cast<std::uint8_t>(slot));
        client.writeSlot(slot, rec.data());
    }
    // Reads pipeline behind the replayed writes: every one must
    // observe its write even though the link died mid-window.
    std::vector<std::uint8_t> out(kRecBytes);
    for (std::uint64_t slot = 0; slot < 10; ++slot) {
        client.readSlot(slot, out.data());
        EXPECT_EQ(out, record(static_cast<std::uint8_t>(slot)))
            << "slot " << slot;
    }
    EXPECT_EQ(proxy.faultsFired(), 1u);
    EXPECT_GE(proxy.connectionsServed(), 2u);
}

TEST(FlakyProxy, ReplayedWriteIsDiscardedNotAppliedTwice)
{
    auto server = dramServer();
    FaultPlan plan;
    // Forward Hello (#1) and the write (#2), then cut the link before
    // the write's ack can reach the client: the write is applied
    // server-side but un-acked client-side, so the reconnect replays
    // it and the session high-water mark must discard the duplicate.
    plan.dropAfterRequests = 2;
    FlakyProxy proxy(*server, plan);

    RemoteKvBackend client(dialConfig(proxy.endpoint()), kSlots,
                           kRecBytes, 0);
    const auto rec = record(0x21);
    client.writeSlot(9, rec.data());
    client.flush(); // forces the replay + ack round-trip to finish

    std::vector<std::uint8_t> out(kRecBytes);
    client.readSlot(9, out.data());
    EXPECT_EQ(out, rec);
    EXPECT_EQ(proxy.faultsFired(), 1u);
    EXPECT_GE(proxy.connectionsServed(), 2u);
    // The sharp assertion: one write RPC reached the inner store,
    // not two — the replayed duplicate was acked without executing.
    EXPECT_EQ(server->inner().ioStats().slotsWritten, 1u);
}

TEST(FlakyProxy, BlackHoledRequestTimesOutAndRecovers)
{
    auto server = dramServer();
    FaultPlan plan;
    plan.blackholeRequest = 3; // Hello, write, then silence
    FlakyProxy proxy(*server, plan);

    // Without a response deadline the client would wait forever on
    // the black-holed request; the deadline converts the hang into
    // the reconnect path.
    RemoteKvBackend client(dialConfig(proxy.endpoint(),
                                      /*timeoutMs=*/150),
                           kSlots, kRecBytes, 0);
    const auto rec = record(0x44);
    client.writeSlot(3, rec.data());
    client.flush(); // request #3: swallowed, times out, replays

    std::vector<std::uint8_t> out(kRecBytes);
    client.readSlot(3, out.data());
    EXPECT_EQ(out, rec);
    EXPECT_EQ(proxy.faultsFired(), 1u);
    EXPECT_GE(proxy.connectionsServed(), 2u);
}

TEST(FlakyProxy, TruncatedResponseIsLostNotDecoded)
{
    auto server = dramServer();
    FaultPlan plan;
    plan.truncateResponse = 3; // Hello ack, write ack, then half a read
    FlakyProxy proxy(*server, plan);

    RemoteKvBackend client(dialConfig(proxy.endpoint()), kSlots,
                           kRecBytes, 0);
    const auto rec = record(0x66);
    client.writeSlot(5, rec.data());
    std::vector<std::uint8_t> out(kRecBytes, 0);
    client.readSlot(5, out.data()); // its response arrives cut in half
    EXPECT_EQ(out, rec);
    EXPECT_EQ(proxy.faultsFired(), 1u);
    EXPECT_GE(proxy.connectionsServed(), 2u);
}

/**
 * When the node is really gone (listener closed, server down), the
 * bounded retry budget exhausts into the same clean fatal as the
 * non-recovering self-hosted client: exit 1, pointed message, no
 * hang.
 */
TEST(FlakyProxyDeath, RetriesExhaustedFailFatally)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            auto server = dramServer();
            auto proxy = std::make_unique<FlakyProxy>(*server,
                                                      FaultPlan{});
            StorageConfig scfg = dialConfig(proxy->endpoint());
            scfg.remote.maxRetries = 1;
            scfg.remote.backoffBaseMs = 1;
            RemoteKvBackend client(scfg, kSlots, kRecBytes, 0);
            const auto rec = record(0x10);
            client.writeSlot(0, rec.data());
            client.flush(); // healthy so far

            proxy.reset();      // listener gone: redials are refused
            server->shutdown(); // and so is the node

            std::vector<std::uint8_t> out(kRecBytes);
            client.readSlot(0, out.data()); // must fatal, not hang
        },
        ::testing::ExitedWithCode(1), "remote-KV connection lost");
}

// ------------------------------------------ engine-level differential

constexpr std::uint64_t kWindow = 24;
constexpr std::uint64_t kWindows = 6;

core::LaoramConfig
engineConfig(std::uint64_t seed)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = 96;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = 32;
    cfg.base.encrypt = true;
    cfg.base.seed = seed;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = kWindow;
    return cfg;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t accesses, std::uint64_t numBlocks,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> trace;
    trace.reserve(accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        trace.push_back(rng.nextBounded(numBlocks));
    return trace;
}

void
fillPayloads(core::Laoram &engine, const core::LaoramConfig &cfg)
{
    std::vector<std::uint8_t> buf(cfg.base.payloadBytes);
    for (oram::BlockId id = 0; id < cfg.base.numBlocks; ++id) {
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(id * 131 + i * 7);
        engine.writeBlock(id, buf);
    }
}

core::PipelineConfig
pipelineConfig()
{
    return core::PipelineConfig{}
        .withWindowAccesses(kWindow)
        .withPrepThreads(2)
        .withQueueDepth(2);
}

enum class Fault
{
    Drop,
    Truncate,
    Blackhole,
    Delay,
};

const char *
faultName(Fault f)
{
    switch (f) {
      case Fault::Drop:
        return "Drop";
      case Fault::Truncate:
        return "Truncate";
      case Fault::Blackhole:
        return "Blackhole";
      case Fault::Delay:
        return "Delay";
    }
    return "?";
}

class FaultedTrace : public ::testing::TestWithParam<Fault>
{
};

/**
 * The conformance bar for every fault flavour: a pipelined engine
 * whose RPC stream is faulted mid-trace finishes with exactly the
 * payloads, position map, stash, meters and simulated clock of an
 * unfaulted DRAM reference — faults live strictly below the
 * determinism contract.
 */
TEST_P(FaultedTrace, EngineMatchesUnfaultedReferenceByteForByte)
{
    const Fault fault = GetParam();
    const std::uint64_t seed = core::diffSeed() + 71;
    const core::LaoramConfig cfg = engineConfig(seed);
    const auto trace =
        randomTrace(kWindow * kWindows, cfg.base.numBlocks, seed + 17);

    // Uninterrupted DRAM reference.
    core::Laoram reference(cfg);
    fillPayloads(reference, cfg);
    core::BatchPipeline(reference, pipelineConfig()).run(trace);
    const core::EngineSnapshot snap = core::snapshotOf(reference);

    // The node serves the geometry the engine's ServerStorage will
    // ask for: header + payload records over the full tree.
    const oram::TreeGeometry geom(cfg.base.numBlocks,
                                  cfg.base.blockBytes,
                                  oram::BucketProfile::uniform(4));
    auto server = dramServer(geom.totalSlots(),
                             16 + cfg.base.payloadBytes);

    FaultPlan plan;
    std::int64_t timeoutMs = 0;
    switch (fault) {
      case Fault::Drop:
        plan.dropAfterRequests = 40;
        break;
      case Fault::Truncate:
        plan.truncateResponse = 30;
        break;
      case Fault::Blackhole:
        plan.blackholeRequest = 35;
        timeoutMs = 200;
        break;
      case Fault::Delay:
        plan.delayResponsesMs = 1;
        break;
    }
    FlakyProxy proxy(*server, plan);

    {
        core::LaoramConfig pcfg = cfg;
        pcfg.base.storage = dialConfig(proxy.endpoint(), timeoutMs);
        core::Laoram engine(pcfg);
        fillPayloads(engine, pcfg);
        core::BatchPipeline(engine, pipelineConfig()).run(trace);
        core::expectMatchesSnapshot(snap, engine, faultName(fault));
    } // engine torn down while the relay is still up

    if (fault == Fault::Delay) {
        // A slow link is not a lost link: no fault, no reconnect.
        EXPECT_EQ(proxy.faultsFired(), 0u);
        EXPECT_EQ(proxy.connectionsServed(), 1u);
    } else {
        EXPECT_EQ(proxy.faultsFired(), 1u) << faultName(fault);
        EXPECT_GE(proxy.connectionsServed(), 2u) << faultName(fault);
    }
}

INSTANTIATE_TEST_SUITE_P(WireFaults, FaultedTrace,
                         ::testing::Values(Fault::Drop,
                                           Fault::Truncate,
                                           Fault::Blackhole,
                                           Fault::Delay),
                         [](const ::testing::TestParamInfo<Fault> &i) {
                             return faultName(i.param);
                         });

} // namespace
} // namespace laoram::net
