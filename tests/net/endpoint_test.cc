/**
 * @file
 * Endpoint grammar unit tests: parseEndpoint accepts exactly the
 * spellings users type (--listen / --remote-endpoint) and str()
 * round-trips them; malformed inputs fail with a message and leave
 * the output untouched.
 */

#include <gtest/gtest.h>

#include <string>

#include "net/endpoint.hh"

namespace laoram::net {
namespace {

TEST(Endpoint, ParsesTcpHostPort)
{
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:7070", &ep));
    EXPECT_EQ(ep.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 7070);
    EXPECT_EQ(ep.str(), "127.0.0.1:7070");

    ASSERT_TRUE(parseEndpoint("localhost:0", &ep));
    EXPECT_EQ(ep.host, "localhost");
    EXPECT_EQ(ep.port, 0); // ephemeral: resolved by boundEndpoint
}

TEST(Endpoint, ParsesUdsPath)
{
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint("unix:/tmp/node.sock", &ep));
    EXPECT_EQ(ep.kind, Endpoint::Kind::Uds);
    EXPECT_EQ(ep.path, "/tmp/node.sock");
    EXPECT_EQ(ep.str(), "unix:/tmp/node.sock");
}

TEST(Endpoint, RejectsMalformedSpellings)
{
    Endpoint ep;
    std::string error;
    EXPECT_FALSE(parseEndpoint("", &ep, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseEndpoint("justahost", &ep, &error));
    EXPECT_FALSE(parseEndpoint("host:notaport", &ep, &error));
    EXPECT_FALSE(parseEndpoint("host:99999", &ep, &error));
    EXPECT_FALSE(parseEndpoint("unix:", &ep, &error));
    // A UDS path longer than sockaddr_un can hold must be rejected at
    // parse time, not truncated at bind time.
    EXPECT_FALSE(
        parseEndpoint("unix:/" + std::string(300, 'x'), &ep, &error));
    // Failed parses never clobber the output endpoint.
    EXPECT_EQ(ep.kind, Endpoint::Kind::None);
}

TEST(Endpoint, DialFailsCleanlyOnRefusedPort)
{
    Endpoint ep;
    // Port 1 on loopback: virtually never listening, and connect()
    // fails fast instead of timing out.
    ASSERT_TRUE(parseEndpoint("127.0.0.1:1", &ep));
    std::string error;
    EXPECT_LT(dialEndpoint(ep, &error), 0);
    EXPECT_FALSE(error.empty());
}

TEST(Endpoint, DefaultEndpointIsNeverDialable)
{
    Endpoint ep;
    EXPECT_FALSE(ep.valid());
    std::string error;
    EXPECT_LT(dialEndpoint(ep, &error), 0);
    EXPECT_LT(listenEndpoint(ep, &error), 0);
}

} // namespace
} // namespace laoram::net
