/**
 * @file
 * Out-of-process node differential test: a pipelined Laoram engine
 * drives a REAL laoram_node binary (fork/exec, UDS listener,
 * mmap-backed tree), the node is SIGKILLed at a random window
 * boundary mid-trace and restarted on the same path, and the run
 * must finish byte-identically to an uninterrupted DRAM reference —
 * the client reconnects with backoff while the node comes back,
 * replays its un-acked tail, and acked writes survive the kill in
 * the page cache of the MAP_SHARED tree file.
 *
 * Plus the clean half of the lifecycle: SIGTERM drains and exits 0.
 *
 * fork/exec lives here and nowhere else in the test tree: keep this
 * suite OUT of sanitizer gating regexes that run forked children
 * (TSan in particular), matching the repo convention for
 * process-spawning tests.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "../integration/engine_snapshot.hh"
#include "core/pipeline.hh"
#include "net/endpoint.hh"
#include "storage/slot_backend.hh"
#include "util/rng.hh"

namespace laoram::net {
namespace {

constexpr std::uint64_t kWindow = 24;
constexpr std::uint64_t kWindows = 6;

/** The laoram_node binary sits next to this test binary. */
std::string
nodeBinaryPath()
{
    char self[4096];
    const ssize_t len =
        ::readlink("/proc/self/exe", self, sizeof(self) - 1);
    EXPECT_GT(len, 0);
    self[len] = '\0';
    std::string dir(self);
    dir.resize(dir.find_last_of('/'));
    return dir + "/laoram_node";
}

/** fork/exec a laoram_node; owns the pid for kill/reap. */
class NodeProcess
{
  public:
    ~NodeProcess() { terminate(); }

    void
    start(const std::vector<std::string> &args)
    {
        ASSERT_EQ(pid, -1);
        const std::string bin = nodeBinaryPath();
        std::vector<const char *> argv;
        argv.push_back(bin.c_str());
        for (const auto &a : args)
            argv.push_back(a.c_str());
        argv.push_back(nullptr);
        pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ::execv(bin.c_str(),
                    const_cast<char *const *>(argv.data()));
            ::_exit(127); // exec failed
        }
    }

    void
    kill9()
    {
        ASSERT_NE(pid, -1);
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
        ASSERT_EQ(::waitpid(pid, nullptr, 0), pid);
        pid = -1;
    }

    /** SIGTERM + reap; returns the node's exit code (-1 on signal). */
    int
    terminate()
    {
        if (pid == -1)
            return -1;
        ::kill(pid, SIGTERM);
        int status = 0;
        ::waitpid(pid, &status, 0);
        pid = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    bool running() const { return pid != -1; }

  private:
    pid_t pid = -1;
};

/** Block until the node's listener answers dials (it starts async). */
void
waitDialable(const std::string &spec)
{
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint(spec, &ep));
    const auto deadline = std::chrono::steady_clock::now()
                          + std::chrono::seconds(20);
    for (;;) {
        const int fd = dialEndpoint(ep);
        if (fd >= 0) {
            ::close(fd);
            return;
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "laoram_node never became dialable at " << spec;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

core::LaoramConfig
engineConfig(std::uint64_t seed)
{
    core::LaoramConfig cfg;
    cfg.base.numBlocks = 96;
    cfg.base.blockBytes = 64;
    cfg.base.payloadBytes = 32;
    cfg.base.encrypt = true;
    cfg.base.seed = seed;
    cfg.superblockSize = 4;
    cfg.lookaheadWindow = kWindow;
    return cfg;
}

std::vector<oram::BlockId>
randomTrace(std::uint64_t accesses, std::uint64_t numBlocks,
            std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<oram::BlockId> trace;
    trace.reserve(accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        trace.push_back(rng.nextBounded(numBlocks));
    return trace;
}

void
fillPayloads(core::Laoram &engine, const core::LaoramConfig &cfg)
{
    std::vector<std::uint8_t> buf(cfg.base.payloadBytes);
    for (oram::BlockId id = 0; id < cfg.base.numBlocks; ++id) {
        for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<std::uint8_t>(id * 131 + i * 7);
        engine.writeBlock(id, buf);
    }
}

core::PipelineConfig
pipelineConfig()
{
    return core::PipelineConfig{}
        .withWindowAccesses(kWindow)
        .withPrepThreads(2)
        .withQueueDepth(2);
}

class NodeProcessTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sock = ::testing::TempDir() + "laoram_nodeproc.sock";
        tree = ::testing::TempDir() + "laoram_nodeproc.tree";
        cleanup();
    }

    void
    TearDown() override
    {
        node.terminate();
        cleanup();
    }

    void
    cleanup()
    {
        std::remove(sock.c_str());
        std::remove(tree.c_str());
    }

    /** Engine-geometry node args; @p keep reopens the same tree. */
    std::vector<std::string>
    nodeArgs(bool keep) const
    {
        std::vector<std::string> args = {
            "--listen-uds", sock,           "--blocks",  "96",
            "--block-bytes", "64",          "--payload", "32",
            "--bucket-z",   "4",            "--encrypt",
            "--storage-path", tree,
        };
        if (keep)
            args.push_back("--storage-keep");
        return args;
    }

    std::string sock;
    std::string tree;
    NodeProcess node;
};

TEST_F(NodeProcessTest, SigtermDrainsAndExitsCleanly)
{
    node.start(nodeArgs(false));
    waitDialable("unix:" + sock);

    {
        core::LaoramConfig cfg = engineConfig(7);
        cfg.base.storage.kind = storage::BackendKind::Remote;
        cfg.base.storage.remote.endpoint = "unix:" + sock;
        core::Laoram engine(cfg);
        fillPayloads(engine, cfg);
        std::vector<std::uint8_t> out;
        engine.readBlock(5, out);
        EXPECT_EQ(out[0], static_cast<std::uint8_t>(5 * 131));
    } // client hangs up before the node is told to stop

    EXPECT_EQ(node.terminate(), 0);
    // The drain unlinked the socket file on its way out.
    EXPECT_NE(::access(sock.c_str(), F_OK), 0);
}

TEST_F(NodeProcessTest, SigkillRestartFinishesByteIdentically)
{
    const std::uint64_t iters = core::diffIters() >= 3
                                    ? 3
                                    : core::diffIters();
    Rng pick(core::diffSeed() ^ 0x516B11);
    for (std::uint64_t it = 0; it < iters; ++it) {
        const std::uint64_t seed = core::diffSeed() + it * 7919;
        const core::LaoramConfig cfg = engineConfig(seed);
        const auto trace = randomTrace(
            kWindow * kWindows, cfg.base.numBlocks, seed + 17);
        const std::uint64_t cut = 1 + pick.nextBounded(kWindows - 1);
        const std::string what = "iter " + std::to_string(it)
                                 + " cut " + std::to_string(cut);
        cleanup();

        // Uninterrupted DRAM reference.
        core::Laoram reference(cfg);
        fillPayloads(reference, cfg);
        core::BatchPipeline(reference, pipelineConfig()).run(trace);
        const core::EngineSnapshot snap =
            core::snapshotOf(reference);

        node.start(nodeArgs(false));
        waitDialable("unix:" + sock);

        core::LaoramConfig rcfg = cfg;
        rcfg.base.storage.kind = storage::BackendKind::Remote;
        rcfg.base.storage.remote.endpoint = "unix:" + sock;
        // Generous budget: the redial backoff has to outlast the
        // node's restart, and a SIGKILLed UDS peer can leave the
        // client parked in a response wait only the deadline ends.
        rcfg.base.storage.remote.maxRetries = 40;
        rcfg.base.storage.remote.backoffBaseMs = 5;
        rcfg.base.storage.remote.backoffMaxMs = 100;
        rcfg.base.storage.remote.responseTimeoutMs = 1000;

        {
            core::Laoram engine(rcfg);
            fillPayloads(engine, rcfg);
            core::BatchPipeline(
                engine,
                pipelineConfig().withWindowBoundaryHook(
                    [&](std::uint64_t w) {
                        if (w + 1 != cut)
                            return;
                        // Murder the node at the boundary and bring
                        // it back over the same tree file; the
                        // engine's next RPCs ride the reconnect path
                        // while it boots.
                        node.kill9();
                        node.start(nodeArgs(true));
                    }))
                .run(trace);

            core::expectMatchesSnapshot(snap, engine, what);
        } // the engine hangs up before the node is told to stop
        EXPECT_EQ(node.terminate(), 0) << what;
    }
}

} // namespace
} // namespace laoram::net
